package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 1000
		counts := make([]int32, n)
		For(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForSmallAndEmpty(t *testing.T) {
	var ran int32
	For(0, 4, func(int) { atomic.AddInt32(&ran, 1) })
	For(-3, 4, func(int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Errorf("For with n<=0 ran %d iterations", ran)
	}
	For(1, 8, func(int) { atomic.AddInt32(&ran, 1) })
	if ran != 1 {
		t.Errorf("For(1) ran %d iterations, want 1", ran)
	}
}

func TestForChunkedPartition(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		workers := int(wRaw)%16 + 1
		var mu sync.Mutex
		seen := make([]bool, n)
		ForChunked(n, workers, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				if seen[i] {
					t.Errorf("index %d covered twice", i)
				}
				seen[i] = true
			}
			mu.Unlock()
		})
		for i := range seen {
			if !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupPropagatesFirstError(t *testing.T) {
	g := NewGroup(2)
	sentinel := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 3 {
				return sentinel
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("Wait() = %v, want %v", err, sentinel)
	}
}

func TestGroupNoError(t *testing.T) {
	g := NewGroup(0)
	var n int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			atomic.AddInt32(&n, 1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait() = %v, want nil", err)
	}
	if n != 50 {
		t.Errorf("ran %d tasks, want 50", n)
	}
}

func TestGroupLimitBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak int32
	for i := 0; i < 30; i++ {
		g.Go(func() error {
			c := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			atomic.AddInt32(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", peak, limit)
	}
}

func TestMapReduceDeterministicOrder(t *testing.T) {
	// Summing i in worker-partitioned chunks must equal the serial sum
	// regardless of worker count.
	want := 0
	n := 1234
	for i := 0; i < n; i++ {
		want += i
	}
	for _, workers := range []int{1, 2, 5, 16} {
		parts := MapReduce(n, workers, func() int { return 0 }, func(acc, i int) int { return acc + i })
		got := 0
		for _, p := range parts {
			got += p
		}
		if got != want {
			t.Errorf("workers=%d: sum %d, want %d", workers, got, want)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	parts := MapReduce(0, 4, func() int { return 0 }, func(acc, i int) int { return acc + 1 })
	if len(parts) != 0 {
		t.Errorf("MapReduce(0) returned %d parts, want 0", len(parts))
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}
