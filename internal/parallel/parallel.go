// Package parallel provides small, deterministic fan-out helpers used by
// the offline phase of CFSF (GIS construction, K-means assignment, batch
// prediction). It is a thin layer over goroutines and sync so that callers
// never manage WaitGroups by hand.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) across the given number of
// workers. Iterations are handed out in contiguous chunks to preserve
// cache locality; each index is processed exactly once. For blocks until
// all iterations complete. If workers <= 0, DefaultWorkers() is used; if
// n <= 0 it returns immediately.
func For(n, workers int, body func(i int)) {
	ForChunked(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs body(lo, hi)
// for each chunk across the worker pool. The chunk size adapts so that
// each worker receives several chunks, which smooths load imbalance
// without a scheduler.
func ForChunked(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	// Aim for ~4 chunks per worker to absorb skewed per-item cost.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Group runs a set of independent tasks concurrently and returns the first
// non-nil error (all tasks always run to completion). It is an errgroup
// without context cancellation, sufficient for the offline pipeline.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	sema chan struct{}
}

// NewGroup returns a Group limited to the given number of concurrently
// running tasks. limit <= 0 means no limit.
func NewGroup(limit int) *Group {
	g := &Group{}
	if limit > 0 {
		g.sema = make(chan struct{}, limit)
	}
	return g
}

// Go schedules fn on the group.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	if g.sema != nil {
		g.sema <- struct{}{}
	}
	go func() {
		defer g.wg.Done()
		if g.sema != nil {
			defer func() { <-g.sema }()
		}
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled task has finished and returns the
// first error observed, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// MapReduce runs mapper(i) for i in [0, n) across workers, collecting one
// partial result per worker via the caller-supplied newAccum/fold pair,
// then reduces the partials in worker order so the reduction is
// deterministic. It returns the accumulated partials in order.
func MapReduce[A any](n, workers int, newAccum func() A, fold func(acc A, i int) A) []A {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		return nil
	}
	parts := make([]A, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			acc := newAccum()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			for i := lo; i < hi; i++ {
				acc = fold(acc, i)
			}
			parts[w] = acc
		}(w)
	}
	wg.Wait()
	return parts
}
