package similarity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cfsf/internal/ratings"
)

// applyUpdates rebuilds a matrix with extra ratings added.
func applyUpdates(m *ratings.Matrix, ups [][3]int) *ratings.Matrix {
	b := ratings.NewBuilder(m.NumUsers(), m.NumItems())
	for u := 0; u < m.NumUsers(); u++ {
		for _, e := range m.UserRatings(u) {
			b.MustAdd(u, int(e.Index), e.Value)
		}
	}
	for _, up := range ups {
		b.MustAdd(up[0], up[1], float64(up[2]))
	}
	return b.Build()
}

// TestRefreshMatchesFullRebuild is the exactness property: with no TopN
// truncation, Refresh must equal BuildGIS on the updated matrix.
func TestRefreshMatchesFullRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 10+rng.Intn(20), 8+rng.Intn(15)
		b := ratings.NewBuilder(p, q)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				if rng.Float64() < 0.4 {
					b.MustAdd(u, i, float64(1+rng.Intn(5)))
				}
			}
		}
		m := b.Build()
		opts := GISOptions{Metric: PCC, TopN: 0, MinCoRatings: 2, Workers: 2}
		g := BuildGIS(m, opts)

		// Apply a handful of updates to a few items.
		nUps := 1 + rng.Intn(6)
		ups := make([][3]int, nUps)
		changed := map[int]bool{}
		for k := range ups {
			u, i := rng.Intn(p), rng.Intn(q)
			ups[k] = [3]int{u, i, 1 + rng.Intn(5)}
			changed[i] = true
			// A changed rating also perturbs the user's other items'
			// co-rating stats? No: sim(a,b) depends on columns of a and b
			// only. A new rating (u,i) changes column i and adds a
			// co-rating pair (i, j) for every j in u's row — those pairs
			// live in i's list and j's list entries pointing at i, which
			// Refresh repairs symmetrically. Other pairs are untouched.
		}
		m2 := applyUpdates(m, ups)

		itemList := make([]int, 0, len(changed))
		for i := range changed {
			itemList = append(itemList, i)
		}
		got := g.Refresh(m2, itemList, opts)
		want := BuildGIS(m2, opts)

		for i := 0; i < q; i++ {
			gi, wi := got.Neighbors(i), want.Neighbors(i)
			if len(gi) != len(wi) {
				return false
			}
			for k := range gi {
				if gi[k].Index != wi[k].Index || !approx(gi[k].Score, wi[k].Score, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRefreshWithTruncationStaysValid(t *testing.T) {
	m := denseRandom(t, 40, 25, 0.5, 21)
	opts := GISOptions{Metric: PCC, TopN: 6, MinCoRatings: 2}
	g := BuildGIS(m, opts)
	m2 := applyUpdates(m, [][3]int{{0, 3, 5}, {1, 3, 1}, {2, 7, 4}})
	got := g.Refresh(m2, []int{3, 7}, opts)
	for i := 0; i < m2.NumItems(); i++ {
		ns := got.Neighbors(i)
		if len(ns) > 6 {
			t.Fatalf("item %d has %d neighbours, want <= 6", i, len(ns))
		}
		for k := 1; k < len(ns); k++ {
			if ns[k-1].Score < ns[k].Score {
				t.Fatalf("item %d list not descending after refresh", i)
			}
		}
		// Changed items must match a fresh full computation exactly.
		if i == 3 || i == 7 {
			fresh := BuildGIS(m2, opts).Neighbors(i)
			if len(fresh) != len(ns) {
				t.Fatalf("changed item %d: %d neighbours, fresh %d", i, len(ns), len(fresh))
			}
			for k := range ns {
				if ns[k] != fresh[k] {
					t.Fatalf("changed item %d entry %d: %v vs %v", i, k, ns[k], fresh[k])
				}
			}
		}
	}
}

func TestRefreshGrowsItemSpace(t *testing.T) {
	m := denseRandom(t, 20, 10, 0.6, 5)
	opts := GISOptions{Metric: PCC, TopN: 0, MinCoRatings: 2}
	g := BuildGIS(m, opts)

	// New matrix with one extra item rated by several users.
	b := ratings.NewBuilder(20, 11)
	for u := 0; u < 20; u++ {
		for _, e := range m.UserRatings(u) {
			b.MustAdd(u, int(e.Index), e.Value)
		}
	}
	for u := 0; u < 10; u++ {
		r, _ := m.Rating(u, 0)
		if r == 0 {
			r = 3
		}
		b.MustAdd(u, 10, r) // correlate new item with item 0
	}
	m2 := b.Build()

	got := g.Refresh(m2, []int{10}, opts)
	if got.NumItems() != 11 {
		t.Fatalf("refreshed GIS covers %d items, want 11", got.NumItems())
	}
	want := BuildGIS(m2, opts)
	for i := 0; i < 11; i++ {
		gi, wi := got.Neighbors(i), want.Neighbors(i)
		if len(gi) != len(wi) {
			t.Fatalf("item %d: %d vs %d neighbours", i, len(gi), len(wi))
		}
		for k := range gi {
			if gi[k].Index != wi[k].Index || !approx(gi[k].Score, wi[k].Score, 1e-9) {
				t.Fatalf("item %d entry %d: %v vs %v", i, k, gi[k], wi[k])
			}
		}
	}
}

func TestRefreshNoChanges(t *testing.T) {
	m := denseRandom(t, 20, 10, 0.6, 9)
	opts := GISOptions{Metric: PCC, TopN: 0, MinCoRatings: 2}
	g := BuildGIS(m, opts)
	got := g.Refresh(m, nil, opts)
	for i := 0; i < 10; i++ {
		a, b := g.Neighbors(i), got.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("no-op refresh changed item %d", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("no-op refresh changed item %d entry %d", i, k)
			}
		}
	}
}
