package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cfsf/internal/ratings"
)

func TestItemAdjustedCosineRemovesUserBias(t *testing.T) {
	// Two items rated identically up to a per-user offset: adjusted
	// cosine sees perfect correlation of the centred values.
	b := ratings.NewBuilder(3, 2)
	b.MustAdd(0, 0, 2)
	b.MustAdd(0, 1, 4) // user 0 mean 3: deviations -1, +1
	b.MustAdd(1, 0, 1)
	b.MustAdd(1, 1, 3) // user 1 mean 2: deviations -1, +1
	b.MustAdd(2, 0, 3)
	b.MustAdd(2, 1, 5) // user 2 mean 4: deviations -1, +1
	m := b.Build()
	sim, co := ItemAdjustedCosine(m, 0, 1)
	if co != 3 {
		t.Fatalf("co = %d, want 3", co)
	}
	if math.Abs(sim-(-1)) > 1e-12 {
		t.Errorf("adjusted cosine = %g, want -1 (deviations are opposed)", sim)
	}
}

func TestUserMSDBounds(t *testing.T) {
	b := ratings.NewBuilder(2, 3)
	b.MustAdd(0, 0, 1)
	b.MustAdd(0, 1, 5)
	b.MustAdd(1, 0, 5)
	b.MustAdd(1, 1, 1)
	m := b.Build()
	sim, co := UserMSD(m, 0, 1)
	if co != 2 {
		t.Fatalf("co = %d, want 2", co)
	}
	// MSD = 16, range² = 16 → sim = 0 (maximally dissimilar).
	if sim != 0 {
		t.Errorf("opposite extremes MSD sim = %g, want 0", sim)
	}
	// Identical users → 1.
	if sim, _ := UserMSD(m, 0, 0); sim != 1 {
		t.Errorf("self MSD sim = %g, want 1", sim)
	}
}

func TestUserMSDNoOverlap(t *testing.T) {
	b := ratings.NewBuilder(2, 2)
	b.MustAdd(0, 0, 3)
	b.MustAdd(1, 1, 4)
	m := b.Build()
	if sim, co := UserMSD(m, 0, 1); sim != 0 || co != 0 {
		t.Errorf("disjoint users: sim=%g co=%d", sim, co)
	}
}

func TestJaccard(t *testing.T) {
	b := ratings.NewBuilder(2, 4)
	b.MustAdd(0, 0, 3)
	b.MustAdd(0, 1, 3)
	b.MustAdd(0, 2, 3)
	b.MustAdd(1, 1, 5)
	b.MustAdd(1, 2, 5)
	b.MustAdd(1, 3, 5)
	m := b.Build()
	// Intersection {1,2} = 2, union {0,1,2,3} = 4.
	if got := UserJaccard(m, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("UserJaccard = %g, want 0.5", got)
	}
	// Items 1 and 2 share both raters: 2/2 = 1.
	if got := ItemJaccard(m, 1, 2); got != 1 {
		t.Errorf("ItemJaccard = %g, want 1", got)
	}
	// Items 0 and 3 share nobody.
	if got := ItemJaccard(m, 0, 3); got != 0 {
		t.Errorf("disjoint ItemJaccard = %g, want 0", got)
	}
}

func TestConstrainedPCCSignAgreement(t *testing.T) {
	// Users agree above/below the midpoint 3 → positive; one above one
	// below → negative.
	b := ratings.NewBuilder(2, 4)
	b.MustAdd(0, 0, 5)
	b.MustAdd(0, 1, 4)
	b.MustAdd(0, 2, 1)
	b.MustAdd(1, 0, 4)
	b.MustAdd(1, 1, 5)
	b.MustAdd(1, 2, 2)
	m := b.Build()
	sim, co := UserConstrainedPCC(m, 0, 1)
	if co != 3 {
		t.Fatalf("co = %d, want 3", co)
	}
	// Deviations from the midpoint: (2,1,-2) vs (1,2,-1) → 6/(3·√6) ≈ 0.816.
	if math.Abs(sim-6/(3*math.Sqrt(6))) > 1e-9 {
		t.Errorf("constrained PCC = %g, want %g", sim, 6/(3*math.Sqrt(6)))
	}
}

// Property: all metrics stay in their documented ranges and are
// symmetric on random matrices.
func TestMetricsBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 2+rng.Intn(8), 2+rng.Intn(8)
		b := ratings.NewBuilder(p, q)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				if rng.Float64() < 0.6 {
					b.MustAdd(u, i, float64(1+rng.Intn(5)))
				}
			}
		}
		m := b.Build()
		for a := 0; a < p; a++ {
			for c := a + 1; c < p; c++ {
				if s, _ := UserMSD(m, a, c); s < -1e-9 || s > 1+1e-9 {
					return false
				}
				if s := UserJaccard(m, a, c); s < 0 || s > 1 || s != UserJaccard(m, c, a) {
					return false
				}
				s1, _ := UserConstrainedPCC(m, a, c)
				s2, _ := UserConstrainedPCC(m, c, a)
				if s1 != s2 || s1 < -1-1e-9 || s1 > 1+1e-9 {
					return false
				}
			}
		}
		for a := 0; a < q; a++ {
			for c := a + 1; c < q; c++ {
				s1, _ := ItemAdjustedCosine(m, a, c)
				s2, _ := ItemAdjustedCosine(m, c, a)
				if s1 != s2 || s1 < -1-1e-9 || s1 > 1+1e-9 {
					return false
				}
				if s := ItemJaccard(m, a, c); s < 0 || s > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
