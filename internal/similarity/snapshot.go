package similarity

import "cfsf/internal/mathx"

// Snapshot is the serialisable form of a GIS. Neighbour lists are the
// expensive artefact of the offline phase, so model persistence stores
// them rather than recomputing.
type Snapshot struct {
	Neighbors [][]mathx.Scored
	Opts      GISOptions
}

// Snapshot extracts a deep copy suitable for encoding.
func (g *GIS) Snapshot() Snapshot {
	s := Snapshot{Neighbors: make([][]mathx.Scored, len(g.neighbors)), Opts: g.opts}
	for i, list := range g.neighbors {
		s.Neighbors[i] = append([]mathx.Scored(nil), list...)
	}
	return s
}

// FromSnapshot reconstructs a GIS.
func FromSnapshot(s Snapshot) *GIS {
	g := &GIS{neighbors: make([][]mathx.Scored, len(s.Neighbors)), opts: s.Opts}
	for i, list := range s.Neighbors {
		g.neighbors[i] = append([]mathx.Scored(nil), list...)
	}
	return g
}
