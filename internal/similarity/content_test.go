package similarity

import (
	"math"
	"testing"

	"cfsf/internal/ratings"
)

// contentFixture: 3 items; items 0 and 1 share a genre, item 2 is
// different. Item 2 has no ratings at all (cold).
func contentFixture(t *testing.T) (*ratings.Matrix, [][]float64) {
	t.Helper()
	b := ratings.NewBuilder(4, 3)
	b.MustAdd(0, 0, 5)
	b.MustAdd(0, 1, 4)
	b.MustAdd(1, 0, 2)
	b.MustAdd(1, 1, 1)
	b.MustAdd(2, 0, 4)
	b.MustAdd(2, 1, 5)
	m := b.Build()
	features := [][]float64{
		{1, 0},
		{1, 0},
		{0, 1},
	}
	return m, features
}

func TestContentBlendZeroEqualsPlainGIS(t *testing.T) {
	m, features := contentFixture(t)
	opts := GISOptions{Metric: PCC, MinCoRatings: 2}
	plain := BuildGIS(m, opts)
	blended := BuildGISWithContent(m, features, 0, opts)
	for i := 0; i < m.NumItems(); i++ {
		a, b := plain.Neighbors(i), blended.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("item %d: blend=0 differs from plain GIS", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("item %d entry %d differs", i, k)
			}
		}
	}
}

func TestContentPureBlendFollowsGenres(t *testing.T) {
	m, features := contentFixture(t)
	g := BuildGISWithContent(m, features, 1, GISOptions{Metric: PCC, MinCoRatings: 2})
	// Items 0 and 1 share a genre: cosine 1; item 2 has cosine 0 with
	// both and must have no positive neighbours.
	n0 := g.Neighbors(0)
	if len(n0) != 1 || n0[0].Index != 1 || math.Abs(n0[0].Score-1) > 1e-12 {
		t.Errorf("item 0 pure-content neighbours = %v, want [{1 1}]", n0)
	}
	if len(g.Neighbors(2)) != 0 {
		t.Errorf("disjoint-genre item has neighbours: %v", g.Neighbors(2))
	}
}

func TestContentGivesColdItemsNeighbors(t *testing.T) {
	// Cold item 2 gets content neighbours under a blend even though it
	// has no co-ratings.
	b := ratings.NewBuilder(3, 3)
	b.MustAdd(0, 0, 5)
	b.MustAdd(1, 0, 3)
	b.MustAdd(0, 1, 4)
	b.MustAdd(1, 1, 2)
	m := b.Build()
	features := [][]float64{{1, 0}, {0, 1}, {1, 0}} // item 2 shares genre with item 0
	plain := BuildGIS(m, GISOptions{Metric: PCC, MinCoRatings: 2})
	if len(plain.Neighbors(2)) != 0 {
		t.Fatal("cold item unexpectedly has CF neighbours")
	}
	g := BuildGISWithContent(m, features, 0.5, GISOptions{Metric: PCC, MinCoRatings: 2})
	n2 := g.Neighbors(2)
	if len(n2) == 0 {
		t.Fatal("cold item has no blended neighbours")
	}
	if n2[0].Index != 0 {
		t.Errorf("cold item's best neighbour = %d, want 0 (shared genre)", n2[0].Index)
	}
	if math.Abs(n2[0].Score-0.5) > 1e-12 {
		t.Errorf("blended score %g, want 0.5 (blend × cosine 1)", n2[0].Score)
	}
}

func TestContentBlendArithmetic(t *testing.T) {
	m, features := contentFixture(t)
	opts := GISOptions{Metric: PCC, MinCoRatings: 2}
	cfSim, _ := ItemPCC(m, 0, 1)
	g := BuildGISWithContent(m, features, 0.3, opts)
	got, ok := g.Sim(0, 1)
	if !ok {
		t.Fatal("pair (0,1) missing")
	}
	want := 0.7*cfSim + 0.3*1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("blended sim %g, want %g", got, want)
	}
}

func TestContentBlendClamped(t *testing.T) {
	m, features := contentFixture(t)
	over := BuildGISWithContent(m, features, 5, GISOptions{Metric: PCC, MinCoRatings: 2})
	pure := BuildGISWithContent(m, features, 1, GISOptions{Metric: PCC, MinCoRatings: 2})
	for i := 0; i < m.NumItems(); i++ {
		a, b := over.Neighbors(i), pure.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("blend>1 not clamped to 1 at item %d", i)
		}
	}
}

func TestContentDeterministicAcrossWorkers(t *testing.T) {
	d := denseRandom(t, 40, 20, 0.5, 31)
	features := make([][]float64, 20)
	for i := range features {
		features[i] = []float64{float64(i % 3), float64((i + 1) % 2)}
	}
	opts := GISOptions{Metric: PCC, MinCoRatings: 2, TopN: 8}
	a := BuildGISWithContent(d, features, 0.4, GISOptions{Metric: PCC, MinCoRatings: 2, TopN: 8, Workers: 1})
	opts.Workers = 8
	b := BuildGISWithContent(d, features, 0.4, opts)
	for i := 0; i < 20; i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("worker counts disagree at item %d", i)
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("worker counts disagree at item %d entry %d", i, k)
			}
		}
	}
}
