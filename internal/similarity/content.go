package similarity

import (
	"math"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// BuildGISWithContent builds a Global Item Similarity matrix that blends
// collaborative similarity with item-attribute similarity:
//
//	sim(a,b) = (1−blend)·simCF(a,b) + blend·cosine(features_a, features_b)
//
// This is the paper's §VI future work ("attributes of items ... may
// reflect shifts of user preferences") realised: content similarity is
// available for every item pair — including cold items with few or no
// co-ratings, where pure PCC is undefined — so the GIS no longer goes
// blind on the long tail. features[i] is item i's attribute vector (e.g.
// a genre one-hot); items with a zero vector contribute no content term.
//
// blend = 0 degenerates to BuildGIS; blend = 1 is a pure content index.
func BuildGISWithContent(m *ratings.Matrix, features [][]float64, blend float64, opts GISOptions) *GIS {
	if blend <= 0 || len(features) == 0 {
		return BuildGIS(m, opts)
	}
	if blend > 1 {
		blend = 1
	}
	q := m.NumItems()

	// Pre-normalise feature vectors so pairwise cosine is a dot product.
	norm := make([][]float64, q)
	for i := 0; i < q; i++ {
		if i >= len(features) || len(features[i]) == 0 {
			continue
		}
		var ss float64
		for _, v := range features[i] {
			ss += v * v
		}
		if ss == 0 {
			continue
		}
		inv := 1 / math.Sqrt(ss)
		nf := make([]float64, len(features[i]))
		for k, v := range features[i] {
			nf[k] = v * inv
		}
		norm[i] = nf
	}

	g := &GIS{neighbors: make([][]mathx.Scored, q), opts: opts}
	parallel.ForChunked(q, opts.Workers, func(lo, hi int) {
		cf := make([]float64, q)
		hasCF := make([]bool, q)
		scratch := newCandidateScratch(q)
		for a := lo; a < hi; a++ {
			// Collaborative side: the full candidate list for a.
			for i := range cf {
				cf[i], hasCF[i] = 0, false
			}
			for _, n := range candidateList(m, a, opts, scratch) {
				cf[n.Index] = n.Score
				hasCF[n.Index] = true
			}

			top := mathx.NewTopK(topNOrAll(opts.TopN, q-1))
			fa := norm[a]
			for b := 0; b < q; b++ {
				if b == a {
					continue
				}
				content := 0.0
				if fa != nil && norm[b] != nil {
					for k := range fa {
						if k < len(norm[b]) {
							content += fa[k] * norm[b][k]
						}
					}
				}
				sim := blend * content
				if hasCF[b] {
					sim += (1 - blend) * cf[b]
				}
				if sim <= 0 || sim < opts.Threshold {
					continue
				}
				top.Push(int32(b), sim)
			}
			g.neighbors[a] = top.Sorted()
		}
	})
	return g
}
