package similarity

import (
	"math"

	"cfsf/internal/ratings"
)

// Additional similarity functions beyond the paper's PCC/PCS pair. They
// are not used by CFSF's defaults but round out the library for
// downstream experimentation and appear in the metric ablations.

// ItemAdjustedCosine computes the adjusted cosine similarity between
// items a and b: ratings are centred on each *user's* mean (Sarwar et
// al. '01), which removes rating-style bias like PCC but keeps the
// per-user perspective.
func ItemAdjustedCosine(m *ratings.Matrix, a, b int) (sim float64, co int) {
	var sxy, sxx, syy float64
	m.CoRatingUsers(a, b, func(u int32, ra, rb float64) {
		um := m.UserMean(int(u))
		da, db := ra-um, rb-um
		sxy += da * db
		sxx += da * da
		syy += db * db
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}

// UserMSD computes the mean-squared-difference similarity between users
// a and b: 1 − MSD/range², in [0, 1]. Higher is more similar.
func UserMSD(m *ratings.Matrix, a, b int) (sim float64, co int) {
	var ss float64
	m.CoRatedItems(a, b, func(_ int32, ra, rb float64) {
		d := ra - rb
		ss += d * d
		co++
	})
	if co == 0 {
		return 0, 0
	}
	r := m.MaxRating() - m.MinRating()
	if r == 0 {
		return 1, co
	}
	return 1 - (ss/float64(co))/(r*r), co
}

// UserJaccard computes the Jaccard similarity of the users' rated-item
// sets: |I(a) ∩ I(b)| / |I(a) ∪ I(b)|. It ignores rating values and
// measures behavioural overlap only.
func UserJaccard(m *ratings.Matrix, a, b int) float64 {
	inter := 0
	m.CoRatedItems(a, b, func(int32, float64, float64) { inter++ })
	union := len(m.UserRatings(a)) + len(m.UserRatings(b)) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ItemJaccard computes the Jaccard similarity of the items' rater sets.
func ItemJaccard(m *ratings.Matrix, a, b int) float64 {
	inter := 0
	m.CoRatingUsers(a, b, func(int32, float64, float64) { inter++ })
	union := len(m.ItemRatings(a)) + len(m.ItemRatings(b)) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// UserConstrainedPCC computes the constrained Pearson correlation
// (Shardanand & Maes '95): deviations are taken from the scale midpoint
// rather than the mean, so only agreement on the positive/negative side
// of the scale counts as similarity.
func UserConstrainedPCC(m *ratings.Matrix, a, b int) (sim float64, co int) {
	mid := (m.MinRating() + m.MaxRating()) / 2
	var sxy, sxx, syy float64
	m.CoRatedItems(a, b, func(_ int32, ra, rb float64) {
		da, db := ra-mid, rb-mid
		sxy += da * db
		sxx += da * da
		syy += db * db
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}
