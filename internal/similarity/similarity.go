// Package similarity implements the similarity functions of the CFSF
// paper — Pearson Correlation Coefficient (Eq. 5 for items, Eq. 6 for
// users) and the Pure Cosine Similarity it is compared against — plus the
// parallel construction of the Global Item Similarity matrix (GIS,
// paper §IV-B): thresholded, truncated to top-N neighbours per item and
// sorted in descending similarity order.
package similarity

import (
	"math"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Metric selects the similarity function.
type Metric int

const (
	// PCC is the Pearson Correlation Coefficient centred on the global
	// mean of each vector (item mean for items, user mean for users), as
	// in Eq. 5/6 of the paper.
	PCC Metric = iota
	// Cosine is the Pure Cosine Similarity (PCS) the paper rejects for
	// the GIS because it ignores rating-style diversity. Kept as an
	// ablation (DESIGN.md §5).
	Cosine
)

func (m Metric) String() string {
	switch m {
	case PCC:
		return "pcc"
	case Cosine:
		return "cosine"
	default:
		return "unknown"
	}
}

// ItemPCC computes Eq. 5: the Pearson correlation between items a and b
// over the users who rated both, each rating centred on its item's mean.
// It returns the similarity and the co-rating count; similarity is 0 when
// either centred vector has no variance or there are no co-ratings.
func ItemPCC(m *ratings.Matrix, a, b int) (sim float64, co int) {
	ma, mb := m.ItemMean(a), m.ItemMean(b)
	var sxy, sxx, syy float64
	m.CoRatingUsers(a, b, func(_ int32, ra, rb float64) {
		da, db := ra-ma, rb-mb
		sxy += da * db
		sxx += da * da
		syy += db * db
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}

// ItemCosine computes the pure cosine similarity between items a and b
// over co-rating users.
func ItemCosine(m *ratings.Matrix, a, b int) (sim float64, co int) {
	var sxy, sxx, syy float64
	m.CoRatingUsers(a, b, func(_ int32, ra, rb float64) {
		sxy += ra * rb
		sxx += ra * ra
		syy += rb * rb
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}

// UserPCC computes Eq. 6: the Pearson correlation between users a and b
// over the items both rated, each rating centred on its user's mean.
func UserPCC(m *ratings.Matrix, a, b int) (sim float64, co int) {
	ma, mb := m.UserMean(a), m.UserMean(b)
	var sxy, sxx, syy float64
	m.CoRatedItems(a, b, func(_ int32, ra, rb float64) {
		da, db := ra-ma, rb-mb
		sxy += da * db
		sxx += da * da
		syy += db * db
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}

// UserCosine computes the pure cosine similarity between users a and b
// over co-rated items.
func UserCosine(m *ratings.Matrix, a, b int) (sim float64, co int) {
	var sxy, sxx, syy float64
	m.CoRatedItems(a, b, func(_ int32, ra, rb float64) {
		sxy += ra * rb
		sxx += ra * ra
		syy += rb * rb
		co++
	})
	if sxx == 0 || syy == 0 {
		return 0, co
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), co
}

// Significance devalues similarities supported by fewer than gamma
// co-ratings: sim × min(co, gamma)/gamma. gamma <= 0 disables weighting.
// (Used by the EMDP baseline and available as a GIS option.)
func Significance(sim float64, co, gamma int) float64 {
	if gamma <= 0 || co >= gamma {
		return sim
	}
	return sim * float64(co) / float64(gamma)
}

// GISOptions configures BuildGIS.
type GISOptions struct {
	// Metric selects PCC (paper default) or Cosine (ablation).
	Metric Metric
	// TopN keeps at most this many neighbours per item (0 = keep all that
	// pass the filters). The paper sorts GIS descending and picks the top
	// M at prediction time, so TopN must be >= the largest M used online.
	TopN int
	// Threshold drops neighbours with similarity < Threshold (the paper
	// "sets thresholds for Eq. 5 to filter less important items"). Only
	// positive correlations ever enter the GIS.
	Threshold float64
	// MinCoRatings drops neighbour pairs supported by fewer co-rating
	// users than this (0 = no minimum).
	MinCoRatings int
	// SignificanceGamma, if > 0, applies Significance weighting.
	SignificanceGamma int
	// Workers bounds the parallelism of the build (<= 0 = GOMAXPROCS).
	Workers int
}

// DefaultGISOptions returns the configuration used by the paper's
// experiments: PCC, all positive neighbours kept up to 200 per item.
func DefaultGISOptions() GISOptions {
	return GISOptions{Metric: PCC, TopN: 200, Threshold: 0, MinCoRatings: 2}
}

// GIS is the Global Item Similarity matrix: for every item, its
// neighbours sorted by descending similarity. Immutable and safe for
// concurrent use after construction.
type GIS struct {
	neighbors [][]mathx.Scored
	opts      GISOptions
}

// Neighbors returns item i's neighbour list, sorted by descending
// similarity (ties by ascending item id). The slice is shared: callers
// must not modify it.
func (g *GIS) Neighbors(i int) []mathx.Scored { return g.neighbors[i] }

// NumItems returns the number of items the GIS covers.
func (g *GIS) NumItems() int { return len(g.neighbors) }

// Options returns the options the GIS was built with.
func (g *GIS) Options() GISOptions { return g.opts }

// TopNByID returns a fresh copy of the top-n prefix of item i's
// neighbour list, re-sorted by ascending neighbour id (n <= 0 means the
// whole list). Serving keeps this id-sorted mirror alongside the
// score-sorted list so the online phase can merge it against rating
// rows without a per-request sort; it must be regenerated whenever the
// score-sorted list (and hence its truncation) changes.
func (g *GIS) TopNByID(i, n int) []mathx.Scored {
	l := g.neighbors[i]
	if n > 0 && len(l) > n {
		l = l[:n]
	}
	out := make([]mathx.Scored, len(l))
	copy(out, l)
	mathx.SortScoredByIndex(out)
	return out
}

// Sim returns the similarity between items a and b if b is among a's
// retained neighbours.
func (g *GIS) Sim(a, b int) (float64, bool) {
	for _, n := range g.neighbors[a] {
		if int(n.Index) == b {
			return n.Score, true
		}
	}
	return 0, false
}

// TotalNeighbors returns the number of stored (item, neighbour) pairs,
// i.e. the memory footprint of the GIS in entries.
func (g *GIS) TotalNeighbors() int {
	n := 0
	for _, l := range g.neighbors {
		n += len(l)
	}
	return n
}

// BuildGIS constructs the Global Item Similarity matrix in parallel.
//
// For each item a, it accumulates co-rating statistics against every item
// that shares at least one user with a, in a single pass over the rows of
// a's raters (O(Σ_{u∈col(a)} |row(u)|) per item). This is the offline
// step the paper describes as the dominant cost; it parallelises over
// items with no shared mutable state.
func BuildGIS(m *ratings.Matrix, opts GISOptions) *GIS {
	q := m.NumItems()
	g := &GIS{neighbors: make([][]mathx.Scored, q), opts: opts}

	parallel.ForChunked(q, opts.Workers, func(lo, hi int) {
		// Per-chunk dense scratch: stats for every candidate item.
		sxy := make([]float64, q)
		sxx := make([]float64, q)
		syy := make([]float64, q)
		co := make([]int32, q)
		touched := make([]int32, 0, 256)

		for a := lo; a < hi; a++ {
			touched = touched[:0]
			ma := m.ItemMean(a)
			for _, ue := range m.ItemRatings(a) {
				u := int(ue.Index)
				var da float64
				if opts.Metric == PCC {
					da = ue.Value - ma
				} else {
					da = ue.Value
				}
				for _, ie := range m.UserRatings(u) {
					b := ie.Index
					if int(b) == a {
						continue
					}
					if co[b] == 0 {
						touched = append(touched, b)
					}
					var db float64
					if opts.Metric == PCC {
						db = ie.Value - m.ItemMean(int(b))
					} else {
						db = ie.Value
					}
					sxy[b] += da * db
					sxx[b] += da * da
					syy[b] += db * db
					co[b]++
				}
			}

			top := mathx.NewTopK(topNOrAll(opts.TopN, len(touched)))
			for _, b := range touched {
				n := int(co[b])
				if opts.MinCoRatings > 0 && n < opts.MinCoRatings {
					continue
				}
				if sxx[b] == 0 || syy[b] == 0 {
					continue
				}
				sim := sxy[b] / (math.Sqrt(sxx[b]) * math.Sqrt(syy[b]))
				sim = Significance(sim, n, opts.SignificanceGamma)
				if sim <= 0 || sim < opts.Threshold {
					continue
				}
				top.Push(b, sim)
			}
			g.neighbors[a] = top.Sorted()

			for _, b := range touched {
				sxy[b], sxx[b], syy[b], co[b] = 0, 0, 0, 0
			}
		}
	})
	return g
}

func topNOrAll(topN, candidates int) int {
	if topN <= 0 || topN > candidates {
		return candidates
	}
	return topN
}
