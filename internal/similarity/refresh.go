package similarity

import (
	"math"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Refresh returns a new GIS reflecting an updated matrix in which only
// the listed items' rating columns changed (the paper's §VI future work:
// "how it can keep GIS up-to-date"). Instead of the full O(nnz · row)
// rebuild, it
//
//  1. recomputes the neighbour lists of the changed items from scratch,
//  2. strips entries pointing at changed items from every unchanged
//     item's list, and
//  3. re-inserts the symmetric pairs discovered in step 1.
//
// The result is identical to a full BuildGIS when TopN is 0 (no
// truncation). With truncation, an unchanged item's list can temporarily
// hold fewer than TopN entries: neighbours that the old truncation
// discarded cannot be resurrected without touching the full matrix. That
// is the standard staleness trade-off of incremental similarity indices;
// run a full rebuild periodically to re-fill.
func (g *GIS) Refresh(m *ratings.Matrix, changedItems []int, opts GISOptions) *GIS {
	// changed and symmetric are dense, index-by-item structures rather
	// than maps: steps 2+3 below probe them once per stored neighbour
	// entry, and at that volume map overhead dominates the whole refresh.
	q := m.NumItems()
	changed := make([]bool, q)
	for _, i := range changedItems {
		if i >= 0 && i < q {
			changed[i] = true
		}
	}
	out := &GIS{neighbors: make([][]mathx.Scored, q), opts: opts}

	// Step 1: full candidate lists (untruncated) for changed items, so
	// symmetric insertion in step 3 is not limited by TopN. Only the
	// stored per-item list needs ranking; the symmetric pass consumes the
	// full list in any order, so mathx.SelectTopScored picks instead of sorting the
	// whole candidate set.
	changedIdx := make([]int32, 0, len(changedItems))
	for i := int32(0); int(i) < q; i++ {
		if changed[i] {
			changedIdx = append(changedIdx, i)
		}
	}

	lists := make([][]mathx.Scored, len(changedIdx))
	parallel.ForChunked(len(changedIdx), opts.Workers, func(lo, hi int) {
		scratch := newCandidateScratch(q)
		for k := lo; k < hi; k++ {
			i := int(changedIdx[k])
			lists[k] = candidateList(m, i, opts, scratch)
			out.neighbors[i] = mathx.SelectTopScored(lists[k], opts.TopN)
		}
	})

	// Step 3 preparation: symmetric entries grouped by unchanged item.
	symmetric := make([][]mathx.Scored, q)
	for k, i := range changedIdx {
		for _, n := range lists[k] {
			if changed[n.Index] {
				continue // changed↔changed pairs are already in both lists
			}
			symmetric[n.Index] = append(symmetric[n.Index], mathx.Scored{Index: i, Score: n.Score})
		}
	}

	// Steps 2+3: rebuild unchanged lists (parallel over items). Stripping
	// changed entries preserves sort order, and the symmetric insertions
	// — already few and sorted — go in by a single merge pass that skips
	// stripped entries in place, so no intermediate copy is ever built.
	// Lists untouched by both share their old backing array outright.
	// The merged order is identical to a full sort because both inputs
	// are ordered by the same strict total order (score desc, index asc)
	// and hold disjoint item ids. Output lists are carved from a
	// per-chunk slab: their exact lengths are known up front, and one
	// bulk allocation per chunk beats thousands of small ones.
	parallel.ForChunked(q, opts.Workers, func(lo, hi int) {
		var buf scoredSlab
		for i := lo; i < hi; i++ {
			if changed[i] {
				continue
			}
			var old []mathx.Scored
			if i < len(g.neighbors) {
				old = g.neighbors[i]
			}
			stripped := 0
			for _, n := range old {
				if changed[n.Index] {
					stripped++
				}
			}
			flen := len(old) - stripped
			ins := symmetric[i]
			if len(ins) > 0 && opts.TopN > 0 && flen >= opts.TopN {
				// The list is full: an insertion sorting at or below the
				// last surviving entry cannot make the top-N cut (at
				// least flen ≥ TopN entries precede it), so dropping it
				// here changes nothing — and in the common case (a
				// re-rating nudges similarities far under every top-N
				// cutoff) it empties ins and skips the merge for the
				// whole list.
				last := old[len(old)-1]
				for j := len(old) - 1; j >= 0; j-- {
					if !changed[old[j].Index] {
						last = old[j]
						break
					}
				}
				kept := ins[:0]
				for _, e := range ins {
					if mathx.Precedes(e, last) {
						kept = append(kept, e)
					}
				}
				ins = kept
			}
			if len(ins) == 0 {
				if stripped == 0 {
					out.neighbors[i] = truncate(old, opts.TopN)
					continue
				}
				cp := buf.take(flen)
				for _, n := range old {
					if !changed[n.Index] {
						cp = append(cp, n)
					}
				}
				out.neighbors[i] = truncate(cp, opts.TopN)
				continue
			}
			mathx.SortScoredDesc(ins)
			want := flen + len(ins)
			if opts.TopN > 0 && want > opts.TopN {
				want = opts.TopN // everything past the cutoff is truncated anyway
			}
			merged := buf.take(want)
			a, b := 0, 0
			for len(merged) < want {
				for a < len(old) && changed[old[a].Index] {
					a++ // stripped in place: never copied, never merged
				}
				switch {
				case b >= len(ins):
					merged = append(merged, old[a])
					a++
				case a >= len(old):
					merged = append(merged, ins[b])
					b++
				case mathx.Precedes(old[a], ins[b]):
					merged = append(merged, old[a])
					a++
				default:
					merged = append(merged, ins[b])
					b++
				}
			}
			out.neighbors[i] = merged
		}
	})
	return out
}

// scoredSlab hands out fixed-capacity sub-slices from bulk allocations.
// Callers must know the final length up front: each take is capped (via
// a full slice expression) so appends beyond it reallocate instead of
// clobbering a neighbour's carve.
type scoredSlab struct {
	buf  []mathx.Scored
	used int
}

func (s *scoredSlab) take(n int) []mathx.Scored {
	if s.used+n > len(s.buf) {
		sz := 1 << 15
		if n > sz {
			sz = n
		}
		s.buf = make([]mathx.Scored, sz)
		s.used = 0
	}
	out := s.buf[s.used : s.used : s.used+n]
	s.used += n
	return out
}

// candidateScratch is the per-item accumulation state of candidateList,
// reused across the items of one worker's chunk. Only the cells recorded
// in touched are dirtied, and candidateList re-zeroes exactly those on
// its way out, so reuse never leaks state between items.
type candidateScratch struct {
	sxy, sxx, syy []float64
	co            []int32
	touched       []int32
}

func newCandidateScratch(q int) *candidateScratch {
	return &candidateScratch{
		sxy:     make([]float64, q),
		sxx:     make([]float64, q),
		syy:     make([]float64, q),
		co:      make([]int32, q),
		touched: make([]int32, 0, 256),
	}
}

// candidateList computes item a's full (untruncated) neighbour list on m,
// using the same accumulation as BuildGIS. The returned list is in
// accumulation order, not ranked: both callers either scatter it into
// dense arrays or rank it separately, and skipping the sort keeps the
// hot incremental-refresh path off the O(n log n) cost of ordering
// entries that truncation would discard anyway.
func candidateList(m *ratings.Matrix, a int, opts GISOptions, sc *candidateScratch) []mathx.Scored {
	sxy, sxx, syy, co := sc.sxy, sc.sxx, sc.syy, sc.co
	touched := sc.touched[:0]

	ma := m.ItemMean(a)
	for _, ue := range m.ItemRatings(a) {
		u := int(ue.Index)
		var da float64
		if opts.Metric == PCC {
			da = ue.Value - ma
		} else {
			da = ue.Value
		}
		for _, ie := range m.UserRatings(u) {
			b := ie.Index
			if int(b) == a {
				continue
			}
			if co[b] == 0 {
				touched = append(touched, b)
			}
			var db float64
			if opts.Metric == PCC {
				db = ie.Value - m.ItemMean(int(b))
			} else {
				db = ie.Value
			}
			sxy[b] += da * db
			sxx[b] += da * da
			syy[b] += db * db
			co[b]++
		}
	}
	out := make([]mathx.Scored, 0, len(touched))
	for _, b := range touched {
		n := int(co[b])
		if opts.MinCoRatings > 0 && n < opts.MinCoRatings {
			continue
		}
		if sxx[b] == 0 || syy[b] == 0 {
			continue
		}
		sim := sxy[b] / (math.Sqrt(sxx[b]) * math.Sqrt(syy[b]))
		sim = Significance(sim, n, opts.SignificanceGamma)
		if sim <= 0 || sim < opts.Threshold {
			continue
		}
		out = append(out, mathx.Scored{Index: b, Score: sim})
	}
	for _, b := range touched {
		sxy[b], sxx[b], syy[b], co[b] = 0, 0, 0, 0
	}
	sc.touched = touched[:0]
	return out
}

func truncate(list []mathx.Scored, topN int) []mathx.Scored {
	if topN > 0 && len(list) > topN {
		list = list[:topN]
	}
	return list
}
