package similarity

import (
	"math"
	"sort"

	"cfsf/internal/mathx"
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Refresh returns a new GIS reflecting an updated matrix in which only
// the listed items' rating columns changed (the paper's §VI future work:
// "how it can keep GIS up-to-date"). Instead of the full O(nnz · row)
// rebuild, it
//
//  1. recomputes the neighbour lists of the changed items from scratch,
//  2. strips entries pointing at changed items from every unchanged
//     item's list, and
//  3. re-inserts the symmetric pairs discovered in step 1.
//
// The result is identical to a full BuildGIS when TopN is 0 (no
// truncation). With truncation, an unchanged item's list can temporarily
// hold fewer than TopN entries: neighbours that the old truncation
// discarded cannot be resurrected without touching the full matrix. That
// is the standard staleness trade-off of incremental similarity indices;
// run a full rebuild periodically to re-fill.
func (g *GIS) Refresh(m *ratings.Matrix, changedItems []int, opts GISOptions) *GIS {
	changed := make(map[int32]bool, len(changedItems))
	for _, i := range changedItems {
		if i >= 0 && i < m.NumItems() {
			changed[int32(i)] = true
		}
	}
	q := m.NumItems()
	out := &GIS{neighbors: make([][]mathx.Scored, q), opts: opts}

	// Step 1: full candidate lists (untruncated) for changed items, so
	// symmetric insertion in step 3 is not limited by TopN.
	fullLists := make(map[int32][]mathx.Scored, len(changed))
	changedIdx := make([]int32, 0, len(changed))
	for i := range changed {
		changedIdx = append(changedIdx, i)
	}
	sort.Slice(changedIdx, func(a, b int) bool { return changedIdx[a] < changedIdx[b] })

	lists := make([][]mathx.Scored, len(changedIdx))
	parallel.For(len(changedIdx), opts.Workers, func(k int) {
		lists[k] = candidateList(m, int(changedIdx[k]), opts)
	})
	for k, i := range changedIdx {
		fullLists[i] = lists[k]
		out.neighbors[i] = truncate(lists[k], opts.TopN)
	}

	// Step 3 preparation: symmetric entries grouped by unchanged item.
	symmetric := make(map[int32][]mathx.Scored)
	for b, list := range fullLists {
		for _, n := range list {
			if changed[n.Index] {
				continue // changed↔changed pairs are already in both lists
			}
			symmetric[n.Index] = append(symmetric[n.Index], mathx.Scored{Index: b, Score: n.Score})
		}
	}

	// Steps 2+3: rebuild unchanged lists.
	for i := 0; i < q; i++ {
		if changed[int32(i)] {
			continue
		}
		var old []mathx.Scored
		if i < len(g.neighbors) {
			old = g.neighbors[i]
		}
		merged := make([]mathx.Scored, 0, len(old)+len(symmetric[int32(i)]))
		for _, n := range old {
			if !changed[n.Index] {
				merged = append(merged, n)
			}
		}
		merged = append(merged, symmetric[int32(i)]...)
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].Score != merged[b].Score {
				return merged[a].Score > merged[b].Score
			}
			return merged[a].Index < merged[b].Index
		})
		out.neighbors[i] = truncate(merged, opts.TopN)
	}
	return out
}

// candidateList computes item a's full (untruncated) neighbour list on m,
// using the same accumulation as BuildGIS.
func candidateList(m *ratings.Matrix, a int, opts GISOptions) []mathx.Scored {
	q := m.NumItems()
	sxy := make([]float64, q)
	sxx := make([]float64, q)
	syy := make([]float64, q)
	co := make([]int32, q)
	touched := make([]int32, 0, 256)

	ma := m.ItemMean(a)
	for _, ue := range m.ItemRatings(a) {
		u := int(ue.Index)
		var da float64
		if opts.Metric == PCC {
			da = ue.Value - ma
		} else {
			da = ue.Value
		}
		for _, ie := range m.UserRatings(u) {
			b := ie.Index
			if int(b) == a {
				continue
			}
			if co[b] == 0 {
				touched = append(touched, b)
			}
			var db float64
			if opts.Metric == PCC {
				db = ie.Value - m.ItemMean(int(b))
			} else {
				db = ie.Value
			}
			sxy[b] += da * db
			sxx[b] += da * da
			syy[b] += db * db
			co[b]++
		}
	}
	out := make([]mathx.Scored, 0, len(touched))
	for _, b := range touched {
		n := int(co[b])
		if opts.MinCoRatings > 0 && n < opts.MinCoRatings {
			continue
		}
		if sxx[b] == 0 || syy[b] == 0 {
			continue
		}
		sim := sxy[b] / (math.Sqrt(sxx[b]) * math.Sqrt(syy[b]))
		sim = Significance(sim, n, opts.SignificanceGamma)
		if sim <= 0 || sim < opts.Threshold {
			continue
		}
		out = append(out, mathx.Scored{Index: b, Score: sim})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out
}

func truncate(list []mathx.Scored, topN int) []mathx.Scored {
	if topN > 0 && len(list) > topN {
		list = list[:topN]
	}
	return list
}
