package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cfsf/internal/ratings"
)

// matrixFrom builds a matrix from a dense [user][item] table where 0
// means missing.
func matrixFrom(t *testing.T, table [][]float64) *ratings.Matrix {
	t.Helper()
	b := ratings.NewBuilder(len(table), len(table[0]))
	for u, row := range table {
		for i, r := range row {
			if r != 0 {
				b.MustAdd(u, i, r)
			}
		}
	}
	return b.Build()
}

func TestItemPCCPerfectCorrelation(t *testing.T) {
	// Items 0 and 1 move together across users; expect sim ≈ +1.
	m := matrixFrom(t, [][]float64{
		{1, 2, 0},
		{2, 3, 0},
		{3, 4, 0},
		{4, 5, 0},
	})
	sim, co := ItemPCC(m, 0, 1)
	if co != 4 {
		t.Fatalf("co = %d, want 4", co)
	}
	if !approx(sim, 1, 1e-9) {
		t.Errorf("sim = %g, want 1", sim)
	}
}

func TestItemPCCAntiCorrelation(t *testing.T) {
	m := matrixFrom(t, [][]float64{
		{1, 5},
		{2, 4},
		{4, 2},
		{5, 1},
	})
	sim, _ := ItemPCC(m, 0, 1)
	if !approx(sim, -1, 1e-9) {
		t.Errorf("sim = %g, want -1", sim)
	}
}

func TestItemPCCNoOverlap(t *testing.T) {
	m := matrixFrom(t, [][]float64{
		{3, 0},
		{0, 4},
	})
	sim, co := ItemPCC(m, 0, 1)
	if sim != 0 || co != 0 {
		t.Errorf("disjoint items: sim=%g co=%d, want 0,0", sim, co)
	}
}

func TestItemPCCZeroVariance(t *testing.T) {
	// Item 0 is rated identically by co-raters relative to its mean.
	m := matrixFrom(t, [][]float64{
		{3, 1},
		{3, 5},
	})
	sim, co := ItemPCC(m, 0, 1)
	if co != 2 || sim != 0 {
		t.Errorf("zero-variance item: sim=%g co=%d, want 0,2", sim, co)
	}
}

func TestUserPCCSymmetric(t *testing.T) {
	m := matrixFrom(t, [][]float64{
		{1, 2, 3, 4, 0},
		{2, 3, 4, 5, 1},
		{5, 4, 3, 2, 1},
	})
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			sab, _ := UserPCC(m, a, b)
			sba, _ := UserPCC(m, b, a)
			if !approx(sab, sba, 1e-12) {
				t.Errorf("UserPCC(%d,%d)=%g != UserPCC(%d,%d)=%g", a, b, sab, b, a, sba)
			}
		}
	}
}

func TestCosineBounds(t *testing.T) {
	m := matrixFrom(t, [][]float64{
		{1, 5, 3},
		{4, 2, 5},
		{3, 3, 3},
	})
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if s, _ := ItemCosine(m, a, b); s < -1-1e-12 || s > 1+1e-12 {
				t.Errorf("ItemCosine(%d,%d) = %g out of [-1,1]", a, b, s)
			}
			if s, _ := UserCosine(m, a, b); s < -1-1e-12 || s > 1+1e-12 {
				t.Errorf("UserCosine(%d,%d) = %g out of [-1,1]", a, b, s)
			}
		}
	}
}

// Property: PCC is always within [-1, 1] and symmetric on random sparse
// matrices.
func TestPCCBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 2+rng.Intn(8), 2+rng.Intn(8)
		b := ratings.NewBuilder(p, q)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				if rng.Float64() < 0.7 {
					b.MustAdd(u, i, float64(1+rng.Intn(5)))
				}
			}
		}
		m := b.Build()
		for a := 0; a < q; a++ {
			for c := a + 1; c < q; c++ {
				s1, co1 := ItemPCC(m, a, c)
				s2, co2 := ItemPCC(m, c, a)
				if co1 != co2 || !approx(s1, s2, 1e-9) {
					return false
				}
				if s1 < -1-1e-9 || s1 > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSignificance(t *testing.T) {
	if got := Significance(0.8, 15, 30); !approx(got, 0.4, 1e-12) {
		t.Errorf("Significance(0.8,15,30) = %g, want 0.4", got)
	}
	if got := Significance(0.8, 40, 30); got != 0.8 {
		t.Errorf("above gamma must pass through, got %g", got)
	}
	if got := Significance(0.8, 5, 0); got != 0.8 {
		t.Errorf("gamma<=0 disables weighting, got %g", got)
	}
}

func TestBuildGISAgainstPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, q := 40, 25
	b := ratings.NewBuilder(p, q)
	for u := 0; u < p; u++ {
		for i := 0; i < q; i++ {
			if rng.Float64() < 0.5 {
				b.MustAdd(u, i, float64(1+rng.Intn(5)))
			}
		}
	}
	m := b.Build()
	opts := GISOptions{Metric: PCC, TopN: 0, MinCoRatings: 2, Workers: 4}
	g := BuildGIS(m, opts)

	for a := 0; a < q; a++ {
		// Reference: brute-force pairwise.
		want := map[int32]float64{}
		for c := 0; c < q; c++ {
			if c == a {
				continue
			}
			sim, co := ItemPCC(m, a, c)
			if co >= 2 && sim > 0 {
				want[int32(c)] = sim
			}
		}
		got := g.Neighbors(a)
		if len(got) != len(want) {
			t.Fatalf("item %d: %d neighbours, want %d", a, len(got), len(want))
		}
		for _, n := range got {
			w, ok := want[n.Index]
			if !ok || !approx(n.Score, w, 1e-9) {
				t.Fatalf("item %d neighbour %d: sim %g, want %g (present=%v)", a, n.Index, n.Score, w, ok)
			}
		}
		// Descending order.
		for i := 1; i < len(got); i++ {
			if got[i-1].Score < got[i].Score {
				t.Fatalf("item %d neighbours not sorted descending", a)
			}
		}
	}
}

func TestBuildGISTopN(t *testing.T) {
	d := denseRandom(t, 30, 20, 0.8, 3)
	g := BuildGIS(d, GISOptions{Metric: PCC, TopN: 5, MinCoRatings: 2})
	for i := 0; i < d.NumItems(); i++ {
		if len(g.Neighbors(i)) > 5 {
			t.Fatalf("item %d has %d neighbours, want <= 5", i, len(g.Neighbors(i)))
		}
	}
	if g.NumItems() != 20 {
		t.Errorf("NumItems = %d, want 20", g.NumItems())
	}
}

func TestBuildGISThreshold(t *testing.T) {
	d := denseRandom(t, 30, 20, 0.8, 3)
	g := BuildGIS(d, GISOptions{Metric: PCC, Threshold: 0.5, MinCoRatings: 2})
	for i := 0; i < d.NumItems(); i++ {
		for _, n := range g.Neighbors(i) {
			if n.Score < 0.5 {
				t.Fatalf("neighbour below threshold: %g", n.Score)
			}
		}
	}
}

func TestBuildGISDeterministicAcrossWorkers(t *testing.T) {
	d := denseRandom(t, 50, 30, 0.6, 5)
	g1 := BuildGIS(d, GISOptions{Metric: PCC, TopN: 10, MinCoRatings: 2, Workers: 1})
	g8 := BuildGIS(d, GISOptions{Metric: PCC, TopN: 10, MinCoRatings: 2, Workers: 8})
	for i := 0; i < d.NumItems(); i++ {
		a, b := g1.Neighbors(i), g8.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("item %d: worker counts disagree on neighbour count", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("item %d neighbour %d: %v vs %v", i, k, a[k], b[k])
			}
		}
	}
}

func TestGISSimLookup(t *testing.T) {
	d := denseRandom(t, 30, 10, 0.9, 11)
	g := BuildGIS(d, GISOptions{Metric: PCC, MinCoRatings: 2})
	for i := 0; i < d.NumItems(); i++ {
		for _, n := range g.Neighbors(i) {
			if s, ok := g.Sim(i, int(n.Index)); !ok || s != n.Score {
				t.Fatalf("Sim(%d,%d) = %g,%v, want %g,true", i, n.Index, s, ok, n.Score)
			}
		}
	}
	if _, ok := g.Sim(0, 0); ok {
		t.Error("self-similarity must not be stored")
	}
}

func TestGISCosineMetric(t *testing.T) {
	d := denseRandom(t, 30, 15, 0.8, 13)
	g := BuildGIS(d, GISOptions{Metric: Cosine, MinCoRatings: 2})
	for a := 0; a < d.NumItems(); a++ {
		for _, n := range g.Neighbors(a) {
			want, _ := ItemCosine(d, a, int(n.Index))
			if !approx(n.Score, want, 1e-9) {
				t.Fatalf("cosine GIS (%d,%d) = %g, want %g", a, n.Index, n.Score, want)
			}
		}
	}
}

func TestMetricString(t *testing.T) {
	if PCC.String() != "pcc" || Cosine.String() != "cosine" || Metric(99).String() != "unknown" {
		t.Error("Metric.String() mismatch")
	}
}

func denseRandom(t *testing.T, p, q int, density float64, seed int64) *ratings.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := ratings.NewBuilder(p, q)
	for u := 0; u < p; u++ {
		for i := 0; i < q; i++ {
			if rng.Float64() < density {
				b.MustAdd(u, i, float64(1+rng.Intn(5)))
			}
		}
	}
	return b.Build()
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
