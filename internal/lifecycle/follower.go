// Follower-mode lifecycle: a read replica does not own a WAL or a
// snapshot schedule — it assembles a model from a leader's manifest and
// blobs, then ingests the leader's WAL records in stream order and
// applies them through the exact micro-batch machinery boot replay uses.
// The grouping rule is the same one bit-for-bit crash recovery relies
// on: a batch-commit record closes the batch of queued ratings with
// sequence <= Covered routed to its shard (every queued rating for a
// shard -1 commit), so the follower folds exactly the batches the leader
// folded, in the same order, and its model is bit-identical to the
// leader's at the same applied sequence.
//
// This file also holds the leader-side accessors the replication wire
// protocol serves from: WAL cursors, the newest manifest document, and
// validated snapshot-blob handles.
package lifecycle

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/obs"
	"cfsf/internal/ratings"
	"cfsf/internal/wal"
)

// followerState pairs the follower's serving model with its contiguous
// applied watermark, swapped atomically (the read-path contract is the
// same as the leader's modelState).
type followerState struct {
	sharded *core.ShardedModel
	seq     uint64
}

// Follower applies a leader's WAL record stream on top of a
// bootstrap-assembled model. Ingest is single-writer (one stream
// goroutine); the read accessors are safe from any goroutine.
type Follower struct {
	logf func(format string, args ...any) //cfsf:immutable
	reg  *obs.Registry                    //cfsf:immutable

	state atomic.Pointer[followerState]

	mu         sync.Mutex
	queued     []pendingUpdate //cfsf:guarded-by mu // journaled-but-unapplied ratings, stream order
	received   uint64          //cfsf:guarded-by mu // highest record sequence ingested (any type)
	lastRating uint64          //cfsf:guarded-by mu // highest rating sequence ingested
	oldestAt   time.Time       //cfsf:guarded-by mu // arrival of the oldest still-queued rating

	mApplied   *obs.Counter
	mBatches   *obs.Counter
	mApplyErrs *obs.Counter
}

// NewFollower returns an applier with no model; Reset must install a
// bootstrap point before Ingest or Model are used.
func NewFollower(reg *obs.Registry, logf func(format string, args ...any)) *Follower {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Follower{
		logf:       logf,
		reg:        reg,
		mApplied:   reg.Counter("follower_applied_total"),
		mBatches:   reg.Counter("follower_batches_total"),
		mApplyErrs: reg.Counter("follower_apply_errors_total"),
	}
}

// Reset installs a freshly bootstrapped model covering every rating with
// sequence <= seq, discarding any queued tail (a re-bootstrap lands on a
// newer snapshot, which already folds whatever was queued).
//
//cfsf:wallclock-ok arrival times feed the lag estimate only; apply grouping comes from journaled commit records
func (f *Follower) Reset(mod *core.Model, seq uint64) {
	f.mu.Lock()
	f.queued = nil
	f.received = seq
	f.lastRating = seq
	f.oldestAt = time.Time{}
	f.mu.Unlock()
	f.state.Store(&followerState{sharded: core.NewSharded(mod), seq: seq})
}

// Ingest folds one streamed WAL record: ratings queue, batch commits cut
// and apply exactly the leader's batch, checkpoints only advance the
// cursor. Records at or below the already-ingested position (a reconnect
// overlap) are skipped.
//
//cfsf:wallclock-ok arrival times feed the lag estimate only; apply grouping comes from journaled commit records
func (f *Follower) Ingest(rec wal.Record) error {
	switch rec.Type {
	case wal.RecordRating:
		f.mu.Lock()
		if rec.Seq <= f.received {
			f.mu.Unlock()
			return nil
		}
		f.received = rec.Seq
		f.lastRating = rec.Seq
		if len(f.queued) == 0 {
			f.oldestAt = time.Now()
		}
		f.queued = append(f.queued, pendingUpdate{seq: rec.Seq, u: rec.Update, shard: rec.Shard})
		f.mu.Unlock()
		return nil
	case wal.RecordBatchCommit:
		return f.applyCommit(rec)
	case wal.RecordCheckpoint:
		f.mu.Lock()
		if rec.Seq > f.received {
			f.received = rec.Seq
		}
		f.mu.Unlock()
		return nil
	}
	return fmt.Errorf("lifecycle: follower: unknown record type %d at seq %d", rec.Type, rec.Seq)
}

// applyCommit cuts the commit's batch from the queue — the same
// sequence-and-shard rule boot replay uses — and folds it into the
// serving model.
func (f *Follower) applyCommit(rec wal.Record) error {
	f.mu.Lock()
	if rec.Seq <= f.received {
		f.mu.Unlock()
		return nil
	}
	f.received = rec.Seq
	var batch []core.RatingUpdate
	kept := f.queued[:0]
	for _, p := range f.queued {
		if p.seq <= rec.Covered && (rec.Shard < 0 || p.shard == rec.Shard) {
			batch = append(batch, p.u)
		} else {
			kept = append(kept, p)
		}
	}
	f.queued = kept
	f.mu.Unlock()

	if len(batch) == 0 {
		// A commit wholly covered by the bootstrap snapshot (its ratings
		// were already folded into the assembled model); also updates the
		// watermark when the queue just drained.
		f.storeWatermark()
		return nil
	}
	st := f.state.Load()
	if st == nil {
		return fmt.Errorf("lifecycle: follower: commit at seq %d before any bootstrap", rec.Seq)
	}
	next, _, err := applyWithFallback(st.sharded, batch, f.logf, f.mApplyErrs)
	if err != nil {
		return fmt.Errorf("lifecycle: follower: apply batch through seq %d: %w", rec.Covered, err)
	}
	f.mApplied.Add(int64(len(batch)))
	f.mBatches.Inc()
	f.storeSharded(next)
	return nil
}

// storeSharded publishes a new model at the current contiguous
// watermark.
func (f *Follower) storeSharded(sm *core.ShardedModel) {
	f.mu.Lock()
	seq := f.watermarkLocked()
	f.mu.Unlock()
	f.state.Store(&followerState{sharded: sm, seq: seq})
}

// storeWatermark republishes the current model at a possibly advanced
// watermark (the queue shrank without the model changing).
func (f *Follower) storeWatermark() {
	st := f.state.Load()
	if st == nil {
		return
	}
	f.mu.Lock()
	seq := f.watermarkLocked()
	f.mu.Unlock()
	if seq != st.seq {
		f.state.Store(&followerState{sharded: st.sharded, seq: seq})
	}
}

// watermarkLocked computes the contiguous applied watermark: every
// rating at or below it is folded in. Mirrors the leader's rule — the
// oldest queued rating bounds it; with an empty queue it is the last
// rating sequence ingested.
//
//cfsf:locked mu callers hold it
func (f *Follower) watermarkLocked() uint64 {
	if len(f.queued) > 0 {
		return f.queued[0].seq - 1
	}
	return f.lastRating
}

// Model returns the follower's currently served model (nil before the
// first Reset).
func (f *Follower) Model() *core.Model {
	if st := f.state.Load(); st != nil {
		return st.sharded.Model()
	}
	return nil
}

// Sharded returns the follower's current sharded model (nil before the
// first Reset).
func (f *Follower) Sharded() *core.ShardedModel {
	if st := f.state.Load(); st != nil {
		return st.sharded
	}
	return nil
}

// AppliedSeq returns the contiguous applied watermark.
func (f *Follower) AppliedSeq() uint64 {
	if st := f.state.Load(); st != nil {
		return st.seq
	}
	return 0
}

// Cursor returns the stream resume position: the highest record sequence
// already ingested (queued ratings included — they survive a reconnect
// in memory).
func (f *Follower) Cursor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.received
}

// QueueLen returns how many ingested ratings await their batch commit.
func (f *Follower) QueueLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queued)
}

// OldestQueuedAge estimates how long the oldest unapplied rating has
// been waiting (zero with an empty queue) — the wall-clock component of
// replication lag.
//
//cfsf:wallclock-ok lag estimate only; never feeds applied state
func (f *Follower) OldestQueuedAge() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.queued) == 0 {
		return 0
	}
	return time.Since(f.oldestAt)
}

// AssembleRemotePoint reassembles a model from a manifest document plus
// a blob-fetch function — the follower bootstrap path, where the blobs
// come from the leader's snapshot endpoints instead of local disk. It
// returns the model and the watermark the manifest covers. Unlike boot's
// loadManifestPoint there is no shard-patching fallback: a follower that
// cannot fetch a consistent blob set simply retries (the leader's next
// snapshot supersedes the torn one).
func AssembleRemotePoint(manifestJSON []byte, fetch func(name string) ([]byte, error)) (*core.Model, uint64, error) {
	man, err := parseManifest(manifestJSON, "remote")
	if err != nil {
		return nil, 0, err
	}
	sharedData, err := fetch(man.Shared.File)
	if err != nil {
		return nil, 0, fmt.Errorf("fetch shared blob %s: %w", man.Shared.File, err)
	}
	sp, err := core.LoadSharedPart(bytes.NewReader(sharedData))
	if err != nil {
		return nil, 0, fmt.Errorf("shared blob %s: %w", man.Shared.File, err)
	}
	if sp.NumUsers != man.Users || sp.NumItems != man.Items {
		return nil, 0, fmt.Errorf("shared blob %s is %dx%d, manifest says %dx%d",
			man.Shared.File, sp.NumUsers, sp.NumItems, man.Users, man.Items)
	}
	if sp.NumShards() != len(man.Shards) {
		return nil, 0, fmt.Errorf("shared blob %s has %d shards, manifest lists %d",
			man.Shared.File, sp.NumShards(), len(man.Shards))
	}
	rows := make([][]ratings.Entry, sp.NumUsers)
	var times [][]int64
	if sp.HasTimes {
		times = make([][]int64, sp.NumUsers)
	}
	for _, ref := range man.Shards {
		data, ferr := fetch(ref.File)
		if ferr != nil {
			return nil, 0, fmt.Errorf("fetch shard blob %s: %w", ref.File, ferr)
		}
		part, perr := core.LoadShardPart(bytes.NewReader(data))
		if perr == nil {
			perr = checkShardPart(part, ref, sp)
		}
		if perr != nil {
			return nil, 0, fmt.Errorf("shard %d blob %s: %w", ref.ID, ref.File, perr)
		}
		for j, u := range part.Users {
			rows[u] = part.Rows[j]
			if sp.HasTimes && part.Times != nil {
				times[u] = part.Times[j]
			}
		}
	}
	mod, err := core.AssembleModel(sp, rows, times)
	if err != nil {
		return nil, 0, err
	}
	return mod, man.Seq, nil
}

// --- leader-side accessors for the replication wire protocol ---

// NewWALCursor returns a streaming cursor over the manager's WAL
// delivering every record with sequence > afterSeq; it fails with
// wal.ErrRebootstrap when that position is no longer batch-exactly
// streamable (the caller maps it to the re-bootstrap signal).
func (m *Manager) NewWALCursor(afterSeq uint64) (*wal.Cursor, error) {
	return m.w.NewCursor(afterSeq)
}

// WALAppendSignal exposes the WAL's append notification for tail
// followers: the channel is closed by the next append, and the returned
// sequence is the log end at the time of the call.
func (m *Manager) WALAppendSignal() (<-chan struct{}, uint64) {
	return m.w.AppendSignal()
}

// WALAvailableFrom exposes the WAL's contiguous-stream floor (the 410
// payload tells a behind follower where serveability starts).
func (m *Manager) WALAvailableFrom() uint64 { return m.w.AvailableFrom() }

// WALDedupedBelow exposes the WAL's compaction dedupe horizon.
func (m *Manager) WALDedupedBelow() uint64 { return m.w.DedupedBelow() }

// NewestManifest returns the newest loadable manifest document and the
// watermark it covers. Retention can delete a point between listing and
// reading; such a point is skipped in favour of an older one, exactly as
// the boot ladder does.
func (m *Manager) NewestManifest() (data []byte, seq uint64, err error) {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil {
		return nil, 0, err
	}
	for _, pt := range points {
		if !pt.manifest {
			continue
		}
		data, rerr := os.ReadFile(pt.path)
		if rerr != nil {
			continue
		}
		if _, perr := parseManifest(data, filepath.Base(pt.path)); perr != nil {
			continue
		}
		return data, pt.seq, nil
	}
	return nil, 0, fmt.Errorf("lifecycle: no loadable manifest in %s", m.cfg.DataDir)
}

// OpenSnapshotBlob opens one snapshot blob by its manifest-referenced
// name. The name must be a bare blob file name (no path separators) —
// the same validation manifests pass — so a remote caller cannot read
// outside the snapshot directory.
func (m *Manager) OpenSnapshotBlob(name string) (*os.File, error) {
	if !isBlobName(name) {
		return nil, fmt.Errorf("lifecycle: %q is not a snapshot blob name", name)
	}
	return os.Open(filepath.Join(snapshotDir(m.cfg.DataDir), name))
}
