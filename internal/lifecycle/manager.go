// Package lifecycle owns the serving model end to end: it journals every
// incoming rating to a write-ahead log before acknowledging it, routes
// queued ratings to the model shard (= user cluster) they touch, folds
// them in per-shard micro-batches — a batch confined to one shard pays a
// shard-local core.ShardedModel.Apply instead of the monolithic O(nnz)
// rebuild — rotates atomic snapshots so restarts are fast, and schedules
// the background retrain that internal/core/update.go's drift caveat
// asks for, either as a per-shard sweep (RetrainMode "shards") or as the
// legacy stop-the-world KMeans pass ("full").
//
// Data-dir layout:
//
//	<dir>/wal/seg-<firstSeq>.wal    append-only rating journal (internal/wal)
//	<dir>/snapshots/snap-<seq>.gob  model snapshots; <seq> is the last
//	                                rating sequence the snapshot covers
//
// Boot loads the newest loadable snapshot — unreadable or
// unknown-version files are skipped in favour of older ones — or calls
// the bootstrap function when none loads, then replays the WAL tail past
// the snapshot's sequence. Each rating record carries the shard it was
// routed to and each batch-commit record the shard it was applied on, so
// replay regroups ratings into exactly the per-shard micro-batches the
// previous process applied and the recovered model is bit-for-bit
// identical. A fresh snapshot is then written so the next boot replays
// nothing — but only after it passes a load-and-predict self-check; a
// snapshot that cannot be read back and reproduce the serving model's
// predictions never prunes the WAL it claims to cover.
package lifecycle

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/obs"
	"cfsf/internal/wal"
)

// Config tunes a Manager. The zero value of each field selects the
// default noted on it; DataDir is required.
type Config struct {
	// DataDir is the durability root; created if missing.
	DataDir string
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncInterval is the background flush cadence under
	// wal.SyncInterval. <= 0 means 100ms.
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation size (wal.Options).
	SegmentBytes int64

	// BatchMaxSize caps how many queued ratings one WithUpdates call
	// folds in. <= 0 means 256.
	BatchMaxSize int
	// BatchMaxWait, when > 0, delays each apply by this long so more
	// ratings coalesce into the batch. The default 0 is greedy: the
	// apply loop drains whatever is queued the moment it is free, so
	// batching emerges from backpressure without added latency.
	BatchMaxWait time.Duration
	// QueueCapacity bounds the unapplied-rating queue; Submit returns
	// ErrQueueFull beyond it. <= 0 means 4096.
	QueueCapacity int
	// ApplyMode selects how applyPending cuts batches from the queue:
	// ApplySerial (the default) cuts one shard's micro-batch at a time;
	// ApplyConcurrent cuts a contiguous multi-shard prefix — up to
	// BatchMaxSize ratings per shard — and folds it in a single Apply,
	// so the rebuild work of every shard the prefix touches runs in the
	// same parallel pass instead of one shard after another. Either way
	// the commit record journaled after the swap makes crash replay
	// regroup the exact same batches, bit for bit.
	ApplyMode string

	// SnapshotEvery, when > 0, snapshots the model in the background at
	// this cadence (skipped when nothing changed since the last one).
	SnapshotEvery time.Duration
	// SnapshotKeep is how many snapshot files to retain. <= 0 means 2.
	SnapshotKeep int

	// RetrainAfter, when > 0, triggers a background retrain once this
	// many ratings have been applied since the last retrain.
	RetrainAfter int
	// RetrainMode selects what a background retrain does: "shards" (the
	// default) rebuilds the shared GIS and then re-fits one shard at a
	// time (core.ShardedModel.RetrainShard swept across every shard);
	// "full" is the legacy stop-the-world core.Train pass.
	RetrainMode string
	// TrainConfig, when non-nil, is the configuration for "full"-mode
	// background retrains; nil reuses the serving model's own
	// configuration. "shards" mode keeps the serving configuration.
	TrainConfig *core.Config

	// SkipSnapshotVerify disables the load-and-predict self-check that
	// every written snapshot must pass before it is checkpointed and the
	// WAL it covers pruned. Only tests (and operators who prefer faster
	// snapshots over the read-back guarantee) should set it.
	SkipSnapshotVerify bool

	// Registry receives wal/lifecycle metrics; one is created when nil.
	Registry *obs.Registry
	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 256
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 4096
	}
	if c.SnapshotKeep <= 0 {
		c.SnapshotKeep = 2
	}
	if c.RetrainMode == "" {
		c.RetrainMode = RetrainShards
	}
	if c.ApplyMode == "" {
		c.ApplyMode = ApplySerial
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RetrainMode values for Config.RetrainMode.
const (
	RetrainShards = "shards"
	RetrainFull   = "full"
)

// ApplyMode values for Config.ApplyMode.
const (
	ApplySerial     = "serial"
	ApplyConcurrent = "concurrent"
)

// ErrQueueFull is returned by Submit when the unapplied-rating queue is
// at capacity; callers should shed load (the server maps it to 503).
var ErrQueueFull = fmt.Errorf("lifecycle: update queue full")

// ErrClosed is returned by Submit after Close or Abort.
var ErrClosed = fmt.Errorf("lifecycle: manager closed")

// modelState pairs the serving model with its WAL position, swapped
// atomically. seq is the contiguous applied watermark: every rating with
// sequence <= seq is folded in. complete additionally means *only* those
// ratings are folded in — per-shard batching can apply a later-sequence
// rating while an earlier one (bound for another shard) still queues, and
// such a mid-drain model must never be snapshotted: a snapshot labelled
// with the watermark would double-apply the later rating on replay.
type modelState struct {
	sharded  *core.ShardedModel
	seq      uint64
	complete bool
}

type pendingUpdate struct {
	seq   uint64
	u     core.RatingUpdate
	shard int // routing decision recorded in the WAL, reused for batching
}

// BootStats reports what Open did to reach the serving model.
type BootStats struct {
	// SnapshotLoaded is the snapshot file the boot started from ("" when
	// the bootstrap function trained the base model).
	SnapshotLoaded string
	// SnapshotSeq is the rating sequence that snapshot covered.
	SnapshotSeq uint64
	// ReplayedRecords is how many WAL ratings were folded in on top.
	ReplayedRecords int
	// ReplayedBatches is how many WithUpdates calls the replay took
	// (grouped by the batch-commit records of the previous run).
	ReplayedBatches int
	// TornBytes is the size of the torn WAL tail dropped, if any.
	TornBytes int64
}

// SnapshotInfo describes one completed snapshot.
type SnapshotInfo struct {
	Path       string        `json:"path"`
	CoveredSeq uint64        `json:"covered_seq"`
	Bytes      int64         `json:"bytes"`
	Duration   time.Duration `json:"-"`
	// Skipped is true when nothing changed since the last snapshot and
	// no file was written.
	Skipped bool `json:"skipped,omitempty"`
}

// Manager owns the serving model, its WAL, and its snapshot/retrain
// schedule. All exported methods are safe for concurrent use.
type Manager struct {
	cfg   Config        //cfsf:immutable
	reg   *obs.Registry //cfsf:immutable
	w     *wal.WAL      //cfsf:immutable
	state atomic.Pointer[modelState]
	boot  BootStats //cfsf:immutable

	mu      sync.Mutex      // guards pending/maxSeq and orders WAL appends with enqueueing
	pending []pendingUpdate //cfsf:guarded-by mu
	maxSeq  uint64          //cfsf:guarded-by mu // highest rating sequence ever enqueued

	kick    chan struct{}
	stopc   chan struct{} // Close: drain then exit
	abortc  chan struct{} // Abort: exit immediately
	done    chan struct{}
	closing atomic.Bool

	snapMu       sync.Mutex  // serialises snapshot writes
	snapForce    atomic.Bool // a retrain swapped the model without advancing seq
	retrainReq   chan string // requested RetrainMode ("" = configured default)
	retrainc     chan retrainResult
	retraining   bool                // run-loop state: a retrain goroutine is in flight
	sinceRetrain []core.RatingUpdate // run-loop state: updates applied while retraining
	driftCount   int                 // run-loop state: updates applied since last full train

	// metrics held once (Registry lookups lock a map)
	mAppendLat   *obs.Histogram
	mApplyLat    *obs.Histogram
	mBatchSize   *obs.Histogram
	mSnapLat     *obs.Histogram
	mRetrainLat  *obs.Histogram
	mApplied     *obs.Counter
	mBatches     *obs.Counter
	mApplyErrs   *obs.Counter
	mQueueFull   *obs.Counter
	mSnapshots   *obs.Counter
	mRetrains    *obs.Counter
	mRetrainErrs *obs.Counter
	mPending     *obs.Gauge
	mApplyLag    *obs.Gauge
}

type retrainResult struct {
	sharded  *core.ShardedModel
	err      error
	duration time.Duration
}

// Open builds the serving model from the data directory — newest
// snapshot plus WAL-tail replay, or bootstrap() when no snapshot exists —
// takes a fresh snapshot if anything was replayed, and starts the
// manager loop.
func Open(bootstrap func() (*core.Model, error), cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("lifecycle: DataDir is required")
	}
	if cfg.RetrainMode != RetrainShards && cfg.RetrainMode != RetrainFull {
		return nil, fmt.Errorf("lifecycle: unknown retrain mode %q (want %q or %q)",
			cfg.RetrainMode, RetrainShards, RetrainFull)
	}
	if cfg.ApplyMode != ApplySerial && cfg.ApplyMode != ApplyConcurrent {
		return nil, fmt.Errorf("lifecycle: unknown apply mode %q (want %q or %q)",
			cfg.ApplyMode, ApplySerial, ApplyConcurrent)
	}
	if err := os.MkdirAll(snapshotDir(cfg.DataDir), 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: create snapshot dir: %w", err)
	}
	w, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Sync:         cfg.Fsync,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	m := &Manager{
		cfg:        cfg,
		reg:        cfg.Registry,
		w:          w,
		kick:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		abortc:     make(chan struct{}),
		done:       make(chan struct{}),
		retrainReq: make(chan string, 1),
		// Buffered so the retrain goroutine can finish even if the loop
		// is gone (Abort) — it must never block forever on send.
		retrainc: make(chan retrainResult, 1),
	}
	m.bindMetrics()

	if err := m.bootModel(bootstrap); err != nil {
		_ = w.Close()
		return nil, err
	}

	ws := w.Stats()
	m.boot.TornBytes = ws.TornBytes
	m.reg.Counter("wal_torn_bytes_dropped_total").Add(ws.TornBytes)
	m.reg.Counter("wal_replayed_records_total").Add(int64(m.boot.ReplayedRecords))
	m.reg.Counter("wal_replayed_batches_total").Add(int64(m.boot.ReplayedBatches))
	m.publishModelGauges()

	go m.run()
	return m, nil
}

func (m *Manager) bindMetrics() {
	r := m.reg
	m.mAppendLat = r.Histogram("wal_append_latency_ms", nil)
	m.mApplyLat = r.Histogram("lifecycle_apply_latency_ms", nil)
	m.mBatchSize = r.Histogram("lifecycle_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	m.mSnapLat = r.Histogram("lifecycle_snapshot_duration_ms", nil)
	m.mRetrainLat = r.Histogram("lifecycle_retrain_duration_ms", nil)
	m.mApplied = r.Counter("lifecycle_applied_total")
	m.mBatches = r.Counter("lifecycle_batches_total")
	m.mApplyErrs = r.Counter("lifecycle_apply_errors_total")
	m.mQueueFull = r.Counter("lifecycle_queue_full_total")
	m.mSnapshots = r.Counter("lifecycle_snapshots_total")
	m.mRetrains = r.Counter("lifecycle_retrains_total")
	m.mRetrainErrs = r.Counter("lifecycle_retrain_errors_total")
	m.mPending = r.Gauge("lifecycle_pending")
	m.mApplyLag = r.Gauge("lifecycle_apply_lag")
}

func snapshotDir(dataDir string) string { return filepath.Join(dataDir, "snapshots") }

const (
	snapPrefix = "snap-"
	snapSuffix = ".gob"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

type snapshotFile struct {
	path string
	seq  uint64
}

// listSnapshots returns every snapshot file in the data dir, newest
// (highest covered sequence) first.
func listSnapshots(dataDir string) ([]snapshotFile, error) {
	entries, err := os.ReadDir(snapshotDir(dataDir))
	if err != nil {
		return nil, err
	}
	var snaps []snapshotFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var s uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), "%016x", &s); err != nil {
			continue
		}
		snaps = append(snaps, snapshotFile{path: filepath.Join(snapshotDir(dataDir), name), seq: s})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	return snaps, nil
}

// latestSnapshot returns the newest snapshot file and the sequence it
// covers, or "" when none exists.
func latestSnapshot(dataDir string) (path string, seq uint64, err error) {
	snaps, err := listSnapshots(dataDir)
	if err != nil || len(snaps) == 0 {
		return "", 0, err
	}
	return snaps[0].path, snaps[0].seq, nil
}

// bootModel establishes the serving model: snapshot or bootstrap, then
// WAL-tail replay grouped by the previous run's batch-commit records.
//
//cfsf:wallclock-ok boot duration recorded in BootStats only; replay regroups batches by journaled commit records, never by time
//cfsf:init-only runs from Open before the manager is returned or the run loop starts
//cfsf:locked mu same: nothing else can touch the manager during boot
func (m *Manager) bootModel(bootstrap func() (*core.Model, error)) error {
	snaps, err := listSnapshots(m.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("lifecycle: list snapshots: %w", err)
	}
	// Try snapshots newest-first: a file that cannot be decoded — torn by
	// the filesystem, or written by a newer build whose wire version this
	// binary rejects — is skipped in favour of the next older one. The
	// WAL needed to catch up from an older snapshot is still present
	// because segments are only pruned once a *verified* snapshot covers
	// them.
	var base *core.Model
	var baseSeq uint64
	hadSnapshot := false
	for _, s := range snaps {
		t := time.Now()
		mod, lerr := core.LoadFile(s.path)
		if lerr != nil {
			m.reg.Counter("lifecycle_snapshot_load_failures_total").Inc()
			m.cfg.Logf("lifecycle: snapshot %s unusable (%v); trying an older one", filepath.Base(s.path), lerr)
			continue
		}
		m.cfg.Logf("lifecycle: loaded snapshot %s (covers seq %d) in %v",
			filepath.Base(s.path), s.seq, time.Since(t).Round(time.Millisecond))
		base, baseSeq, hadSnapshot = mod, s.seq, true
		m.boot.SnapshotLoaded = s.path
		m.boot.SnapshotSeq = s.seq
		break
	}
	if !hadSnapshot {
		if bootstrap == nil {
			return fmt.Errorf("lifecycle: no loadable snapshot in %s and no bootstrap function", m.cfg.DataDir)
		}
		base, err = bootstrap()
		if err != nil {
			return fmt.Errorf("lifecycle: bootstrap model: %w", err)
		}
	}

	// Replay the tail, regrouping ratings into the batches the previous
	// process applied. A commit record covers ratings up to its Covered
	// sequence only — ratings for the *next* batch may already sit ahead
	// of it in the file (appends and commits interleave), so the split is
	// by sequence, not by position. A commit that carries a shard id
	// closes a per-shard batch: only queued ratings *routed to that
	// shard* are in it; ratings bound for other shards stay queued for
	// their own commits. Legacy commits (shard -1) cover every queued
	// rating, the pre-sharding batching. Ratings past the final commit
	// were journaled but possibly never applied; they form one final
	// batch.
	cur := core.NewSharded(base)
	var queued []pendingUpdate
	lastSeq := baseSeq
	applyThrough := func(covered uint64, shard int) error {
		batch := make([]core.RatingUpdate, 0, len(queued))
		kept := queued[:0]
		for _, p := range queued {
			if p.seq <= covered && (shard < 0 || p.shard == shard) {
				batch = append(batch, p.u)
			} else {
				kept = append(kept, p)
			}
		}
		if len(batch) == 0 {
			return nil
		}
		queued = kept
		next, err := m.applyUpdates(cur, batch)
		if err != nil {
			return fmt.Errorf("lifecycle: replay batch through seq %d: %w", covered, err)
		}
		cur = next
		m.boot.ReplayedBatches++
		return nil
	}
	err = m.w.Replay(baseSeq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordRating:
			queued = append(queued, pendingUpdate{seq: rec.Seq, u: rec.Update, shard: rec.Shard})
			lastSeq = rec.Seq
			m.boot.ReplayedRecords++
		case wal.RecordBatchCommit:
			return applyThrough(rec.Covered, rec.Shard)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := applyThrough(lastSeq, -1); err != nil {
		return err
	}

	m.maxSeq = maxU64(baseSeq, lastSeq)
	m.state.Store(&modelState{sharded: cur, seq: m.maxSeq, complete: true})

	// Re-anchor durability: after any replay (or a first boot with no
	// snapshot at all) write a snapshot so the next boot starts from a
	// clean point — and so recovery no longer depends on the bootstrap
	// function reproducing the base model exactly.
	if m.boot.ReplayedRecords > 0 || !hadSnapshot {
		if _, err := m.Snapshot(); err != nil {
			return fmt.Errorf("lifecycle: boot snapshot: %w", err)
		}
	}
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// applyUpdates folds updates into the sharded model, falling back to
// per-update application when the batch fails as a whole so one
// malformed update cannot wedge the log (bad updates are counted and
// dropped).
func (m *Manager) applyUpdates(sm *core.ShardedModel, updates []core.RatingUpdate) (*core.ShardedModel, error) {
	next, err := sm.Apply(updates)
	if err == nil {
		return next, nil
	}
	m.cfg.Logf("lifecycle: batch of %d failed (%v); retrying per update", len(updates), err)
	cur := sm
	for _, u := range updates {
		n, uerr := cur.Apply([]core.RatingUpdate{u})
		if uerr != nil {
			m.mApplyErrs.Inc()
			m.cfg.Logf("lifecycle: dropping unappliable update (%d,%d)=%g: %v", u.User, u.Item, u.Value, uerr)
			continue
		}
		cur = n
	}
	return cur, nil
}

// Model returns the currently served model.
func (m *Manager) Model() *core.Model { return m.state.Load().sharded.Model() }

// ShardStats returns the per-shard view of the serving model: user and
// rating counts plus apply/retrain activity for every shard.
func (m *Manager) ShardStats() []core.ShardStats { return m.state.Load().sharded.ShardStats() }

// AppliedSeq returns the contiguous applied watermark: every rating with
// a WAL sequence at or below it is folded into the serving model.
func (m *Manager) AppliedSeq() uint64 { return m.state.Load().seq }

// Pending returns the number of journaled-but-unapplied ratings.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// ApplyLag returns the gap between the newest journaled rating sequence
// and the contiguous applied watermark — how far the serving model trails
// the WAL. 0 means every acknowledged rating is folded in; a value that
// grows without bound under steady traffic means the apply loop cannot
// keep up with the submission rate (the loadgen steady scenario asserts
// it drains).
func (m *Manager) ApplyLag() uint64 {
	st := m.state.Load()
	m.mu.Lock()
	maxSeq := m.maxSeq
	m.mu.Unlock()
	if maxSeq <= st.seq {
		return 0
	}
	return maxSeq - st.seq
}

// BootStats reports how the serving model was reconstructed at Open.
func (m *Manager) BootStats() BootStats { return m.boot }

// WALStats exposes the journal's current shape (segment count, last
// sequence, torn bytes dropped at open).
func (m *Manager) WALStats() wal.OpenStats { return m.w.Stats() }

// Submit journals one rating (durable per the fsync policy once this
// returns), routed to the shard its user belongs to, and queues it for
// that shard's next micro-batch. It returns the rating's WAL sequence
// and how many ratings are now pending.
//
//cfsf:wallclock-ok append latency feeds the wal_append_ms histogram only
func (m *Manager) Submit(u core.RatingUpdate) (seq uint64, pending int, err error) {
	if m.closing.Load() {
		return 0, 0, ErrClosed
	}
	shard := m.state.Load().sharded.ShardOf(u.User)
	m.mu.Lock()
	if len(m.pending) >= m.cfg.QueueCapacity {
		m.mu.Unlock()
		m.mQueueFull.Inc()
		return 0, 0, ErrQueueFull
	}
	t := time.Now()
	seq, err = m.w.AppendRating(u, shard)
	if err != nil {
		m.mu.Unlock()
		return 0, 0, err
	}
	m.mAppendLat.Observe(durMS(time.Since(t)))
	m.pending = append(m.pending, pendingUpdate{seq: seq, u: u, shard: shard})
	m.maxSeq = seq
	pending = len(m.pending)
	m.mu.Unlock()

	m.mPending.Set(float64(pending))
	m.mApplyLag.Set(float64(m.ApplyLag()))
	select {
	case m.kick <- struct{}{}:
	default:
	}
	return seq, pending, nil
}

// SubmitBatch journals a batch of ratings as one WAL append group — a
// single write and, under SyncAlways, a single fsync for the whole
// request — then routes each rating to its shard's queue. It returns the
// per-rating WAL sequences (in batch order) and the pending count. The
// batch is all-or-nothing at the queue: if it would overflow
// QueueCapacity, nothing is journaled and ErrQueueFull is returned.
//
//cfsf:wallclock-ok append latency feeds the wal_append_ms histogram only
func (m *Manager) SubmitBatch(ups []core.RatingUpdate) (seqs []uint64, pending int, err error) {
	if m.closing.Load() {
		return nil, 0, ErrClosed
	}
	if len(ups) == 0 {
		return nil, m.Pending(), nil
	}
	st := m.state.Load()
	shards := make([]int, len(ups))
	for i, u := range ups {
		shards[i] = st.sharded.ShardOf(u.User)
	}
	m.mu.Lock()
	if len(m.pending)+len(ups) > m.cfg.QueueCapacity {
		m.mu.Unlock()
		m.mQueueFull.Inc()
		return nil, 0, ErrQueueFull
	}
	t := time.Now()
	seqs, err = m.w.AppendRatings(ups, shards)
	if err != nil {
		m.mu.Unlock()
		return nil, 0, err
	}
	m.mAppendLat.Observe(durMS(time.Since(t)))
	for i, u := range ups {
		m.pending = append(m.pending, pendingUpdate{seq: seqs[i], u: u, shard: shards[i]})
	}
	m.maxSeq = seqs[len(seqs)-1]
	pending = len(m.pending)
	m.mu.Unlock()

	m.mPending.Set(float64(pending))
	m.mApplyLag.Set(float64(m.ApplyLag()))
	select {
	case m.kick <- struct{}{}:
	default:
	}
	return seqs, pending, nil
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// run is the manager loop: it owns every model swap.
func (m *Manager) run() {
	defer close(m.done)

	var syncC, snapC <-chan time.Time
	if m.cfg.Fsync == wal.SyncInterval {
		t := time.NewTicker(m.cfg.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if m.cfg.SnapshotEvery > 0 {
		t := time.NewTicker(m.cfg.SnapshotEvery)
		defer t.Stop()
		snapC = t.C
	}

	for {
		//cfsf:select-ok only the run loop mutates state, and every apply is journaled with a batch-commit record before the next pick, so replay regroups identically whatever order cases fire
		select {
		case <-m.abortc:
			return
		case <-m.stopc:
			m.applyPending()
			if m.retraining {
				// Let the in-flight retrain finish so its goroutine does
				// not leak; discard the result — Close snapshots the
				// serving model anyway.
				res := <-m.retrainc
				_ = res
			}
			return
		case <-m.kick:
			if m.cfg.BatchMaxWait > 0 {
				time.Sleep(m.cfg.BatchMaxWait) // let a batch coalesce
			}
			m.applyPending()
		case <-syncC:
			if err := m.w.Sync(); err != nil {
				m.cfg.Logf("lifecycle: interval fsync: %v", err)
			}
		case <-snapC:
			go func() {
				if _, err := m.Snapshot(); err != nil {
					m.cfg.Logf("lifecycle: scheduled snapshot: %v", err)
				}
			}()
		case mode := <-m.retrainReq:
			if !m.retraining {
				if mode == "" {
					mode = m.cfg.RetrainMode
				}
				m.startRetrain(mode)
			}
		case res := <-m.retrainc:
			m.finishRetrain(res)
		}
	}
}

// applyPending drains the queue one batch per round. In ApplySerial
// mode each round cuts up to BatchMaxSize pending ratings routed to the
// shard at the head of the queue (oldest first), so a burst confined to
// one user cluster rebuilds only that shard's structures. In
// ApplyConcurrent mode each round cuts a contiguous multi-shard prefix
// — admitting entries from the head until one shard would exceed
// BatchMaxSize — and folds it in a single Apply, so every touched
// shard's rebuild runs inside the same parallel pass. The served model
// is swapped once per batch and a batch-commit record is journaled
// after each swap: a per-shard commit carries its shard id, a grouped
// commit carries shard -1 (which replay already reads as "every queued
// rating at or below Covered" — the exact prefix, since the prefix is
// contiguous in sequence order). Either way crash-replay regroups the
// exact same batches.
//
//cfsf:wallclock-ok apply latency feeds the apply_ms histogram only; batch boundaries come from the queue, not the clock
func (m *Manager) applyPending() {
	for {
		m.mu.Lock()
		if len(m.pending) == 0 {
			m.mu.Unlock()
			m.mPending.Set(0)
			// A forced snapshot (post-retrain) that arrived mid-drain was
			// deferred until the model was complete again; retry it now.
			if m.snapForce.Load() {
				go func() {
					if _, err := m.Snapshot(); err != nil {
						m.cfg.Logf("lifecycle: deferred snapshot: %v", err)
					}
				}()
			}
			return
		}
		var batch []pendingUpdate
		shard := m.pending[0].shard
		if m.cfg.ApplyMode == ApplyConcurrent {
			// Grouped contiguous prefix: stop before the first entry whose
			// shard already contributed a full batch. Contiguity is what
			// makes the shard -1 commit below cover exactly this batch on
			// replay — no entry inside the prefix is left behind.
			shard = -1
			counts := make(map[int]int)
			cut := 0
			for _, p := range m.pending {
				if counts[p.shard] >= m.cfg.BatchMaxSize {
					break
				}
				counts[p.shard]++
				cut++
			}
			batch = append(make([]pendingUpdate, 0, cut), m.pending[:cut]...)
			m.pending = append(m.pending[:0], m.pending[cut:]...)
		} else {
			// Cut the head shard's batch: pending is in sequence order, so
			// the cut is the first BatchMaxSize entries routed to that
			// shard, and every entry of that shard left behind has a later
			// sequence than the batch's commit will cover.
			batch = make([]pendingUpdate, 0, min(len(m.pending), m.cfg.BatchMaxSize))
			kept := m.pending[:0]
			for _, p := range m.pending {
				if p.shard == shard && len(batch) < m.cfg.BatchMaxSize {
					batch = append(batch, p)
				} else {
					kept = append(kept, p)
				}
			}
			m.pending = kept
		}
		m.mu.Unlock()

		n := len(batch)
		updates := make([]core.RatingUpdate, n)
		for i, p := range batch {
			updates[i] = p.u
		}
		lastSeq := batch[n-1].seq

		t := time.Now()
		cur := m.state.Load()
		next, err := m.applyUpdates(cur.sharded, updates)
		if err != nil {
			// applyUpdates only errors when even per-update fallback is
			// impossible; drop the batch rather than wedge the loop.
			m.mApplyErrs.Add(int64(n))
			m.cfg.Logf("lifecycle: dropping batch of %d: %v", n, err)
			continue
		}
		// The watermark only reaches maxSeq once every queue entry below it
		// is applied; between per-shard batches it trails the oldest still-
		// pending rating, and the model is marked incomplete so snapshots
		// wait (see modelState).
		m.mu.Lock()
		st := &modelState{sharded: next, seq: m.maxSeq, complete: true}
		if len(m.pending) > 0 {
			st.seq = m.pending[0].seq - 1
			st.complete = false
		}
		m.state.Store(st)
		m.mu.Unlock()
		if _, err := m.w.AppendBatchCommit(lastSeq, shard); err != nil {
			m.cfg.Logf("lifecycle: journal batch commit: %v", err)
		}

		m.mApplyLat.Observe(durMS(time.Since(t)))
		m.mBatchSize.Observe(float64(n))
		m.mApplied.Add(int64(n))
		m.mBatches.Inc()
		m.publishModelGauges()

		if m.retraining {
			m.sinceRetrain = append(m.sinceRetrain, updates...)
		}
		m.driftCount += n
		if m.cfg.RetrainAfter > 0 && m.driftCount >= m.cfg.RetrainAfter && !m.retraining {
			m.startRetrain(m.cfg.RetrainMode)
		}
	}
}

// PublishGauges refreshes the registry's model-shape and queue gauges
// (pending depth, apply-lag, applied seq, WAL position) on demand, so a
// /metrics scrape reads current values rather than whatever the last
// submit or apply left behind.
func (m *Manager) PublishGauges() { m.publishModelGauges() }

// publishModelGauges mirrors the served model's shape into the registry.
func (m *Manager) publishModelGauges() {
	st := m.state.Load()
	mx := st.sharded.Model().Matrix()
	m.reg.Gauge("lifecycle_model_users").Set(float64(mx.NumUsers()))
	m.reg.Gauge("lifecycle_model_items").Set(float64(mx.NumItems()))
	m.reg.Gauge("lifecycle_model_ratings").Set(float64(mx.NumRatings()))
	m.reg.Gauge("lifecycle_shards").Set(float64(st.sharded.NumShards()))
	m.reg.Gauge("lifecycle_applied_seq").Set(float64(st.seq))
	m.reg.Gauge("wal_last_seq").Set(float64(m.w.LastSeq()))
	m.reg.Gauge("wal_segments").Set(float64(m.w.Stats().Segments))
	m.mPending.Set(float64(m.Pending()))
	m.mApplyLag.Set(float64(m.ApplyLag()))
}

// startRetrain kicks off a background retrain of the current matrix in a
// goroutine; only the run loop calls it, so the captured state and the
// catch-up buffer stay consistent. Mode "shards" rebuilds the shared GIS
// and then re-fits one shard at a time; "full" is a stop-the-world
// core.Train.
//
//cfsf:wallclock-ok retrain duration feeds the retrain_ms histogram only
func (m *Manager) startRetrain(mode string) {
	st := m.state.Load()
	m.retraining = true
	m.sinceRetrain = nil
	m.reg.Gauge("lifecycle_retraining").Set(1)
	m.cfg.Logf("lifecycle: %s retrain started (%d ratings, %d applied since last train)",
		mode, st.sharded.Model().Matrix().NumRatings(), m.driftCount)
	go func() {
		t := time.Now()
		var res retrainResult
		if mode == RetrainFull {
			cfg := st.sharded.Model().Config()
			if m.cfg.TrainConfig != nil {
				cfg = *m.cfg.TrainConfig
			}
			mod, err := core.Train(st.sharded.Model().Matrix(), cfg)
			if err == nil {
				res.sharded = core.NewSharded(mod)
			}
			res.err = err
		} else {
			// Per-shard sweep: fresh GIS first (incremental GIS refreshes
			// leave truncated neighbour lists of unchanged items stale, so
			// the sweep reads repaired similarities), then one Lloyd
			// re-assignment pass per shard.
			sm := st.sharded.RebuildGIS()
			var err error
			for s := 0; s < sm.NumShards() && err == nil; s++ {
				sm, err = sm.RetrainShard(s)
			}
			res.sharded, res.err = sm, err
		}
		res.duration = time.Since(t)
		m.retrainc <- res
	}()
}

// finishRetrain swaps in the retrained model after folding in whatever
// was applied while it trained, then snapshots so the on-disk state
// reflects the fresh clustering.
func (m *Manager) finishRetrain(res retrainResult) {
	m.retraining = false
	m.reg.Gauge("lifecycle_retraining").Set(0)
	catchUp := m.sinceRetrain
	m.sinceRetrain = nil
	if res.err != nil {
		m.mRetrainErrs.Inc()
		m.cfg.Logf("lifecycle: retrain failed: %v", res.err)
		return
	}
	mod := res.sharded
	if len(catchUp) > 0 {
		next, err := m.applyUpdates(mod, catchUp)
		if err != nil {
			m.mRetrainErrs.Inc()
			m.cfg.Logf("lifecycle: retrain catch-up failed, keeping old model: %v", err)
			return
		}
		mod = next
	}
	cur := m.state.Load() // catch-up covered everything applied so far
	m.state.Store(&modelState{sharded: mod, seq: cur.seq, complete: cur.complete})
	m.driftCount = 0
	m.mRetrains.Inc()
	m.mRetrainLat.Observe(durMS(res.duration))
	m.publishModelGauges()
	m.cfg.Logf("lifecycle: retrain complete in %v (+%d caught up)", res.duration.Round(time.Millisecond), len(catchUp))
	// The retrained model replaced the serving one at an unchanged WAL
	// seq; force the snapshot so it isn't skipped as already-covered —
	// until it lands, a crash would recover the pre-retrain lineage.
	m.snapForce.Store(true)
	go func() {
		if _, err := m.Snapshot(); err != nil {
			m.cfg.Logf("lifecycle: post-retrain snapshot: %v", err)
		}
	}()
}

// TriggerRetrain requests a background retrain in the given mode
// (RetrainShards, RetrainFull, or "" for the configured default). It
// reports false when the mode is unknown, a request is already queued,
// or a retrain is in flight.
func (m *Manager) TriggerRetrain(mode string) bool {
	if mode != "" && mode != RetrainShards && mode != RetrainFull {
		return false
	}
	if m.closing.Load() || m.Retraining() {
		return false
	}
	select {
	case m.retrainReq <- mode:
		return true
	default:
		return false
	}
}

// Retraining reports whether a retrain is in flight (best effort — the
// run loop owns the authoritative state).
func (m *Manager) Retraining() bool {
	return m.reg.Gauge("lifecycle_retraining").Value() == 1
}

// Snapshot writes the serving model atomically (temp file + rename, both
// fsynced) to snapshots/snap-<seq>.gob, verifies it with a load-and-
// predict self-check, and only then journals a checkpoint record, prunes
// WAL segments the snapshot covers, and drops snapshots beyond
// SnapshotKeep — a snapshot that cannot reproduce the serving model's
// predictions is deleted and never shrinks the WAL. When nothing was
// applied since the last snapshot, or the model is mid-drain (per-shard
// batching has applied a rating beyond the contiguous watermark), it
// returns Skipped without touching disk.
//
//cfsf:wallclock-ok snapshot duration feeds the snapshot_ms histogram only
func (m *Manager) Snapshot() (SnapshotInfo, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	st := m.state.Load()
	if !st.complete {
		return SnapshotInfo{CoveredSeq: st.seq, Skipped: true}, nil
	}
	path := filepath.Join(snapshotDir(m.cfg.DataDir), snapName(st.seq))
	// A snapshot file for this seq normally means there is nothing new to
	// persist — except right after a retrain, which replaces the model
	// without advancing the WAL seq. snapForce marks that case; the
	// rename below then overwrites the stale file atomically.
	force := m.snapForce.Swap(false)
	if _, err := os.Stat(path); err == nil && !force {
		return SnapshotInfo{Path: path, CoveredSeq: st.seq, Skipped: true}, nil
	}

	persisted := false
	if force {
		// If this attempt fails, the retrained model is still only in
		// memory — keep the flag so the next snapshot retries.
		defer func() {
			if !persisted {
				m.snapForce.Store(true)
			}
		}()
	}

	t := time.Now()
	tmp, err := os.CreateTemp(snapshotDir(m.cfg.DataDir), ".tmp-snap-*")
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("lifecycle: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (SnapshotInfo, error) {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return SnapshotInfo{}, err
	}
	if err := st.sharded.Model().Save(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("lifecycle: sync snapshot: %w", err))
	}
	size, _ := tmp.Seek(0, 2)
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("lifecycle: close snapshot: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return SnapshotInfo{}, fmt.Errorf("lifecycle: publish snapshot: %w", err)
	}
	if err := syncDirOf(path); err != nil {
		return SnapshotInfo{}, err
	}

	// Self-check before the snapshot is allowed to shrink the WAL: load
	// the published file back and demand bit-identical predictions from
	// the reconstructed model. A snapshot that fails is removed — the WAL
	// (and any older verified snapshot) still covers everything, so
	// durability is unchanged; what is prevented is pruning the log on
	// the word of a file that cannot actually restore the model.
	if !m.cfg.SkipSnapshotVerify {
		if err := verifySnapshot(path, st.sharded.Model()); err != nil {
			m.reg.Counter("lifecycle_snapshot_verify_failures_total").Inc()
			os.Remove(path)
			return SnapshotInfo{}, fmt.Errorf("lifecycle: snapshot %s failed self-check: %w", filepath.Base(path), err)
		}
		m.reg.Counter("lifecycle_snapshots_verified_total").Inc()
	}
	persisted = true

	if _, err := m.w.AppendCheckpoint(st.seq); err != nil {
		m.cfg.Logf("lifecycle: journal checkpoint: %v", err)
	}
	if n, err := m.w.Prune(st.seq); err != nil {
		m.cfg.Logf("lifecycle: prune wal: %v", err)
	} else if n > 0 {
		m.reg.Counter("wal_segments_pruned_total").Add(int64(n))
	}
	m.pruneSnapshots()

	info := SnapshotInfo{Path: path, CoveredSeq: st.seq, Bytes: size, Duration: time.Since(t)}
	m.mSnapshots.Inc()
	m.mSnapLat.Observe(durMS(info.Duration))
	m.reg.Gauge("lifecycle_snapshot_seq").Set(float64(st.seq))
	m.cfg.Logf("lifecycle: snapshot %s (%d bytes, covers seq %d) in %v",
		filepath.Base(path), size, st.seq, info.Duration.Round(time.Millisecond))
	return info, nil
}

// verifySnapshot loads the snapshot file back and compares a grid sample
// of its predictions against the live model's, exactly. Load rebuilds
// the smoothing tables and iCluster rankings from the persisted matrix
// and clustering, so equality here means the file actually carries
// everything recovery needs.
func verifySnapshot(path string, live *core.Model) error {
	loaded, err := core.LoadFile(path)
	if err != nil {
		return err
	}
	lm, vm := live.Matrix(), loaded.Matrix()
	if lm.NumUsers() != vm.NumUsers() || lm.NumItems() != vm.NumItems() || lm.NumRatings() != vm.NumRatings() {
		return fmt.Errorf("reloaded dimensions %dx%d/%d differ from %dx%d/%d",
			vm.NumUsers(), vm.NumItems(), vm.NumRatings(), lm.NumUsers(), lm.NumItems(), lm.NumRatings())
	}
	// Sample a coarse grid rather than the full P×Q matrix: wrong
	// clustering, deviations, or similarities shift predictions across
	// whole rows, so a strided sample catches structural corruption at a
	// fraction of the cost.
	uStep := max(1, lm.NumUsers()/16)
	iStep := max(1, lm.NumItems()/16)
	for u := 0; u < lm.NumUsers(); u += uStep {
		for i := 0; i < lm.NumItems(); i += iStep {
			if got, want := loaded.Predict(u, i), live.Predict(u, i); got != want {
				return fmt.Errorf("prediction (%d,%d) reloads as %v, serving model says %v", u, i, got, want)
			}
		}
	}
	return nil
}

func syncDirOf(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("lifecycle: open dir for sync: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("lifecycle: sync dir: %w", err)
	}
	return nil
}

// pruneSnapshots removes all but the newest SnapshotKeep snapshot files.
func (m *Manager) pruneSnapshots() {
	entries, err := os.ReadDir(snapshotDir(m.cfg.DataDir))
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) {
			names = append(names, n)
		}
	}
	if len(names) <= m.cfg.SnapshotKeep {
		return
	}
	sort.Strings(names) // hex sequence names sort chronologically
	for _, n := range names[:len(names)-m.cfg.SnapshotKeep] {
		if err := os.Remove(filepath.Join(snapshotDir(m.cfg.DataDir), n)); err == nil {
			m.cfg.Logf("lifecycle: pruned snapshot %s", n)
		}
	}
}

// Close drains the queue (every journaled rating is applied), waits for
// any in-flight retrain, snapshots the final state, and closes the WAL.
func (m *Manager) Close() error {
	if !m.closing.CompareAndSwap(false, true) {
		<-m.done
		return nil
	}
	close(m.stopc)
	<-m.done
	if _, err := m.Snapshot(); err != nil {
		m.cfg.Logf("lifecycle: final snapshot: %v", err)
	}
	return m.w.Close()
}

// Abort is the crash-simulation counterpart of Close: it stops the loop
// without draining, snapshotting, or syncing — recovery tests use it to
// model a SIGKILL. Journaled-but-unapplied ratings are recovered from
// the WAL on the next Open.
func (m *Manager) Abort() {
	if !m.closing.CompareAndSwap(false, true) {
		return
	}
	close(m.abortc)
	<-m.done
	_ = m.w.CloseAbrupt()
}
