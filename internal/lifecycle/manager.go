// Package lifecycle owns the serving model end to end: it journals every
// incoming rating to a write-ahead log before acknowledging it, routes
// queued ratings to the model shard (= user cluster) they touch, folds
// them in per-shard micro-batches — a batch confined to one shard pays a
// shard-local core.ShardedModel.Apply instead of the monolithic O(nnz)
// rebuild — rotates atomic snapshots so restarts are fast, and schedules
// the background retrain that internal/core/update.go's drift caveat
// asks for, either as a per-shard sweep (RetrainMode "shards") or as the
// legacy stop-the-world KMeans pass ("full").
//
// Data-dir layout:
//
//	<dir>/wal/seg-<firstSeq>.wal         append-only rating journal (internal/wal)
//	<dir>/wal/base-<toSeq>.cwal          compacted base the folded segments
//	                                     rewrite into (wal compaction)
//	<dir>/snapshots/manifest-<seq>.json  one recovery point: watermark + blob refs
//	<dir>/snapshots/shared-<seq>.blob    config + GIS + clustering at <seq>
//	<dir>/snapshots/shard-<id>-<seq>.blob one shard's matrix rows at <seq>
//	<dir>/snapshots/snap-<seq>.gob       legacy monolithic snapshot (still
//	                                     boots; migrated on the next snapshot)
//
// Boot loads the newest loadable recovery point — an unreadable manifest
// or legacy file is skipped in favour of an older one, and inside a
// manifest an unreadable shard blob is patched from an older manifest's
// blob plus the WAL before the whole point is given up on — or calls
// the bootstrap function when none loads, then replays the WAL tail past
// the point's sequence. Each rating record carries the shard it was
// routed to and each batch-commit record the shard it was applied on, so
// replay regroups ratings into exactly the per-shard micro-batches the
// previous process applied and the recovered model is bit-for-bit
// identical. A fresh snapshot is then written so the next boot replays
// nothing — but only after every written blob passes a read-back
// self-check; a snapshot that cannot be read back bit-for-bit never
// prunes the WAL it claims to cover.
package lifecycle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfsf/internal/atomicfile"
	"cfsf/internal/core"
	"cfsf/internal/obs"
	"cfsf/internal/wal"
)

// Config tunes a Manager. The zero value of each field selects the
// default noted on it; DataDir is required.
type Config struct {
	// DataDir is the durability root; created if missing.
	DataDir string
	// Fsync is the WAL fsync policy (default wal.SyncAlways).
	Fsync wal.SyncPolicy
	// FsyncInterval is the background flush cadence under
	// wal.SyncInterval. <= 0 means 100ms.
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation size (wal.Options).
	SegmentBytes int64

	// BatchMaxSize caps how many queued ratings one WithUpdates call
	// folds in. <= 0 means 256.
	BatchMaxSize int
	// BatchMaxWait, when > 0, delays each apply by this long so more
	// ratings coalesce into the batch. The default 0 is greedy: the
	// apply loop drains whatever is queued the moment it is free, so
	// batching emerges from backpressure without added latency.
	BatchMaxWait time.Duration
	// QueueCapacity bounds the unapplied-rating queue; Submit returns
	// ErrQueueFull beyond it. <= 0 means 4096.
	QueueCapacity int
	// ApplyMode selects how applyPending cuts batches from the queue:
	// ApplySerial (the default) cuts one shard's micro-batch at a time;
	// ApplyConcurrent cuts a contiguous multi-shard prefix — up to
	// BatchMaxSize ratings per shard — and folds it in a single Apply,
	// so the rebuild work of every shard the prefix touches runs in the
	// same parallel pass instead of one shard after another. Either way
	// the commit record journaled after the swap makes crash replay
	// regroup the exact same batches, bit for bit.
	ApplyMode string

	// SnapshotEvery, when > 0, snapshots the model in the background at
	// this cadence (skipped when nothing changed since the last one).
	SnapshotEvery time.Duration
	// SnapshotKeep is how many recovery points (manifests or legacy
	// snapshots) to retain. <= 0 means 2.
	SnapshotKeep int

	// CompactEnabled folds checkpoint-covered WAL segments into a
	// compacted base after each snapshot instead of deleting them, so
	// recovery can still patch older shard blobs forward while the log
	// stays bounded.
	CompactEnabled bool
	// CompactMinSegments is the segment count at which a post-snapshot
	// compaction pass actually runs. <= 0 means 2.
	CompactMinSegments int

	// RetrainAfter, when > 0, triggers a background retrain once this
	// many ratings have been applied since the last retrain.
	RetrainAfter int
	// RetrainMode selects what a background retrain does: "shards" (the
	// default) rebuilds the shared GIS and then re-fits one shard at a
	// time (core.ShardedModel.RetrainShard swept across every shard);
	// "full" is the legacy stop-the-world core.Train pass.
	RetrainMode string
	// TrainConfig, when non-nil, is the configuration for "full"-mode
	// background retrains; nil reuses the serving model's own
	// configuration. "shards" mode keeps the serving configuration.
	TrainConfig *core.Config

	// SkipSnapshotVerify disables the load-and-predict self-check that
	// every written snapshot must pass before it is checkpointed and the
	// WAL it covers pruned. Only tests (and operators who prefer faster
	// snapshots over the read-back guarantee) should set it.
	SkipSnapshotVerify bool

	// Registry receives wal/lifecycle metrics; one is created when nil.
	Registry *obs.Registry
	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 256
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 4096
	}
	if c.SnapshotKeep <= 0 {
		c.SnapshotKeep = 2
	}
	if c.CompactMinSegments <= 0 {
		c.CompactMinSegments = 2
	}
	if c.RetrainMode == "" {
		c.RetrainMode = RetrainShards
	}
	if c.ApplyMode == "" {
		c.ApplyMode = ApplySerial
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RetrainMode values for Config.RetrainMode.
const (
	RetrainShards = "shards"
	RetrainFull   = "full"
)

// ApplyMode values for Config.ApplyMode.
const (
	ApplySerial     = "serial"
	ApplyConcurrent = "concurrent"
)

// ErrQueueFull is returned by Submit when the unapplied-rating queue is
// at capacity; callers should shed load (the server maps it to 503).
var ErrQueueFull = fmt.Errorf("lifecycle: update queue full")

// ErrClosed is returned by Submit after Close or Abort.
var ErrClosed = fmt.Errorf("lifecycle: manager closed")

// modelState pairs the serving model with its WAL position, swapped
// atomically. seq is the contiguous applied watermark: every rating with
// sequence <= seq is folded in. complete additionally means *only* those
// ratings are folded in — per-shard batching can apply a later-sequence
// rating while an earlier one (bound for another shard) still queues, and
// such a mid-drain model must never be snapshotted: a snapshot labelled
// with the watermark would double-apply the later rating on replay.
type modelState struct {
	sharded  *core.ShardedModel
	seq      uint64
	complete bool
	// gen is the dirty-tracking generation this state was stored at: the
	// dirty spans recorded at or before it describe exactly the shards
	// whose persisted rows this model invalidates (see markDirty).
	gen uint64
}

type pendingUpdate struct {
	seq   uint64
	u     core.RatingUpdate
	shard int // routing decision recorded in the WAL, reused for batching
}

// BootStats reports what Open did to reach the serving model.
type BootStats struct {
	// SnapshotLoaded is the snapshot file the boot started from ("" when
	// the bootstrap function trained the base model).
	SnapshotLoaded string
	// SnapshotSeq is the rating sequence that snapshot covered.
	SnapshotSeq uint64
	// ReplayedRecords is how many WAL ratings were folded in on top.
	ReplayedRecords int
	// ReplayedBatches is how many WithUpdates calls the replay took
	// (grouped by the batch-commit records of the previous run).
	ReplayedBatches int
	// TornBytes is the size of the torn WAL tail dropped, if any.
	TornBytes int64
}

// SnapshotInfo describes one completed snapshot.
type SnapshotInfo struct {
	Path       string        `json:"path"`
	CoveredSeq uint64        `json:"covered_seq"`
	Bytes      int64         `json:"bytes"`
	Duration   time.Duration `json:"-"`
	DurationMS float64       `json:"duration_ms"`
	// ShardsWritten / ShardsClean split the shard blobs into rewritten
	// and re-referenced (clean since the previous manifest, so their
	// existing verified blobs were reused); SharedWritten reports whether
	// the shared blob was rewritten.
	ShardsWritten int  `json:"shards_written"`
	ShardsClean   int  `json:"shards_clean"`
	SharedWritten bool `json:"shared_written"`
	// Skipped is true when nothing changed since the last snapshot and
	// no file was written.
	Skipped bool `json:"skipped,omitempty"`
}

// Manager owns the serving model, its WAL, and its snapshot/retrain
// schedule. All exported methods are safe for concurrent use.
type Manager struct {
	cfg   Config        //cfsf:immutable
	reg   *obs.Registry //cfsf:immutable
	w     *wal.WAL      //cfsf:immutable
	state atomic.Pointer[modelState]
	boot  BootStats //cfsf:immutable

	mu      sync.Mutex      // guards pending/maxSeq and orders WAL appends with enqueueing
	pending []pendingUpdate //cfsf:guarded-by mu
	maxSeq  uint64          //cfsf:guarded-by mu // highest rating sequence ever enqueued

	kick    chan struct{}
	stopc   chan struct{} // Close: drain then exit
	abortc  chan struct{} // Abort: exit immediately
	done    chan struct{}
	closing atomic.Bool

	snapMu       sync.Mutex  // serialises snapshot writes, retention, and compaction
	snapForce    atomic.Bool // a retrain swapped the model without advancing seq
	lastManifest *manifest   //cfsf:guarded-by snapMu // newest published manifest; clean shards reuse its blob refs
	lastSnap     atomic.Pointer[SnapshotInfo]
	lastCkptSeq  atomic.Uint64 // sequence of the newest checkpoint record (compaction fold boundary)

	dirtyMu    sync.Mutex
	gen        uint64          //cfsf:guarded-by dirtyMu // one per model swap with persistence dirt
	dirtyShard map[int]genSpan //cfsf:guarded-by dirtyMu
	sharedGen  *genSpan        //cfsf:guarded-by dirtyMu // shared blob dirt (conservatively every swap)

	retrainReq   chan string // requested RetrainMode ("" = configured default)
	retrainc     chan retrainResult
	retraining   bool                // run-loop state: a retrain goroutine is in flight
	sinceRetrain []core.RatingUpdate // run-loop state: updates applied while retraining
	driftCount   int                 // run-loop state: updates applied since last full train

	// metrics held once (Registry lookups lock a map)
	mAppendLat   *obs.Histogram
	mApplyLat    *obs.Histogram
	mBatchSize   *obs.Histogram
	mSnapLat     *obs.Histogram
	mRetrainLat  *obs.Histogram
	mApplied     *obs.Counter
	mBatches     *obs.Counter
	mApplyErrs   *obs.Counter
	mQueueFull   *obs.Counter
	mSnapshots   *obs.Counter
	mRetrains    *obs.Counter
	mRetrainErrs *obs.Counter
	mPending     *obs.Gauge
	mApplyLag    *obs.Gauge
}

type retrainResult struct {
	sharded  *core.ShardedModel
	err      error
	duration time.Duration
}

// Open builds the serving model from the data directory — newest
// snapshot plus WAL-tail replay, or bootstrap() when no snapshot exists —
// takes a fresh snapshot if anything was replayed, and starts the
// manager loop.
func Open(bootstrap func() (*core.Model, error), cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("lifecycle: DataDir is required")
	}
	if cfg.RetrainMode != RetrainShards && cfg.RetrainMode != RetrainFull {
		return nil, fmt.Errorf("lifecycle: unknown retrain mode %q (want %q or %q)",
			cfg.RetrainMode, RetrainShards, RetrainFull)
	}
	if cfg.ApplyMode != ApplySerial && cfg.ApplyMode != ApplyConcurrent {
		return nil, fmt.Errorf("lifecycle: unknown apply mode %q (want %q or %q)",
			cfg.ApplyMode, ApplySerial, ApplyConcurrent)
	}
	if err := os.MkdirAll(snapshotDir(cfg.DataDir), 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: create snapshot dir: %w", err)
	}
	w, err := wal.Open(filepath.Join(cfg.DataDir, "wal"), wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Sync:         cfg.Fsync,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	m := &Manager{
		cfg:        cfg,
		reg:        cfg.Registry,
		w:          w,
		kick:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		abortc:     make(chan struct{}),
		done:       make(chan struct{}),
		retrainReq: make(chan string, 1),
		// Buffered so the retrain goroutine can finish even if the loop
		// is gone (Abort) — it must never block forever on send.
		retrainc:   make(chan retrainResult, 1),
		dirtyShard: map[int]genSpan{},
	}
	m.bindMetrics()
	// Fold boundary until this run's first checkpoint: the highest
	// checkpoint the previous run journaled.
	m.lastCkptSeq.Store(w.Stats().LastCheckpoint)

	if err := m.bootModel(bootstrap); err != nil {
		_ = w.Close()
		return nil, err
	}

	ws := w.Stats()
	m.boot.TornBytes = ws.TornBytes
	m.reg.Counter("wal_torn_bytes_dropped_total").Add(ws.TornBytes)
	m.reg.Counter("wal_replayed_records_total").Add(int64(m.boot.ReplayedRecords))
	m.reg.Counter("wal_replayed_batches_total").Add(int64(m.boot.ReplayedBatches))
	m.publishModelGauges()

	go m.run()
	return m, nil
}

func (m *Manager) bindMetrics() {
	r := m.reg
	m.mAppendLat = r.Histogram("wal_append_latency_ms", nil)
	m.mApplyLat = r.Histogram("lifecycle_apply_latency_ms", nil)
	m.mBatchSize = r.Histogram("lifecycle_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	m.mSnapLat = r.Histogram("lifecycle_snapshot_duration_ms", nil)
	m.mRetrainLat = r.Histogram("lifecycle_retrain_duration_ms", nil)
	m.mApplied = r.Counter("lifecycle_applied_total")
	m.mBatches = r.Counter("lifecycle_batches_total")
	m.mApplyErrs = r.Counter("lifecycle_apply_errors_total")
	m.mQueueFull = r.Counter("lifecycle_queue_full_total")
	m.mSnapshots = r.Counter("lifecycle_snapshots_total")
	m.mRetrains = r.Counter("lifecycle_retrains_total")
	m.mRetrainErrs = r.Counter("lifecycle_retrain_errors_total")
	m.mPending = r.Gauge("lifecycle_pending")
	m.mApplyLag = r.Gauge("lifecycle_apply_lag")
}

func snapshotDir(dataDir string) string { return filepath.Join(dataDir, "snapshots") }

const (
	snapPrefix = "snap-"
	snapSuffix = ".gob"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// genSpan is the generation range over which a persisted part has been
// dirtied and not yet re-persisted: min is a lower bound on the oldest
// uncovered dirt, max the newest.
type genSpan struct{ min, max uint64 }

// markDirty records that the model swap about to be published dirtied
// the given shards (every shard when all is set) plus the shared part,
// and returns the generation the new modelState must carry. Called
// before the corresponding state.Store: a snapshot that reads a state at
// generation g then finds a span with min <= g knows that state's model
// covers the dirt.
func (m *Manager) markDirty(shards []int, all bool, numShards int) uint64 {
	m.dirtyMu.Lock()
	defer m.dirtyMu.Unlock()
	m.gen++
	g := m.gen
	if m.sharedGen == nil {
		m.sharedGen = &genSpan{min: g, max: g}
	} else {
		m.sharedGen.max = g
	}
	mark := func(s int) {
		if sp, ok := m.dirtyShard[s]; ok {
			sp.max = g
			m.dirtyShard[s] = sp
		} else {
			m.dirtyShard[s] = genSpan{min: g, max: g}
		}
	}
	if all {
		for s := 0; s < numShards; s++ {
			mark(s)
		}
	} else {
		for _, s := range shards {
			mark(s)
		}
	}
	return g
}

// dirtyAt returns, ascending, the shards with dirt at or before
// generation g — dirt a model stored at g has folded in — plus whether
// the shared part has such dirt.
func (m *Manager) dirtyAt(g uint64) (shards []int, shared bool) {
	m.dirtyMu.Lock()
	defer m.dirtyMu.Unlock()
	for s, sp := range m.dirtyShard {
		if sp.min <= g {
			shards = append(shards, s)
		}
	}
	sort.Ints(shards)
	return shards, m.sharedGen != nil && m.sharedGen.min <= g
}

// clearDirty discharges dirt at or before generation g (it has been
// persisted); dirt marked after g survives for the next snapshot.
func (m *Manager) clearDirty(g uint64) {
	m.dirtyMu.Lock()
	defer m.dirtyMu.Unlock()
	for s, sp := range m.dirtyShard {
		if sp.max <= g {
			delete(m.dirtyShard, s)
		} else if sp.min <= g {
			sp.min = g + 1
			m.dirtyShard[s] = sp
		}
	}
	if m.sharedGen != nil {
		if m.sharedGen.max <= g {
			m.sharedGen = nil
		} else if m.sharedGen.min <= g {
			m.sharedGen.min = g + 1
		}
	}
}

// bootModel establishes the serving model: snapshot or bootstrap, then
// WAL-tail replay grouped by the previous run's batch-commit records.
//
//cfsf:wallclock-ok boot duration recorded in BootStats only; replay regroups batches by journaled commit records, never by time
//cfsf:init-only runs from Open before the manager is returned or the run loop starts
//cfsf:locked mu same: nothing else can touch the manager during boot
func (m *Manager) bootModel(bootstrap func() (*core.Model, error)) error {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil {
		return fmt.Errorf("lifecycle: list snapshots: %w", err)
	}
	// Try recovery points newest-first: a manifest or legacy file that
	// cannot be loaded — torn by the filesystem, or written by a newer
	// build whose wire version this binary rejects — is skipped in favour
	// of the next older one. The WAL needed to catch up from an older
	// point is still present because segments are only pruned (or folded
	// into the compacted base) once a *verified* snapshot covers them.
	var base *core.Model
	var baseSeq uint64
	hadSnapshot, legacyLoaded := false, false
	var bootPatched []int
	for _, pt := range points {
		// A point is only usable when the WAL can still extend it: a
		// contiguous record stream from its watermark to the tail, not
		// deduped below it (dedupe keeps final cells but destroys the
		// batch grouping bit-for-bit replay needs). Retention prunes in
		// step with the point ladder, so this only skips points orphaned
		// by a SnapshotKeep decrease or external file surgery.
		if av := m.w.AvailableFrom(); av > pt.seq+1 {
			m.cfg.Logf("lifecycle: snapshot %s unusable (wal starts at seq %d, tail from seq %d is gone); trying an older one",
				filepath.Base(pt.path), av, pt.seq)
			continue
		}
		if db := m.w.DedupedBelow(); db > pt.seq {
			m.cfg.Logf("lifecycle: snapshot %s unusable (wal deduped below seq %d, batch replay from seq %d lost); trying an older one",
				filepath.Base(pt.path), db, pt.seq)
			continue
		}
		t := time.Now()
		var mod *core.Model
		var man *manifest
		var patched []int
		var lerr error
		if pt.manifest {
			mod, man, patched, lerr = m.loadManifestPoint(pt)
		} else {
			mod, lerr = core.LoadFile(pt.path)
		}
		if lerr != nil {
			m.reg.Counter("lifecycle_snapshot_load_failures_total").Inc()
			m.cfg.Logf("lifecycle: snapshot %s unusable (%v); trying an older one", filepath.Base(pt.path), lerr)
			continue
		}
		m.cfg.Logf("lifecycle: loaded snapshot %s (covers seq %d) in %v",
			filepath.Base(pt.path), pt.seq, time.Since(t).Round(time.Millisecond))
		base, baseSeq, hadSnapshot = mod, pt.seq, true
		legacyLoaded = !pt.manifest
		bootPatched = patched
		// nil man for a legacy point: the next snapshot writes everything.
		// Boot is single-threaded, but the boot-time Snapshot below reads
		// this under snapMu, so publish it the same way.
		m.snapMu.Lock()
		m.lastManifest = man
		m.snapMu.Unlock()
		m.boot.SnapshotLoaded = pt.path
		m.boot.SnapshotSeq = pt.seq
		break
	}
	if !hadSnapshot {
		if bootstrap == nil {
			return fmt.Errorf("lifecycle: no loadable snapshot in %s and no bootstrap function", m.cfg.DataDir)
		}
		base, err = bootstrap()
		if err != nil {
			return fmt.Errorf("lifecycle: bootstrap model: %w", err)
		}
	}

	// Replay the tail, regrouping ratings into the batches the previous
	// process applied. A commit record covers ratings up to its Covered
	// sequence only — ratings for the *next* batch may already sit ahead
	// of it in the file (appends and commits interleave), so the split is
	// by sequence, not by position. A commit that carries a shard id
	// closes a per-shard batch: only queued ratings *routed to that
	// shard* are in it; ratings bound for other shards stay queued for
	// their own commits. Legacy commits (shard -1) cover every queued
	// rating, the pre-sharding batching. Ratings past the final commit
	// were journaled but possibly never applied; they form one final
	// batch.
	cur := core.NewSharded(base)
	bootDirty := map[int]bool{}
	for _, s := range bootPatched {
		// A patched shard's manifest ref points at the unusable blob; the
		// boot snapshot below must rewrite it.
		bootDirty[s] = true
	}
	markAllBoot := !hadSnapshot || legacyLoaded
	var queued []pendingUpdate
	lastSeq := baseSeq
	applyThrough := func(covered uint64, shard int) error {
		batch := make([]core.RatingUpdate, 0, len(queued))
		kept := queued[:0]
		for _, p := range queued {
			if p.seq <= covered && (shard < 0 || p.shard == shard) {
				batch = append(batch, p.u)
			} else {
				kept = append(kept, p)
			}
		}
		if len(batch) == 0 {
			return nil
		}
		queued = kept
		next, dirty, err := m.applyUpdates(cur, batch)
		if err != nil {
			return fmt.Errorf("lifecycle: replay batch through seq %d: %w", covered, err)
		}
		if cur.Model().Matrix().HasTimes() != next.Model().Matrix().HasTimes() {
			markAllBoot = true // times flip: every shard blob's wire shape changed
		}
		for _, s := range dirty {
			bootDirty[s] = true
		}
		cur = next
		m.boot.ReplayedBatches++
		return nil
	}
	err = m.w.Replay(baseSeq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordRating:
			queued = append(queued, pendingUpdate{seq: rec.Seq, u: rec.Update, shard: rec.Shard})
			lastSeq = rec.Seq
			m.boot.ReplayedRecords++
		case wal.RecordBatchCommit:
			return applyThrough(rec.Covered, rec.Shard)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := applyThrough(lastSeq, -1); err != nil {
		return err
	}

	m.maxSeq = maxU64(baseSeq, lastSeq)
	var g uint64
	if markAllBoot {
		g = m.markDirty(nil, true, cur.NumShards())
	} else if len(bootDirty) > 0 {
		g = m.markDirty(sortedInts(bootDirty), false, cur.NumShards())
	}
	m.state.Store(&modelState{sharded: cur, seq: m.maxSeq, complete: true, gen: g})

	// Re-anchor durability: after any replay, a boot from a legacy or
	// shard-patched snapshot, or a first boot with no snapshot at all,
	// write a snapshot so the next boot starts from a clean point — and
	// so recovery no longer depends on the bootstrap function reproducing
	// the base model exactly.
	if m.boot.ReplayedRecords > 0 || !hadSnapshot || legacyLoaded || len(bootPatched) > 0 {
		if _, err := m.Snapshot(); err != nil {
			return fmt.Errorf("lifecycle: boot snapshot: %w", err)
		}
	}
	return nil
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// applyUpdates folds updates into the sharded model, falling back to
// per-update application when the batch fails as a whole so one
// malformed update cannot wedge the log (bad updates are counted and
// dropped). It returns the union of the dirty-shard sets of every apply
// it performed — the fallback path chains several, each carrying only
// its own step's dirt.
func (m *Manager) applyUpdates(sm *core.ShardedModel, updates []core.RatingUpdate) (*core.ShardedModel, []int, error) {
	return applyWithFallback(sm, updates, m.cfg.Logf, m.mApplyErrs)
}

// applyWithFallback is the single apply-a-batch code path shared by the
// leader's lifecycle loop, boot replay, and the follower applier: the
// identical batch-or-per-update semantics on every path is what makes
// crash replay and follower streaming both bit-identical to the live
// process.
func applyWithFallback(sm *core.ShardedModel, updates []core.RatingUpdate, logf func(string, ...any), applyErrs *obs.Counter) (*core.ShardedModel, []int, error) {
	next, err := sm.Apply(updates)
	if err == nil {
		return next, next.DirtyShards(), nil
	}
	logf("lifecycle: batch of %d failed (%v); retrying per update", len(updates), err)
	cur := sm
	dirty := map[int]bool{}
	for _, u := range updates {
		n, uerr := cur.Apply([]core.RatingUpdate{u})
		if uerr != nil {
			applyErrs.Inc()
			logf("lifecycle: dropping unappliable update (%d,%d)=%g: %v", u.User, u.Item, u.Value, uerr)
			continue
		}
		for _, s := range n.DirtyShards() {
			dirty[s] = true
		}
		cur = n
	}
	return cur, sortedInts(dirty), nil
}

// Model returns the currently served model.
func (m *Manager) Model() *core.Model { return m.state.Load().sharded.Model() }

// ShardStats returns the per-shard view of the serving model: user and
// rating counts plus apply/retrain activity for every shard.
func (m *Manager) ShardStats() []core.ShardStats { return m.state.Load().sharded.ShardStats() }

// AppliedSeq returns the contiguous applied watermark: every rating with
// a WAL sequence at or below it is folded into the serving model.
func (m *Manager) AppliedSeq() uint64 { return m.state.Load().seq }

// Pending returns the number of journaled-but-unapplied ratings.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// ApplyLag returns the gap between the newest journaled rating sequence
// and the contiguous applied watermark — how far the serving model trails
// the WAL. 0 means every acknowledged rating is folded in; a value that
// grows without bound under steady traffic means the apply loop cannot
// keep up with the submission rate (the loadgen steady scenario asserts
// it drains).
func (m *Manager) ApplyLag() uint64 {
	st := m.state.Load()
	m.mu.Lock()
	maxSeq := m.maxSeq
	m.mu.Unlock()
	if maxSeq <= st.seq {
		return 0
	}
	return maxSeq - st.seq
}

// BootStats reports how the serving model was reconstructed at Open.
func (m *Manager) BootStats() BootStats { return m.boot }

// WALStats exposes the journal's current shape (segment count, last
// sequence, torn bytes dropped at open).
func (m *Manager) WALStats() wal.OpenStats { return m.w.Stats() }

// Submit journals one rating (durable per the fsync policy once this
// returns), routed to the shard its user belongs to, and queues it for
// that shard's next micro-batch. It returns the rating's WAL sequence
// and how many ratings are now pending.
//
//cfsf:wallclock-ok append latency feeds the wal_append_ms histogram only
func (m *Manager) Submit(u core.RatingUpdate) (seq uint64, pending int, err error) {
	if m.closing.Load() {
		return 0, 0, ErrClosed
	}
	shard := m.state.Load().sharded.ShardOf(u.User)
	m.mu.Lock()
	if len(m.pending) >= m.cfg.QueueCapacity {
		m.mu.Unlock()
		m.mQueueFull.Inc()
		return 0, 0, ErrQueueFull
	}
	t := time.Now()
	seq, err = m.w.AppendRating(u, shard)
	if err != nil {
		m.mu.Unlock()
		return 0, 0, err
	}
	m.mAppendLat.Observe(durMS(time.Since(t)))
	m.pending = append(m.pending, pendingUpdate{seq: seq, u: u, shard: shard})
	m.maxSeq = seq
	pending = len(m.pending)
	m.mu.Unlock()

	m.mPending.Set(float64(pending))
	m.mApplyLag.Set(float64(m.ApplyLag()))
	select {
	case m.kick <- struct{}{}:
	default:
	}
	return seq, pending, nil
}

// SubmitBatch journals a batch of ratings as one WAL append group — a
// single write and, under SyncAlways, a single fsync for the whole
// request — then routes each rating to its shard's queue. It returns the
// per-rating WAL sequences (in batch order) and the pending count. The
// batch is all-or-nothing at the queue: if it would overflow
// QueueCapacity, nothing is journaled and ErrQueueFull is returned.
//
//cfsf:wallclock-ok append latency feeds the wal_append_ms histogram only
func (m *Manager) SubmitBatch(ups []core.RatingUpdate) (seqs []uint64, pending int, err error) {
	if m.closing.Load() {
		return nil, 0, ErrClosed
	}
	if len(ups) == 0 {
		return nil, m.Pending(), nil
	}
	st := m.state.Load()
	shards := make([]int, len(ups))
	for i, u := range ups {
		shards[i] = st.sharded.ShardOf(u.User)
	}
	m.mu.Lock()
	if len(m.pending)+len(ups) > m.cfg.QueueCapacity {
		m.mu.Unlock()
		m.mQueueFull.Inc()
		return nil, 0, ErrQueueFull
	}
	t := time.Now()
	seqs, err = m.w.AppendRatings(ups, shards)
	if err != nil {
		m.mu.Unlock()
		return nil, 0, err
	}
	m.mAppendLat.Observe(durMS(time.Since(t)))
	for i, u := range ups {
		m.pending = append(m.pending, pendingUpdate{seq: seqs[i], u: u, shard: shards[i]})
	}
	m.maxSeq = seqs[len(seqs)-1]
	pending = len(m.pending)
	m.mu.Unlock()

	m.mPending.Set(float64(pending))
	m.mApplyLag.Set(float64(m.ApplyLag()))
	select {
	case m.kick <- struct{}{}:
	default:
	}
	return seqs, pending, nil
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// run is the manager loop: it owns every model swap.
func (m *Manager) run() {
	defer close(m.done)

	var syncC, snapC <-chan time.Time
	if m.cfg.Fsync == wal.SyncInterval {
		t := time.NewTicker(m.cfg.FsyncInterval)
		defer t.Stop()
		syncC = t.C
	}
	if m.cfg.SnapshotEvery > 0 {
		t := time.NewTicker(m.cfg.SnapshotEvery)
		defer t.Stop()
		snapC = t.C
	}

	for {
		//cfsf:select-ok only the run loop mutates state, and every apply is journaled with a batch-commit record before the next pick, so replay regroups identically whatever order cases fire
		select {
		case <-m.abortc:
			return
		case <-m.stopc:
			m.applyPending()
			if m.retraining {
				// Let the in-flight retrain finish so its goroutine does
				// not leak; discard the result — Close snapshots the
				// serving model anyway.
				res := <-m.retrainc
				_ = res
			}
			return
		case <-m.kick:
			if m.cfg.BatchMaxWait > 0 {
				time.Sleep(m.cfg.BatchMaxWait) // let a batch coalesce
			}
			m.applyPending()
		case <-syncC:
			if err := m.w.Sync(); err != nil {
				m.cfg.Logf("lifecycle: interval fsync: %v", err)
			}
		case <-snapC:
			go func() {
				if _, err := m.Snapshot(); err != nil {
					m.cfg.Logf("lifecycle: scheduled snapshot: %v", err)
				}
			}()
		case mode := <-m.retrainReq:
			if !m.retraining {
				if mode == "" {
					mode = m.cfg.RetrainMode
				}
				m.startRetrain(mode)
			}
		case res := <-m.retrainc:
			m.finishRetrain(res)
		}
	}
}

// applyPending drains the queue one batch per round. In ApplySerial
// mode each round cuts up to BatchMaxSize pending ratings routed to the
// shard at the head of the queue (oldest first), so a burst confined to
// one user cluster rebuilds only that shard's structures. In
// ApplyConcurrent mode each round cuts a contiguous multi-shard prefix
// — admitting entries from the head until one shard would exceed
// BatchMaxSize — and folds it in a single Apply, so every touched
// shard's rebuild runs inside the same parallel pass. The served model
// is swapped once per batch and a batch-commit record is journaled
// after each swap: a per-shard commit carries its shard id, a grouped
// commit carries shard -1 (which replay already reads as "every queued
// rating at or below Covered" — the exact prefix, since the prefix is
// contiguous in sequence order). Either way crash-replay regroups the
// exact same batches.
//
//cfsf:wallclock-ok apply latency feeds the apply_ms histogram only; batch boundaries come from the queue, not the clock
func (m *Manager) applyPending() {
	for {
		m.mu.Lock()
		if len(m.pending) == 0 {
			m.mu.Unlock()
			m.mPending.Set(0)
			// A forced snapshot (post-retrain) that arrived mid-drain was
			// deferred until the model was complete again; retry it now.
			if m.snapForce.Load() {
				go func() {
					if _, err := m.Snapshot(); err != nil {
						m.cfg.Logf("lifecycle: deferred snapshot: %v", err)
					}
				}()
			}
			return
		}
		var batch []pendingUpdate
		shard := m.pending[0].shard
		if m.cfg.ApplyMode == ApplyConcurrent {
			// Grouped contiguous prefix: stop before the first entry whose
			// shard already contributed a full batch. Contiguity is what
			// makes the shard -1 commit below cover exactly this batch on
			// replay — no entry inside the prefix is left behind.
			shard = -1
			counts := make(map[int]int)
			cut := 0
			for _, p := range m.pending {
				if counts[p.shard] >= m.cfg.BatchMaxSize {
					break
				}
				counts[p.shard]++
				cut++
			}
			batch = append(make([]pendingUpdate, 0, cut), m.pending[:cut]...)
			m.pending = append(m.pending[:0], m.pending[cut:]...)
		} else {
			// Cut the head shard's batch: pending is in sequence order, so
			// the cut is the first BatchMaxSize entries routed to that
			// shard, and every entry of that shard left behind has a later
			// sequence than the batch's commit will cover.
			batch = make([]pendingUpdate, 0, min(len(m.pending), m.cfg.BatchMaxSize))
			kept := m.pending[:0]
			for _, p := range m.pending {
				if p.shard == shard && len(batch) < m.cfg.BatchMaxSize {
					batch = append(batch, p)
				} else {
					kept = append(kept, p)
				}
			}
			m.pending = kept
		}
		m.mu.Unlock()

		n := len(batch)
		updates := make([]core.RatingUpdate, n)
		for i, p := range batch {
			updates[i] = p.u
		}
		lastSeq := batch[n-1].seq

		t := time.Now()
		cur := m.state.Load()
		next, dirty, err := m.applyUpdates(cur.sharded, updates)
		if err != nil {
			// applyUpdates only errors when even per-update fallback is
			// impossible; drop the batch rather than wedge the loop.
			m.mApplyErrs.Add(int64(n))
			m.cfg.Logf("lifecycle: dropping batch of %d: %v", n, err)
			continue
		}
		// A timestamp flip changes every shard blob's wire shape, not just
		// the touched rows — persistence must rewrite them all.
		flip := cur.sharded.Model().Matrix().HasTimes() != next.Model().Matrix().HasTimes()
		g := m.markDirty(dirty, flip, next.NumShards())
		// The watermark only reaches maxSeq once every queue entry below it
		// is applied; between per-shard batches it trails the oldest still-
		// pending rating, and the model is marked incomplete so snapshots
		// wait (see modelState).
		m.mu.Lock()
		st := &modelState{sharded: next, seq: m.maxSeq, complete: true, gen: g}
		if len(m.pending) > 0 {
			st.seq = m.pending[0].seq - 1
			st.complete = false
		}
		m.state.Store(st)
		m.mu.Unlock()
		if _, err := m.w.AppendBatchCommit(lastSeq, shard); err != nil {
			m.cfg.Logf("lifecycle: journal batch commit: %v", err)
		}

		m.mApplyLat.Observe(durMS(time.Since(t)))
		m.mBatchSize.Observe(float64(n))
		m.mApplied.Add(int64(n))
		m.mBatches.Inc()
		m.publishModelGauges()

		if m.retraining {
			m.sinceRetrain = append(m.sinceRetrain, updates...)
		}
		m.driftCount += n
		if m.cfg.RetrainAfter > 0 && m.driftCount >= m.cfg.RetrainAfter && !m.retraining {
			m.startRetrain(m.cfg.RetrainMode)
		}
	}
}

// PublishGauges refreshes the registry's model-shape and queue gauges
// (pending depth, apply-lag, applied seq, WAL position) on demand, so a
// /metrics scrape reads current values rather than whatever the last
// submit or apply left behind.
func (m *Manager) PublishGauges() { m.publishModelGauges() }

// publishModelGauges mirrors the served model's shape into the registry.
func (m *Manager) publishModelGauges() {
	st := m.state.Load()
	mx := st.sharded.Model().Matrix()
	m.reg.Gauge("lifecycle_model_users").Set(float64(mx.NumUsers()))
	m.reg.Gauge("lifecycle_model_items").Set(float64(mx.NumItems()))
	m.reg.Gauge("lifecycle_model_ratings").Set(float64(mx.NumRatings()))
	m.reg.Gauge("lifecycle_shards").Set(float64(st.sharded.NumShards()))
	m.reg.Gauge("lifecycle_applied_seq").Set(float64(st.seq))
	m.reg.Gauge("wal_last_seq").Set(float64(m.w.LastSeq()))
	ws := m.w.Stats()
	m.reg.Gauge("wal_segments").Set(float64(ws.Segments))
	m.reg.Gauge("wal_compactions").Set(float64(ws.Compactions))
	m.reg.Gauge("wal_base_records").Set(float64(ws.BaseRecords))
	m.reg.Gauge("wal_base_bytes").Set(float64(ws.BaseBytes))
	m.mPending.Set(float64(m.Pending()))
	m.mApplyLag.Set(float64(m.ApplyLag()))
}

// startRetrain kicks off a background retrain of the current matrix in a
// goroutine; only the run loop calls it, so the captured state and the
// catch-up buffer stay consistent. Mode "shards" rebuilds the shared GIS
// and then re-fits one shard at a time; "full" is a stop-the-world
// core.Train.
//
//cfsf:wallclock-ok retrain duration feeds the retrain_ms histogram only
func (m *Manager) startRetrain(mode string) {
	st := m.state.Load()
	m.retraining = true
	m.sinceRetrain = nil
	m.reg.Gauge("lifecycle_retraining").Set(1)
	m.cfg.Logf("lifecycle: %s retrain started (%d ratings, %d applied since last train)",
		mode, st.sharded.Model().Matrix().NumRatings(), m.driftCount)
	go func() {
		t := time.Now()
		var res retrainResult
		if mode == RetrainFull {
			cfg := st.sharded.Model().Config()
			if m.cfg.TrainConfig != nil {
				cfg = *m.cfg.TrainConfig
			}
			mod, err := core.Train(st.sharded.Model().Matrix(), cfg)
			if err == nil {
				res.sharded = core.NewSharded(mod)
			}
			res.err = err
		} else {
			// Per-shard sweep: fresh GIS first (incremental GIS refreshes
			// leave truncated neighbour lists of unchanged items stale, so
			// the sweep reads repaired similarities), then one Lloyd
			// re-assignment pass per shard.
			sm := st.sharded.RebuildGIS()
			var err error
			for s := 0; s < sm.NumShards() && err == nil; s++ {
				sm, err = sm.RetrainShard(s)
			}
			res.sharded, res.err = sm, err
		}
		res.duration = time.Since(t)
		m.retrainc <- res
	}()
}

// finishRetrain swaps in the retrained model after folding in whatever
// was applied while it trained, then snapshots so the on-disk state
// reflects the fresh clustering.
func (m *Manager) finishRetrain(res retrainResult) {
	m.retraining = false
	m.reg.Gauge("lifecycle_retraining").Set(0)
	catchUp := m.sinceRetrain
	m.sinceRetrain = nil
	if res.err != nil {
		m.mRetrainErrs.Inc()
		m.cfg.Logf("lifecycle: retrain failed: %v", res.err)
		return
	}
	mod := res.sharded
	if len(catchUp) > 0 {
		next, _, err := m.applyUpdates(mod, catchUp)
		if err != nil {
			m.mRetrainErrs.Inc()
			m.cfg.Logf("lifecycle: retrain catch-up failed, keeping old model: %v", err)
			return
		}
		mod = next
	}
	// A retrain re-fits clustering and rebuilds the GIS: every persisted
	// part is stale.
	g := m.markDirty(nil, true, mod.NumShards())
	cur := m.state.Load() // catch-up covered everything applied so far
	m.state.Store(&modelState{sharded: mod, seq: cur.seq, complete: cur.complete, gen: g})
	m.driftCount = 0
	m.mRetrains.Inc()
	m.mRetrainLat.Observe(durMS(res.duration))
	m.publishModelGauges()
	m.cfg.Logf("lifecycle: retrain complete in %v (+%d caught up)", res.duration.Round(time.Millisecond), len(catchUp))
	// The retrained model replaced the serving one at an unchanged WAL
	// seq; force the snapshot so it isn't skipped as already-covered —
	// until it lands, a crash would recover the pre-retrain lineage.
	m.snapForce.Store(true)
	go func() {
		if _, err := m.Snapshot(); err != nil {
			m.cfg.Logf("lifecycle: post-retrain snapshot: %v", err)
		}
	}()
}

// TriggerRetrain requests a background retrain in the given mode
// (RetrainShards, RetrainFull, or "" for the configured default). It
// reports false when the mode is unknown, a request is already queued,
// or a retrain is in flight.
func (m *Manager) TriggerRetrain(mode string) bool {
	if mode != "" && mode != RetrainShards && mode != RetrainFull {
		return false
	}
	if m.closing.Load() || m.Retraining() {
		return false
	}
	select {
	case m.retrainReq <- mode:
		return true
	default:
		return false
	}
}

// Retraining reports whether a retrain is in flight (best effort — the
// run loop owns the authoritative state).
func (m *Manager) Retraining() bool {
	return m.reg.Gauge("lifecycle_retraining").Value() == 1
}

// Snapshot persists the serving model as an incremental recovery point:
// it writes a blob for every shard dirtied since the previous manifest
// (plus the shared config/GIS/clustering blob), re-references the
// previous manifest's blobs for clean shards, verifies every written
// blob with a read-back self-check, and only then publishes the manifest
// atomically, journals a checkpoint record, prunes retention, and
// shrinks the WAL (deleting covered segments, or folding them into the
// compacted base when compaction is enabled) — a blob that cannot be
// read back bit-for-bit aborts the snapshot and never shrinks the WAL.
// When nothing was applied since the last snapshot, or the model is
// mid-drain (per-shard batching has applied a rating beyond the
// contiguous watermark), it returns Skipped without touching disk.
//
//cfsf:wallclock-ok snapshot duration feeds the snapshot_ms histogram only
func (m *Manager) Snapshot() (SnapshotInfo, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()

	st := m.state.Load()
	if !st.complete {
		return SnapshotInfo{CoveredSeq: st.seq, Skipped: true}, nil
	}
	dir := snapshotDir(m.cfg.DataDir)
	// Nothing dirty at an unchanged watermark means the previous manifest
	// still describes the serving model exactly — except right after a
	// retrain, which replaces the model without advancing the WAL seq.
	// snapForce marks that case.
	force := m.snapForce.Swap(false)
	dirty, sharedDirty := m.dirtyAt(st.gen)
	prev := m.lastManifest
	if !force && prev != nil && prev.Seq == st.seq && len(dirty) == 0 && !sharedDirty {
		return SnapshotInfo{Path: filepath.Join(dir, manifestName(st.seq)), CoveredSeq: st.seq, Skipped: true}, nil
	}

	persisted := false
	if force {
		// If this attempt fails, the retrained model is still only in
		// memory — keep the flag so the next snapshot retries.
		defer func() {
			if !persisted {
				m.snapForce.Store(true)
			}
		}()
	}

	t := time.Now()
	mod := st.sharded.Model()
	numShards := st.sharded.NumShards()

	// Decide what to write: every shard when there is no previous
	// manifest to reuse (first manifest, legacy migration, shard-count
	// change) or after a retrain; otherwise only the dirty ones.
	writeAll := force || prev == nil || len(prev.Shards) != numShards
	writeSet := make(map[int]bool, numShards)
	if writeAll {
		for s := 0; s < numShards; s++ {
			writeSet[s] = true
		}
	} else {
		for _, s := range dirty {
			if s < numShards {
				writeSet[s] = true
			}
		}
	}
	sharedWritten := writeAll || sharedDirty

	man := &manifest{
		Version: manifestVersion,
		Seq:     st.seq,
		Users:   mod.Matrix().NumUsers(),
		Items:   mod.Matrix().NumItems(),
		Shards:  make([]shardBlobRef, numShards),
	}
	var written []string // blob files this snapshot created, for cleanup on failure
	var bytesWritten int64
	fail := func(err error) (SnapshotInfo, error) {
		for _, name := range written {
			_ = os.Remove(filepath.Join(dir, name))
		}
		return SnapshotInfo{}, err
	}
	writeBlob := func(base string, save func(f *os.File) error) (string, error) {
		name := uniqueBlobName(dir, base)
		if err := atomicfile.WriteToAndSync(filepath.Join(dir, name), 0o644, save); err != nil {
			return "", err
		}
		written = append(written, name)
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			bytesWritten += fi.Size()
		}
		return name, nil
	}

	if sharedWritten {
		name, err := writeBlob(fmt.Sprintf("%s%016x", sharedBlobPrefix, st.seq),
			func(f *os.File) error { return mod.SaveSharedBlob(f) })
		if err != nil {
			return fail(fmt.Errorf("lifecycle: write shared blob: %w", err))
		}
		man.Shared = blobRef{File: name, Seq: st.seq}
	} else {
		man.Shared = prev.Shared
	}
	shardsWritten := 0
	for s := 0; s < numShards; s++ {
		if !writeSet[s] {
			man.Shards[s] = prev.Shards[s]
			continue
		}
		shard := s
		name, err := writeBlob(fmt.Sprintf("%s%04d-%016x", shardBlobPrefix, s, st.seq),
			func(f *os.File) error { return mod.SaveShardBlob(f, shard) })
		if err != nil {
			return fail(fmt.Errorf("lifecycle: write shard %d blob: %w", s, err))
		}
		man.Shards[s] = shardBlobRef{ID: s, File: name, Seq: st.seq}
		shardsWritten++
	}

	// Self-check before the manifest may reference the new blobs (and so
	// before anything can shrink the WAL): read every written blob back
	// and demand it reproduce the serving model bit-for-bit. Clean
	// shards' blobs passed this check when they were first written.
	if !m.cfg.SkipSnapshotVerify {
		if err := verifyWrittenParts(dir, man, writeSet, sharedWritten, mod); err != nil {
			m.reg.Counter("lifecycle_snapshot_verify_failures_total").Inc()
			return fail(fmt.Errorf("lifecycle: snapshot at seq %d failed self-check: %w", st.seq, err))
		}
		m.reg.Counter("lifecycle_snapshots_verified_total").Inc()
	}

	// Publish: the manifest rename is the commit point. Overwriting the
	// manifest at an unchanged watermark (post-retrain) is safe because
	// the rewritten blobs got fresh names — the old manifest's blob set
	// stays intact until this rename replaces it.
	manPath := filepath.Join(dir, manifestName(st.seq))
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fail(fmt.Errorf("lifecycle: encode manifest: %w", err))
	}
	if err := atomicfile.WriteAndSync(manPath, manData, 0o644); err != nil {
		return fail(fmt.Errorf("lifecycle: publish manifest: %w", err))
	}
	persisted = true
	m.lastManifest = man
	m.clearDirty(st.gen)

	if ckptSeq, err := m.w.AppendCheckpoint(st.seq); err != nil {
		m.cfg.Logf("lifecycle: journal checkpoint: %v", err)
	} else {
		m.lastCkptSeq.Store(ckptSeq)
	}
	m.pruneDurablePoints()
	// Shrink the WAL below the oldest retained point, not below this
	// snapshot: older manifests must keep their tail replay (and their
	// shard blobs their patch window) until retention drops them.
	if m.cfg.CompactEnabled {
		m.compactLocked(false)
	} else if n, err := m.w.Prune(m.oldestRetainedPointSeq()); err != nil {
		m.cfg.Logf("lifecycle: prune wal: %v", err)
	} else if n > 0 {
		m.reg.Counter("wal_segments_pruned_total").Add(int64(n))
	}

	info := SnapshotInfo{
		Path: manPath, CoveredSeq: st.seq, Bytes: bytesWritten, Duration: time.Since(t),
		ShardsWritten: shardsWritten, ShardsClean: numShards - shardsWritten, SharedWritten: sharedWritten,
	}
	info.DurationMS = durMS(info.Duration)
	m.lastSnap.Store(&info)
	m.mSnapshots.Inc()
	m.mSnapLat.Observe(durMS(info.Duration))
	m.reg.Counter("lifecycle_shard_blobs_written_total").Add(int64(shardsWritten))
	m.reg.Counter("lifecycle_shard_blobs_skipped_clean_total").Add(int64(numShards - shardsWritten))
	m.reg.Gauge("lifecycle_snapshot_seq").Set(float64(st.seq))
	m.cfg.Logf("lifecycle: snapshot %s (%d bytes, covers seq %d, %d/%d shard blobs written) in %v",
		filepath.Base(manPath), bytesWritten, st.seq, shardsWritten, numShards, info.Duration.Round(time.Millisecond))
	return info, nil
}

// compactLocked runs one WAL compaction pass under snapMu: fold
// checkpoint-covered segments into the compacted base, deduping below
// the oldest sequence any retained recovery point still needs.
//
//cfsf:locked snapMu the fold boundary and dedupe horizon must not race a snapshot or retention pass
func (m *Manager) compactLocked(force bool) (wal.CompactStats, error) {
	if !force && m.w.Stats().Segments < m.cfg.CompactMinSegments {
		return wal.CompactStats{}, nil
	}
	cs, err := m.w.Compact(m.lastCkptSeq.Load(), m.oldestRetainedSeq(), force)
	if err != nil {
		m.cfg.Logf("lifecycle: compact wal: %v", err)
		return cs, err
	}
	if cs.SegmentsFolded > 0 {
		m.reg.Counter("wal_segments_compacted_total").Add(int64(cs.SegmentsFolded))
		m.reg.Counter("wal_compacted_cells_dropped_total").Add(int64(cs.DroppedCells))
	}
	return cs, nil
}

// Compact runs a WAL compaction pass on demand (the /admin/compact
// endpoint): sealed segments covered by the newest checkpoint fold into
// the compacted base. With force set, the pass runs even below the
// configured segment threshold and rewrites the base alone when no
// segment is foldable (re-deduping under an advanced horizon).
func (m *Manager) Compact(force bool) (wal.CompactStats, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.compactLocked(force)
}

// SnapshotStats returns what the most recent non-skipped snapshot wrote
// (zero value before the first one this run).
func (m *Manager) SnapshotStats() SnapshotInfo {
	if p := m.lastSnap.Load(); p != nil {
		return *p
	}
	return SnapshotInfo{}
}

// Close drains the queue (every journaled rating is applied), waits for
// any in-flight retrain, snapshots the final state, and closes the WAL.
func (m *Manager) Close() error {
	if !m.closing.CompareAndSwap(false, true) {
		<-m.done
		return nil
	}
	close(m.stopc)
	<-m.done
	if _, err := m.Snapshot(); err != nil {
		m.cfg.Logf("lifecycle: final snapshot: %v", err)
	}
	return m.w.Close()
}

// Abort is the crash-simulation counterpart of Close: it stops the loop
// without draining, snapshotting, or syncing — recovery tests use it to
// model a SIGKILL. Journaled-but-unapplied ratings are recovered from
// the WAL on the next Open.
func (m *Manager) Abort() {
	if !m.closing.CompareAndSwap(false, true) {
		return
	}
	close(m.abortc)
	<-m.done
	_ = m.w.CloseAbrupt()
}
