package lifecycle

import (
	"testing"

	"cfsf/internal/core"
	"cfsf/internal/wal"
)

// The pair below quantifies the tentpole's throughput claim: folding k
// ratings per model rebuild amortises the O(nnz) refresh, so
// per-update cost drops roughly linearly with batch size. Compare
// ns/op: both benchmarks report time per *update*, not per rebuild.

func benchUpdates(n int) []core.RatingUpdate {
	ups := make([]core.RatingUpdate, n)
	for i := range ups {
		ups[i] = testUpdate(i)
	}
	return ups
}

func BenchmarkApplyPerRequest(b *testing.B) {
	base := newBaseModel(b)
	ups := benchUpdates(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := base
		var err error
		for _, u := range ups {
			if cur, err = cur.WithUpdates([]core.RatingUpdate{u}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

func BenchmarkApplyMicroBatch64(b *testing.B) {
	base := newBaseModel(b)
	ups := benchUpdates(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.WithUpdates(ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
}

// BenchmarkConcurrentApply compares the two ApplyMode drain strategies
// on the same multi-shard burst: "serial" folds one per-shard micro-batch
// at a time (sequential Apply calls, one per shard group), "concurrent"
// folds the whole prefix in a single Apply whose rebuild passes
// parallelise across the touched shards. Both report time per update.
func BenchmarkConcurrentApply(b *testing.B) {
	base := newBaseModel(b)
	ups := benchUpdates(64)

	b.Run("mode=serial", func(b *testing.B) {
		groups := shardGroups(base, ups, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur := core.NewSharded(base)
			var err error
			for _, g := range groups {
				if cur, err = cur.Apply(g); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
	})

	b.Run("mode=concurrent", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSharded(base).Apply(ups); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ups)), "ns/update")
	})
}

func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		sync wal.SyncPolicy
	}{{"fsync=never", wal.SyncNever}, {"fsync=always", wal.SyncAlways}} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := wal.Open(b.TempDir(), wal.Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			u := testUpdate(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.AppendRating(u, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
