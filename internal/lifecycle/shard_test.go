package lifecycle

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/wal"
)

// shardGroups mirrors applyPending's batching on a plain update list:
// repeatedly cut the first batchMax entries routed to the shard at the
// head of the queue. The returned groups are exactly the per-shard
// micro-batches the manager applies (and journals commits for).
func shardGroups(base *core.Model, ups []core.RatingUpdate, batchMax int) [][]core.RatingUpdate {
	router := core.NewSharded(base)
	type entry struct {
		u     core.RatingUpdate
		shard int
	}
	pending := make([]entry, len(ups))
	for i, u := range ups {
		pending[i] = entry{u: u, shard: router.ShardOf(u.User)}
	}
	var groups [][]core.RatingUpdate
	for len(pending) > 0 {
		shard := pending[0].shard
		var batch []core.RatingUpdate
		kept := pending[:0]
		for _, p := range pending {
			if p.shard == shard && len(batch) < batchMax {
				batch = append(batch, p.u)
			} else {
				kept = append(kept, p)
			}
		}
		pending = kept
		groups = append(groups, batch)
	}
	return groups
}

// TestShardedBatchParityAndRecovery is the sharding acceptance test: a
// batch of ratings spanning several shards, ingested through SubmitBatch
// and folded in per-shard micro-batches, must produce — live, and again
// after a kill-and-reboot replay — exactly the model that monolithic
// WithUpdates calls over the same per-shard groups produce.
func TestShardedBatchParityAndRecovery(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	a, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncAlways,
		BatchMaxWait: 200 * time.Millisecond, // whole batch pending before the drain
	})
	if err != nil {
		t.Fatal(err)
	}

	ups := make([]core.RatingUpdate, 12)
	for i := range ups {
		ups[i] = testUpdate(i)
	}
	seqs, pending, err := a.SubmitBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(ups) || pending != len(ups) {
		t.Fatalf("SubmitBatch returned %d seqs, %d pending; want %d each", len(seqs), pending, len(ups))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("seqs not consecutive: %v", seqs)
		}
	}
	last := seqs[len(seqs)-1]
	waitUntil(t, "batch applied", func() bool { return a.AppliedSeq() >= last })

	// Comparator: monolithic WithUpdates over the same per-shard groups.
	groups := shardGroups(base, ups, 256)
	if len(groups) < 2 {
		t.Fatalf("test updates all routed to one shard (%d group); widen the spread", len(groups))
	}
	comparator := base
	for _, g := range groups {
		if comparator, err = comparator.WithUpdates(g); err != nil {
			t.Fatal(err)
		}
	}
	want := predictions(comparator)
	samePredictions(t, "sharded live vs monolithic groups", want, predictions(a.Model()))
	if batches := a.reg.Counter("lifecycle_batches_total").Value(); batches != int64(len(groups)) {
		t.Errorf("manager used %d batches, expected %d per-shard groups", batches, len(groups))
	}

	// Per-shard stats: every touched shard saw at least one apply.
	touched := 0
	for _, st := range a.ShardStats() {
		if st.Applies > 0 {
			touched++
			if st.Applied == 0 || st.LastApplyMS < 0 {
				t.Errorf("shard %d: applies=%d but applied=%d", st.ID, st.Applies, st.Applied)
			}
		}
	}
	if touched != len(groups) {
		t.Errorf("%d shards saw applies, expected %d", touched, len(groups))
	}

	a.Abort() // SIGKILL stand-in

	b, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bs := b.BootStats()
	if bs.ReplayedRecords != len(ups) || bs.ReplayedBatches != len(groups) {
		t.Fatalf("replayed %d records in %d batches, want %d in %d",
			bs.ReplayedRecords, bs.ReplayedBatches, len(ups), len(groups))
	}
	samePredictions(t, "recovered vs monolithic groups", want, predictions(b.Model()))
}

// TestSubmitBatchAtomicity: one SubmitBatch is one WAL append group with
// consecutive sequences, an empty batch is a no-op, and a batch that
// would overflow the queue is rejected whole — nothing journaled, so the
// next submission's sequence proves the WAL never saw it.
func TestSubmitBatchAtomicity(t *testing.T) {
	base := newBaseModel(t)
	m, err := Open(bootWith(base), Config{
		DataDir:       t.TempDir(),
		Fsync:         wal.SyncNever,
		QueueCapacity: 4,
		BatchMaxWait:  500 * time.Millisecond, // keep the queue occupied
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if seqs, _, err := m.SubmitBatch(nil); err != nil || len(seqs) != 0 {
		t.Fatalf("empty batch = (%v, %v), want no-op", seqs, err)
	}

	seqs, pending, err := m.SubmitBatch([]core.RatingUpdate{testUpdate(0), testUpdate(1), testUpdate(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || pending != 3 {
		t.Fatalf("batch of 3 = (%v, %d)", seqs, pending)
	}

	// 3 pending + 2 > capacity 4: rejected atomically.
	if _, _, err := m.SubmitBatch([]core.RatingUpdate{testUpdate(3), testUpdate(4)}); err != ErrQueueFull {
		t.Fatalf("overflow batch = %v, want ErrQueueFull", err)
	}
	if got := m.reg.Counter("lifecycle_queue_full_total").Value(); got != 1 {
		t.Errorf("queue_full counter = %d, want 1", got)
	}

	// The rejected batch journaled nothing: the next rating continues
	// directly after the accepted batch.
	seq, _, err := m.Submit(testUpdate(5))
	if err != nil {
		t.Fatal(err)
	}
	if want := seqs[2] + 1; seq != want {
		t.Fatalf("post-rejection seq = %d, want %d (rejected batch leaked into the WAL)", seq, want)
	}
}

// TestShardRetrainMode: the default background retrain is the per-shard
// sweep — every shard records a retrain pass, the serving model keeps
// answering, and unknown modes are refused outright.
func TestShardRetrainMode(t *testing.T) {
	base := newBaseModel(t)
	m, err := Open(bootWith(base), Config{
		DataDir:      t.TempDir(),
		Fsync:        wal.SyncNever,
		RetrainAfter: 4, // default RetrainMode: "shards"
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 4; i++ {
		seq, _, err := m.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return m.AppliedSeq() >= seq })
	}
	waitUntil(t, "per-shard retrain", func() bool {
		return m.reg.Counter("lifecycle_retrains_total").Value() >= 1
	})
	waitUntil(t, "sweep visited every shard", func() bool {
		for _, st := range m.ShardStats() {
			if st.Retrains < 1 {
				return false
			}
		}
		return true
	})
	mod := m.Model()
	if got := mod.Predict(0, 0); got < mod.Matrix().MinRating() || got > mod.Matrix().MaxRating() {
		t.Errorf("post-sweep prediction %v outside rating scale", got)
	}

	if m.TriggerRetrain("bogus") {
		t.Error("unknown retrain mode accepted")
	}
}

// TestBootSkipsBadSnapshot: a newest snapshot that cannot be decoded
// (torn write, unknown wire version) must not take the boot down — the
// manager falls back to the next older verified snapshot and replays the
// WAL tail from there, bit-for-bit. With nothing to fall back to and no
// bootstrap, Open fails loudly instead of serving garbage.
func TestBootSkipsBadSnapshot(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	a, err := Open(bootWith(base), Config{DataDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, _, err := a.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return a.AppliedSeq() >= seq })
	}
	info, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped {
		t.Fatalf("snapshot skipped: %+v", info)
	}
	goodSnap := filepath.Base(info.Path)
	if got := a.reg.Counter("lifecycle_snapshots_verified_total").Value(); got < 1 {
		t.Fatalf("snapshot self-check never ran (verified=%d)", got)
	}
	// Two more ratings land in the WAL only (no snapshot covers them).
	for i := 3; i < 5; i++ {
		seq, _, err := a.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return a.AppliedSeq() >= seq })
	}
	want := predictions(a.Model())
	a.Abort()

	// Plant a garbage "snapshot" claiming to be the newest.
	bad := filepath.Join(snapshotDir(dir), snapName(99))
	if err := os.WriteFile(bad, []byte("v99 model from the future"), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bs := b.BootStats()
	if filepath.Base(bs.SnapshotLoaded) != goodSnap {
		t.Fatalf("boot loaded %q, want fallback to %q", bs.SnapshotLoaded, goodSnap)
	}
	if bs.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records from the good snapshot, want 2", bs.ReplayedRecords)
	}
	if got := b.reg.Counter("lifecycle_snapshot_load_failures_total").Value(); got != 1 {
		t.Errorf("load_failures counter = %d, want 1", got)
	}
	samePredictions(t, "fallback recovery", want, predictions(b.Model()))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Only a bad snapshot and no bootstrap: refuse to boot.
	dir2 := t.TempDir()
	if err := os.MkdirAll(snapshotDir(dir2), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapshotDir(dir2), snapName(1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(nil, Config{DataDir: dir2}); err == nil || !strings.Contains(err.Error(), "no loadable snapshot") {
		t.Fatalf("boot from garbage-only dir = %v, want refusal", err)
	}
}
