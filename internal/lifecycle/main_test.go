package lifecycle

import (
	"os"
	"testing"

	"cfsf/internal/leakcheck"
)

// TestMain fails the package if a manager run loop or retrain worker
// outlives the tests that started it.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
