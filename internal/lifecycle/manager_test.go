package lifecycle

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/synth"
	"cfsf/internal/wal"
)

// newBaseModel trains a compact model for lifecycle tests.
func newBaseModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 40
	cfg.Items = 50
	cfg.MinPerUser = 8
	cfg.MeanPerUser = 12
	cfg.Archetypes = 4
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.M = 8
	mcfg.K = 4
	mcfg.Clusters = 4
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func bootWith(mod *core.Model) func() (*core.Model, error) {
	return func() (*core.Model, error) { return mod, nil }
}

func noBoot(t *testing.T) func() (*core.Model, error) {
	return func() (*core.Model, error) {
		t.Fatal("bootstrap called although a snapshot exists")
		return nil, nil
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// predictions samples the full user×item grid; exact float64 values.
func predictions(mod *core.Model) []float64 {
	m := mod.Matrix()
	out := make([]float64, 0, m.NumUsers()*m.NumItems())
	for u := 0; u < m.NumUsers(); u++ {
		for i := 0; i < m.NumItems(); i++ {
			out = append(out, mod.Predict(u, i))
		}
	}
	return out
}

func samePredictions(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: grid size %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: prediction %d differs: %v vs %v (not bit-for-bit)", label, i, want[i], got[i])
		}
	}
}

func testUpdate(i int) core.RatingUpdate {
	// Mix of revised ratings for existing cells and a fresh user/item.
	return core.RatingUpdate{User: i % 41, Item: i % 50, Value: float64(i%5) + 1}
}

// TestKillAndRebootBitForBit is the acceptance-criteria test: a manager
// fed k ratings and killed without any shutdown path recovers — from
// snapshot plus WAL-tail replay — to a model whose predictions equal the
// uninterrupted run exactly.
func TestKillAndRebootBitForBit(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	a, err := Open(bootWith(base), Config{DataDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if a.BootStats().SnapshotLoaded != "" {
		t.Fatal("fresh boot claims to have loaded a snapshot")
	}

	// Feed k ratings, waiting for each to apply so every micro-batch is
	// a deterministic singleton — the comparator below mirrors that.
	const k = 6
	uninterrupted := base
	for i := 0; i < k; i++ {
		u := testUpdate(i)
		seq, _, err := a.Submit(u)
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return a.AppliedSeq() >= seq })
		if uninterrupted, err = uninterrupted.WithUpdates([]core.RatingUpdate{u}); err != nil {
			t.Fatal(err)
		}
	}
	want := predictions(uninterrupted)
	samePredictions(t, "live manager vs uninterrupted", want, predictions(a.Model()))

	a.Abort() // SIGKILL stand-in: no drain, no final snapshot, no fsync

	b, err := Open(noBoot(t), Config{DataDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	bs := b.BootStats()
	if bs.SnapshotLoaded == "" {
		t.Fatal("recovery did not start from a snapshot")
	}
	if bs.ReplayedRecords != k || bs.ReplayedBatches != k {
		t.Fatalf("replayed %d records in %d batches, want %d singleton batches", bs.ReplayedRecords, bs.ReplayedBatches, k)
	}
	samePredictions(t, "recovered vs uninterrupted", want, predictions(b.Model()))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Third boot starts from the snapshot the recovery re-anchored (or
	// the close wrote) and replays nothing — and still matches.
	c, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BootStats().ReplayedRecords; got != 0 {
		t.Errorf("third boot replayed %d records, want 0", got)
	}
	samePredictions(t, "snapshot-only boot vs uninterrupted", want, predictions(c.Model()))
	c.Close()
}

// TestKillAndRebootServesSameRankings is the Recommend-cache variant of
// the kill-and-reboot acceptance test: a manager whose serving model has
// a warm per-user recommendation cache (carried and repaired across the
// micro-batches) is killed without any shutdown path, and the recovered
// process — whose replayed model starts cache-cold by construction —
// must serve exactly the same rankings, both on its first (exact) read
// and on the repeat (cached) read.
func TestKillAndRebootServesSameRankings(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	a, err := Open(bootWith(base), Config{DataDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	p := base.Matrix().NumUsers()
	users := []int{0, 7, 19, 33, p - 1}
	// Warm the cache, then keep reading between applies so entries are
	// carried and repaired rather than rebuilt from cold.
	for _, u := range users {
		a.Model().Recommend(u, 10)
	}
	for i := 0; i < 6; i++ {
		seq, _, err := a.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return a.AppliedSeq() >= seq })
		for _, u := range users {
			a.Model().Recommend(u, 10)
		}
	}
	rankings := func(mod *core.Model) [][]core.Recommendation {
		out := make([][]core.Recommendation, len(users))
		for i, u := range users {
			out[i] = mod.Recommend(u, 10)
		}
		return out
	}
	want := rankings(a.Model()) // served through the warm cache

	a.Abort() // SIGKILL stand-in

	b, err := Open(noBoot(t), Config{DataDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sameRankings := func(label string, got [][]core.Recommendation) {
		t.Helper()
		for i := range users {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s: user %d got %d recs, want %d", label, users[i], len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s: user %d rank %d: got %+v want %+v", label, users[i], j, got[i][j], want[i][j])
				}
			}
		}
	}
	sameRankings("first read after replay (exact path)", rankings(b.Model()))
	sameRankings("second read after replay (cached path)", rankings(b.Model()))
}

// TestRecoveryGroupsBatchesBySeq reconstructs the exact micro-batches of
// a previous run from its batch-commit records, including a journaled
// but never-committed tail, which replays as one final batch.
func TestRecoveryGroupsBatchesBySeq(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	// Fabricate a WAL by hand: batch [1,2] committed, tail [3,4,5] not.
	w, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ups []core.RatingUpdate
	for i := 0; i < 5; i++ {
		ups = append(ups, testUpdate(i))
	}
	for _, u := range ups[:2] {
		if _, err := w.AppendRating(u, -1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.AppendBatchCommit(2, -1); err != nil {
		t.Fatal(err)
	}
	for _, u := range ups[2:] {
		if _, err := w.AppendRating(u, -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(bootWith(base), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bs := m.BootStats()
	if bs.ReplayedRecords != 5 || bs.ReplayedBatches != 2 {
		t.Fatalf("replayed %d records in %d batches, want 5 in 2", bs.ReplayedRecords, bs.ReplayedBatches)
	}

	first, err := base.WithUpdates(ups[:2])
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.WithUpdates(ups[2:])
	if err != nil {
		t.Fatal(err)
	}
	samePredictions(t, "grouped replay", predictions(want), predictions(m.Model()))
}

// TestCloseDrainsAndReanchors: Close applies every journaled rating and
// writes a final snapshot, so the next boot replays nothing.
func TestCloseDrainsAndReanchors(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	a, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncNever,
		BatchMaxWait: 300 * time.Millisecond, // keep submissions pending until Close
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		if lastSeq, _, err = a.Submit(testUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := a.AppliedSeq(); got != lastSeq {
		t.Fatalf("close drained through seq %d, want %d", got, lastSeq)
	}

	b, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if bs := b.BootStats(); bs.ReplayedRecords != 0 || bs.SnapshotLoaded == "" {
		t.Fatalf("boot after clean close = %+v, want snapshot only", bs)
	}
	if got := b.Model().Matrix().NumRatings(); got <= base.Matrix().NumRatings() {
		t.Fatalf("drained ratings missing after reboot: %d ratings", got)
	}
}

// TestMicroBatchingThroughput is the acceptance-criteria stress test:
// folding a rating stream in micro-batches must beat the per-request
// rebuild baseline, and a manager under concurrent load must actually
// coalesce (fewer batches than submissions).
func TestMicroBatchingThroughput(t *testing.T) {
	base := newBaseModel(t)
	const n = 48

	start := time.Now()
	cur := base
	for i := 0; i < n; i++ {
		var err error
		if cur, err = cur.WithUpdates([]core.RatingUpdate{testUpdate(i)}); err != nil {
			t.Fatal(err)
		}
	}
	perRequest := time.Since(start)

	start = time.Now()
	cur = base
	for lo := 0; lo < n; lo += 16 {
		batch := make([]core.RatingUpdate, 0, 16)
		for i := lo; i < lo+16; i++ {
			batch = append(batch, testUpdate(i))
		}
		var err error
		if cur, err = cur.WithUpdates(batch); err != nil {
			t.Fatal(err)
		}
	}
	batched := time.Since(start)

	t.Logf("%d updates: per-request %v, micro-batched(16) %v (%.1fx)",
		n, perRequest, batched, float64(perRequest)/float64(batched))
	if batched >= perRequest {
		t.Errorf("micro-batching (%v) not faster than per-request rebuilds (%v)", batched, perRequest)
	}

	// And through the manager: concurrent submissions coalesce.
	m, err := Open(bootWith(base), Config{
		DataDir:      t.TempDir(),
		Fsync:        wal.SyncNever,
		BatchMaxWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var last uint64
	for i := 0; i < 32; i++ {
		if last, _, err = m.Submit(testUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "batch drained", func() bool { return m.AppliedSeq() >= last })
	batches := m.reg.Counter("lifecycle_batches_total").Value()
	if batches >= 32 {
		t.Errorf("32 submissions took %d batches; micro-batching never coalesced", batches)
	}
	if applied := m.reg.Counter("lifecycle_applied_total").Value(); applied != 32 {
		t.Errorf("applied counter = %d, want 32", applied)
	}
	t.Logf("manager coalesced 32 submissions into %d batch(es)", batches)
}

func TestQueueFullShedsLoad(t *testing.T) {
	base := newBaseModel(t)
	m, err := Open(bootWith(base), Config{
		DataDir:       t.TempDir(),
		Fsync:         wal.SyncNever,
		QueueCapacity: 2,
		BatchMaxWait:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit(testUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := m.Submit(testUpdate(2)); err != ErrQueueFull {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if got := m.reg.Counter("lifecycle_queue_full_total").Value(); got != 1 {
		t.Errorf("queue_full counter = %d, want 1", got)
	}
}

// TestRetrainAfterDrift: once RetrainAfter updates are applied, a full
// background retrain runs, swaps in without blocking, and re-anchors a
// snapshot of the fresh clustering.
func TestRetrainAfterDrift(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	m, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncNever,
		RetrainAfter: 4,
		// This test pins the legacy stop-the-world retrain: it asserts the
		// swapped-in model is a fresh KMeans fit (ClusterIters > 0), which
		// the per-shard sweep deliberately avoids.
		RetrainMode: RetrainFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Exactly RetrainAfter updates: the retrain starts at the threshold
	// with an empty catch-up buffer, so the swapped-in model is the pure
	// Train result (any later submission would be folded in via
	// WithUpdates and flip Stats().Incremental back on).
	for i := 0; i < 4; i++ {
		seq, _, err := m.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return m.AppliedSeq() >= seq })
	}
	waitUntil(t, "drift retrain", func() bool { return m.reg.Counter("lifecycle_retrains_total").Value() >= 1 })
	waitUntil(t, "retrained model swapped in", func() bool {
		st := m.Model().Stats()
		return !st.Incremental && st.ClusterIters > 0
	})
	// The post-retrain snapshot re-anchors durability at the applied seq.
	waitUntil(t, "post-retrain snapshot", func() bool {
		_, seq, err := latestSnapshot(dir)
		return err == nil && seq == m.AppliedSeq()
	})

	// A manual trigger works too, and reports conflict while running.
	if !m.TriggerRetrain("") {
		t.Fatal("manual retrain trigger refused while idle")
	}
	waitUntil(t, "manual retrain", func() bool { return m.reg.Counter("lifecycle_retrains_total").Value() >= 2 })
}

// TestPostRetrainSnapshotNotSkipped pins a durability bug: a retrain
// replaces the model without advancing the WAL seq, so if a snapshot
// file already covered that seq the post-retrain snapshot used to be
// skipped as redundant — leaving the retrained model with an unbounded
// window in which a crash silently recovered the pre-retrain lineage.
func TestPostRetrainSnapshotNotSkipped(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	m, err := Open(bootWith(base), Config{DataDir: dir, Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, _, err := m.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "update applied", func() bool { return m.AppliedSeq() >= seq })
	}
	// A manual snapshot now covers the current seq...
	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Skipped {
		t.Fatalf("setup snapshot skipped: %+v", info)
	}
	// ...which must not stop the post-retrain snapshot from overwriting it.
	writes := m.reg.Counter("lifecycle_snapshots_total").Value()
	if !m.TriggerRetrain("") {
		t.Fatal("retrain trigger refused")
	}
	waitUntil(t, "post-retrain snapshot write", func() bool {
		return m.reg.Counter("lifecycle_snapshots_total").Value() > writes
	})
	want := predictions(m.Model()) // the retrained serving model
	m.Abort()

	b, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	samePredictions(t, "recovered retrained model", want, predictions(b.Model()))
}

func TestSnapshotSkipAndPrune(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	m, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncNever,
		SnapshotKeep: 1,
		SegmentBytes: 128, // rotate aggressively so pruning has work
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Nothing applied since the boot snapshot: skipped, no new file.
	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Skipped {
		t.Errorf("idle snapshot not skipped: %+v", info)
	}

	for round := 1; round <= 2; round++ {
		for i := 0; i < 6; i++ {
			seq, _, err := m.Submit(testUpdate(round*6 + i))
			if err != nil {
				t.Fatal(err)
			}
			waitUntil(t, "update applied", func() bool { return m.AppliedSeq() >= seq })
		}
		info, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if info.Skipped || info.Bytes == 0 {
			t.Fatalf("snapshot round %d: %+v", round, info)
		}
		files, err := filepath.Glob(filepath.Join(dir, "snapshots", "manifest-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != 1 {
			t.Errorf("round %d: %d manifests retained, want 1 (%v)", round, len(files), files)
		}
		// Blob GC keeps only files the retained manifest references.
		blobs, _ := filepath.Glob(filepath.Join(dir, "snapshots", "*.blob"))
		man, err := readManifest(files[0])
		if err != nil {
			t.Fatal(err)
		}
		referenced := map[string]bool{man.Shared.File: true}
		for _, ref := range man.Shards {
			referenced[ref.File] = true
		}
		if len(blobs) != len(referenced) {
			t.Errorf("round %d: %d blobs on disk, manifest references %d (%v)", round, len(blobs), len(referenced), blobs)
		}
		for _, b := range blobs {
			if !referenced[filepath.Base(b)] {
				t.Errorf("round %d: unreferenced blob %s survived GC", round, filepath.Base(b))
			}
		}
	}
	// Segments below the checkpoint were pruned; only the live tail stays.
	if segs := m.WALStats().Segments; segs > 2 {
		t.Errorf("%d WAL segments after checkpointing, want pruned to <= 2", segs)
	}
	// The WAL directory agrees (prune really deleted files).
	segFiles, _ := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if len(segFiles) > 2 {
		t.Errorf("%d segment files on disk after prune", len(segFiles))
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	base := newBaseModel(t)
	m, err := Open(bootWith(base), Config{DataDir: t.TempDir(), Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(testUpdate(0)); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	// Idempotent close/abort.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m.Abort()
	_ = os.RemoveAll(filepath.Join(t.TempDir()))
}
