package lifecycle

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"cfsf/internal/core"
	"cfsf/internal/wal"
)

// TestKillRebootParityMatrix is the tentpole acceptance test: randomized
// apply streams, snapshotted incrementally (so each manifest rewrites a
// different dirty-shard subset), killed without shutdown, and rebooted —
// across (compaction on/off) × (per-shard blob fallback engaged or not) —
// must recover predictions bit-for-bit. The fallback cells corrupt one
// shard blob the newest manifest rewrote, forcing boot to patch that
// shard from an older manifest's blob plus commit-aware WAL replay while
// still using the newest manifest for everything else.
func TestKillRebootParityMatrix(t *testing.T) {
	base := newBaseModel(t)
	for _, tc := range []struct {
		name             string
		compact, corrupt bool
	}{
		{"compact=off", false, false},
		{"compact=on", true, false},
		{"compact=off/shard-fallback", false, true},
		{"compact=on/shard-fallback", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			scenario := func(seed uint16) bool {
				return killRebootScenario(t, base, int64(seed), tc.compact, tc.corrupt)
			}
			if err := quick.Check(scenario, &quick.Config{MaxCount: 3}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func killRebootScenario(t *testing.T, base *core.Model, seed int64, compact, corrupt bool) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	cfg := Config{
		DataDir:            dir,
		Fsync:              wal.SyncNever,
		SegmentBytes:       2048, // rotate often so compaction has segments to fold
		SnapshotKeep:       2,    // fallback needs an older manifest to patch from
		CompactEnabled:     compact,
		CompactMinSegments: 2,
	}
	m, err := Open(bootWith(base), cfg)
	if err != nil {
		t.Fatal(err)
	}

	submit := func(n int) {
		var last uint64
		for k := 0; k < n; k++ {
			up := core.RatingUpdate{
				User:  rng.Intn(41),
				Item:  rng.Intn(50),
				Value: float64(rng.Intn(5) + 1),
			}
			seq, _, err := m.Submit(up)
			if err != nil {
				t.Fatal(err)
			}
			last = seq
		}
		waitUntil(t, "updates applied", func() bool { return m.AppliedSeq() >= last })
	}

	// Several submit+snapshot phases: each phase dirties a random user
	// subset, so successive manifests rewrite different shard subsets and
	// re-reference the rest.
	phases := 2 + rng.Intn(3)
	for p := 0; p < phases; p++ {
		submit(5 + rng.Intn(40))
		if _, err := m.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	// An unsnapshotted tail the reboot must replay from the WAL.
	if tail := rng.Intn(20); tail > 0 {
		submit(tail)
	}
	want := predictions(m.Model())
	m.Abort() // SIGKILL stand-in

	wantLoaded := ""
	if corrupt {
		wantLoaded = corruptOneRewrittenShardBlob(t, dir)
		if wantLoaded == "" {
			return true // no shard rewritten in the newest manifest this round; nothing to corrupt
		}
	}

	b, err := Open(noBoot(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if corrupt {
		// The fallback must have engaged — and on the newest manifest, not
		// by discarding it for the older one.
		if got := filepath.Base(b.BootStats().SnapshotLoaded); got != wantLoaded {
			t.Fatalf("boot loaded %q, want the corrupted-but-patchable manifest %q", got, wantLoaded)
		}
		if n := b.reg.Counter("lifecycle_shard_blob_failures_total").Value(); n < 1 {
			t.Fatalf("shard blob failure counter = %d, want >= 1 (fallback never ran)", n)
		}
	}
	samePredictions(t, "recovered vs pre-kill", want, predictions(b.Model()))
	return true
}

// corruptOneRewrittenShardBlob truncates one shard blob that the newest
// manifest rewrote (its file differs from the previous manifest's ref for
// the same shard, so the older blob survives as patch material). Returns
// the newest manifest's base name, or "" when every shard was clean.
func corruptOneRewrittenShardBlob(t *testing.T, dataDir string) string {
	t.Helper()
	points, err := listDurablePoints(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	var mans []*manifest
	var names []string
	for _, pt := range points {
		if !pt.manifest {
			continue
		}
		man, err := readManifest(pt.path)
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, man)
		names = append(names, filepath.Base(pt.path))
	}
	if len(mans) < 2 {
		return ""
	}
	newest, older := mans[0], mans[1]
	shared, err := loadSharedBlobFile(filepath.Join(snapshotDir(dataDir), newest.Shared.File))
	if err != nil {
		t.Fatal(err)
	}
	for s, ref := range newest.Shards {
		if s >= len(older.Shards) || older.Shards[s].File == ref.File {
			continue // clean ref shared with the older manifest: corrupting it would sink both
		}
		if older.Shards[s].Seq < older.Seq {
			// The patch-source blob predates the older manifest itself;
			// retention only guarantees WAL coverage from the oldest
			// point's watermark, so patching this one may be refused.
			continue
		}
		// Membership churn between the manifests can make the older blob
		// unable to express the shard's current member set (a user
		// re-clustered in, whose full row the WAL tail cannot rebuild) —
		// recovery then correctly degrades to whole-point fallback. Pick a
		// shard where per-shard patching is actually possible.
		part, err := loadShardBlobFile(filepath.Join(snapshotDir(dataDir), older.Shards[s].File))
		if err != nil {
			t.Fatal(err)
		}
		inOld := map[int]bool{}
		for _, u := range part.Users {
			inOld[u] = true
		}
		compatible := true
		for _, u := range shared.Members(s) {
			if !inOld[u] && u < part.NumUsersAtWrite {
				compatible = false
				break
			}
		}
		if !compatible {
			continue
		}
		path := filepath.Join(snapshotDir(dataDir), ref.File)
		if err := os.Truncate(path, 7); err != nil {
			t.Fatal(err)
		}
		return names[0]
	}
	return ""
}

// TestBlobRefcountGC pins the retention rule for shared blob refs: a blob
// re-referenced by a newer manifest (clean shard) must survive the pruning
// of the manifest that originally wrote it, and a blob no retained
// manifest references must be deleted.
func TestBlobRefcountGC(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	m, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncNever,
		SnapshotKeep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	oneUser := func(u, n int) { // dirty only the shard owning user u
		var last uint64
		for i := 0; i < n; i++ {
			seq, _, err := m.Submit(core.RatingUpdate{User: u, Item: i % 50, Value: float64(i%5) + 1})
			if err != nil {
				t.Fatal(err)
			}
			last = seq
		}
		waitUntil(t, "updates applied", func() bool { return m.AppliedSeq() >= last })
	}
	snap := func() *manifest {
		info, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if info.Skipped {
			t.Fatalf("snapshot skipped: %+v", info)
		}
		man, err := readManifest(info.Path)
		if err != nil {
			t.Fatal(err)
		}
		return man
	}

	oneUser(0, 3)
	man1 := snap() // writes every shard (first manifest)
	oneUser(0, 4)
	man2 := snap() // rewrites user 0's shard; re-references the rest from man1

	clean := -1
	for s, ref := range man2.Shards {
		if ref.File == man1.Shards[s].File {
			clean = s
			break
		}
	}
	if clean < 0 {
		t.Fatal("no clean shard between consecutive one-user snapshots; refcount rule untestable")
	}

	oneUser(0, 5)
	man3 := snap() // prunes man1; its exclusive blobs must go, shared refs must stay

	if got, _ := filepath.Glob(filepath.Join(snapshotDir(dir), manifestPrefix+"*")); len(got) != 2 {
		t.Fatalf("%d manifests retained, want 2 (%v)", len(got), got)
	}
	// The clean shard's blob — written under man1, still referenced by
	// man2 (and likely man3) — survived man1's pruning.
	if _, err := os.Stat(filepath.Join(snapshotDir(dir), man2.Shards[clean].File)); err != nil {
		t.Fatalf("blob %s shared by retained manifests was GCed: %v", man2.Shards[clean].File, err)
	}
	// man1's shared blob and its rewritten-since shard blob are now
	// unreferenced (man2/man3 rewrote their own): both deleted.
	retained := map[string]bool{man2.Shared.File: true, man3.Shared.File: true}
	for _, man := range []*manifest{man2, man3} {
		for _, ref := range man.Shards {
			retained[ref.File] = true
		}
	}
	if !retained[man1.Shared.File] {
		if _, err := os.Stat(filepath.Join(snapshotDir(dir), man1.Shared.File)); !os.IsNotExist(err) {
			t.Errorf("unreferenced shared blob %s not GCed (stat err %v)", man1.Shared.File, err)
		}
	}
	blobs, _ := filepath.Glob(filepath.Join(snapshotDir(dir), "*"+blobSuffix))
	for _, b := range blobs {
		if !retained[filepath.Base(b)] {
			t.Errorf("blob %s on disk but referenced by no retained manifest", filepath.Base(b))
		}
	}
}

// TestCrashBetweenManifestPruneAndBlobGC models a crash in the middle of
// retention: the oldest manifest file is already gone but its
// now-orphaned blobs are still on disk. Boot must come up cleanly from
// the surviving manifests, and the next snapshot's retention pass must
// sweep the orphans.
func TestCrashBetweenManifestPruneAndBlobGC(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	m, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncNever,
		SnapshotKeep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var last uint64
	submit := func(n int) {
		for i := 0; i < n; i++ {
			seq, _, err := m.Submit(testUpdate(int(last) + i))
			if err != nil {
				t.Fatal(err)
			}
			last = seq
		}
		waitUntil(t, "updates applied", func() bool { return m.AppliedSeq() >= last })
	}
	submit(6)
	info1, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	man1, err := readManifest(info1.Path)
	if err != nil {
		t.Fatal(err)
	}
	submit(6)
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := predictions(m.Model())
	m.Abort()

	// Crash re-enactment: the retention pass deleted manifest 1 but died
	// before the blob GC. Manifest 2's clean refs may point into man1's
	// blob set, so only delete the manifest file — every blob stays.
	if err := os.Remove(info1.Path); err != nil {
		t.Fatal(err)
	}

	b, err := Open(noBoot(t), Config{DataDir: dir, Fsync: wal.SyncNever, SnapshotKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	samePredictions(t, "boot across interrupted retention", want, predictions(b.Model()))

	// Drive two more snapshots so retention runs with a full complement of
	// manifests; orphans from the interrupted pass must now be gone.
	m = b
	submit(6)
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	submit(6)
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	referenced := map[string]bool{}
	points, err := listDurablePoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if !pt.manifest {
			continue
		}
		man, err := readManifest(pt.path)
		if err != nil {
			t.Fatal(err)
		}
		referenced[man.Shared.File] = true
		for _, ref := range man.Shards {
			referenced[ref.File] = true
		}
	}
	blobs, _ := filepath.Glob(filepath.Join(snapshotDir(dir), "*"+blobSuffix))
	for _, blob := range blobs {
		if !referenced[filepath.Base(blob)] {
			t.Errorf("orphan blob %s survived the post-crash retention pass", filepath.Base(blob))
		}
	}
	_ = man1 // its blobs are validated through the referenced-set sweep above
}

// TestLegacyMonolithicSnapshotBoots: a data dir written before the
// manifest refactor — one monolithic snap-<seq>.gob, no manifest — must
// still boot. The boot then writes a manifest (one-way migration), and
// the next boot loads that manifest, bit-for-bit.
func TestLegacyMonolithicSnapshotBoots(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()
	if err := os.MkdirAll(snapshotDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(snapshotDir(dir), snapName(0))
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := Open(noBoot(t), Config{DataDir: dir, Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.BootStats().SnapshotLoaded; got != legacy {
		t.Fatalf("boot loaded %q, want the legacy snapshot %q", got, legacy)
	}
	samePredictions(t, "legacy boot", predictions(base), predictions(a.Model()))

	// The migration manifest exists before any new traffic: a legacy load
	// counts as replay-equivalent, so boot snapshots immediately.
	mans, _ := filepath.Glob(filepath.Join(snapshotDir(dir), manifestPrefix+"*"))
	if len(mans) == 0 {
		t.Fatal("no manifest written after booting from a legacy snapshot")
	}

	seq, _, err := a.Submit(testUpdate(1))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "update applied", func() bool { return a.AppliedSeq() >= seq })
	want := predictions(a.Model())
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := Open(noBoot(t), Config{DataDir: dir, Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := filepath.Base(b.BootStats().SnapshotLoaded); got == filepath.Base(legacy) {
		t.Fatalf("second boot still loads the legacy snapshot %q, want a manifest", got)
	}
	samePredictions(t, "post-migration boot", want, predictions(b.Model()))
}

// TestSnapshotStatsAndCompactEndpointPlumbing exercises the accessors the
// server wires into /stats and /admin/compact: SnapshotStats reflects the
// last written manifest's shard split, and Compact(force) folds covered
// segments into the base on demand.
func TestSnapshotStatsAndCompactOnDemand(t *testing.T) {
	base := newBaseModel(t)
	// SnapshotKeep 3 retains the boot manifest at seq 0 throughout, so the
	// snapshot path's retention prune (anchored at the oldest retained
	// point) leaves every segment in place for the forced pass below.
	m, err := Open(bootWith(base), Config{
		DataDir:      t.TempDir(),
		Fsync:        wal.SyncNever,
		SegmentBytes: 512,
		SnapshotKeep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var last uint64
	for i := 0; i < 40; i++ {
		seq, _, err := m.Submit(core.RatingUpdate{User: 3, Item: i % 50, Value: float64(i%5) + 1})
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	waitUntil(t, "updates applied", func() bool { return m.AppliedSeq() >= last })
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Second snapshot after dirtying one user: only that user's shard
	// rewrites, and SnapshotStats reports the split.
	seq, _, err := m.Submit(core.RatingUpdate{User: 3, Item: 1, Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "update applied", func() bool { return m.AppliedSeq() >= seq })
	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	numShards := len(m.ShardStats())
	if info.ShardsWritten != 1 || info.ShardsClean != numShards-1 {
		t.Fatalf("incremental snapshot wrote %d shards (%d clean), want 1 (%d clean): %+v",
			info.ShardsWritten, info.ShardsClean, numShards-1, info)
	}
	if got := m.SnapshotStats(); got.Path != info.Path || got.ShardsWritten != 1 {
		t.Fatalf("SnapshotStats = %+v, want the last snapshot %+v", got, info)
	}

	// CompactEnabled is off and the seq-0 boot manifest is still retained,
	// so segments survived both snapshots; an on-demand forced pass folds
	// everything the checkpoint covers.
	if m.WALStats().Segments < 2 {
		t.Fatalf("want >= 2 segments before on-demand compaction, have %d", m.WALStats().Segments)
	}
	cs, err := m.Compact(true)
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsFolded == 0 {
		t.Fatalf("forced compaction folded nothing: %+v", cs)
	}
	ws := m.WALStats()
	if ws.Compactions == 0 || ws.BaseRecords == 0 {
		t.Fatalf("WAL stats show no base after compaction: %+v", ws)
	}
}
