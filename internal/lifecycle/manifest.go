// Incremental snapshots: instead of one monolithic model gob per
// snapshot, the model is persisted as independently loadable blobs — one
// shared blob (config, GIS, clustering) plus one blob per shard holding
// that shard's matrix rows — tied together by a small JSON manifest. The
// manifest is the commit point: blobs are written and fsynced first,
// then the manifest is published atomically, so a crash anywhere in
// between leaves only unreferenced blob files that the next retention
// pass garbage-collects.
//
// A snapshot rewrites only the blobs whose content changed since the
// previous manifest (dirty shards, plus the shared blob); clean shards
// re-reference the blob a previous manifest already verified. Recovery
// loads the newest manifest, and when one shard blob is unreadable it
// falls back shard-by-shard: an older manifest's blob for the same shard
// is loaded and patched forward through the WAL, replaying only that
// shard's members' updates grouped by the journaled batch commits — the
// projection of a batch onto a user subset is faithful because a rating
// update only ever touches its own user's row.
package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"cfsf/internal/core"
	"cfsf/internal/ratings"
	"cfsf/internal/wal"
)

const (
	manifestPrefix  = "manifest-"
	manifestSuffix  = ".json"
	manifestVersion = 1

	sharedBlobPrefix = "shared-"
	shardBlobPrefix  = "shard-"
	blobSuffix       = ".blob"
)

func manifestName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", manifestPrefix, seq, manifestSuffix)
}

// blobRef points a manifest at one blob file. Seq is the applied
// watermark the blob was written at — for a clean shard carried over
// from an older manifest it is older than the manifest's own Seq, and it
// is the sequence WAL patching would resume from if a newer blob of the
// same shard were lost.
type blobRef struct {
	File string `json:"file"`
	Seq  uint64 `json:"seq"`
}

type shardBlobRef struct {
	ID   int    `json:"id"`
	File string `json:"file"`
	Seq  uint64 `json:"seq"`
}

// manifest is one durable recovery point: the applied watermark it
// covers and the blob set that reassembles the model at that watermark.
//
//cfsf:wire manifestVersion
type manifest struct {
	Version int            `json:"version"`
	Seq     uint64         `json:"seq"`
	Users   int            `json:"users"`
	Items   int            `json:"items"`
	Shared  blobRef        `json:"shared"`
	Shards  []shardBlobRef `json:"shards"`
}

func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseManifest(data, filepath.Base(path))
}

// parseManifest decodes and validates one manifest document; label names
// the source in errors (a file name, or the leader URL for a manifest
// fetched over the replication protocol).
func parseManifest(data []byte, label string) (*manifest, error) {
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", label, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("manifest %s: unsupported version %d", label, man.Version)
	}
	if len(man.Shards) == 0 {
		return nil, fmt.Errorf("manifest %s: no shard refs", label)
	}
	for i, ref := range man.Shards {
		if ref.ID != i {
			return nil, fmt.Errorf("manifest %s: shard ref %d has id %d", label, i, ref.ID)
		}
		if !isBlobName(ref.File) {
			return nil, fmt.Errorf("manifest %s: shard ref %d file %q", label, i, ref.File)
		}
	}
	if !isBlobName(man.Shared.File) {
		return nil, fmt.Errorf("manifest %s: shared ref file %q", label, man.Shared.File)
	}
	return &man, nil
}

func isBlobName(name string) bool {
	return name == filepath.Base(name) && strings.HasSuffix(name, blobSuffix) &&
		(strings.HasPrefix(name, sharedBlobPrefix) || strings.HasPrefix(name, shardBlobPrefix))
}

// durablePoint is one recovery start in the snapshots directory: a
// manifest, or a legacy monolithic snapshot (snap-<seq>.gob) written by
// an older build. Legacy points still boot; the next snapshot after one
// writes a manifest, migrating one way.
type durablePoint struct {
	path     string
	seq      uint64
	manifest bool
}

// listDurablePoints returns every recovery point, newest first; at equal
// sequence a manifest outranks a legacy snapshot.
func listDurablePoints(dataDir string) ([]durablePoint, error) {
	entries, err := os.ReadDir(snapshotDir(dataDir))
	if err != nil {
		return nil, err
	}
	var points []durablePoint
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		var s uint64
		switch {
		case strings.HasPrefix(name, manifestPrefix) && strings.HasSuffix(name, manifestSuffix):
			if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, manifestPrefix), manifestSuffix), "%016x", &s); err != nil {
				continue
			}
			points = append(points, durablePoint{path: filepath.Join(snapshotDir(dataDir), name), seq: s, manifest: true})
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), "%016x", &s); err != nil {
				continue
			}
			points = append(points, durablePoint{path: filepath.Join(snapshotDir(dataDir), name), seq: s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].seq != points[j].seq {
			return points[i].seq > points[j].seq
		}
		return points[i].manifest && !points[j].manifest
	})
	return points, nil
}

// latestSnapshot returns the newest durable point and the sequence it
// covers, or "" when none exists.
func latestSnapshot(dataDir string) (path string, seq uint64, err error) {
	points, err := listDurablePoints(dataDir)
	if err != nil || len(points) == 0 {
		return "", 0, err
	}
	return points[0].path, points[0].seq, nil
}

func loadSharedBlobFile(path string) (*core.SharedPart, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadSharedPart(f)
}

func loadShardBlobFile(path string) (*core.ShardPart, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadShardPart(f)
}

// checkShardPart validates a loaded shard blob against the manifest ref
// and the shared part it must assemble with: right shard, exactly the
// shard's current members, and timestamp presence matching the model's.
func checkShardPart(part *core.ShardPart, ref shardBlobRef, sp *core.SharedPart) error {
	if part.Shard != ref.ID {
		return fmt.Errorf("blob is for shard %d, ref says %d", part.Shard, ref.ID)
	}
	members := sp.Members(ref.ID)
	if len(part.Users) != len(members) {
		return fmt.Errorf("blob holds %d users, shard has %d members", len(part.Users), len(members))
	}
	for j, u := range members { // both ascending
		if part.Users[j] != u {
			return fmt.Errorf("blob user set diverges from shard membership at %d", u)
		}
	}
	if part.Times != nil && !sp.HasTimes {
		return fmt.Errorf("blob carries timestamps but the model does not")
	}
	if sp.HasTimes && part.Times == nil {
		// A timed model's blob only lacks a times section when every row
		// is empty (nothing to timestamp).
		for _, row := range part.Rows {
			if len(row) > 0 {
				return fmt.Errorf("blob lacks timestamps the model requires")
			}
		}
	}
	return nil
}

// loadManifestPoint reassembles the model a manifest describes. When a
// shard blob is unreadable or inconsistent it is patched from an older
// manifest's blob plus the WAL (see fallbackShardRows); patched returns
// those shard ids so the caller re-persists them. An unrecoverable shard
// fails the whole point and the boot ladder moves to an older one.
func (m *Manager) loadManifestPoint(pt durablePoint) (mod *core.Model, man *manifest, patched []int, err error) {
	man, err = readManifest(pt.path)
	if err != nil {
		return nil, nil, nil, err
	}
	if man.Seq != pt.seq {
		return nil, nil, nil, fmt.Errorf("manifest %s covers seq %d, name says %d", filepath.Base(pt.path), man.Seq, pt.seq)
	}
	dir := snapshotDir(m.cfg.DataDir)
	sp, err := loadSharedBlobFile(filepath.Join(dir, man.Shared.File))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("shared blob %s: %w", man.Shared.File, err)
	}
	if sp.NumUsers != man.Users || sp.NumItems != man.Items {
		return nil, nil, nil, fmt.Errorf("shared blob %s is %dx%d, manifest says %dx%d",
			man.Shared.File, sp.NumUsers, sp.NumItems, man.Users, man.Items)
	}
	if sp.NumShards() != len(man.Shards) {
		return nil, nil, nil, fmt.Errorf("shared blob %s has %d shards, manifest lists %d",
			man.Shared.File, sp.NumShards(), len(man.Shards))
	}
	rows := make([][]ratings.Entry, sp.NumUsers)
	var times [][]int64
	if sp.HasTimes {
		times = make([][]int64, sp.NumUsers)
	}
	for _, ref := range man.Shards {
		part, perr := loadShardBlobFile(filepath.Join(dir, ref.File))
		if perr == nil {
			perr = checkShardPart(part, ref, sp)
		}
		if perr != nil {
			m.reg.Counter("lifecycle_shard_blob_failures_total").Inc()
			m.cfg.Logf("lifecycle: shard blob %s unusable (%v); patching shard %d from an older blob", ref.File, perr, ref.ID)
			if ferr := m.fallbackShardRows(man, ref, sp, rows, times); ferr != nil {
				return nil, nil, nil, fmt.Errorf("shard %d blob %s: %v (fallback: %v)", ref.ID, ref.File, perr, ferr)
			}
			patched = append(patched, ref.ID)
			continue
		}
		for j, u := range part.Users {
			rows[u] = part.Rows[j]
			if sp.HasTimes && part.Times != nil {
				times[u] = part.Times[j]
			}
		}
	}
	mod, err = core.AssembleModel(sp, rows, times)
	if err != nil {
		return nil, nil, nil, err
	}
	return mod, man, patched, nil
}

// fallbackShardRows recovers one shard's rows when its manifest blob is
// lost: an older retained manifest's blob for the same shard is loaded
// and patched forward through the WAL to the manifest's watermark. The
// patch is refused — failing the whole point — when the WAL no longer
// carries batch-exact records above the older blob's sequence: records
// before AvailableFrom are gone, and records at or below the compaction
// dedupe horizon have lost the commit grouping the patch replays by.
func (m *Manager) fallbackShardRows(man *manifest, ref shardBlobRef, sp *core.SharedPart, rows [][]ratings.Entry, times [][]int64) error {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil {
		return err
	}
	members := sp.Members(ref.ID)
	dir := snapshotDir(m.cfg.DataDir)
	var lastErr error = fmt.Errorf("no older manifest holds a usable blob for shard %d", ref.ID)
	for _, pt := range points {
		if !pt.manifest || pt.seq >= man.Seq {
			continue
		}
		old, oerr := readManifest(pt.path)
		if oerr != nil || ref.ID >= len(old.Shards) {
			continue
		}
		oldRef := old.Shards[ref.ID]
		if oldRef.File == ref.File {
			continue // the same (bad) blob, re-referenced
		}
		if af := m.w.AvailableFrom(); af > oldRef.Seq+1 {
			lastErr = fmt.Errorf("wal starts at seq %d, cannot patch from seq %d", af, oldRef.Seq)
			continue
		}
		if h := m.w.DedupedBelow(); h > oldRef.Seq {
			lastErr = fmt.Errorf("wal compacted through seq %d, batch grouping before it is gone", h)
			continue
		}
		part, perr := loadShardBlobFile(filepath.Join(dir, oldRef.File))
		if perr != nil {
			lastErr = perr
			continue
		}
		if part.Shard != ref.ID || (part.Times != nil && !sp.HasTimes) {
			continue
		}
		// Every current member must either appear in the old blob or be a
		// user created after it was written (whose whole row is in the
		// WAL). A member missing for any other reason lived in a different
		// shard back then — its old rows are in a blob we are not reading.
		inBlob := make(map[int]int, len(part.Users))
		for j, u := range part.Users {
			inBlob[u] = j
		}
		compatible := true
		for _, u := range members {
			if _, ok := inBlob[u]; !ok && u < part.NumUsersAtWrite {
				compatible = false
				break
			}
		}
		if !compatible {
			lastErr = fmt.Errorf("blob %s predates a membership change it cannot express", oldRef.File)
			continue
		}
		baseRows := make(map[int][]ratings.Entry, len(members))
		baseTimes := make(map[int][]int64, len(members))
		for _, u := range members {
			j, ok := inBlob[u]
			if !ok {
				continue
			}
			baseRows[u] = part.Rows[j]
			if sp.HasTimes {
				if part.Times != nil {
					baseTimes[u] = part.Times[j]
				} else {
					// Pre-flip blob: its entries were journaled untimed, so
					// their timestamps are genuinely zero.
					baseTimes[u] = make([]int64, len(part.Rows[j]))
				}
			}
		}
		if err := m.patchRows(members, baseRows, baseTimes, oldRef.Seq, man.Seq, sp.HasTimes, rows, times); err != nil {
			lastErr = err
			continue
		}
		m.cfg.Logf("lifecycle: patched shard %d from %s (seq %d) forward to seq %d",
			ref.ID, oldRef.File, oldRef.Seq, man.Seq)
		return nil
	}
	return lastErr
}

// patchRows replays the WAL from fromSeq, restricted to the given users,
// on top of their base rows, and writes the resulting rows (item
// ascending, timestamps aligned) into rows/times at throughSeq. Ratings
// are grouped by the journaled batch-commit records exactly as full
// replay groups them — commit order can differ from sequence order when
// a user was rerouted between shards, and the live model folded the
// batches in commit order.
func (m *Manager) patchRows(members []int, baseRows map[int][]ratings.Entry, baseTimes map[int][]int64, fromSeq, throughSeq uint64, hasTimes bool, rows [][]ratings.Entry, times [][]int64) error {
	type cellVal struct {
		v float64
		t int64
	}
	cells := make(map[int]map[int32]cellVal, len(members))
	memberSet := make(map[int]bool, len(members))
	for _, u := range members {
		memberSet[u] = true
		row := make(map[int32]cellVal, len(baseRows[u]))
		for k, e := range baseRows[u] {
			cv := cellVal{v: e.Value}
			if hasTimes {
				cv.t = baseTimes[u][k]
			}
			row[e.Index] = cv
		}
		cells[u] = row
	}
	var queued []pendingUpdate
	apply := func(covered uint64, shard int) {
		kept := queued[:0]
		for _, p := range queued {
			if p.seq <= covered && (shard < 0 || p.shard == shard) {
				cells[p.u.User][int32(p.u.Item)] = cellVal{v: p.u.Value, t: p.u.Time}
			} else {
				kept = append(kept, p)
			}
		}
		queued = kept
	}
	err := m.w.Replay(fromSeq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordRating:
			if rec.Seq <= throughSeq && memberSet[rec.Update.User] {
				queued = append(queued, pendingUpdate{seq: rec.Seq, u: rec.Update, shard: rec.Shard})
			}
		case wal.RecordBatchCommit:
			apply(rec.Covered, rec.Shard)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Ratings at or below the manifest's watermark were all applied before
	// it was written; any left uncommitted in the log fold in sequence
	// order, exactly as boot replay's trailing batch does.
	apply(throughSeq, -1)

	for _, u := range members {
		row := cells[u]
		items := make([]int32, 0, len(row))
		for it := range row {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		out := make([]ratings.Entry, len(items))
		var ts []int64
		if hasTimes {
			ts = make([]int64, len(items))
		}
		for k, it := range items {
			cv := row[it]
			out[k] = ratings.Entry{Index: it, Value: cv.v}
			if hasTimes {
				ts[k] = cv.t
			}
		}
		rows[u] = out
		if hasTimes {
			times[u] = ts
		}
	}
	return nil
}

// pruneDurablePoints drops recovery points beyond SnapshotKeep, then
// garbage-collects every blob file no retained manifest references. The
// order makes a crash between the two passes safe: an unreferenced blob
// that survives is re-collected by the next pass, and a referenced blob
// is never deleted before every manifest naming it is.
//
//cfsf:locked snapMu callers hold it; retention must not race a manifest write
func (m *Manager) pruneDurablePoints() {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil {
		return
	}
	if len(points) > m.cfg.SnapshotKeep {
		for _, pt := range points[m.cfg.SnapshotKeep:] {
			if err := os.Remove(pt.path); err == nil {
				m.cfg.Logf("lifecycle: pruned snapshot %s", filepath.Base(pt.path))
			}
		}
		points = points[:m.cfg.SnapshotKeep]
	}
	referenced := map[string]bool{}
	for _, pt := range points {
		if !pt.manifest {
			continue
		}
		man, err := readManifest(pt.path)
		if err != nil {
			continue // unreadable: keep its blobs, the ladder may still want them
		}
		referenced[man.Shared.File] = true
		for _, ref := range man.Shards {
			referenced[ref.File] = true
		}
	}
	entries, err := os.ReadDir(snapshotDir(m.cfg.DataDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !isBlobName(name) || referenced[name] {
			continue
		}
		if err := os.Remove(filepath.Join(snapshotDir(m.cfg.DataDir), name)); err == nil {
			m.cfg.Logf("lifecycle: pruned unreferenced blob %s", name)
		}
	}
}

// oldestRetainedSeq returns the oldest sequence any retained recovery
// point can resume from — the minimum over point watermarks and blob
// write sequences (a clean shard's blob can be older than its manifest,
// and patching it needs the WAL from its own sequence). Compaction uses
// it as the dedupe horizon. Zero when no point exists.
//
//cfsf:locked snapMu callers hold it; must see a settled manifest set
func (m *Manager) oldestRetainedSeq() uint64 {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil || len(points) == 0 {
		return 0
	}
	min := ^uint64(0)
	for _, pt := range points {
		s := pt.seq
		if pt.manifest {
			if man, err := readManifest(pt.path); err == nil {
				if man.Shared.Seq < s {
					s = man.Shared.Seq
				}
				for _, ref := range man.Shards {
					if ref.Seq < s {
						s = ref.Seq
					}
				}
			}
		}
		if s < min {
			min = s
		}
	}
	return min
}

// oldestRetainedPointSeq returns the oldest watermark among retained
// recovery points (ignoring blob write sequences). Plain WAL pruning
// uses it: segments at or below it serve no retained point's tail
// replay, while a clean blob older than every point deliberately does
// NOT pin the log — patching such a blob is refused by the
// AvailableFrom gate and recovery degrades to whole-point fallback,
// instead of the WAL growing without bound. Zero when no point exists.
//
//cfsf:locked snapMu callers hold it; must see a settled manifest set
func (m *Manager) oldestRetainedPointSeq() uint64 {
	points, err := listDurablePoints(m.cfg.DataDir)
	if err != nil || len(points) == 0 {
		return 0
	}
	min := points[0].seq
	for _, pt := range points[1:] {
		if pt.seq < min {
			min = pt.seq
		}
	}
	return min
}

// uniqueBlobName returns base+blobSuffix, or a .rN-suffixed variant when
// that file already exists. A post-retrain snapshot rewrites blobs at an
// unchanged watermark; giving the new content a fresh name keeps the
// previous manifest's blob set intact until the new manifest atomically
// replaces it.
func uniqueBlobName(dir, base string) string {
	name := base + blobSuffix
	for r := 2; ; r++ {
		if _, err := os.Stat(filepath.Join(dir, name)); os.IsNotExist(err) {
			return name
		}
		name = fmt.Sprintf("%s.r%d%s", base, r, blobSuffix)
	}
}

// sharedPartOf round-trips the live model's shared part through its own
// serialisation, yielding the canonical decoded form a written shared
// blob must match exactly.
func sharedPartOf(live *core.Model) (*core.SharedPart, error) {
	var buf bytes.Buffer
	if err := live.SaveSharedBlob(&buf); err != nil {
		return nil, err
	}
	return core.LoadSharedPart(&buf)
}

func compareSharedParts(got, want *core.SharedPart) error {
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("reloaded shared part diverges from the serving model")
	}
	return nil
}

// verifyWrittenParts loads every blob this snapshot wrote back from disk
// and demands it reproduce the live model bit-for-bit: the shared part
// must decode to exactly what the model serialises, and each written
// shard blob's rows (and timestamps) must equal the live matrix rows of
// the shard's members. Clean shards are not re-verified — their blobs
// passed this check when the manifest that first wrote them ran it.
func verifyWrittenParts(dir string, man *manifest, written map[int]bool, sharedWritten bool, live *core.Model) error {
	if sharedWritten {
		sp, err := loadSharedBlobFile(filepath.Join(dir, man.Shared.File))
		if err != nil {
			return fmt.Errorf("shared blob %s: %w", man.Shared.File, err)
		}
		want, err := sharedPartOf(live)
		if err != nil {
			return err
		}
		if err := compareSharedParts(sp, want); err != nil {
			return fmt.Errorf("shared blob %s: %w", man.Shared.File, err)
		}
	}
	mx := live.Matrix()
	hasTimes := mx.HasTimes()
	for _, ref := range man.Shards {
		if !written[ref.ID] {
			continue
		}
		part, err := loadShardBlobFile(filepath.Join(dir, ref.File))
		if err != nil {
			return fmt.Errorf("shard blob %s: %w", ref.File, err)
		}
		members := live.Clusters().Members[ref.ID]
		if len(part.Users) != len(members) {
			return fmt.Errorf("shard blob %s holds %d users, shard has %d members", ref.File, len(part.Users), len(members))
		}
		for j, u := range members {
			if part.Users[j] != u {
				return fmt.Errorf("shard blob %s user set diverges at %d", ref.File, u)
			}
			row := mx.UserRatings(u)
			if len(part.Rows[j]) != len(row) {
				return fmt.Errorf("shard blob %s row of user %d reloads with %d entries, model has %d",
					ref.File, u, len(part.Rows[j]), len(row))
			}
			for k, e := range row {
				if part.Rows[j][k] != e {
					return fmt.Errorf("shard blob %s row of user %d diverges at entry %d", ref.File, u, k)
				}
			}
			if hasTimes && len(row) > 0 {
				ts := mx.UserRatingTimes(u)
				if part.Times == nil || len(part.Times[j]) != len(ts) {
					return fmt.Errorf("shard blob %s timestamps of user %d did not round-trip", ref.File, u)
				}
				for k, t := range ts {
					if part.Times[j][k] != t {
						return fmt.Errorf("shard blob %s timestamp of user %d diverges at entry %d", ref.File, u, k)
					}
				}
			}
		}
	}
	return nil
}
