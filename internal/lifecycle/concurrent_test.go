package lifecycle

import (
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/wal"
)

// prefixGroups mirrors ApplyConcurrent's batching on a plain update
// list: repeatedly cut the longest contiguous prefix in which no shard
// contributes more than batchMax ratings. Each group is exactly one
// grouped Apply (and one shard -1 commit record) of the manager.
func prefixGroups(base *core.Model, ups []core.RatingUpdate, batchMax int) [][]core.RatingUpdate {
	router := core.NewSharded(base)
	shards := make([]int, len(ups))
	for i, u := range ups {
		shards[i] = router.ShardOf(u.User)
	}
	var groups [][]core.RatingUpdate
	for len(ups) > 0 {
		counts := map[int]int{}
		cut := 0
		for i := range ups {
			if counts[shards[i]] >= batchMax {
				break
			}
			counts[shards[i]]++
			cut++
		}
		groups = append(groups, ups[:cut])
		ups, shards = ups[cut:], shards[cut:]
	}
	return groups
}

// TestConcurrentApplyParityAndRecovery is the concurrent-apply
// acceptance test: with ApplyMode "concurrent", a batch spanning several
// shards is folded in grouped multi-shard prefixes, and the result —
// live, and again after a kill-and-reboot replay — must be bit-for-bit
// the model that serial WithUpdates calls over the same prefix groups
// produce. The WAL keeps its append order and the shard -1 commit
// records regroup replay into exactly the live batches.
func TestConcurrentApplyParityAndRecovery(t *testing.T) {
	base := newBaseModel(t)
	dir := t.TempDir()

	const batchMax = 3 // small cap so 12 updates split into several groups
	a, err := Open(bootWith(base), Config{
		DataDir:      dir,
		Fsync:        wal.SyncAlways,
		ApplyMode:    ApplyConcurrent,
		BatchMaxSize: batchMax,
		BatchMaxWait: 200 * time.Millisecond, // whole batch pending before the drain
	})
	if err != nil {
		t.Fatal(err)
	}

	ups := make([]core.RatingUpdate, 12)
	for i := range ups {
		ups[i] = testUpdate(i)
	}
	seqs, _, err := a.SubmitBatch(ups)
	if err != nil {
		t.Fatal(err)
	}
	last := seqs[len(seqs)-1]
	waitUntil(t, "batch applied", func() bool { return a.AppliedSeq() >= last })

	groups := prefixGroups(base, ups, batchMax)
	if len(groups) < 2 {
		t.Fatalf("updates formed %d prefix group(s); shrink batchMax to force several", len(groups))
	}
	comparator := base
	for _, g := range groups {
		if comparator, err = comparator.WithUpdates(g); err != nil {
			t.Fatal(err)
		}
	}
	want := predictions(comparator)
	samePredictions(t, "concurrent live vs serial prefix groups", want, predictions(a.Model()))
	if batches := a.reg.Counter("lifecycle_batches_total").Value(); batches != int64(len(groups)) {
		t.Errorf("manager used %d batches, expected %d prefix groups", batches, len(groups))
	}
	// A grouped apply spans shards: more than one shard must have seen it.
	touched := 0
	for _, st := range a.ShardStats() {
		if st.Applies > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("only %d shard(s) saw applies; grouped batches should span shards", touched)
	}

	a.Abort() // SIGKILL stand-in

	// Recovery does not need ApplyMode to match: replay regroups by the
	// journaled commit records alone.
	b, err := Open(noBoot(t), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bs := b.BootStats()
	if bs.ReplayedRecords != len(ups) || bs.ReplayedBatches != len(groups) {
		t.Fatalf("replayed %d records in %d batches, want %d in %d",
			bs.ReplayedRecords, bs.ReplayedBatches, len(ups), len(groups))
	}
	samePredictions(t, "recovered vs serial prefix groups", want, predictions(b.Model()))
}

// TestApplyModeValidation: unknown modes are refused at Open, the empty
// mode normalises to serial.
func TestApplyModeValidation(t *testing.T) {
	if _, err := Open(noBoot(t), Config{DataDir: t.TempDir(), ApplyMode: "parallel-ish"}); err == nil {
		t.Fatal("unknown apply mode accepted")
	}
	if got := (Config{}).withDefaults().ApplyMode; got != ApplySerial {
		t.Fatalf("zero-value ApplyMode normalises to %q, want %q", got, ApplySerial)
	}
}
