package lifecycle

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/wal"
)

// BenchmarkRecoveryFlat measures recovery-to-ready (a full lifecycle.Open:
// manifest + shard blobs + compacted base + WAL-tail replay) against write
// histories of growing length with compaction enabled. The incremental-
// snapshot + compaction design promises recovery cost bounded by model
// size plus the unsnapshotted tail, NOT by how much history was ever
// written: 16x the write traffic folds into the same deduped base and the
// same per-shard blobs. The ratio sub-benchmark reports recover-ms at 16x
// over 1x; CI gates it at 1.5 (recovery must stay flat).
func BenchmarkRecoveryFlat(b *testing.B) {
	base := newBaseModel(b)
	recoverMS := map[int]float64{}
	for _, mult := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("history-%dx", mult), func(b *testing.B) {
			dir := prepareHistory(b, base, mult)
			best := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Boot mutates the data dir (boot snapshot, checkpoint,
				// compaction), so each recovery runs on a fresh copy; take
				// the best of a few reps to shave scheduler noise off the
				// gated ratio.
				const reps = 3
				for r := 0; r < reps; r++ {
					b.StopTimer()
					work := cloneDir(b, dir)
					b.StartTimer()
					t0 := time.Now()
					m, err := Open(benchNoBoot(b), Config{
						DataDir:        work,
						Fsync:          wal.SyncNever,
						CompactEnabled: true,
						SnapshotKeep:   1,
					})
					if err != nil {
						b.Fatal(err)
					}
					ms := time.Since(t0).Seconds() * 1000
					if best == 0 || ms < best {
						best = ms
					}
					b.StopTimer()
					if err := m.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
			recoverMS[mult] = best
			b.ReportMetric(best, "recover-ms")
		})
	}
	b.Run("ratio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
		if recoverMS[1] <= 0 || recoverMS[16] <= 0 {
			b.Fatalf("missing recovery timings (1x=%v, 16x=%v); run the full BenchmarkRecoveryFlat tree", recoverMS[1], recoverMS[16])
		}
		b.ReportMetric(recoverMS[16]/recoverMS[1], "ratio-16x-1x")
	})
}

// prepareHistory drives mult x 600 updates through a compaction-enabled
// manager with aggressive segment rotation and periodic snapshots (so
// segments actually fold into the base), then appends a constant-size
// unsnapshotted tail and aborts — every scale leaves the same replay work,
// and any recovery-time growth comes from history-proportional state.
func prepareHistory(b *testing.B, base *core.Model, mult int) string {
	b.Helper()
	dir := b.TempDir()
	m, err := Open(bootWith(base), Config{
		DataDir:            dir,
		Fsync:              wal.SyncNever,
		SegmentBytes:       4096,
		SnapshotKeep:       1,
		CompactEnabled:     true,
		CompactMinSegments: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	const perUnit = 600
	n := mult * perUnit
	var last uint64
	for i := 0; i < n; i++ {
		seq, _, err := m.Submit(testUpdate(i))
		if err != nil {
			b.Fatal(err)
		}
		last = seq
		if (i+1)%(perUnit/2) == 0 {
			benchWaitApplied(b, m, last)
			if _, err := m.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
	benchWaitApplied(b, m, last)
	if _, err := m.Snapshot(); err != nil {
		b.Fatal(err)
	}
	const tail = 64
	for i := 0; i < tail; i++ {
		if _, _, err := m.Submit(testUpdate(n + i)); err != nil {
			b.Fatal(err)
		}
	}
	// Abort, not Close: Close would snapshot the tail away and recovery
	// would replay nothing.
	m.Abort()
	return dir
}

func benchWaitApplied(b *testing.B, m *Manager, seq uint64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for m.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			b.Fatalf("timed out waiting for seq %d (applied %d)", seq, m.AppliedSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func benchNoBoot(b *testing.B) func() (*core.Model, error) {
	return func() (*core.Model, error) {
		b.Fatal("bootstrap called although a recovery point exists")
		return nil, nil
	}
}

// cloneDir copies the prepared data dir so each recovery rep boots the
// same bytes.
func cloneDir(b *testing.B, src string) string {
	b.Helper()
	dst := b.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		o, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(o, in); err != nil {
			_ = o.Close()
			return err
		}
		return o.Close()
	})
	if err != nil {
		b.Fatal(err)
	}
	return dst
}
