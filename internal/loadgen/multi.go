package loadgen

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// MultiTarget fans requests out over a replica fleet, round-robin. A
// member can be suspended (taken out of rotation) while it is down —
// the fleet kill-and-catch-up drill uses this so offered load keeps
// flowing to the survivors instead of burning error budget on a corpse.
type MultiTarget struct {
	members []Target //cfsf:immutable
	next    atomic.Uint64

	mu   sync.Mutex
	down []bool //cfsf:guarded-by mu
}

// NewMultiTarget wraps the members; at least one is required. Closing
// the MultiTarget closes every member.
func NewMultiTarget(members ...Target) (*MultiTarget, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("multi-target: no members")
	}
	return &MultiTarget{members: members, down: make([]bool, len(members))}, nil
}

// URL returns the next member's URL, skipping suspended members. With
// every member suspended it falls back to plain rotation (the request
// will fail and be counted, which is the honest outcome).
func (m *MultiTarget) URL() string {
	n := len(m.members)
	i := int(m.next.Add(1)-1) % n
	m.mu.Lock()
	defer m.mu.Unlock()
	for probe := 0; probe < n; probe++ {
		j := (i + probe) % n
		if !m.down[j] {
			return m.members[j].URL()
		}
	}
	return m.members[i].URL()
}

// Suspend takes member i out of rotation.
func (m *MultiTarget) Suspend(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[i] = true
}

// Resume puts member i back into rotation.
func (m *MultiTarget) Resume(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[i] = false
}

// Members returns the wrapped targets in rotation order.
func (m *MultiTarget) Members() []Target { return m.members }

// Close closes every member, reporting the first error.
func (m *MultiTarget) Close() error {
	var errs []string
	for _, t := range m.members {
		if err := t.Close(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("multi-target close: %s", strings.Join(errs, "; "))
	}
	return nil
}
