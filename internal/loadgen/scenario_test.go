package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestEmbeddedScenariosLoadAndValidate(t *testing.T) {
	names := Names()
	want := []string{"churn", "coldstart", "flashcrowd", "junkflood", "killrecover", "replication", "steady"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		sc, err := Load(name)
		if err != nil {
			t.Errorf("Load(%q): %v", name, err)
			continue
		}
		if sc.Name != name {
			t.Errorf("scenario %q declares name %q", name, sc.Name)
		}
		if len(sc.ConfigHash()) != 64 {
			t.Errorf("scenario %q: config hash %q not a sha256 hex digest", name, sc.ConfigHash())
		}
	}
}

// TestScenarioRejectionTable feeds invalid documents through Parse and
// asserts each is refused with a message naming the offending field —
// the config layer's whole contract is failing before traffic exists.
func TestScenarioRejectionTable(t *testing.T) {
	base := func(mutations string) string {
		doc := `{
			"name": "bad", "version": 1, "kind": "steady", "seed": 1,
			"dataset": {"users": 40, "items": 50, "seed": 1},
			"duration_ms": 1000, "qps": 50,
			"mix": {"predict": 1},
			"slo": {"max_error_rate": 0.01}
		}`
		for _, m := range strings.Split(mutations, ";") {
			kv := strings.SplitN(m, "=>", 2)
			doc = strings.Replace(doc, kv[0], kv[1], 1)
		}
		return doc
	}
	cases := []struct {
		name    string
		doc     string
		errLike string
	}{
		{"zero qps", base(`"qps": 50=>"qps": 0`), "qps"},
		{"negative qps", base(`"qps": 50=>"qps": -3`), "qps"},
		{"unknown kind", base(`"kind": "steady"=>"kind": "tsunami"`), "unknown kind"},
		{"negative duration", base(`"duration_ms": 1000=>"duration_ms": -5`), "duration_ms"},
		{"zero duration", base(`"duration_ms": 1000=>"duration_ms": 0`), "duration_ms"},
		{"unknown mix op", base(`"mix": {"predict": 1}=>"mix": {"teleport": 1}`), "unknown op"},
		{"negative mix weight", base(`"mix": {"predict": 1}=>"mix": {"predict": -1}`), "negative"},
		{"zero mix sum", base(`"mix": {"predict": 1}=>"mix": {"predict": 0}`), "zero"},
		{"empty name", base(`"name": "bad"=>"name": ""`), "name"},
		{"zero version", base(`"version": 1=>"version": 0`), "version"},
		{"bad dataset", base(`"users": 40=>"users": -4`), "dataset"},
		{"junk share out of range", base(`"kind": "steady"=>"kind": "junkflood"`) /* junk_share missing */, "junk_share"},
		{"killrecover without kill point", base(`"kind": "steady"=>"kind": "killrecover"`), "kill_after_ms"},
		{"slo gates unsent op", base(`"slo": {"max_error_rate": 0.01}=>"slo": {"max_error_rate": 0.01, "max_p99_ms": {"rate": 5}}`), "never sends"},
		{"error rate out of range", base(`"max_error_rate": 0.01=>"max_error_rate": 2`), "max_error_rate"},
		{"unknown field", base(`"seed": 1=>"sede": 1`), "sede"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: Parse accepted an invalid scenario", tc.name)
		} else if !strings.Contains(err.Error(), tc.errLike) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errLike)
		}
	}
}

// TestInvalidScenarioSendsNothing drives the runner with a scenario
// that fails validation and counts requests at a live test server: the
// run must error out with zero requests on the wire.
func TestInvalidScenarioSendsNothing(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	sc := &Scenario{
		Name: "invalid", Version: 1, Kind: "steady", Seed: 1,
		Dataset:    DatasetConfig{Users: 40, Items: 50, Seed: 1},
		DurationMS: 1000, QPS: -1, // invalid
		Mix: map[string]float64{OpPredict: 1},
	}
	sc.applyDefaults()
	if _, err := BuildStream(sc); err == nil {
		t.Fatal("BuildStream accepted an invalid scenario")
	}
	r := &Runner{}
	if _, err := r.Run(context.Background(), &Stream{Scenario: sc}, StaticTarget(ts.URL)); err == nil {
		t.Fatal("Run accepted an invalid scenario")
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("invalid scenario reached the server %d times", n)
	}
}
