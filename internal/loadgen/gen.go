package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cfsf/internal/synth"
)

// Pair is one (user, item) cell of a batch-predict request.
type Pair struct {
	User int `json:"user"`
	Item int `json:"item"`
}

// Request is one scheduled API call. At is the offset from the run
// start at which the open-loop dispatcher releases it — arrivals are
// fixed up front and never depend on completions, so a slow server
// builds queueing delay instead of silently lowering the offered rate.
type Request struct {
	At     time.Duration
	Op     string
	User   int
	Item   int
	N      int     // recommend fan-out
	Rating float64 // rate value
	Pairs  []Pair  // batch cells
	// ExpectReject marks a deliberately invalid request (junkflood):
	// the server answering 400 is success, anything else is an error.
	ExpectReject bool
}

// Stream is the fully materialised request schedule for one scenario
// run plus the bookkeeping the SLO layer needs.
type Stream struct {
	Scenario        *Scenario
	Requests        []Request
	ExpectedRejects int
	// MaxUser/MaxItem are the highest ids the stream touches — a
	// cross-check against the target's matrix bounds + growth margin.
	MaxUser, MaxItem int
}

// Fingerprint hashes the canonical encoding of every request in order.
// Equal scenario + equal seed ⇒ equal fingerprint; the determinism test
// and the run report both rely on it.
func (st *Stream) Fingerprint() string {
	h := sha256.New()
	for _, r := range st.Requests {
		fmt.Fprintf(h, "%d %s %d %d %d %.3f %t", int64(r.At), r.Op, r.User, r.Item, r.N, r.Rating, r.ExpectReject)
		for _, p := range r.Pairs {
			fmt.Fprintf(h, " %d:%d", p.User, p.Item)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sampler draws weighted indices from a cumulative-weight table using
// only the stream's seeded PRNG.
type sampler struct {
	cum   []float64
	total float64
}

func newSampler(weights []float64) sampler {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return sampler{cum: cum, total: total}
}

func (s sampler) draw(rng *rand.Rand) int {
	x := rng.Float64() * s.total
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.cum) {
		i = len(s.cum) - 1
	}
	return i
}

// datasetConfig maps the scenario's population spec onto the synth
// generator, applying the same satisfiability clamps cmd/cfsf-server
// applies to -synth-users/-synth-items so both sides materialise the
// identical matrix.
func datasetConfig(d DatasetConfig) synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = d.Users
	cfg.Items = d.Items
	cfg.Seed = d.Seed
	if cfg.MinPerUser > cfg.Items/5 {
		cfg.MinPerUser = max(1, cfg.Items/5)
	}
	if cfg.MeanPerUser > float64(cfg.Items)/4 {
		cfg.MeanPerUser = float64(cfg.Items) / 4
	}
	if cfg.MeanPerUser < float64(cfg.MinPerUser) {
		cfg.MeanPerUser = float64(cfg.MinPerUser)
	}
	return cfg
}

// BuildStream materialises the whole request schedule for a validated
// scenario. It is a pure function of the scenario: the PRNG is seeded
// from sc.Seed, users are sampled proportionally to their activity and
// items to their popularity in the synthetic dataset (plus-one
// smoothed, so every id stays reachable), and arrivals are paced
// uniformly at sc.QPS.
func BuildStream(sc *Scenario) (*Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ds, err := synth.Generate(datasetConfig(sc.Dataset))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: generate dataset: %w", sc.Name, err)
	}
	m := ds.Matrix
	rng := rand.New(rand.NewSource(sc.Seed))

	userW := make([]float64, m.NumUsers())
	for u := range userW {
		userW[u] = float64(len(m.UserRatings(u)) + 1)
	}
	itemW := make([]float64, m.NumItems())
	hotItem, hotCount := 0, -1
	for i := range itemW {
		n := len(m.ItemRatings(i))
		itemW[i] = float64(n + 1)
		if n > hotCount {
			hotItem, hotCount = i, n
		}
	}
	users := newSampler(userW)
	items := newSampler(itemW)

	// Mix sampling must not depend on map iteration order.
	ops := make([]string, 0, len(sc.Mix))
	for op := range sc.Mix {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	opW := make([]float64, len(ops))
	for i, op := range ops {
		opW[i] = sc.Mix[op]
	}
	opSampler := newSampler(opW)

	duration := time.Duration(sc.DurationMS) * time.Millisecond
	n := int(sc.QPS * float64(sc.DurationMS) / 1000)
	if n < 1 {
		n = 1
	}

	// coldstart/churn pre-plan the fresh-id introductions as a queue of
	// rate requests; rate slots in the base schedule pop it first, so
	// fresh ids always appear in increasing order (the growth margin
	// only has to cover the scenario's total, not an arbitrary gap).
	type intro struct {
		user, item int
	}
	var introQueue []intro
	switch sc.Kind {
	case KindColdStart:
		for k := 0; k < sc.NewUsers; k++ {
			for j := 0; j < sc.RatingsPerNewUser; j++ {
				introQueue = append(introQueue, intro{user: m.NumUsers() + k, item: items.draw(rng)})
			}
		}
	case KindChurn:
		for k := 0; k < sc.NewItems; k++ {
			introQueue = append(introQueue, intro{user: users.draw(rng), item: m.NumItems() + k})
		}
	}

	st := &Stream{Scenario: sc, Requests: make([]Request, 0, n)}
	bornUsers := 0 // coldstart: fully-registered new users
	bornItems := 0 // churn: items already rated at least once
	ramp := time.Duration(sc.RampMS) * time.Millisecond
	for i := 0; i < n; i++ {
		at := duration * time.Duration(i) / time.Duration(n)
		req := Request{At: at, Op: ops[opSampler.draw(rng)]}
		// Force the remaining introductions through when the sampled
		// rate slots would no longer fit them: the wave completing is
		// part of the scenario's contract, whatever the mix says.
		if len(introQueue) >= n-i {
			req.Op = OpRate
		}
		switch req.Op {
		case OpPredict:
			req.User, req.Item = users.draw(rng), items.draw(rng)
		case OpRecommend:
			req.User, req.N = users.draw(rng), sc.RecommendN
		case OpRate:
			req.User, req.Item = users.draw(rng), items.draw(rng)
			req.Rating = float64(1 + rng.Intn(5))
		case OpBatch:
			req.Pairs = make([]Pair, sc.BatchSize)
			for j := range req.Pairs {
				req.Pairs[j] = Pair{User: users.draw(rng), Item: items.draw(rng)}
			}
		}

		switch sc.Kind {
		case KindFlashCrowd:
			// Linear ramp to the peak share, then hold it.
			share := sc.HotItemShare
			if ramp > 0 && at < ramp {
				share *= float64(at) / float64(ramp)
			}
			if rng.Float64() < share {
				switch req.Op {
				case OpPredict, OpRate:
					req.Item = hotItem
				case OpBatch:
					for j := range req.Pairs {
						if j%2 == 0 {
							req.Pairs[j].Item = hotItem
						}
					}
				}
			}
		case KindColdStart:
			if req.Op == OpRate && len(introQueue) > 0 {
				in := introQueue[0]
				introQueue = introQueue[1:]
				req.User, req.Item = in.user, in.item
				if len(introQueue)%sc.RatingsPerNewUser == 0 {
					bornUsers = sc.NewUsers - len(introQueue)/sc.RatingsPerNewUser
				}
			} else if (req.Op == OpPredict || req.Op == OpRecommend) && bornUsers > 0 && rng.Float64() < 0.5 {
				// Half the reads chase the wave: does a fresh profile
				// get sane predictions immediately after applying?
				req.User = m.NumUsers() + rng.Intn(bornUsers)
			}
		case KindChurn:
			if req.Op == OpRate && len(introQueue) > 0 {
				in := introQueue[0]
				introQueue = introQueue[1:]
				req.User, req.Item = in.user, in.item
				bornItems = sc.NewItems - len(introQueue)
			} else if req.Op == OpPredict && bornItems > 0 && rng.Float64() < 0.3 {
				req.Item = m.NumItems() + rng.Intn(bornItems)
			}
		case KindJunkFlood:
			if req.Op == OpRate && rng.Float64() < sc.JunkShare {
				// Outside the 1..5 scale — the server must 400 it.
				req.Rating = 99
				req.ExpectReject = true
				st.ExpectedRejects++
			}
		}

		if req.User > st.MaxUser {
			st.MaxUser = req.User
		}
		if req.Item > st.MaxItem {
			st.MaxItem = req.Item
		}
		for _, p := range req.Pairs {
			if p.User > st.MaxUser {
				st.MaxUser = p.User
			}
			if p.Item > st.MaxItem {
				st.MaxItem = p.Item
			}
		}
		st.Requests = append(st.Requests, req)
	}
	return st, nil
}
