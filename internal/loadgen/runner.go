package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cfsf/internal/obs"
)

// Target abstracts where requests go. URL is consulted per request, not
// cached, because a kill-and-recover target may come back on a new
// address (the in-process test target does exactly that).
type Target interface {
	URL() string
	Close() error
}

// Killable is the extra surface the killrecover scenario needs: an
// abrupt kill (SIGKILL — no drain, no final snapshot) and a restart
// over the same data directory so recovery replays the WAL tail.
type Killable interface {
	Kill() error
	Restart() error
}

// StaticTarget points at an already-running server by base URL.
type StaticTarget string

func (t StaticTarget) URL() string  { return string(t) }
func (t StaticTarget) Close() error { return nil }

// Runner executes a materialised Stream against a Target.
type Runner struct {
	// Client is the HTTP client used for every request; a default with
	// a 30s timeout is installed when nil.
	Client *http.Client
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
	// ReadyTimeout bounds the post-restart readiness poll (killrecover)
	// and the pre-run readiness wait. <= 0 means 60s.
	ReadyTimeout time.Duration
	// DrainTimeout bounds the post-run lifecycle-queue drain poll.
	// <= 0 means 30s.
	DrainTimeout time.Duration
	// ControlTarget, when non-nil, is where the readiness and drain
	// probes go instead of the traffic target. A replica fleet sets this
	// to the leader: traffic round-robins over every member, but "is the
	// queue drained" is a leader question (followers have no lifecycle
	// section and would report drained instantly).
	ControlTarget Target
}

// opCounters aggregates one operation's outcomes. Latency is recorded
// in milliseconds from the request's scheduled arrival time, so
// server-side stalls surface as tail latency instead of being absorbed
// by a slower send rate (no coordinated omission).
type opCounters struct {
	hist      *obs.Histogram
	sent      atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	throttled atomic.Int64
}

type timedReq struct {
	req   Request
	sched time.Time
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes the stream and returns the evaluated report. The
// dispatcher is open-loop: arrival times come from the schedule alone
// (shifted only by measured downtime in killrecover), and a buffered
// queue decouples dispatch from the worker pool so a slow server never
// throttles the offered load.
func (r *Runner) Run(ctx context.Context, st *Stream, target Target) (*Report, error) {
	sc := st.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	defer client.CloseIdleConnections()

	if err := r.awaitReady(ctx, client, r.controlTarget(target), "warm-up"); err != nil {
		return nil, err
	}

	counters := map[string]*opCounters{}
	for op := range sc.Mix {
		if sc.Mix[op] > 0 {
			counters[op] = &opCounters{hist: obs.NewHistogram(obs.DefaultLatencyBuckets())}
		}
	}

	reqc := make(chan timedReq, len(st.Requests))
	var wg sync.WaitGroup
	var inflight sync.WaitGroup
	for w := 0; w < sc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tr := range reqc {
				r.execute(client, target, tr, counters[tr.req.Op])
				inflight.Done()
			}
		}()
	}

	killAfter := time.Duration(sc.KillAfterMS) * time.Millisecond
	_, canKill := target.(Killable)
	if sc.Kind == KindKillRecover && !canKill {
		close(reqc)
		wg.Wait()
		return nil, fmt.Errorf("scenario %q: killrecover needs a killable target (self-spawned server), not an external URL", sc.Name)
	}

	r.logf("scenario %s: dispatching %d requests over %dms at %g qps (%d workers)",
		sc.Name, len(st.Requests), sc.DurationMS, sc.QPS, sc.Workers)

	start := time.Now()
	var offset time.Duration // accumulated downtime; shifts the remaining schedule
	var recoveryMS float64
	killed := false
	var dispatchErr error
	for _, req := range st.Requests {
		if ctx.Err() != nil {
			dispatchErr = ctx.Err()
			break
		}
		if sc.Kind == KindKillRecover && !killed && req.At >= killAfter {
			// Let everything dispatched before the kill point finish
			// against the live server, then pull the plug.
			inflight.Wait()
			downStart := time.Now()
			rec, err := r.killAndRecover(ctx, client, target)
			if err != nil {
				dispatchErr = err
				break
			}
			recoveryMS = rec
			offset += time.Since(downStart)
			killed = true
		}
		sched := start.Add(offset + req.At)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		inflight.Add(1)
		reqc <- timedReq{req: req, sched: sched}
	}
	close(reqc)
	wg.Wait()
	elapsed := time.Since(start)
	if dispatchErr != nil {
		return nil, dispatchErr
	}

	drainMS, err := r.awaitDrain(ctx, client, r.controlTarget(target))
	if err != nil {
		return nil, err
	}

	rep := buildReport(sc, st, counters, elapsed, recoveryMS, drainMS)
	evaluateSLO(sc, rep)
	return rep, nil
}

// execute issues one request and records its outcome. Latency is
// milliseconds since the scheduled arrival.
func (r *Runner) execute(client *http.Client, target Target, tr timedReq, c *opCounters) {
	req := tr.req
	base := target.URL()
	var (
		resp *http.Response
		err  error
	)
	switch req.Op {
	case OpPredict:
		resp, err = client.Get(fmt.Sprintf("%s/predict?user=%d&item=%d", base, req.User, req.Item))
	case OpRecommend:
		resp, err = client.Get(fmt.Sprintf("%s/recommend?user=%d&n=%d", base, req.User, req.N))
	case OpRate:
		body, _ := json.Marshal(map[string]any{"user": req.User, "item": req.Item, "rating": req.Rating})
		resp, err = client.Post(base+"/rate", "application/json", bytes.NewReader(body))
	case OpBatch:
		body, _ := json.Marshal(map[string]any{"pairs": req.Pairs})
		resp, err = client.Post(base+"/predict/batch", "application/json", bytes.NewReader(body))
	default:
		return
	}
	lat := float64(time.Since(tr.sched)) / float64(time.Millisecond)
	c.sent.Add(1)
	c.hist.Observe(lat)
	if err != nil {
		c.errors.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	switch {
	case req.ExpectReject:
		if resp.StatusCode == http.StatusBadRequest {
			c.rejected.Add(1)
		} else {
			// The validation layer let junk through (or shed it with
			// the wrong status): that is the failure this scenario
			// exists to catch.
			c.errors.Add(1)
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		// Admission control (-max-qps) shedding offered load beyond the
		// node's declared capacity: deliberate, not a failure.
		c.throttled.Add(1)
	case resp.StatusCode >= 400:
		c.errors.Add(1)
	}
}

// controlTarget is where readiness/drain probes go: the explicit
// ControlTarget when set, otherwise the traffic target itself.
func (r *Runner) controlTarget(target Target) Target {
	if r.ControlTarget != nil {
		return r.ControlTarget
	}
	return target
}

// AwaitReady polls a target's /healthz?ready=1 until it answers 200 —
// exported for fleet orchestration (cfsf-loadgen waits for each replica
// before traffic starts, and for a restarted follower before resuming
// its rotation slot).
func (r *Runner) AwaitReady(ctx context.Context, target Target) error {
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return r.awaitReady(ctx, client, target, "fleet")
}

// awaitReady polls /healthz?ready=1 until it answers 200.
func (r *Runner) awaitReady(ctx context.Context, client *http.Client, target Target, phase string) error {
	timeout := r.ReadyTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Get(target.URL() + "/healthz?ready=1")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("target %s not ready within %v (%s)", target.URL(), timeout, phase)
}

// killAndRecover SIGKILLs the target mid-traffic, restarts it over the
// same data directory, and measures restart-to-ready: the span from
// Restart returning control to the first 200 on /healthz?ready=1 —
// snapshot load plus WAL-tail replay, the number the scenario gates on.
func (r *Runner) killAndRecover(ctx context.Context, client *http.Client, target Target) (float64, error) {
	k := target.(Killable)
	r.logf("killing target (SIGKILL, no drain)")
	if err := k.Kill(); err != nil {
		return 0, fmt.Errorf("kill target: %w", err)
	}
	recoveryStart := time.Now()
	if err := k.Restart(); err != nil {
		return 0, fmt.Errorf("restart target: %w", err)
	}
	if err := r.awaitReady(ctx, client, target, "recovery"); err != nil {
		return 0, err
	}
	rec := float64(time.Since(recoveryStart)) / float64(time.Millisecond)
	r.logf("target recovered to ready in %.0fms", rec)
	return rec, nil
}

// awaitDrain polls /stats until the lifecycle queue reports pending=0
// and apply_lag=0, returning how long that took in milliseconds. A
// target without a lifecycle section (no -data-dir) drains instantly.
func (r *Runner) awaitDrain(ctx context.Context, client *http.Client, target Target) (float64, error) {
	timeout := r.DrainTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		resp, err := client.Get(target.URL() + "/stats")
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var stats struct {
			Lifecycle *struct {
				Pending  float64 `json:"pending"`
				ApplyLag float64 `json:"apply_lag"`
			} `json:"lifecycle"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&stats)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if decodeErr == nil && (stats.Lifecycle == nil || (stats.Lifecycle.Pending == 0 && stats.Lifecycle.ApplyLag == 0)) {
			return float64(time.Since(start)) / float64(time.Millisecond), nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, fmt.Errorf("lifecycle queue did not drain within %v", timeout)
}
