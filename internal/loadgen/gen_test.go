package loadgen

import (
	"testing"
)

// TestStreamDeterminism is the reproducibility contract: building the
// stream twice from the same scenario yields hash-identical request
// sequences, and changing only the seed yields a different one.
func TestStreamDeterminism(t *testing.T) {
	for _, name := range Names() {
		sc1, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		sc2, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := BuildStream(sc1)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := BuildStream(sc2)
		if err != nil {
			t.Fatal(err)
		}
		if f1, f2 := st1.Fingerprint(), st2.Fingerprint(); f1 != f2 {
			t.Errorf("scenario %s: same seed produced different streams: %s vs %s", name, f1, f2)
		}
		if len(st1.Requests) == 0 {
			t.Errorf("scenario %s: empty stream", name)
		}
		if sc1.ConfigHash() != sc2.ConfigHash() {
			t.Errorf("scenario %s: config hash not stable", name)
		}

		sc3, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		sc3.Seed++
		st3, err := BuildStream(sc3)
		if err != nil {
			t.Fatal(err)
		}
		if st1.Fingerprint() == st3.Fingerprint() {
			t.Errorf("scenario %s: different seeds produced the same stream", name)
		}
	}
}

func testScenario(kind string) *Scenario {
	sc := &Scenario{
		Name: "t-" + kind, Version: 1, Kind: kind, Seed: 7,
		Dataset:    DatasetConfig{Users: 40, Items: 50, Seed: 1},
		DurationMS: 400, QPS: 100, Workers: 4,
		Mix: map[string]float64{OpPredict: 0.4, OpRecommend: 0.2, OpRate: 0.3, OpBatch: 0.1},
		SLO: SLOConfig{MaxErrorRate: 0.01},
	}
	switch kind {
	case KindFlashCrowd:
		sc.HotItemShare = 0.9
		sc.RampMS = 100
	case KindColdStart:
		sc.NewUsers = 5
		sc.RatingsPerNewUser = 3
		sc.SLO.MaxErrorRate = 0.2 // reads may race the async apply
	case KindChurn:
		sc.NewItems = 6
		sc.SLO.MaxErrorRate = 0.2
	case KindJunkFlood:
		sc.JunkShare = 0.5
	case KindKillRecover:
		sc.DurationMS = 1200
		sc.KillAfterMS = 500
		sc.SLO.MaxRecoveryMS = 60000
		sc.SLO.MaxErrorRate = 0.05
	}
	sc.applyDefaults()
	return sc
}

// TestStreamKindShapes spot-checks the per-kind distortions on small
// synthetic scenarios.
func TestStreamKindShapes(t *testing.T) {
	t.Run("coldstart introduces every new user in order", func(t *testing.T) {
		sc := testScenario(KindColdStart)
		st, err := BuildStream(sc)
		if err != nil {
			t.Fatal(err)
		}
		if want := sc.Dataset.Users + sc.NewUsers - 1; st.MaxUser != want {
			t.Errorf("MaxUser = %d, want %d", st.MaxUser, want)
		}
		seen := -1
		for _, r := range st.Requests {
			if r.Op == OpRate && r.User >= sc.Dataset.Users {
				k := r.User - sc.Dataset.Users
				if k > seen+1 {
					t.Fatalf("new user %d rated before user %d finished registering", k, seen+1)
				}
				if k > seen {
					seen = k
				}
			}
		}
		if seen != sc.NewUsers-1 {
			t.Errorf("only %d of %d new users registered", seen+1, sc.NewUsers)
		}
	})
	t.Run("churn reaches every new item", func(t *testing.T) {
		sc := testScenario(KindChurn)
		st, err := BuildStream(sc)
		if err != nil {
			t.Fatal(err)
		}
		if want := sc.Dataset.Items + sc.NewItems - 1; st.MaxItem != want {
			t.Errorf("MaxItem = %d, want %d", st.MaxItem, want)
		}
	})
	t.Run("junkflood marks out-of-scale ratings", func(t *testing.T) {
		sc := testScenario(KindJunkFlood)
		st, err := BuildStream(sc)
		if err != nil {
			t.Fatal(err)
		}
		if st.ExpectedRejects == 0 {
			t.Fatal("no junk requests generated at junk_share=0.5")
		}
		count := 0
		for _, r := range st.Requests {
			if r.ExpectReject {
				count++
				if r.Op != OpRate || r.Rating <= 5 {
					t.Fatalf("junk request is not an out-of-scale rate: %+v", r)
				}
			}
		}
		if count != st.ExpectedRejects {
			t.Errorf("ExpectedRejects = %d but %d requests are marked", st.ExpectedRejects, count)
		}
	})
	t.Run("flashcrowd concentrates on the hot item", func(t *testing.T) {
		sc := testScenario(KindFlashCrowd)
		st, err := BuildStream(sc)
		if err != nil {
			t.Fatal(err)
		}
		hot := map[int]int{}
		total := 0
		for _, r := range st.Requests {
			if r.Op == OpPredict {
				hot[r.Item]++
				total++
			}
		}
		best := 0
		for _, n := range hot {
			if n > best {
				best = n
			}
		}
		if total == 0 || float64(best)/float64(total) < 0.5 {
			t.Errorf("hottest item got %d/%d predict requests, want a majority", best, total)
		}
	})
}
