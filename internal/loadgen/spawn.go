package loadgen

import (
	"fmt"
	"io"
	"net"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ProcOptions configures a self-spawned cfsf-server target.
type ProcOptions struct {
	// ServerBin is the path to a prebuilt cfsf-server binary.
	ServerBin string
	// DataDir is the durability root passed as -data-dir; empty runs
	// the server in memory-only mode (killrecover then has nothing to
	// recover and Validate-level checks in cfsf-loadgen reject it).
	DataDir string
	// Dataset sizes the synthetic matrix the server trains on; it must
	// equal the scenario's Dataset so sampled ids resolve.
	Dataset DatasetConfig
	// GrowthMargin is forwarded as -growth-margin; use
	// Scenario.GrowthMargin().
	GrowthMargin int
	// Fsync is forwarded as -fsync; empty means "always" (the
	// killrecover scenario measures recovery of acknowledged writes, so
	// the default must not lose any).
	Fsync string
	// Stderr receives the server's log output; nil discards it.
	Stderr io.Writer
	// ExtraArgs are appended verbatim to the server's argument vector
	// (after the generated flags, so they win on repeats). The CI smoke
	// uses this to run killrecover with WAL compaction on
	// ("-compact=true"); Restart re-execs the same vector, so recovery
	// runs under the same flags traffic did.
	ExtraArgs []string
	// FollowURL, when set, spawns the server as a read replica
	// (-follow): it bootstraps from the leader instead of training, so
	// the dataset/data-dir/fsync knobs above are not forwarded.
	FollowURL string
	// AdminToken is forwarded as -admin-token (and authenticates the
	// replication stream under FollowURL).
	AdminToken string
	// MaxQPS is forwarded as -max-qps: per-process serving capacity for
	// the scaling benchmark. 0 omits the flag.
	MaxQPS int
}

// ProcTarget runs cfsf-server as a child process. Kill is a real
// SIGKILL — no drain, no final snapshot — and Restart re-execs the same
// argument vector over the same data directory, so recovery exercises
// snapshot load plus WAL-tail replay exactly as a production crash
// would.
type ProcTarget struct {
	opts ProcOptions
	addr string
	args []string

	mu  sync.Mutex
	cmd *exec.Cmd //cfsf:guarded-by mu
}

// SpawnServer picks a free loopback port, starts cfsf-server on it, and
// returns the target. The caller should Runner.Run (which waits for
// readiness) or poll /healthz?ready=1 before sending traffic.
func SpawnServer(opts ProcOptions) (*ProcTarget, error) {
	if opts.ServerBin == "" {
		return nil, fmt.Errorf("spawn: ServerBin is required")
	}
	addr, err := freePort()
	if err != nil {
		return nil, err
	}
	args := []string{"-addr", addr}
	if opts.FollowURL != "" {
		args = append(args, "-follow", opts.FollowURL)
	} else {
		args = append(args,
			"-synth-users", fmt.Sprint(opts.Dataset.Users),
			"-synth-items", fmt.Sprint(opts.Dataset.Items),
			"-seed", fmt.Sprint(opts.Dataset.Seed),
			"-growth-margin", fmt.Sprint(opts.GrowthMargin),
		)
		if opts.DataDir != "" {
			args = append(args, "-data-dir", opts.DataDir)
		}
		if opts.Fsync != "" {
			args = append(args, "-fsync", opts.Fsync)
		}
	}
	if opts.AdminToken != "" {
		args = append(args, "-admin-token", opts.AdminToken)
	}
	if opts.MaxQPS > 0 {
		args = append(args, "-max-qps", fmt.Sprint(opts.MaxQPS))
	}
	args = append(args, opts.ExtraArgs...)
	t := &ProcTarget{opts: opts, addr: addr, args: args}
	if err := t.start(); err != nil {
		return nil, err
	}
	return t, nil
}

func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("pick port: %w", err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", fmt.Errorf("release port: %w", err)
	}
	return addr, nil
}

func (t *ProcTarget) start() error {
	cmd := exec.Command(t.opts.ServerBin, t.args...)
	cmd.Stderr = t.opts.Stderr
	cmd.Stdout = t.opts.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", t.opts.ServerBin, err)
	}
	t.mu.Lock()
	t.cmd = cmd
	t.mu.Unlock()
	return nil
}

// URL returns the target base URL; the address survives restarts (the
// child is always told the same -addr).
func (t *ProcTarget) URL() string { return "http://" + t.addr }

// Kill delivers SIGKILL and reaps the child. The server gets no chance
// to drain its queue or write a final snapshot — that is the point.
func (t *ProcTarget) Kill() error {
	t.mu.Lock()
	cmd := t.cmd
	t.cmd = nil
	t.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("kill: server not running")
	}
	if err := cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill server: %w", err)
	}
	_ = cmd.Wait() // reap; the error is the SIGKILL we just sent
	return nil
}

// Restart re-execs the server with the identical argument vector; with
// a data dir set, boot recovers from the newest snapshot plus WAL tail.
func (t *ProcTarget) Restart() error {
	t.mu.Lock()
	running := t.cmd != nil
	t.mu.Unlock()
	if running {
		return fmt.Errorf("restart: server still running (Kill first)")
	}
	return t.start()
}

// Close shuts the child down gracefully: SIGTERM, then SIGKILL if it
// has not exited within 15s.
func (t *ProcTarget) Close() error {
	t.mu.Lock()
	cmd := t.cmd
	t.cmd = nil
	t.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		<-done
		return fmt.Errorf("close: server ignored SIGTERM for 15s, killed")
	}
}
