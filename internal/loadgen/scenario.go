// Package loadgen is a scenario-driven load harness for the cfsf-server
// HTTP API. A Scenario is a small JSON document naming a traffic shape
// (steady mix, flash crowd, cold-start wave, catalogue churn, junk
// flood, kill-and-recover), a seeded synthetic population to draw
// users/items from, a pacing target, and the SLOs the run must meet.
//
// Everything is reproducible: the request stream is a pure function of
// the resolved scenario (defaults applied), so two runs with the same
// scenario version and seed issue byte-identical request sequences —
// Stream's Fingerprint and the scenario's ConfigHash together identify
// a run completely. The generator draws from its own rand.New(
// rand.NewSource(seed)); no global PRNG state is touched.
package loadgen

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Request operation names, matching the server endpoints they drive.
const (
	OpPredict   = "predict"   // GET /predict?user=&item=
	OpRecommend = "recommend" // GET /recommend?user=&n=
	OpRate      = "rate"      // POST /rate (single-object body)
	OpBatch     = "batch"     // POST /predict/batch
)

// Scenario kinds. Each kind reuses the same steady-state machinery and
// layers one distortion on top; see Stream for the exact semantics.
const (
	KindSteady      = "steady"      // mixed read/write at the configured ratio
	KindFlashCrowd  = "flashcrowd"  // item-level hotspot ramping up over RampMS
	KindColdStart   = "coldstart"   // wave of brand-new users rating then reading
	KindChurn       = "churn"       // brand-new items entering the catalogue (GIS growth)
	KindJunkFlood   = "junkflood"   // share of ratings outside the scale (rejection path)
	KindKillRecover = "killrecover" // SIGKILL mid-traffic, measure recovery-to-ready
)

// DatasetConfig sizes the synthetic population the generator samples
// users and items from. It must match the dataset the target server was
// booted with (cfsf-loadgen passes the same values to -synth-users /
// -synth-items / -seed when it spawns the server itself), otherwise
// sampled ids fall outside the model and reads 404.
type DatasetConfig struct {
	Users int   `json:"users"`
	Items int   `json:"items"`
	Seed  int64 `json:"seed"`
}

// SLOConfig is the pass/fail contract evaluated after a run.
type SLOConfig struct {
	// MaxP99MS caps the client-observed p99 latency per operation, in
	// milliseconds, measured from the request's *scheduled* send time
	// (coordinated-omission free: queueing behind a stalled server
	// counts against the percentile).
	MaxP99MS map[string]float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate caps errors/sent across all operations. Expected
	// rejections (junkflood) are not errors.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MaxRecoveryMS caps restart-to-ready time for killrecover: the
	// span from re-exec to the first 200 on /healthz?ready=1, i.e. the
	// snapshot-load + WAL-replay cost the lifecycle manager pays.
	MaxRecoveryMS float64 `json:"max_recovery_ms,omitempty"`
	// MaxDrainMS, when > 0, caps how long the lifecycle queue takes to
	// drain (pending and apply-lag both zero in /stats) after the last
	// request. 0 skips the check.
	MaxDrainMS float64 `json:"max_drain_ms,omitempty"`
}

// Scenario is the resolved load-test configuration. JSON field names
// are the on-disk schema; Validate rejects inconsistent documents
// before a single request is generated or sent.
type Scenario struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Seed    int64  `json:"seed"`

	Dataset    DatasetConfig      `json:"dataset"`
	DurationMS int                `json:"duration_ms"`
	QPS        float64            `json:"qps"`
	Workers    int                `json:"workers,omitempty"`
	Mix        map[string]float64 `json:"mix"`
	RecommendN int                `json:"recommend_n,omitempty"`
	BatchSize  int                `json:"batch_size,omitempty"`

	// Kind-specific knobs; Validate enforces which kind needs which.
	HotItemShare      float64 `json:"hot_item_share,omitempty"`       // flashcrowd: peak share of item ops on the hot item
	RampMS            int     `json:"ramp_ms,omitempty"`              // flashcrowd: linear ramp to peak share
	NewUsers          int     `json:"new_users,omitempty"`            // coldstart: users born during the run
	RatingsPerNewUser int     `json:"ratings_per_new_user,omitempty"` // coldstart: profile size before reads target them
	NewItems          int     `json:"new_items,omitempty"`            // churn: items entering the catalogue
	JunkShare         float64 `json:"junk_share,omitempty"`           // junkflood: share of rate ops outside the scale
	KillAfterMS       int     `json:"kill_after_ms,omitempty"`        // killrecover: SIGKILL point

	SLO SLOConfig `json:"slo"`
}

//go:embed scenarios/*.json
var embedded embed.FS

// Names lists the committed scenarios, sorted.
func Names() []string {
	entries, err := embedded.ReadDir("scenarios")
	if err != nil {
		return nil // embed.FS of committed files cannot fail in practice
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Load resolves a scenario by embedded name first, then as a filesystem
// path, applies defaults, and validates. The returned Scenario is fully
// resolved: ConfigHash over it identifies the run configuration.
func Load(nameOrPath string) (*Scenario, error) {
	raw, err := embedded.ReadFile("scenarios/" + nameOrPath + ".json")
	if err != nil {
		raw, err = os.ReadFile(nameOrPath)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: not embedded (have %s) and not a readable file: %w",
				nameOrPath, strings.Join(Names(), ", "), err)
		}
	}
	return Parse(raw)
}

// Parse decodes, defaults, and validates a scenario document. Unknown
// fields are rejected so a typoed knob cannot silently revert to its
// default.
func Parse(raw []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("decode scenario: %w", err)
	}
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// applyDefaults fills zero-valued optional knobs. Defaults are part of
// the reproducibility contract: ConfigHash is computed AFTER this, so a
// future default change cannot silently alias two different runs.
func (sc *Scenario) applyDefaults() {
	if sc.Workers == 0 {
		sc.Workers = 8
	}
	if sc.RecommendN == 0 {
		sc.RecommendN = 10
	}
	if sc.BatchSize == 0 {
		sc.BatchSize = 16
	}
	if sc.Dataset.Users == 0 {
		sc.Dataset.Users = 120
	}
	if sc.Dataset.Items == 0 {
		sc.Dataset.Items = 150
	}
	if sc.Dataset.Seed == 0 {
		sc.Dataset.Seed = 1
	}
	if sc.Kind == KindColdStart && sc.RatingsPerNewUser == 0 {
		sc.RatingsPerNewUser = 5
	}
}

var validKinds = map[string]bool{
	KindSteady: true, KindFlashCrowd: true, KindColdStart: true,
	KindChurn: true, KindJunkFlood: true, KindKillRecover: true,
}

var validOps = map[string]bool{
	OpPredict: true, OpRecommend: true, OpRate: true, OpBatch: true,
}

// Validate rejects inconsistent scenarios. It runs before generation,
// so a bad config fails fast — no request is ever built or sent.
func (sc *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", sc.Name, fmt.Sprintf(format, args...))
	}
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if sc.Version <= 0 {
		return fail("version must be >= 1, got %d", sc.Version)
	}
	if !validKinds[sc.Kind] {
		return fail("unknown kind %q", sc.Kind)
	}
	if sc.DurationMS <= 0 {
		return fail("duration_ms must be positive, got %d", sc.DurationMS)
	}
	if sc.QPS <= 0 || sc.QPS > 1e6 {
		return fail("qps must be in (0, 1e6], got %g", sc.QPS)
	}
	if sc.Workers < 0 {
		return fail("workers must be positive, got %d", sc.Workers)
	}
	if sc.Dataset.Users <= 0 || sc.Dataset.Items <= 0 {
		return fail("dataset must have positive users and items, got %d×%d",
			sc.Dataset.Users, sc.Dataset.Items)
	}
	if len(sc.Mix) == 0 {
		return fail("empty mix: name at least one of predict, recommend, rate, batch")
	}
	var sum float64
	for op, w := range sc.Mix {
		if !validOps[op] {
			return fail("mix names unknown op %q", op)
		}
		if w < 0 {
			return fail("mix weight for %q is negative (%g)", op, w)
		}
		sum += w
	}
	if sum <= 0 {
		return fail("mix weights sum to zero")
	}
	if sc.RecommendN < 1 || sc.RecommendN > 100 {
		return fail("recommend_n must be in [1,100], got %d", sc.RecommendN)
	}
	if sc.BatchSize < 1 || sc.BatchSize > 1024 {
		return fail("batch_size must be in [1,1024], got %d", sc.BatchSize)
	}
	if sc.HotItemShare < 0 || sc.HotItemShare > 1 {
		return fail("hot_item_share must be in [0,1], got %g", sc.HotItemShare)
	}
	if sc.JunkShare < 0 || sc.JunkShare > 1 {
		return fail("junk_share must be in [0,1], got %g", sc.JunkShare)
	}
	totalRequests := int(sc.QPS * float64(sc.DurationMS) / 1000)
	switch sc.Kind {
	case KindFlashCrowd:
		if sc.HotItemShare <= 0 {
			return fail("flashcrowd needs hot_item_share > 0")
		}
	case KindColdStart:
		if sc.NewUsers <= 0 {
			return fail("coldstart needs new_users > 0")
		}
		if sc.RatingsPerNewUser <= 0 {
			return fail("coldstart needs ratings_per_new_user > 0")
		}
		if sc.Mix[OpRate] <= 0 {
			return fail("coldstart needs a positive rate weight in the mix")
		}
		if intros := sc.NewUsers * sc.RatingsPerNewUser; intros > totalRequests {
			return fail("cold-start wave needs %d registration ratings but qps×duration only yields %d requests",
				intros, totalRequests)
		}
	case KindChurn:
		if sc.NewItems <= 0 {
			return fail("churn needs new_items > 0")
		}
		if sc.Mix[OpRate] <= 0 {
			return fail("churn needs a positive rate weight in the mix")
		}
		if sc.NewItems > totalRequests {
			return fail("churn introduces %d items but qps×duration only yields %d requests",
				sc.NewItems, totalRequests)
		}
	case KindJunkFlood:
		if sc.JunkShare <= 0 {
			return fail("junkflood needs junk_share > 0")
		}
		if sc.Mix[OpRate] <= 0 {
			return fail("junkflood needs a positive rate weight in the mix")
		}
	case KindKillRecover:
		if sc.KillAfterMS <= 0 || sc.KillAfterMS >= sc.DurationMS {
			return fail("killrecover needs kill_after_ms in (0, duration_ms), got %d", sc.KillAfterMS)
		}
		if sc.SLO.MaxRecoveryMS <= 0 {
			return fail("killrecover needs slo.max_recovery_ms > 0")
		}
	}
	if sc.SLO.MaxErrorRate < 0 || sc.SLO.MaxErrorRate > 1 {
		return fail("slo.max_error_rate must be in [0,1], got %g", sc.SLO.MaxErrorRate)
	}
	for op, limit := range sc.SLO.MaxP99MS {
		if !validOps[op] {
			return fail("slo.max_p99_ms names unknown op %q", op)
		}
		if limit <= 0 {
			return fail("slo.max_p99_ms for %q must be positive, got %g", op, limit)
		}
		if sc.Mix[op] <= 0 {
			return fail("slo.max_p99_ms gates %q but the mix never sends it", op)
		}
	}
	return nil
}

// ConfigHash is the sha256 of the resolved scenario's canonical JSON
// encoding (struct field order, defaults applied). Two runs with equal
// hashes and equal seeds replay the identical request stream.
func (sc *Scenario) ConfigHash() string {
	raw, err := json.Marshal(sc)
	if err != nil {
		// A Scenario is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("marshal scenario: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// GrowthMargin is how far past the booted matrix bounds this scenario's
// ids may reach — what the target server's -growth-margin must cover.
// The slack term absorbs queued-but-unapplied ratings: validation races
// application, so every fresh id this scenario introduces may be
// validated against the original bounds.
func (sc *Scenario) GrowthMargin() int {
	m := 1 + sc.NewUsers + sc.NewItems
	if m < 8 {
		m = 8
	}
	return m
}
