package loadgen

import (
	"fmt"
	"testing"
)

type namedTarget string

func (n namedTarget) URL() string  { return string(n) }
func (n namedTarget) Close() error { return nil }

func TestMultiTargetRoundRobin(t *testing.T) {
	mt, err := NewMultiTarget(namedTarget("a"), namedTarget("b"), namedTarget("c"))
	if err != nil {
		t.Fatal(err)
	}
	got := []string{mt.URL(), mt.URL(), mt.URL(), mt.URL(), mt.URL(), mt.URL()}
	want := []string{"a", "b", "c", "a", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rotation = %v, want %v", got, want)
	}
}

func TestMultiTargetSuspendResume(t *testing.T) {
	mt, err := NewMultiTarget(namedTarget("a"), namedTarget("b"), namedTarget("c"))
	if err != nil {
		t.Fatal(err)
	}
	mt.Suspend(1) // "b" is down
	for i := 0; i < 9; i++ {
		if u := mt.URL(); u == "b" {
			t.Fatalf("rotation hit suspended member on call %d", i)
		}
	}
	mt.Resume(1)
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		seen[mt.URL()] = true
	}
	if !seen["b"] {
		t.Fatal("resumed member never re-entered rotation")
	}

	// All down: plain rotation rather than spinning forever.
	for i := 0; i < 3; i++ {
		mt.Suspend(i)
	}
	if u := mt.URL(); u == "" {
		t.Fatal("all-suspended fleet returned no target")
	}
}

func TestMultiTargetRequiresMembers(t *testing.T) {
	if _, err := NewMultiTarget(); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
