package loadgen

import (
	"os"
	"testing"

	"cfsf/internal/leakcheck"
)

func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
