package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// OpReport summarises one operation's outcomes. Latencies are
// milliseconds measured from scheduled arrival (see Runner).
type OpReport struct {
	Sent      int64   `json:"sent"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected,omitempty"`
	Throttled int64   `json:"throttled,omitempty"` // 429s from -max-qps admission control
	OKPerSec  float64 `json:"ok_per_sec"`          // successful responses per wall second
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// SLOCheck is one evaluated gate. Most checks are "actual <= limit";
// the rejections check (junkflood) demands exact equality.
type SLOCheck struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// Report is the machine-readable outcome of one run. ConfigHash + Seed
// + Fingerprint pin the run to an exactly reproducible request stream.
type Report struct {
	Scenario    string  `json:"scenario"`
	Version     int     `json:"version"`
	Kind        string  `json:"kind"`
	Seed        int64   `json:"seed"`
	ConfigHash  string  `json:"config_hash"`
	Fingerprint string  `json:"fingerprint"`
	Requests    int     `json:"requests"`
	ElapsedMS   float64 `json:"elapsed_ms"`

	Ops map[string]*OpReport `json:"ops"`

	RecoveryMS      float64 `json:"recovery_ms,omitempty"`
	DrainMS         float64 `json:"drain_ms"`
	ExpectedRejects int64   `json:"expected_rejects,omitempty"`
	ObservedRejects int64   `json:"observed_rejects,omitempty"`

	Checks []SLOCheck `json:"checks"`
	Pass   bool       `json:"pass"`
}

func buildReport(sc *Scenario, st *Stream, counters map[string]*opCounters, elapsed time.Duration, recoveryMS, drainMS float64) *Report {
	rep := &Report{
		Scenario:        sc.Name,
		Version:         sc.Version,
		Kind:            sc.Kind,
		Seed:            sc.Seed,
		ConfigHash:      sc.ConfigHash(),
		Fingerprint:     st.Fingerprint(),
		Requests:        len(st.Requests),
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Ops:             map[string]*OpReport{},
		RecoveryMS:      recoveryMS,
		DrainMS:         drainMS,
		ExpectedRejects: int64(st.ExpectedRejects),
	}
	elapsedSec := elapsed.Seconds()
	for op, c := range counters {
		snap := c.hist.Snapshot()
		o := &OpReport{
			Sent:      c.sent.Load(),
			Errors:    c.errors.Load(),
			Rejected:  c.rejected.Load(),
			Throttled: c.throttled.Load(),
			MeanMS:    snap.Mean,
			P50MS:     snap.P50,
			P95MS:     snap.P95,
			P99MS:     snap.P99,
			MaxMS:     snap.Max,
		}
		if elapsedSec > 0 {
			o.OKPerSec = float64(o.Sent-o.Errors-o.Throttled-o.Rejected) / elapsedSec
		}
		rep.Ops[op] = o
		rep.ObservedRejects += c.rejected.Load()
	}
	return rep
}

// evaluateSLO fills rep.Checks and rep.Pass against the scenario's SLO
// block. Every gate that applies is evaluated (no short-circuit) so a
// failing run reports the full picture.
func evaluateSLO(sc *Scenario, rep *Report) {
	add := func(name string, limit, actual float64, pass bool) {
		rep.Checks = append(rep.Checks, SLOCheck{Name: name, Limit: limit, Actual: actual, Pass: pass})
	}

	ops := make([]string, 0, len(sc.SLO.MaxP99MS))
	for op := range sc.SLO.MaxP99MS {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		limit := sc.SLO.MaxP99MS[op]
		o := rep.Ops[op]
		if o == nil || o.Sent == 0 {
			// The mix promised this op (Validate enforced it) but none
			// went out — a generator bug, not a fast server.
			add("p99_ms:"+op, limit, 0, false)
			continue
		}
		add("p99_ms:"+op, limit, o.P99MS, o.P99MS <= limit)
	}

	var sent, errors int64
	for _, o := range rep.Ops {
		sent += o.Sent
		errors += o.Errors
	}
	rate := 0.0
	if sent > 0 {
		rate = float64(errors) / float64(sent)
	}
	add("error_rate", sc.SLO.MaxErrorRate, rate, sent > 0 && rate <= sc.SLO.MaxErrorRate)

	if sc.Kind == KindJunkFlood {
		add("rejections", float64(rep.ExpectedRejects), float64(rep.ObservedRejects),
			rep.ObservedRejects == rep.ExpectedRejects)
	}
	if sc.Kind == KindKillRecover {
		add("recovery_ms", sc.SLO.MaxRecoveryMS, rep.RecoveryMS,
			rep.RecoveryMS > 0 && rep.RecoveryMS <= sc.SLO.MaxRecoveryMS)
	}
	if sc.SLO.MaxDrainMS > 0 {
		add("drain_ms", sc.SLO.MaxDrainMS, rep.DrainMS, rep.DrainMS <= sc.SLO.MaxDrainMS)
	}

	rep.Pass = true
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}
}

// Text renders the human-readable run summary.
func (rep *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s v%d (%s) seed=%d\n", rep.Scenario, rep.Version, rep.Kind, rep.Seed)
	fmt.Fprintf(&b, "  config %s\n  stream %s\n", rep.ConfigHash[:16], rep.Fingerprint[:16])
	fmt.Fprintf(&b, "  %d requests in %.0fms\n", rep.Requests, rep.ElapsedMS)
	for _, op := range sortedOps(rep.Ops) {
		o := rep.Ops[op]
		fmt.Fprintf(&b, "  %-10s sent=%-6d err=%-4d thr=%-4d ok/s=%-7.1f p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
			op, o.Sent, o.Errors, o.Throttled, o.OKPerSec, o.P50MS, o.P95MS, o.P99MS, o.MaxMS)
	}
	if rep.Kind == KindKillRecover {
		fmt.Fprintf(&b, "  recovery-to-ready %.0fms\n", rep.RecoveryMS)
	}
	if rep.ExpectedRejects > 0 {
		fmt.Fprintf(&b, "  rejections %d/%d\n", rep.ObservedRejects, rep.ExpectedRejects)
	}
	fmt.Fprintf(&b, "  drain %.0fms\n", rep.DrainMS)
	for _, c := range rep.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-20s actual=%.3f limit=%.3f\n", mark, c.Name, c.Actual, c.Limit)
	}
	if rep.Pass {
		b.WriteString("  result: PASS\n")
	} else {
		b.WriteString("  result: FAIL\n")
	}
	return b.String()
}

// BenchLines renders the run in `go test -bench` output format so
// cmd/benchjson can archive and gate it: one line per operation plus
// scenario-level lines for recovery and drain. Fields come in
// (value, unit) pairs after the name and iteration count, exactly what
// benchjson's parser expects.
func (rep *Report) BenchLines() []string {
	var lines []string
	for _, op := range sortedOps(rep.Ops) {
		o := rep.Ops[op]
		rate := 0.0
		if o.Sent > 0 {
			rate = float64(o.Errors) / float64(o.Sent)
		}
		lines = append(lines, fmt.Sprintf(
			"BenchmarkLoadgen/%s/%s %d %.3f p50-ms %.3f p99-ms %.4f err-rate %.2f ok-per-sec",
			rep.Scenario, op, o.Sent, o.P50MS, o.P99MS, rate, o.OKPerSec))
	}
	if rep.Kind == KindKillRecover {
		lines = append(lines, fmt.Sprintf(
			"BenchmarkLoadgen/%s/recovery 1 %.0f recovery-ms", rep.Scenario, rep.RecoveryMS))
	}
	lines = append(lines, fmt.Sprintf(
		"BenchmarkLoadgen/%s/drain 1 %.0f drain-ms", rep.Scenario, rep.DrainMS))
	return lines
}

func sortedOps(ops map[string]*OpReport) []string {
	names := make([]string, 0, len(ops))
	for op := range ops {
		names = append(names, op)
	}
	sort.Strings(names)
	return names
}
