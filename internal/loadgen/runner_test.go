package loadgen

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/server"
	"cfsf/internal/synth"
	"cfsf/internal/wal"
)

// trainFor builds the model a target server would serve for the
// scenario's dataset — same clamped synth config as the generator, so
// every sampled id resolves.
func trainFor(t *testing.T, sc *Scenario) *core.Model {
	t.Helper()
	ds, err := synth.Generate(datasetConfig(sc.Dataset))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Clusters = 5
	mod, err := core.Train(ds.Matrix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestRunSteadyEndToEnd drives a short steady scenario against an
// in-process server and checks the report accounts for every request.
func TestRunSteadyEndToEnd(t *testing.T) {
	sc := testScenario(KindSteady)
	sc.SLO.MaxP99MS = map[string]float64{OpPredict: 5000, OpRate: 5000}
	st, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.NewWithOptions(trainFor(t, sc), nil, server.Options{GrowthMargin: sc.GrowthMargin()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := &Runner{}
	rep, err := r.Run(context.Background(), st, StaticTarget(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	var sent, errors int64
	for _, o := range rep.Ops {
		sent += o.Sent
		errors += o.Errors
	}
	if sent != int64(len(st.Requests)) {
		t.Errorf("sent %d of %d scheduled requests", sent, len(st.Requests))
	}
	if errors != 0 {
		t.Errorf("%d errors against a healthy in-process server:\n%s", errors, rep.Text())
	}
	if !rep.Pass {
		t.Errorf("steady run failed its SLOs:\n%s", rep.Text())
	}
	if rep.Fingerprint != st.Fingerprint() {
		t.Errorf("report fingerprint %s != stream fingerprint %s", rep.Fingerprint, st.Fingerprint())
	}
	if len(rep.BenchLines()) == 0 {
		t.Error("no bench lines emitted")
	}
}

// TestRunJunkFloodRejections checks the validation-rejection path: every
// deliberately junk rating must come back 400, and only those.
func TestRunJunkFloodRejections(t *testing.T) {
	sc := testScenario(KindJunkFlood)
	st, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithOptions(trainFor(t, sc), nil, server.Options{GrowthMargin: sc.GrowthMargin()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r := &Runner{}
	rep, err := r.Run(context.Background(), st, StaticTarget(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObservedRejects != rep.ExpectedRejects {
		t.Errorf("rejections %d/%d:\n%s", rep.ObservedRejects, rep.ExpectedRejects, rep.Text())
	}
	if !rep.Pass {
		t.Errorf("junkflood run failed its SLOs:\n%s", rep.Text())
	}
}

// crashTarget is the in-process Killable: Kill aborts the lifecycle
// manager (no drain, abrupt WAL close — the process-level SIGKILL
// analogue) and drops the HTTP front end; Restart re-opens the same
// data directory, replaying the WAL tail, and comes back on a NEW url —
// exercising the runner's per-request URL() resolution.
type crashTarget struct {
	t      *testing.T
	dir    string
	sc     *Scenario
	mod    *core.Model
	mu     sync.Mutex
	ts     *httptest.Server
	mgr    *lifecycle.Manager
	closed bool
}

func newCrashTarget(t *testing.T, sc *Scenario) *crashTarget {
	ct := &crashTarget{t: t, dir: t.TempDir(), sc: sc, mod: trainFor(t, sc)}
	if err := ct.boot(); err != nil {
		t.Fatal(err)
	}
	return ct
}

func (ct *crashTarget) boot() error {
	reg := obs.NewRegistry()
	mgr, err := lifecycle.Open(
		func() (*core.Model, error) { return ct.mod, nil },
		lifecycle.Config{DataDir: ct.dir, Fsync: wal.SyncNever, Registry: reg},
	)
	if err != nil {
		return err
	}
	srv := server.NewWithOptions(mgr.Model(), nil, server.Options{
		GrowthMargin: ct.sc.GrowthMargin(), Registry: reg, Manager: mgr,
	})
	ct.mu.Lock()
	ct.mgr = mgr
	ct.ts = httptest.NewServer(srv.Handler())
	ct.mu.Unlock()
	return nil
}

func (ct *crashTarget) URL() string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.ts.URL
}

func (ct *crashTarget) Kill() error {
	ct.mu.Lock()
	mgr, ts := ct.mgr, ct.ts
	ct.mgr, ct.ts = nil, nil
	ct.mu.Unlock()
	mgr.Abort()
	ts.Close()
	return nil
}

func (ct *crashTarget) Restart() error { return ct.boot() }

func (ct *crashTarget) Close() error {
	ct.mu.Lock()
	mgr, ts := ct.mgr, ct.ts
	closed := ct.closed
	ct.closed = true
	ct.mu.Unlock()
	if closed || mgr == nil {
		return nil
	}
	ts.Close()
	return mgr.Close()
}

// TestRunKillRecover runs the kill-and-recover scenario fully
// in-process: traffic, abrupt kill at the scheduled point, WAL-replay
// recovery, resumed traffic, and a measured recovery-to-ready time.
func TestRunKillRecover(t *testing.T) {
	sc := testScenario(KindKillRecover)
	st, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	ct := newCrashTarget(t, sc)
	defer func() {
		if err := ct.Close(); err != nil {
			t.Errorf("close crash target: %v", err)
		}
	}()

	r := &Runner{ReadyTimeout: 30 * time.Second}
	rep, err := r.Run(context.Background(), st, ct)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryMS <= 0 {
		t.Errorf("recovery time not measured: %v", rep.RecoveryMS)
	}
	if !rep.Pass {
		t.Errorf("killrecover run failed its SLOs:\n%s", rep.Text())
	}
	var sent int64
	for _, o := range rep.Ops {
		sent += o.Sent
	}
	if sent != int64(len(st.Requests)) {
		t.Errorf("sent %d of %d scheduled requests across the kill", sent, len(st.Requests))
	}
}

// TestRunKillRecoverNeedsKillable pins the error path: a killrecover
// scenario against a plain URL target must refuse to run.
func TestRunKillRecoverNeedsKillable(t *testing.T) {
	sc := testScenario(KindKillRecover)
	st, err := BuildStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithOptions(trainFor(t, sc), nil, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	r := &Runner{}
	if _, err := r.Run(context.Background(), st, StaticTarget(ts.URL)); err == nil {
		t.Fatal("killrecover ran against a static target")
	}
}
