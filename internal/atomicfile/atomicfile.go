// Package atomicfile publishes files atomically and durably: content is
// written to a temp file in the destination directory, fsynced, renamed
// into place, and the directory is fsynced so the rename itself survives
// a power cut. rename(2) alone only guarantees atomicity — without the
// directory fsync the new name can vanish on crash, which is exactly the
// window the snapshot and WAL-compaction paths must not have.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteAndSync writes data to path atomically: temp file in the same
// directory, write, fsync, rename over path, fsync the directory. On any
// error the temp file is removed and path is untouched (either the old
// content or nothing is visible, never a torn file).
func WriteAndSync(path string, data []byte, perm os.FileMode) error {
	return WriteToAndSync(path, perm, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// WriteToAndSync is WriteAndSync for streaming writers: fill receives the
// open temp file and writes the content (e.g. a gob encoder); the
// fsync+rename+dir-fsync promotion is identical.
func WriteToAndSync(path string, perm os.FileMode, fill func(f *os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func() {
		_ = f.Close()
		_ = os.Remove(tmp)
	}
	if err := fill(f); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := f.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: chmod %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("atomicfile: rename %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so previously renamed or removed entries are
// durable. Failure matters as much as a data fsync failure: the caller's
// rename may not survive a crash, so the error must not be discarded.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("atomicfile: sync dir %s: %w", dir, err)
	}
	return nil
}
