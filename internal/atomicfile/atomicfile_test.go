package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAndSyncCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := WriteAndSync(path, []byte("one"), 0o644); err != nil {
		t.Fatalf("WriteAndSync: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "one" {
		t.Fatalf("read back: %q, %v", got, err)
	}

	if err := WriteAndSync(path, []byte("two"), 0o644); err != nil {
		t.Fatalf("WriteAndSync replace: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back after replace: %q, %v", got, err)
	}
}

func TestWriteToAndSyncErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteAndSync(path, []byte("keep"), 0o644); err != nil {
		t.Fatalf("seed: %v", err)
	}

	boom := errors.New("boom")
	err := WriteToAndSync(path, 0o644, func(f *os.File) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped fill error, got %v", err)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "keep" {
		t.Fatalf("target changed on failed write: %q, %v", got, rerr)
	}
	// No temp litter either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for missing dir")
	}
}
