// Package leakcheck fails a test binary when goroutines started during the
// run outlive it. Packages that spawn background work (the lifecycle run
// loop, HTTP test servers) wire it into TestMain so a forgotten Close or an
// abandoned worker shows up as a test failure instead of a flake in a later
// package.
//
// Usage:
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m))
//	}
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"
)

// slack is the number of extra goroutines tolerated over the pre-run
// baseline. The runtime parks helper goroutines (GC workers, timer
// scavenger) lazily, so an exact match is too strict.
const slack = 2

// wait bounds how long Check polls for stragglers to exit. Goroutines
// unwinding from closed channels or contexts need a moment to finish.
const wait = 5 * time.Second

// Main runs m and then checks for leaked goroutines. It returns the exit
// code for os.Exit: m's own code if nonzero, otherwise 0 or 1 depending on
// whether the goroutine count settled back to the baseline.
func Main(m interface{ Run() int }) int {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code != 0 {
		return code
	}
	if err := Check(base); err != nil {
		fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
		return 1
	}
	return 0
}

// Check polls until the goroutine count drops to base+slack or the wait
// budget runs out, then reports a dump of whatever is still running.
func Check(base int) error {
	// httptest servers leave keep-alive connections idling in the
	// default client's pool; release them so their readLoop/writeLoop
	// goroutines can exit.
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("%d goroutines still running, baseline was %d (slack %d); dump:\n%s",
				n, base, slack, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
