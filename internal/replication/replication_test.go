package replication

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/synth"
	"cfsf/internal/wal"
)

func newBaseModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 40
	cfg.Items = 50
	cfg.MinPerUser = 8
	cfg.MeanPerUser = 12
	cfg.Archetypes = 4
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.M = 8
	mcfg.K = 4
	mcfg.Clusters = 4
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func openManager(t *testing.T, dir string, mod *core.Model) *lifecycle.Manager {
	t.Helper()
	mgr, err := lifecycle.Open(
		func() (*core.Model, error) { return mod, nil },
		lifecycle.Config{
			DataDir:        dir,
			Fsync:          wal.SyncAlways,
			SegmentBytes:   512,
			SnapshotKeep:   1,
			CompactEnabled: true,
		})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// leaderServer exposes a Leader over httptest with a switchable fault:
// while failWAL is set, new /admin/wal requests answer 503 and
// cutStreams aborts in-flight ones, so the follower is parked in its
// reconnect loop while the test rearranges the log under it.
type leaderServer struct {
	ts      *httptest.Server
	failWAL atomic.Bool

	mu      sync.Mutex
	cancels map[int]context.CancelFunc
	nextID  int
}

func newLeaderServer(l *Leader) *leaderServer {
	ls := &leaderServer{cancels: map[int]context.CancelFunc{}}
	mux := http.NewServeMux()
	mux.HandleFunc(PathWAL, func(w http.ResponseWriter, r *http.Request) {
		if ls.failWAL.Load() {
			http.Error(w, "induced outage", http.StatusServiceUnavailable)
			return
		}
		ctx, cancel := context.WithCancel(r.Context())
		ls.mu.Lock()
		id := ls.nextID
		ls.nextID++
		ls.cancels[id] = cancel
		ls.mu.Unlock()
		defer func() {
			cancel()
			ls.mu.Lock()
			delete(ls.cancels, id)
			ls.mu.Unlock()
		}()
		l.ServeWAL(w, r.WithContext(ctx))
	})
	mux.HandleFunc(PathManifest, l.ServeManifest)
	mux.HandleFunc(PathBlob, l.ServeBlob)
	ls.ts = httptest.NewServer(mux)
	return ls
}

// cutStreams aborts every in-flight WAL stream.
func (ls *leaderServer) cutStreams() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for _, cancel := range ls.cancels {
		cancel()
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mustFingerprint(t *testing.T, mod *core.Model) string {
	t.Helper()
	fp, err := Fingerprint(mod)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func testUpdate(i int) core.RatingUpdate {
	return core.RatingUpdate{User: i % 41, Item: i % 50, Value: float64(i%5) + 1, Time: int64(2000 + i)}
}

// submitAndDrain feeds n updates through the leader and waits until they
// are applied (so the WAL holds their batch commits too).
func submitAndDrain(t *testing.T, mgr *lifecycle.Manager, from, n int) {
	t.Helper()
	var last uint64
	for i := from; i < from+n; i++ {
		seq, _, err := mgr.Submit(testUpdate(i))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	waitUntil(t, "leader applied submissions", func() bool { return mgr.AppliedSeq() >= last })
}

// TestFollowerBootstrapAndStreamParity is the tentpole's core promise: a
// follower that bootstraps from the newest snapshot and streams the WAL
// tail converges to a bit-identical model — same fingerprint at the same
// applied sequence — and keeps converging as the leader takes new writes.
func TestFollowerBootstrapAndStreamParity(t *testing.T) {
	mgr := openManager(t, t.TempDir(), newBaseModel(t))
	defer mgr.Close()
	ls := newLeaderServer(NewLeader(mgr, nil))
	defer ls.ts.Close()

	submitAndDrain(t, mgr, 0, 5)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := Start(ctx, Options{
		LeaderURL:    ls.ts.URL,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitUntil(t, "follower caught up", func() bool { return f.AppliedSeq() >= mgr.AppliedSeq() })
	if got, want := mustFingerprint(t, f.Model()), mustFingerprint(t, mgr.Model()); got != want {
		t.Fatalf("post-bootstrap fingerprints differ:\n  follower %s\n  leader   %s", got, want)
	}

	// Live tail: new writes land on the follower through the stream, not
	// through another bootstrap.
	boots := f.Stats()["bootstraps"]
	submitAndDrain(t, mgr, 5, 7)
	waitUntil(t, "follower streamed the tail", func() bool { return f.AppliedSeq() >= mgr.AppliedSeq() })
	if got, want := mustFingerprint(t, f.Model()), mustFingerprint(t, mgr.Model()); got != want {
		t.Fatalf("post-stream fingerprints differ:\n  follower %s\n  leader   %s", got, want)
	}
	if f.Stats()["bootstraps"] != boots {
		t.Fatalf("tail records triggered a re-bootstrap: %v -> %v", boots, f.Stats()["bootstraps"])
	}
}

// TestFollowerRebootstrapsAfterCompaction forces the 410 path: while the
// follower is cut off, the leader takes writes, snapshots, and compacts
// under a horizon past the follower's cursor. On reconnect the stream
// position is gone — the leader must answer 410, and the follower must
// recover by re-bootstrapping from the newer snapshot, never by patching
// over the gap.
func TestFollowerRebootstrapsAfterCompaction(t *testing.T) {
	mgr := openManager(t, t.TempDir(), newBaseModel(t))
	defer mgr.Close()
	ls := newLeaderServer(NewLeader(mgr, nil))
	defer ls.ts.Close()

	submitAndDrain(t, mgr, 0, 4)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := Start(ctx, Options{
		LeaderURL:    ls.ts.URL,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitUntil(t, "follower caught up", func() bool { return f.AppliedSeq() >= mgr.AppliedSeq() })
	cutoffSeq := f.AppliedSeq()

	// Cut the stream, then move the log's floor past the follower: new
	// writes (rotating the 512-byte segments several times), a snapshot
	// that becomes the only retained recovery point (SnapshotKeep=1), and
	// a forced compaction folding everything under that snapshot's seq.
	ls.failWAL.Store(true)
	ls.cutStreams()
	submitAndDrain(t, mgr, 4, 20)
	if _, err := mgr.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Compact(true); err != nil {
		t.Fatal(err)
	}
	if db := mgr.WALDedupedBelow(); db <= cutoffSeq {
		t.Fatalf("test setup: dedupe horizon %d did not pass follower cursor %d", db, cutoffSeq)
	}

	ls.failWAL.Store(false)
	waitUntil(t, "follower re-bootstrapped past the gap", func() bool {
		return f.Stats()["rebootstraps"].(int64) >= 1 && f.AppliedSeq() >= mgr.AppliedSeq()
	})
	if got, want := mustFingerprint(t, f.Model()), mustFingerprint(t, mgr.Model()); got != want {
		t.Fatalf("post-re-bootstrap fingerprints differ:\n  follower %s\n  leader   %s", got, want)
	}

	// And the stream keeps working afterwards.
	submitAndDrain(t, mgr, 24, 3)
	waitUntil(t, "follower streams again after re-bootstrap", func() bool { return f.AppliedSeq() >= mgr.AppliedSeq() })
}

// TestLeaderServes410WithFloorInfo checks the wire contract directly: an
// unserveable position answers 410 Gone (not 404, not a silent empty
// stream) so a follower can distinguish "re-bootstrap" from "retry".
func TestLeaderServes410WithFloorInfo(t *testing.T) {
	mgr := openManager(t, t.TempDir(), newBaseModel(t))
	defer mgr.Close()
	ls := newLeaderServer(NewLeader(mgr, nil))
	defer ls.ts.Close()

	submitAndDrain(t, mgr, 0, 12)
	if _, err := mgr.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Compact(true); err != nil {
		t.Fatal(err)
	}
	db := mgr.WALDedupedBelow()
	if db == 0 {
		t.Fatal("test setup: no dedupe horizon")
	}

	resp, err := http.Get(ls.ts.URL + PathWAL + "?after=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status = %d, want 410", resp.StatusCode)
	}

	// A position beyond the log end is equally unserveable: the follower
	// has a divergent log and must restart from a snapshot.
	resp2, err := http.Get(ls.ts.URL + PathWAL + "?after=999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Fatalf("beyond-end status = %d, want 410", resp2.StatusCode)
	}
}

// TestCatchupStreamStopsWhenAsked covers follow=0: a bounded read that
// returns the current backlog and then ends instead of tailing forever.
func TestCatchupStreamStopsWhenAsked(t *testing.T) {
	mgr := openManager(t, t.TempDir(), newBaseModel(t))
	defer mgr.Close()
	ls := newLeaderServer(NewLeader(mgr, nil))
	defer ls.ts.Close()

	submitAndDrain(t, mgr, 0, 6)

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(ls.ts.URL + PathWAL + "?after=0&follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var n int
	buf := make([]byte, 0, 1<<20)
	tmp := make([]byte, 32<<10)
	for {
		k, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:k]...)
		if err != nil {
			break // EOF: the bounded stream ended by itself
		}
	}
	for len(buf) > 0 {
		rec, fn, err := wal.DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode relayed frame: %v", err)
		}
		if rec.Seq == 0 {
			t.Fatal("relayed record without a sequence")
		}
		n++
		buf = buf[fn:]
	}
	if n == 0 {
		t.Fatal("bounded catch-up stream relayed no records")
	}
}
