package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/wal"
)

// Leader serves the replication wire protocol from a lifecycle.Manager.
// The HTTP layer (routing, auth, instrumentation) stays in
// internal/server; these handlers own only the protocol semantics.
type Leader struct {
	mgr *lifecycle.Manager //cfsf:immutable
	reg *obs.Registry      //cfsf:immutable

	// quit ends every active WAL stream: long-lived chunked responses
	// would otherwise hold http.Server.Shutdown open until its deadline.
	quit chan struct{}

	mStreams       *obs.Gauge
	mStreamRecords *obs.Counter
	mStreamBytes   *obs.Counter
	mRebootstraps  *obs.Counter
	mManifests     *obs.Counter
	mBlobs         *obs.Counter
}

// NewLeader wraps a manager for serving.
func NewLeader(mgr *lifecycle.Manager, reg *obs.Registry) *Leader {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Leader{
		mgr:            mgr,
		reg:            reg,
		quit:           make(chan struct{}),
		mStreams:       reg.Gauge("replication_wal_streams_active"),
		mStreamRecords: reg.Counter("replication_wal_stream_records_total"),
		mStreamBytes:   reg.Counter("replication_wal_stream_bytes_total"),
		mRebootstraps:  reg.Counter("replication_rebootstrap_signals_total"),
		mManifests:     reg.Counter("replication_manifests_served_total"),
		mBlobs:         reg.Counter("replication_blobs_served_total"),
	}
}

// ServeWAL streams raw record frames with sequence > after, then follows
// the live tail (unless follow=0 asks for a bounded catch-up read). The
// response is flushed per chunk so a follower applies records with
// sub-second lag. An unserveable position answers 410 Gone with a JSON
// body naming the log's current floor — the re-bootstrap signal.
func (l *Leader) ServeWAL(w http.ResponseWriter, r *http.Request) {
	afterStr := r.URL.Query().Get("after")
	after, err := strconv.ParseUint(afterStr, 10, 64)
	if afterStr == "" {
		after, err = 0, nil
	}
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, map[string]any{"error": "bad after parameter"})
		return
	}
	follow := r.URL.Query().Get("follow") != "0"

	cur, err := l.mgr.NewWALCursor(after)
	if err != nil {
		if errors.Is(err, wal.ErrRebootstrap) {
			l.serveRebootstrap(w, err)
			return
		}
		writeJSONStatus(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	defer func() { _ = cur.Close() }()

	_, lastAtConnect := l.mgr.WALAppendSignal()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderLastSeq, strconv.FormatUint(lastAtConnect, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	l.mStreams.Add(1)
	defer l.mStreams.Add(-1)

	ctx := r.Context()
	buf := make([]byte, 0, streamChunkBytes)
	for {
		// Arm the signal before reading: an append landing between Next
		// and the wait closes this channel, so the wakeup is never lost.
		sig, last := l.mgr.WALAppendSignal()
		var n int
		buf, n, err = cur.Next(buf[:0], streamChunkBytes)
		if n > 0 {
			if _, werr := w.Write(buf); werr != nil {
				return // client gone
			}
			if flusher != nil {
				flusher.Flush()
			}
			l.mStreamRecords.Add(int64(n))
			l.mStreamBytes.Add(int64(len(buf)))
		}
		if err != nil {
			// Mid-stream loss (compaction overtook the cursor) or
			// corruption: terminate. Headers are sent, so the signal is the
			// close itself — the follower's reconnect gets the 410.
			if errors.Is(err, wal.ErrRebootstrap) {
				l.mRebootstraps.Inc()
			}
			return
		}
		if n > 0 {
			continue
		}
		if !follow {
			return
		}
		if cur.NextSeq() <= last {
			continue // appended while the chunk was in flight
		}
		//cfsf:select-ok read-only tail wait; which case fires never affects replayed state
		select {
		case <-sig:
		case <-time.After(streamIdleWait):
		case <-ctx.Done():
			return
		case <-l.quit:
			return // shutting down; followers reconnect elsewhere or wait
		}
	}
}

// Close ends all active WAL streams so the owning HTTP server can drain.
// Followers see a clean EOF and retry through their reconnect loop.
func (l *Leader) Close() {
	select {
	case <-l.quit:
	default:
		close(l.quit)
	}
}

// serveRebootstrap answers 410 Gone with the log's current floor and the
// newest snapshot watermark, so the follower (and a debugging operator)
// can see why the position died and where to restart.
func (l *Leader) serveRebootstrap(w http.ResponseWriter, cause error) {
	l.mRebootstraps.Inc()
	body := map[string]any{
		"error":          "re-bootstrap required",
		"cause":          cause.Error(),
		"available_from": l.mgr.WALAvailableFrom(),
		"deduped_below":  l.mgr.WALDedupedBelow(),
	}
	if _, seq, err := l.mgr.NewestManifest(); err == nil {
		body["snapshot_seq"] = seq
	}
	writeJSONStatus(w, http.StatusGone, body)
}

// ServeManifest returns the newest manifest document.
func (l *Leader) ServeManifest(w http.ResponseWriter, r *http.Request) {
	data, seq, err := l.mgr.NewestManifest()
	if err != nil {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
		return
	}
	l.mManifests.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	_, _ = w.Write(data)
}

// ServeBlob returns one snapshot blob named by ?file=. The name is
// validated to a bare manifest-style blob name before any disk access.
func (l *Leader) ServeBlob(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("file")
	f, err := l.mgr.OpenSnapshotBlob(name)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusNotFound
		}
		writeJSONStatus(w, status, map[string]any{"error": fmt.Sprintf("blob %q: %v", name, err)})
		return
	}
	defer func() { _ = f.Close() }()
	l.mBlobs.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, f)
}

func writeJSONStatus(w http.ResponseWriter, status int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
