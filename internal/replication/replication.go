// Package replication turns one cfsf-server process into a read fleet:
// a leader serves its durable state over three admin endpoints and a
// follower consumes them to hold a bit-identical model.
//
// Wire protocol (all GET, all under the admin-auth gate):
//
//	/admin/manifest          newest manifest JSON; X-Cfsf-Snapshot-Seq
//	                         carries the watermark it covers
//	/admin/blob?file=<name>  one manifest-referenced snapshot blob,
//	                         verbatim (the same checksummed container
//	                         local recovery loads)
//	/admin/wal?after=<seq>   chunked stream of raw CRC-framed WAL record
//	                         frames with sequence > seq, following the
//	                         live tail; X-Cfsf-Last-Seq carries the log
//	                         end at connect. 410 Gone is the re-bootstrap
//	                         signal: the log can no longer serve that
//	                         position batch-exactly (compaction deduped
//	                         it, retention pruned it, or the follower's
//	                         cursor is beyond this leader's log), so the
//	                         follower must restart from a newer snapshot
//	                         instead of patching forward.
//
// The bootstrap ladder on the follower side is: fetch the newest
// manifest, fetch its shared + per-shard blobs, assemble the model at
// the manifest watermark (lifecycle.AssembleRemotePoint), then stream
// the WAL tail from that watermark and apply it through the same
// micro-batch grouping crash replay uses. Every transition that loses
// the tail (leader compacted past the cursor) degrades to a clean
// re-bootstrap, never to a silent gap.
package replication

import "time"

// Wire protocol paths and headers.
const (
	PathWAL         = "/admin/wal"
	PathManifest    = "/admin/manifest"
	PathBlob        = "/admin/blob"
	PathFingerprint = "/admin/fingerprint"

	// HeaderLastSeq is the leader's WAL end at stream connect.
	HeaderLastSeq = "X-Cfsf-Last-Seq"
	// HeaderSnapshotSeq is the watermark a served manifest covers.
	HeaderSnapshotSeq = "X-Cfsf-Snapshot-Seq"
)

const (
	// streamChunkBytes bounds one write+flush on the WAL stream.
	streamChunkBytes = 256 << 10
	// streamIdleWait re-arms the tail wait so a stream notices context
	// cancellation and new appends even if a signal is missed.
	streamIdleWait = time.Second

	defaultReconnectMin = 100 * time.Millisecond
	defaultReconnectMax = 5 * time.Second
)
