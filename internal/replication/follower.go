package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/wal"
)

// errRebootstrap is the client-side face of the leader's 410 Gone: the
// streamed position is unserveable and the follower must restart from
// the leader's newest snapshot.
var errRebootstrap = errors.New("replication: leader signalled re-bootstrap")

// Options configures a follower connection.
type Options struct {
	// LeaderURL is the leader's base URL, e.g. http://leader:8080.
	LeaderURL string
	// AdminToken, when non-empty, is sent as a bearer token on every
	// request (the leader's -admin-token gate).
	AdminToken string
	// Registry receives replication metrics; nil allocates a private one.
	Registry *obs.Registry
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests); nil uses a streaming-safe
	// default with no overall request timeout.
	Client *http.Client
	// ReconnectMin/Max bound the jittered exponential backoff between
	// stream attempts. Zero values use package defaults.
	ReconnectMin, ReconnectMax time.Duration
}

// Follower maintains a bit-identical replica of a leader's model:
// bootstrap from the newest snapshot, then stream and apply the WAL
// tail, re-bootstrapping whenever the leader compacts past our cursor.
type Follower struct {
	opts   Options
	app    *lifecycle.Follower //cfsf:immutable
	client *http.Client        //cfsf:immutable
	logf   func(format string, args ...any)

	leaderSeq    atomic.Uint64 // newest leader log-end seen (header or streamed record)
	bootSeq      atomic.Uint64 // watermark of the snapshot last bootstrapped from
	connected    atomic.Bool
	nBootstraps  atomic.Int64
	nRebootstrap atomic.Int64
	nReconnects  atomic.Int64

	gLagSeq    *obs.Gauge
	gLagWallMS *obs.Gauge
	gConnected *obs.Gauge

	cancel context.CancelFunc
	done   chan struct{}
}

// Start bootstraps a follower from the leader's newest snapshot (retrying
// until the leader is reachable or ctx ends) and launches the streaming
// loop. The returned follower serves reads immediately.
func Start(ctx context.Context, opts Options) (*Follower, error) {
	opts.LeaderURL = strings.TrimRight(opts.LeaderURL, "/")
	if opts.LeaderURL == "" {
		return nil, errors.New("replication: leader URL required")
	}
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = defaultReconnectMin
	}
	if opts.ReconnectMax < opts.ReconnectMin {
		opts.ReconnectMax = defaultReconnectMax
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := opts.Client
	if client == nil {
		// No Timeout: it would kill the long-lived WAL stream. Dial and
		// header latency are bounded by the default transport instead.
		client = &http.Client{}
	}

	fctx, cancel := context.WithCancel(ctx)
	f := &Follower{
		opts:       opts,
		app:        lifecycle.NewFollower(reg, logf),
		client:     client,
		logf:       logf,
		gLagSeq:    reg.Gauge("replication_lag_seq"),
		gLagWallMS: reg.Gauge("replication_lag_wall_ms"),
		gConnected: reg.Gauge("replication_connected"),
		cancel:     cancel,
		done:       make(chan struct{}),
	}

	if err := f.bootstrapRetry(fctx); err != nil {
		cancel()
		close(f.done)
		return nil, err
	}
	go f.run(fctx)
	return f, nil
}

// run is the reconnect loop: stream until the connection drops, back off
// with jitter, re-bootstrap when the leader says our position is gone.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := f.opts.ReconnectMin
	for ctx.Err() == nil {
		err := f.streamOnce(ctx)
		f.connected.Store(false)
		f.gConnected.Set(0)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			// Clean stream end (leader closed politely); reconnect fast.
			backoff = f.opts.ReconnectMin
		case errors.Is(err, errRebootstrap):
			f.nRebootstrap.Add(1)
			f.logf("replication: leader compacted past cursor %d; re-bootstrapping", f.app.Cursor())
			if berr := f.bootstrapRetry(ctx); berr != nil {
				return // only fails when ctx ends
			}
			backoff = f.opts.ReconnectMin
			continue
		default:
			f.nReconnects.Add(1)
			f.logf("replication: stream error: %v (retry in %v)", err, backoff)
		}
		// Full jitter keeps a restarted fleet from reconnecting in
		// lockstep.
		sleep := time.Duration(rng.Int63n(int64(backoff))) + f.opts.ReconnectMin/2
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

// streamOnce opens one WAL stream at the current cursor and applies
// records until it breaks. A 410 response maps to errRebootstrap.
func (f *Follower) streamOnce(ctx context.Context) error {
	after := f.app.Cursor()
	resp, err := f.get(ctx, PathWAL+"?after="+strconv.FormatUint(after, 10))
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errRebootstrap
	default:
		return fmt.Errorf("replication: wal stream: %s", readErrBody(resp))
	}
	if v, perr := strconv.ParseUint(resp.Header.Get(HeaderLastSeq), 10, 64); perr == nil {
		f.observeLeaderSeq(v)
	}
	f.connected.Store(true)
	f.gConnected.Set(1)
	f.logf("replication: streaming from %s after seq %d", f.opts.LeaderURL, after)

	buf := make([]byte, 0, streamChunkBytes)
	chunk := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				rec, fn, derr := wal.DecodeFrame(buf)
				if derr != nil {
					if errors.Is(derr, wal.ErrShortFrame) {
						break // need more bytes
					}
					return fmt.Errorf("replication: corrupt frame in stream: %w", derr)
				}
				if aerr := f.app.Ingest(rec); aerr != nil {
					return aerr
				}
				f.observeLeaderSeq(rec.Seq)
				buf = buf[:copy(buf, buf[fn:])]
			}
			f.publishLag()
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return rerr
		}
	}
}

// bootstrapRetry runs bootstrap until it succeeds or ctx ends.
func (f *Follower) bootstrapRetry(ctx context.Context) error {
	backoff := f.opts.ReconnectMin
	for {
		err := f.bootstrap(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.logf("replication: bootstrap from %s failed: %v (retry in %v)", f.opts.LeaderURL, err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

// bootstrap fetches the leader's newest manifest and blobs, assembles
// the model and installs it as the follower's serving state.
func (f *Follower) bootstrap(ctx context.Context) error {
	resp, err := f.get(ctx, PathManifest)
	if err != nil {
		return err
	}
	manifestJSON, err := readOK(resp)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	mod, seq, err := lifecycle.AssembleRemotePoint(manifestJSON, func(name string) ([]byte, error) {
		bresp, berr := f.get(ctx, PathBlob+"?file="+url.QueryEscape(name))
		if berr != nil {
			return nil, berr
		}
		return readOK(bresp)
	})
	if err != nil {
		return err
	}
	f.app.Reset(mod, seq)
	f.bootSeq.Store(seq)
	f.observeLeaderSeq(seq)
	f.nBootstraps.Add(1)
	f.publishLag()
	f.logf("replication: bootstrapped from %s at seq %d (%d users, %d items)",
		f.opts.LeaderURL, seq, mod.Matrix().NumUsers(), mod.Matrix().NumItems())
	return nil
}

// get issues an authenticated GET against the leader.
func (f *Follower) get(ctx context.Context, pathAndQuery string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.opts.LeaderURL+pathAndQuery, nil)
	if err != nil {
		return nil, err
	}
	if f.opts.AdminToken != "" {
		req.Header.Set("Authorization", "Bearer "+f.opts.AdminToken)
	}
	return f.client.Do(req)
}

func (f *Follower) observeLeaderSeq(seq uint64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur || f.leaderSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// publishLag refreshes the lag gauges from current positions.
func (f *Follower) publishLag() {
	applied := f.app.AppliedSeq()
	leader := f.leaderSeq.Load()
	lag := uint64(0)
	if leader > applied {
		lag = leader - applied
	}
	f.gLagSeq.Set(float64(lag))
	f.gLagWallMS.Set(float64(f.app.OldestQueuedAge().Milliseconds()))
}

// Model returns the follower's current serving model.
func (f *Follower) Model() *core.Model { return f.app.Model() }

// Sharded returns the follower's current sharded model.
func (f *Follower) Sharded() *core.ShardedModel { return f.app.Sharded() }

// AppliedSeq returns the contiguous applied watermark.
func (f *Follower) AppliedSeq() uint64 { return f.app.AppliedSeq() }

// LeaderURL returns the configured leader base URL (the write-redirect
// target).
func (f *Follower) LeaderURL() string { return f.opts.LeaderURL }

// Stats reports replication state for /stats.
func (f *Follower) Stats() map[string]any {
	f.publishLag()
	applied := f.app.AppliedSeq()
	leader := f.leaderSeq.Load()
	lag := uint64(0)
	if leader > applied {
		lag = leader - applied
	}
	return map[string]any{
		"role":          "follower",
		"leader":        f.opts.LeaderURL,
		"connected":     f.connected.Load(),
		"applied_seq":   applied,
		"received_seq":  f.app.Cursor(),
		"leader_seq":    leader,
		"lag_seq":       lag,
		"lag_wall_ms":   f.app.OldestQueuedAge().Milliseconds(),
		"bootstrap_seq": f.bootSeq.Load(),
		"bootstraps":    f.nBootstraps.Load(),
		"rebootstraps":  f.nRebootstrap.Load(),
		"reconnects":    f.nReconnects.Load(),
		"queued":        f.app.QueueLen(),
	}
}

// Close stops the streaming loop and waits for it to exit.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
}

// readOK drains a response body, requiring status 200.
func readOK(resp *http.Response) ([]byte, error) {
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, errors.New(readErrBody(resp))
	}
	return io.ReadAll(resp.Body)
}

// readErrBody summarises a non-200 response for error messages.
func readErrBody(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
}
