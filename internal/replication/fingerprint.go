package replication

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"cfsf/internal/core"
)

// Fingerprint hashes a model's full persisted form: the shared blob
// followed by every shard blob, in shard order. The blob wire structs
// hold only slices and scalars (no maps), so gob encoding is
// deterministic and two models hash equal iff they are bit-identical in
// persisted state. Leader and follower expose this at /admin/fingerprint;
// comparing the two at the same applied sequence is the parity check.
func Fingerprint(mod *core.Model) (string, error) {
	h := sha256.New()
	if err := mod.SaveSharedBlob(h); err != nil {
		return "", fmt.Errorf("fingerprint shared: %w", err)
	}
	for s := 0; s < mod.Clusters().K; s++ {
		if err := mod.SaveShardBlob(h, s); err != nil {
			return "", fmt.Errorf("fingerprint shard %d: %w", s, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
