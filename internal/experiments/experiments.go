// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic MovieLens-like dataset. Each
// experiment returns structured results plus a rendered text table whose
// rows match what the paper reports; cmd/cfsf-bench prints them and
// bench_test.go wraps them in testing.B harnesses.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"cfsf/internal/baselines"
	"cfsf/internal/core"
	"cfsf/internal/eval"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// Protocol constants from the paper (§V-A).
var (
	// TrainSizes are the ML_100/200/300 training-set sizes.
	TrainSizes = []int{100, 200, 300}
	// Givens are the revealed-ratings counts per test user.
	Givens = []int{5, 10, 20}
	// TestUsers is the fixed testset size (the last 200 users).
	TestUsers = 200
)

// Env holds the dataset and caches the Given-N splits, so that a batch
// of experiments reuses them. TargetFraction < 1 subsamples test users to
// make a run cheaper (benchmarks use 0.25; cmd/cfsf-bench uses 1.0).
type Env struct {
	Data           *synth.Dataset
	TargetFraction float64
	splits         map[[3]int]*ratings.GivenNSplit
}

// NewEnv generates the default dataset (paper Table I statistics).
func NewEnv() *Env {
	return NewEnvWith(synth.MustGenerate(synth.DefaultConfig()), 1.0)
}

// NewEnvWith wraps an existing dataset (used by tests and by callers
// evaluating their own data through the same experiment harness).
func NewEnvWith(data *synth.Dataset, targetFraction float64) *Env {
	return &Env{
		Data:           data,
		TargetFraction: targetFraction,
		splits:         map[[3]int]*ratings.GivenNSplit{},
	}
}

// Split returns the (cached) protocol split for a training size and a
// given count, with the paper's fixed 200-user testset.
func (e *Env) Split(nTrain, given int) *ratings.GivenNSplit {
	return e.SplitCustom(nTrain, TestUsers, given)
}

// SplitCustom is Split with an explicit testset size.
func (e *Env) SplitCustom(nTrain, nTest, given int) *ratings.GivenNSplit {
	key := [3]int{nTrain, nTest, given}
	if s, ok := e.splits[key]; ok {
		return s
	}
	s, err := ratings.MLSplit(e.Data.Matrix, nTrain, nTest, given)
	if err != nil {
		panic(fmt.Sprintf("experiments: split ML_%d/%d/Given%d: %v", nTrain, nTest, given, err))
	}
	if e.TargetFraction > 0 && e.TargetFraction < 1 {
		s = s.TruncateTargets(e.TargetFraction)
	}
	e.splits[key] = s
	return s
}

// CFSFConfig returns the paper's default CFSF configuration.
func CFSFConfig() core.Config { return core.DefaultConfig() }

// NewMethod constructs a fresh, unfitted predictor by method name.
// Names: cfsf, sir, sur, sf, scbpcc, emdp, pd, am.
func NewMethod(name string) eval.Predictor {
	switch name {
	case "cfsf":
		return &cfsfPredictor{cfg: CFSFConfig()}
	case "sir":
		return &baselines.SIR{}
	case "sur":
		return baselines.NewSUR()
	case "sf":
		return baselines.NewSF()
	case "scbpcc":
		return baselines.NewSCBPCC()
	case "emdp":
		return baselines.NewEMDP()
	case "pd":
		return baselines.NewPD()
	case "am":
		return baselines.NewAM()
	case "mf":
		return baselines.NewMF()
	case "slopeone":
		return baselines.NewSlopeOne()
	case "bias":
		return baselines.NewBias()
	case "svd":
		return baselines.NewSVDCF()
	default:
		panic("experiments: unknown method " + name)
	}
}

// cfsfPredictor adapts core.Config to eval.Predictor (the root package
// has its own adapter; experiments cannot import it without a cycle).
type cfsfPredictor struct {
	cfg core.Config
	mod *core.Model
}

func (p *cfsfPredictor) Fit(m *ratings.Matrix) error {
	mod, err := core.Train(m, p.cfg)
	if err != nil {
		return err
	}
	p.mod = mod
	return nil
}

func (p *cfsfPredictor) Predict(u, i int) float64 { return p.mod.Predict(u, i) }

// NewCFSF returns a CFSF predictor with a custom configuration.
func NewCFSF(cfg core.Config) eval.Predictor { return &cfsfPredictor{cfg: cfg} }

// Cell identifies one (training set, given) cell of a table.
type Cell struct {
	TrainSize int
	Given     int
	Method    string
	MAE       float64
	RMSE      float64
	Fit       time.Duration
	Predict   time.Duration
}

// RunGrid evaluates the named methods over the full protocol grid.
func (e *Env) RunGrid(methods []string) ([]Cell, error) {
	return e.RunGridCustom(methods, TrainSizes, Givens, TestUsers)
}

// RunGridCustom is RunGrid over explicit training sizes, givens and
// testset size.
func (e *Env) RunGridCustom(methods []string, trainSizes, givens []int, nTest int) ([]Cell, error) {
	var cells []Cell
	for _, n := range trainSizes {
		for _, g := range givens {
			split := e.SplitCustom(n, nTest, g)
			for _, method := range methods {
				res, err := eval.Evaluate(NewMethod(method), split, eval.Options{})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on ML_%d/Given%d: %w", method, n, g, err)
				}
				cells = append(cells, Cell{
					TrainSize: n, Given: g, Method: method,
					MAE: res.MAE, RMSE: res.RMSE,
					Fit: res.FitTime, Predict: res.PredictTime,
				})
			}
		}
	}
	return cells, nil
}

// GridTable renders grid cells in the paper's table layout (training set
// × method rows, Given columns). Only training sizes present in the
// cells are rendered, largest first (the paper lists ML_300 first).
func GridTable(title string, methods []string, cells []Cell) *eval.Table {
	t := eval.NewTable(title, "Training set", "Method", "Given5", "Given10", "Given20")
	sizes := []int{}
	seen := map[int]bool{}
	for _, c := range cells {
		if !seen[c.TrainSize] {
			seen[c.TrainSize] = true
			sizes = append(sizes, c.TrainSize)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	get := func(n int, method string, g int) string {
		for _, c := range cells {
			if c.TrainSize == n && c.Method == method && c.Given == g {
				return fmt.Sprintf("%.3f", c.MAE)
			}
		}
		return "-"
	}
	for _, n := range sizes {
		for _, method := range methods {
			t.AddRow(fmt.Sprintf("ML_%d", n), methodLabel(method),
				get(n, method, 5), get(n, method, 10), get(n, method, 20))
		}
	}
	return t
}

func methodLabel(m string) string {
	switch m {
	case "cfsf":
		return "CFSF"
	case "sir":
		return "SIR"
	case "sur":
		return "SUR"
	case "sf":
		return "SF"
	case "scbpcc":
		return "SCBPCC"
	case "emdp":
		return "EMDP"
	case "pd":
		return "PD"
	case "am":
		return "AM"
	case "mf":
		return "MF"
	case "slopeone":
		return "SlopeOne"
	case "bias":
		return "Bias"
	case "svd":
		return "SVD"
	default:
		return m
	}
}

// TableI renders the dataset statistics table.
func (e *Env) TableI() *eval.Table {
	m := e.Data.Matrix
	t := eval.NewTable("Table I — statistics of the dataset", "Statistic", "Value")
	t.AddRow("No. of Users", fmt.Sprintf("%d", m.NumUsers()))
	t.AddRow("No. of Items", fmt.Sprintf("%d", m.NumItems()))
	t.AddRow("Average no. of rated items per user", fmt.Sprintf("%.1f", m.AvgRatingsPerUser()))
	t.AddRow("Density of data", fmt.Sprintf("%.2f%%", 100*m.Density()))
	t.AddRow("Rating scale", fmt.Sprintf("%g..%g", m.MinRating(), m.MaxRating()))
	t.AddRow("No. of ratings", fmt.Sprintf("%d", m.NumRatings()))
	return t
}

// TableIIMethods and TableIIIMethods list the comparisons of each table.
var (
	TableIIMethods  = []string{"cfsf", "sur", "sir"}
	TableIIIMethods = []string{"cfsf", "am", "emdp", "scbpcc", "sf", "pd"}
)

// TableII runs the CFSF vs SUR vs SIR grid.
func (e *Env) TableII() ([]Cell, *eval.Table, error) {
	cells, err := e.RunGrid(TableIIMethods)
	if err != nil {
		return nil, nil, err
	}
	return cells, GridTable("Table II — MAE for SIR, SUR and CFSF", TableIIMethods, cells), nil
}

// TableIII runs the state-of-the-art comparison grid.
func (e *Env) TableIII() ([]Cell, *eval.Table, error) {
	cells, err := e.RunGrid(TableIIIMethods)
	if err != nil {
		return nil, nil, err
	}
	return cells, GridTable("Table III — MAE for the state-of-the-art CF approaches", TableIIIMethods, cells), nil
}
