package experiments

import (
	"strings"
	"testing"

	"cfsf/internal/eval"
	"cfsf/internal/synth"
)

// tinyData builds a small dataset so experiment plumbing tests stay
// fast; accuracy assertions on the full environment live in the root
// package's TestHeadlineResult and in EXPERIMENTS.md.
func tinyData() *synth.Dataset {
	cfg := synth.DefaultConfig()
	cfg.Users = 90
	cfg.Items = 120
	cfg.MinPerUser = 12
	cfg.MeanPerUser = 25
	cfg.Archetypes = 8
	return synth.MustGenerate(cfg)
}

func TestEnvSplitCachesAndShapes(t *testing.T) {
	e := NewEnvWith(tinyData(), 1.0)
	s1 := e.SplitCustom(40, 30, 10)
	s2 := e.SplitCustom(40, 30, 10)
	if s1 != s2 {
		t.Error("split not cached")
	}
	if len(s1.TestUsers) != 30 {
		t.Errorf("test users = %d, want 30", len(s1.TestUsers))
	}
	// A different key yields a different split.
	if e.SplitCustom(40, 30, 5) == s1 {
		t.Error("distinct keys must not share a split")
	}
}

func TestEnvTargetFraction(t *testing.T) {
	full := NewEnvWith(tinyData(), 1.0).SplitCustom(40, 30, 5)
	frac := NewEnvWith(tinyData(), 0.3).SplitCustom(40, 30, 5)
	if len(frac.Targets) >= len(full.Targets) {
		t.Errorf("fraction 0.3 kept %d of %d targets", len(frac.Targets), len(full.Targets))
	}
}

func TestRunGridCustom(t *testing.T) {
	e := NewEnvWith(tinyData(), 0.5)
	cells, err := e.RunGridCustom([]string{"sur"}, []int{40, 60}, []int{5, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.MAE <= 0 || c.MAE > 2.5 {
			t.Errorf("implausible MAE %g for %+v", c.MAE, c)
		}
		if c.Method != "sur" {
			t.Errorf("unexpected method %q", c.Method)
		}
	}
}

func TestNewMethodKnownNames(t *testing.T) {
	for _, name := range append([]string{"cfsf", "sur", "sir"}, TableIIIMethods...) {
		if p := NewMethod(name); p == nil {
			t.Errorf("NewMethod(%q) = nil", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown method must panic")
		}
	}()
	NewMethod("bogus")
}

func TestTableIFormat(t *testing.T) {
	e := NewEnvWith(tinyData(), 1.0)
	out := e.TableI().String()
	for _, want := range []string{"No. of Users", "Density", "90"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestGridTableLayout(t *testing.T) {
	cells := []Cell{
		{TrainSize: 300, Given: 5, Method: "cfsf", MAE: 0.743},
		{TrainSize: 300, Given: 10, Method: "cfsf", MAE: 0.721},
		{TrainSize: 300, Given: 20, Method: "cfsf", MAE: 0.705},
	}
	out := GridTable("T", []string{"cfsf"}, cells).String()
	if !strings.Contains(out, "ML_300") || !strings.Contains(out, "0.743") {
		t.Errorf("grid table malformed:\n%s", out)
	}
	// Cells absent from the ML_100/ML_200 rows render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing cells should render as '-':\n%s", out)
	}
}

func TestCurveTableLayout(t *testing.T) {
	curves := []FigureCurve{
		{Given: 5, Points: []eval.SweepPoint{{Param: 10, MAE: 0.9}, {Param: 20, MAE: 0.8}}},
		{Given: 10, Points: []eval.SweepPoint{{Param: 10, MAE: 0.85}, {Param: 20, MAE: 0.75}}},
	}
	out := CurveTable("curve", "K", curves).String()
	for _, want := range []string{"Given5", "Given10", "0.8000", "0.7500"} {
		if !strings.Contains(out, want) {
			t.Errorf("curve table missing %q:\n%s", want, out)
		}
	}
}

func TestFig5TableLayout(t *testing.T) {
	points := []Fig5Point{
		{Method: "cfsf", TrainSize: 300, Fraction: 0.1, Targets: 100, Millis: 12},
		{Method: "scbpcc", TrainSize: 300, Fraction: 0.1, Targets: 100, Millis: 30},
	}
	out := Fig5Table(points).String()
	if !strings.Contains(out, "10%") || !strings.Contains(out, "12") || !strings.Contains(out, "30") {
		t.Errorf("fig5 table malformed:\n%s", out)
	}
}

func TestAblationTableLayout(t *testing.T) {
	out := AblationTable([]AblationResult{
		{Name: "no smoothing", MAE: 0.91, BaseMAE: 0.85, Predict: 100},
	}).String()
	if !strings.Contains(out, "no smoothing") || !strings.Contains(out, "+0.0600") {
		t.Errorf("ablation table malformed:\n%s", out)
	}
}

func TestMethodLabel(t *testing.T) {
	if methodLabel("cfsf") != "CFSF" || methodLabel("scbpcc") != "SCBPCC" || methodLabel("x") != "x" {
		t.Error("methodLabel mismatch")
	}
}

func TestErrorAnalysisBucketsPartition(t *testing.T) {
	e := NewEnvWith(tinyData(), 0.5)
	// Use custom small sizes via the standard Split path: reuse the tiny
	// dataset's dimensions.
	e.splits[[3]int{300, TestUsers, 10}] = e.SplitCustom(50, 30, 10)
	buckets, err := e.ErrorAnalysis([]string{"sur"})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		total += b.Targets
		if b.Targets > 0 {
			mae := b.MAE["sur"]
			if mae <= 0 || mae > 3 {
				t.Errorf("bucket %q implausible MAE %g", b.Label, mae)
			}
		}
	}
	if total != len(e.Split(300, 10).Targets) {
		t.Errorf("buckets cover %d targets, want %d", total, len(e.Split(300, 10).Targets))
	}
}

func TestSignificanceRows(t *testing.T) {
	e := NewEnvWith(tinyData(), 0.5)
	e.splits[[3]int{300, TestUsers, 10}] = e.SplitCustom(50, 30, 10)
	rows, err := e.Significance([]string{"sur"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Versus != "sur" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].P < 0 || rows[0].P > 1 {
		t.Errorf("p-value %g out of [0,1]", rows[0].P)
	}
}
