package experiments

import (
	"fmt"
	"sort"

	"cfsf/internal/eval"
	"cfsf/internal/parallel"
)

// Error analysis: where does CFSF win? The paper reports aggregate MAE
// only; this experiment buckets the held-out targets by how much signal
// was available — the target user's given-rating count is fixed by the
// protocol, so the interesting axes are the *item's* popularity in the
// training data and the user's position — and compares CFSF against SUR
// per bucket. The expectation from the design: smoothing pays off most
// on sparse (unpopular) items, where SUR's rater pool is thin.

// ErrorBucket is one popularity bucket's per-method MAE.
type ErrorBucket struct {
	// Label describes the bucket ("items with <10 raters").
	Label string
	// Targets counts held-out ratings in the bucket.
	Targets int
	// MAE maps method name to bucket MAE.
	MAE map[string]float64
}

// ErrorAnalysis evaluates the methods on ML_300/Given10 and buckets
// absolute errors by item popularity (rater count in the observable
// matrix).
func (e *Env) ErrorAnalysis(methods []string) ([]ErrorBucket, error) {
	if len(methods) == 0 {
		methods = []string{"cfsf", "sur", "sir"}
	}
	split := e.Split(300, 10)

	// Bucket boundaries chosen so each holds a meaningful share of the
	// long-tailed popularity distribution.
	type bucketDef struct {
		label    string
		min, max int // rater count range, inclusive; max<0 = unbounded
	}
	defs := []bucketDef{
		{"cold items (<10 raters)", 0, 9},
		{"niche items (10-29 raters)", 10, 29},
		{"common items (30-79 raters)", 30, 79},
		{"popular items (80+ raters)", 80, -1},
	}
	bucketOf := func(item int) int {
		n := len(split.Matrix.ItemRatings(item))
		for k, d := range defs {
			if n >= d.min && (d.max < 0 || n <= d.max) {
				return k
			}
		}
		return len(defs) - 1
	}

	buckets := make([]ErrorBucket, len(defs))
	for k, d := range defs {
		buckets[k] = ErrorBucket{Label: d.label, MAE: map[string]float64{}}
	}
	counts := make([]int, len(defs))
	for _, tg := range split.Targets {
		counts[bucketOf(tg.Item)]++
	}
	for k := range buckets {
		buckets[k].Targets = counts[k]
	}

	for _, name := range methods {
		p := NewMethod(name)
		if err := p.Fit(split.Matrix); err != nil {
			return nil, fmt.Errorf("experiments: error analysis fit %s: %w", name, err)
		}
		errs := make([]float64, len(split.Targets))
		parallel.For(len(split.Targets), 0, func(i int) {
			tg := split.Targets[i]
			d := p.Predict(tg.User, tg.Item) - tg.Actual
			if d < 0 {
				d = -d
			}
			errs[i] = d
		})
		sums := make([]float64, len(defs))
		for i, tg := range split.Targets {
			sums[bucketOf(tg.Item)] += errs[i]
		}
		for k := range buckets {
			if counts[k] > 0 {
				buckets[k].MAE[name] = sums[k] / float64(counts[k])
			}
		}
	}
	return buckets, nil
}

// ErrorAnalysisTable renders the bucketed comparison.
func ErrorAnalysisTable(methods []string, buckets []ErrorBucket) *eval.Table {
	if len(methods) == 0 {
		methods = []string{"cfsf", "sur", "sir"}
	}
	headers := []string{"Bucket", "Targets"}
	for _, m := range methods {
		headers = append(headers, methodLabel(m))
	}
	t := eval.NewTable("Extension — MAE by item popularity (ML_300/Given10)", headers...)
	for _, b := range buckets {
		row := []string{b.Label, fmt.Sprintf("%d", b.Targets)}
		for _, m := range methods {
			if b.Targets == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4f", b.MAE[m]))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// SignificanceReport runs the paired t-test of CFSF against every other
// Table III method on ML_300/Given10 (the statistical backing for "CFSF
// outperforms the state-of-the-art", which the paper asserts without a
// test).
type SignificanceRow struct {
	Versus      string
	CFSFMAE     float64
	OtherMAE    float64
	P           float64
	Significant bool
}

// Significance compares CFSF head-to-head against the given methods.
func (e *Env) Significance(methods []string) ([]SignificanceRow, error) {
	if len(methods) == 0 {
		methods = []string{"sur", "sir", "emdp", "scbpcc", "sf"}
	}
	split := e.Split(300, 10)
	var rows []SignificanceRow
	for _, name := range methods {
		cmp, err := eval.Compare(NewMethod("cfsf"), NewMethod(name), split, eval.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: significance vs %s: %w", name, err)
		}
		rows = append(rows, SignificanceRow{
			Versus:      name,
			CFSFMAE:     cmp.MAEA,
			OtherMAE:    cmp.MAEB,
			P:           cmp.TTest.P,
			Significant: cmp.TTest.Significant,
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].OtherMAE < rows[b].OtherMAE })
	return rows, nil
}

// SignificanceTable renders the head-to-head tests.
func SignificanceTable(rows []SignificanceRow) *eval.Table {
	t := eval.NewTable("Extension — paired t-tests, CFSF vs each method (ML_300/Given10)",
		"Versus", "CFSF MAE", "Other MAE", "p-value", "Significant @0.05")
	for _, r := range rows {
		t.AddRow(methodLabel(r.Versus),
			fmt.Sprintf("%.4f", r.CFSFMAE),
			fmt.Sprintf("%.4f", r.OtherMAE),
			fmt.Sprintf("%.2g", r.P),
			fmt.Sprintf("%v", r.Significant))
	}
	return t
}
