package experiments

import (
	"fmt"
	"runtime"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/eval"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// This file holds the experiments that go beyond the paper's §V: top-N
// ranking quality, a comparison against post-2009 baselines (matrix
// factorisation, Slope One, damped biases), and the parallel-scalability
// measurement the paper lists as future work ("improve its scalability
// in a parallel manner", §VI).

// ExtensionMethods are the comparators of the beyond-paper experiments.
var ExtensionMethods = []string{"cfsf", "sur", "sir", "emdp", "mf", "slopeone", "bias", "svd"}

// TopNRow is one method's ranking quality on a split.
type TopNRow struct {
	Method       string
	PrecisionAtN float64
	RecallAtN    float64
	NDCGAtN      float64
	Users        int
}

// TopNRanking fits each method on ML_300/Given10 and measures top-10
// ranking metrics over the held-out pool.
func (e *Env) TopNRanking(methods []string, n int) ([]TopNRow, error) {
	if len(methods) == 0 {
		methods = ExtensionMethods
	}
	split := e.Split(300, 10)
	var rows []TopNRow
	for _, name := range methods {
		p := NewMethod(name)
		if err := p.Fit(split.Matrix); err != nil {
			return nil, fmt.Errorf("experiments: topn fit %s: %w", name, err)
		}
		r := eval.EvaluateRanking(p, split, eval.RankingOptions{N: n})
		rows = append(rows, TopNRow{
			Method:       name,
			PrecisionAtN: r.PrecisionAtN,
			RecallAtN:    r.RecallAtN,
			NDCGAtN:      r.NDCGAtN,
			Users:        r.Users,
		})
	}
	return rows, nil
}

// TopNTable renders ranking rows.
func TopNTable(n int, rows []TopNRow) *eval.Table {
	t := eval.NewTable(
		fmt.Sprintf("Extension — top-%d ranking quality (ML_300/Given10, relevance ≥ 4)", n),
		"Method", fmt.Sprintf("P@%d", n), fmt.Sprintf("R@%d", n), fmt.Sprintf("NDCG@%d", n), "Users")
	for _, r := range rows {
		t.AddRow(methodLabel(r.Method),
			fmt.Sprintf("%.4f", r.PrecisionAtN),
			fmt.Sprintf("%.4f", r.RecallAtN),
			fmt.Sprintf("%.4f", r.NDCGAtN),
			fmt.Sprintf("%d", r.Users))
	}
	return t
}

// ExtensionGrid compares CFSF against the post-2009 baselines on the
// ML_300 row of the protocol.
func (e *Env) ExtensionGrid() ([]Cell, *eval.Table, error) {
	methods := []string{"cfsf", "mf", "slopeone", "bias", "svd"}
	cells, err := e.RunGridCustom(methods, []int{300}, Givens, TestUsers)
	if err != nil {
		return nil, nil, err
	}
	return cells, GridTable("Extension — MAE vs post-2009 baselines (ML_300)", methods, cells), nil
}

// ScalingPoint is one parallel-throughput measurement.
type ScalingPoint struct {
	Workers    int
	Throughput float64 // predictions per second
	Speedup    float64 // vs 1 worker
}

// ParallelScaling measures CFSF online throughput as the prediction
// worker pool grows (the paper's §VI future work on parallel
// scalability). The model is trained once on ML_300/Given20; every
// worker count predicts the full target set.
func (e *Env) ParallelScaling(workerCounts []int) ([]ScalingPoint, error) {
	if len(workerCounts) == 0 {
		// Always exercise several pool sizes; on a single-core host the
		// speedup column honestly reads ~1.0x.
		workerCounts = []int{1, 2, 4, 8}
		if max := runtime.GOMAXPROCS(0); max > 8 {
			workerCounts = append(workerCounts, max)
		}
	}
	split := e.Split(300, 20)
	p := NewMethod("cfsf").(*cfsfPredictor)
	if err := p.Fit(split.Matrix); err != nil {
		return nil, err
	}
	pairs := make([]struct{ u, i int }, len(split.Targets))
	for k, tg := range split.Targets {
		pairs[k] = struct{ u, i int }{tg.User, tg.Item}
	}

	var out []ScalingPoint
	base := 0.0
	for _, w := range workerCounts {
		// Fresh model clone state is unnecessary: the neighbour cache
		// only speeds things up uniformly; warm it once before timing so
		// every worker count measures steady-state throughput.
		for _, pr := range pairs[:min(200, len(pairs))] {
			p.mod.Predict(pr.u, pr.i)
		}
		t := time.Now()
		reqs := make([]modelPair, len(pairs))
		for k, pr := range pairs {
			reqs[k] = modelPair{pr.u, pr.i}
		}
		predictAll(p, reqs, w)
		elapsed := time.Since(t).Seconds()
		tp := float64(len(pairs)) / elapsed
		if base == 0 {
			base = tp
		}
		out = append(out, ScalingPoint{Workers: w, Throughput: tp, Speedup: tp / base})
	}
	return out, nil
}

type modelPair struct{ u, i int }

// predictAll drives the predictor across a worker pool of the given
// size (1 = serial).
func predictAll(p eval.Predictor, pairs []modelPair, workers int) {
	if workers <= 1 {
		for _, pr := range pairs {
			p.Predict(pr.u, pr.i)
		}
		return
	}
	ch := make(chan modelPair, 256)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for pr := range ch {
				p.Predict(pr.u, pr.i)
			}
			done <- struct{}{}
		}()
	}
	for _, pr := range pairs {
		ch <- pr
	}
	close(ch)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// ScalingTable renders throughput scaling.
func ScalingTable(points []ScalingPoint) *eval.Table {
	t := eval.NewTable("Extension — CFSF online throughput vs worker count (ML_300/Given20)",
		"Workers", "Predictions/s", "Speedup")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ContentPoint is one content-blend measurement.
type ContentPoint struct {
	Blend float64
	MAE   map[int]float64 // by Given
}

// ContentBoost measures the content-blended GIS (paper §VI: "attributes
// of items") on ML_300: blending genre similarity into the GIS should
// help most where collaborative data is thinnest (small Given).
func (e *Env) ContentBoost(blends []float64) ([]ContentPoint, error) {
	if len(blends) == 0 {
		blends = []float64{0, 0.2, 0.4, 0.7}
	}
	features := e.Data.FeatureMatrix()
	var out []ContentPoint
	for _, blend := range blends {
		pt := ContentPoint{Blend: blend, MAE: map[int]float64{}}
		for _, g := range Givens {
			split := e.Split(300, g)
			cfg := CFSFConfig()
			cfg.ItemFeatures = features
			cfg.ContentBlend = blend
			res, err := eval.Evaluate(NewCFSF(cfg), split, eval.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: content blend %g: %w", blend, err)
			}
			pt.MAE[g] = res.MAE
		}
		out = append(out, pt)
	}
	return out, nil
}

// ContentTable renders the content-blend sweep.
func ContentTable(points []ContentPoint) *eval.Table {
	t := eval.NewTable("Extension — content-blended GIS (ML_300)",
		"Blend", "Given5", "Given10", "Given20")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%g", p.Blend),
			fmt.Sprintf("%.4f", p.MAE[5]),
			fmt.Sprintf("%.4f", p.MAE[10]),
			fmt.Sprintf("%.4f", p.MAE[20]))
	}
	return t
}

// TemporalPoint is one τ measurement of the time-decay experiment.
type TemporalPoint struct {
	TauDays float64 // 0 = decay off
	MAE     float64
}

// Temporal runs the time-decay sweep (paper §VI: "dates associated with
// the ratings ... may reflect shifts of user preferences") on a drifted
// variant of the dataset under the time-ordered protocol: test users
// reveal their earliest 20 ratings and the model predicts their later
// ones. Recorded in EXPERIMENTS.md as an honest negative result at this
// data scale: decay's variance cost (discounting most of a sparse
// matrix) offsets its trend tracking.
func (e *Env) Temporal(tausDays []float64) ([]TemporalPoint, error) {
	if len(tausDays) == 0 {
		tausDays = []float64{0, 30, 60, 120, 240, 500}
	}
	cfg := e.Data.Config
	cfg.DriftStd = 2.0
	drifted, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	split, err := ratings.MLSplitByTime(drifted.Matrix, 300, TestUsers, 20)
	if err != nil {
		return nil, err
	}
	if e.TargetFraction > 0 && e.TargetFraction < 1 {
		split = split.TruncateTargets(e.TargetFraction)
	}
	var out []TemporalPoint
	for _, tau := range tausDays {
		mcfg := CFSFConfig()
		mcfg.TimeDecayTau = tau * 24 * 3600
		res, err := eval.Evaluate(NewCFSF(mcfg), split, eval.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: temporal tau=%g: %w", tau, err)
		}
		out = append(out, TemporalPoint{TauDays: tau, MAE: res.MAE})
	}
	return out, nil
}

// TemporalTable renders the τ sweep.
func TemporalTable(points []TemporalPoint) *eval.Table {
	t := eval.NewTable("Extension — time decay on drifted data (time-ordered ML_300/Given20)",
		"τ (days)", "MAE")
	for _, p := range points {
		label := fmt.Sprintf("%g", p.TauDays)
		if p.TauDays == 0 {
			label = "off"
		}
		t.AddRow(label, fmt.Sprintf("%.4f", p.MAE))
	}
	return t
}

// DiversityPoint is one MMR trade-off measurement over a panel of users.
type DiversityPoint struct {
	Tradeoff     float64 // 1 = pure relevance (plain Recommend)
	IntraListSim float64 // mean pairwise GIS similarity (lower = diverse)
	Coverage     float64 // catalogue coverage of all lists
	Novelty      float64 // mean self-information, bits
	Gini         float64 // exposure concentration
	MeanScore    float64 // mean predicted rating of recommended items
}

// Diversity measures what the MMR re-ranker (Model.RecommendDiverse)
// trades: as the relevance/diversity knob falls from 1, intra-list
// similarity and exposure concentration should fall while coverage and
// novelty rise, at a small predicted-score cost. Panel: every 5th user,
// top-10 lists, trained on the full matrix.
func (e *Env) Diversity(tradeoffs []float64) ([]DiversityPoint, error) {
	if len(tradeoffs) == 0 {
		tradeoffs = []float64{1.0, 0.7, 0.4}
	}
	mod, err := core.Train(e.Data.Matrix, CFSFConfig())
	if err != nil {
		return nil, err
	}
	panel := []int{}
	for u := 0; u < e.Data.Matrix.NumUsers(); u += 5 {
		panel = append(panel, u)
	}
	var out []DiversityPoint
	for _, tr := range tradeoffs {
		lists := eval.Lists{}
		var ils, score float64
		n := 0
		for _, u := range panel {
			recs := mod.RecommendDiverse(u, 10, tr)
			items := make([]int, len(recs))
			for k, r := range recs {
				items[k] = r.Item
				score += r.Score
				n++
			}
			lists[u] = items
			ils += mod.IntraListSimilarity(recs)
		}
		pt := DiversityPoint{
			Tradeoff:     tr,
			IntraListSim: ils / float64(len(panel)),
			Coverage:     eval.CatalogCoverage(lists, e.Data.Matrix.NumItems()),
			Novelty:      eval.Novelty(lists, e.Data.Matrix),
			Gini:         eval.GiniIndex(lists),
		}
		if n > 0 {
			pt.MeanScore = score / float64(n)
		}
		out = append(out, pt)
	}
	return out, nil
}

// DiversityTable renders the MMR trade-off sweep.
func DiversityTable(points []DiversityPoint) *eval.Table {
	t := eval.NewTable("Extension — MMR diversity re-ranking (top-10, 100-user panel)",
		"Tradeoff", "IntraListSim", "Coverage", "Novelty (bits)", "Gini", "MeanScore")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f", p.Tradeoff),
			fmt.Sprintf("%.4f", p.IntraListSim),
			fmt.Sprintf("%.3f", p.Coverage),
			fmt.Sprintf("%.2f", p.Novelty),
			fmt.Sprintf("%.3f", p.Gini),
			fmt.Sprintf("%.3f", p.MeanScore))
	}
	return t
}
