package experiments

import (
	"fmt"

	"cfsf/internal/core"
	"cfsf/internal/eval"
	"cfsf/internal/similarity"
)

// Figure sweep domains, matching the paper's x-axes.
var (
	// Fig2MValues spans the M axis of Fig. 2.
	Fig2MValues = []float64{5, 20, 35, 50, 65, 80, 95, 110, 125, 140}
	// Fig3KValues spans the K axis of Fig. 3 (10..100).
	Fig3KValues = []float64{10, 20, 30, 40, 55, 70, 85, 100}
	// Fig4CValues spans the C axis of Fig. 4 (10..100).
	Fig4CValues = []float64{10, 20, 30, 45, 60, 80, 100}
	// Fig6LambdaValues spans λ of Fig. 6.
	Fig6LambdaValues = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Fig7DeltaValues spans δ of Fig. 7.
	Fig7DeltaValues = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Fig8WValues spans the smoothed-rating weight w = 1−ε of Fig. 8.
	Fig8WValues = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 0.95}
	// Fig5Fractions are the testset percentages of Fig. 5.
	Fig5Fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
)

// FigureCurve is one MAE-vs-parameter series at a fixed Given.
type FigureCurve struct {
	Given  int
	Points []eval.SweepPoint
}

// sweepFigure runs a parameter sweep on ML_300 for every Given, applying
// `set` to the default config for each value.
func (e *Env) sweepFigure(values []float64, set func(*core.Config, float64)) ([]FigureCurve, error) {
	var out []FigureCurve
	for _, g := range Givens {
		split := e.Split(300, g)
		points, err := eval.Sweep(values, split, eval.Options{}, func(v float64) eval.Predictor {
			cfg := CFSFConfig()
			set(&cfg, v)
			return NewCFSF(cfg)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, FigureCurve{Given: g, Points: points})
	}
	return out, nil
}

// Fig2M measures accuracy versus the number of similar items M (Fig. 2).
func (e *Env) Fig2M() ([]FigureCurve, error) {
	return e.sweepFigure(Fig2MValues, func(c *core.Config, v float64) { c.M = int(v) })
}

// Fig3K measures accuracy versus the number of like-minded users K
// (Fig. 3).
func (e *Env) Fig3K() ([]FigureCurve, error) {
	return e.sweepFigure(Fig3KValues, func(c *core.Config, v float64) { c.K = int(v) })
}

// Fig4C measures accuracy versus the user-cluster count C (Fig. 4).
func (e *Env) Fig4C() ([]FigureCurve, error) {
	return e.sweepFigure(Fig4CValues, func(c *core.Config, v float64) { c.Clusters = int(v) })
}

// Fig6Lambda measures sensitivity of λ (Fig. 6).
func (e *Env) Fig6Lambda() ([]FigureCurve, error) {
	return e.sweepFigure(Fig6LambdaValues, func(c *core.Config, v float64) { c.Lambda = v })
}

// Fig7Delta measures sensitivity of δ (Fig. 7).
func (e *Env) Fig7Delta() ([]FigureCurve, error) {
	return e.sweepFigure(Fig7DeltaValues, func(c *core.Config, v float64) { c.Delta = v })
}

// Fig8W measures sensitivity of the smoothed-rating weight w = 1−ε
// (Fig. 8; see DESIGN.md for the w semantics).
func (e *Env) Fig8W() ([]FigureCurve, error) {
	return e.sweepFigure(Fig8WValues, func(c *core.Config, v float64) { c.OriginalWeight = 1 - v })
}

// CurveTable renders figure curves with one row per parameter value and
// one column per Given.
func CurveTable(title, param string, curves []FigureCurve) *eval.Table {
	headers := []string{param}
	for _, c := range curves {
		headers = append(headers, fmt.Sprintf("Given%d", c.Given))
	}
	t := eval.NewTable(title, headers...)
	if len(curves) == 0 {
		return t
	}
	for k := range curves[0].Points {
		row := []string{fmt.Sprintf("%g", curves[0].Points[k].Param)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.4f", c.Points[k].MAE))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5Point is one response-time measurement.
type Fig5Point struct {
	Method    string
	TrainSize int
	Fraction  float64
	Targets   int
	Millis    float64
}

// Fig5ResponseTime measures serial online prediction time while the
// testset grows (Fig. 5): CFSF vs SCBPCC at Given20 on every training
// set. Each fraction is measured on a freshly fitted model so CFSF's
// per-user cache starts cold every time, matching the paper's
// independent runs; only prediction is timed (the online phase).
func (e *Env) Fig5ResponseTime() ([]Fig5Point, error) {
	var out []Fig5Point
	for _, n := range TrainSizes {
		split := e.Split(n, 20)
		for _, method := range []string{"cfsf", "scbpcc"} {
			for _, f := range Fig5Fractions {
				p := NewMethod(method)
				if err := p.Fit(split.Matrix); err != nil {
					return nil, fmt.Errorf("experiments: fig5 fit %s: %w", method, err)
				}
				curve := eval.ResponseTimeCurve(p, split, []float64{f}, 1)
				out = append(out, Fig5Point{
					Method: method, TrainSize: n,
					Fraction: f, Targets: curve[0].Targets,
					Millis: float64(curve[0].Elapsed.Microseconds()) / 1000.0,
				})
			}
		}
	}
	return out, nil
}

// Fig5Table renders the response-time series.
func Fig5Table(points []Fig5Point) *eval.Table {
	t := eval.NewTable("Fig. 5 — online response time at Given20 (ms, serial)",
		"Testset %", "CFSF ML_100", "CFSF ML_200", "CFSF ML_300",
		"SCBPCC ML_100", "SCBPCC ML_200", "SCBPCC ML_300")
	get := func(method string, n int, f float64) string {
		for _, p := range points {
			if p.Method == method && p.TrainSize == n && p.Fraction == f {
				return fmt.Sprintf("%.0f", p.Millis)
			}
		}
		return "-"
	}
	for _, f := range Fig5Fractions {
		t.AddRow(fmt.Sprintf("%.0f%%", f*100),
			get("cfsf", 100, f), get("cfsf", 200, f), get("cfsf", 300, f),
			get("scbpcc", 100, f), get("scbpcc", 200, f), get("scbpcc", 300, f))
	}
	return t
}

// AblationResult is one design-choice ablation (DESIGN.md §5).
type AblationResult struct {
	Name    string
	MAE     float64
	BaseMAE float64
	Predict float64 // milliseconds, parallel
}

// Ablations evaluates the design choices DESIGN.md calls out, on
// ML_300/Given10 against the default configuration.
func (e *Env) Ablations() ([]AblationResult, error) {
	split := e.Split(300, 10)
	base, err := eval.Evaluate(NewCFSF(CFSFConfig()), split, eval.Options{})
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		set  func(*core.Config)
	}{
		{"no smoothing", func(c *core.Config) { c.DisableSmoothing = true }},
		{"full user search", func(c *core.Config) { c.FullUserSearch = true }},
		{"no SUIR' (δ=0)", func(c *core.Config) { c.Delta = 0 }},
		{"cosine GIS", func(c *core.Config) { c.GIS.Metric = similarity.Cosine }},
		{"no neighbour cache", func(c *core.Config) { c.DisableCache = true }},
	}
	var out []AblationResult
	for _, v := range variants {
		cfg := CFSFConfig()
		v.set(&cfg)
		res, err := eval.Evaluate(NewCFSF(cfg), split, eval.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		out = append(out, AblationResult{
			Name: v.name, MAE: res.MAE, BaseMAE: base.MAE,
			Predict: float64(res.PredictTime.Microseconds()) / 1000.0,
		})
	}
	return out, nil
}

// AblationTable renders ablation results.
func AblationTable(results []AblationResult) *eval.Table {
	t := eval.NewTable("Ablations — ML_300/Given10", "Variant", "MAE", "ΔMAE vs default", "Predict (ms)")
	if len(results) > 0 {
		t.AddRow("default", fmt.Sprintf("%.4f", results[0].BaseMAE), "-", "-")
	}
	for _, r := range results {
		t.AddRow(r.Name, fmt.Sprintf("%.4f", r.MAE),
			fmt.Sprintf("%+.4f", r.MAE-r.BaseMAE), fmt.Sprintf("%.0f", r.Predict))
	}
	return t
}
