package ratings

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestMatrixGobRoundTrip(t *testing.T) {
	b := NewBuilder(4, 6)
	b.SetScale(1, 10)
	b.MustAdd(0, 0, 7)
	b.MustAdd(0, 5, 2)
	b.MustAdd(3, 2, 9.5)
	orig := b.Build()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != 4 || back.NumItems() != 6 || back.NumRatings() != 3 {
		t.Fatalf("dims/nnz mismatch: %d×%d/%d", back.NumUsers(), back.NumItems(), back.NumRatings())
	}
	if back.MinRating() != 1 || back.MaxRating() != 10 {
		t.Errorf("scale [%g,%g], want [1,10]", back.MinRating(), back.MaxRating())
	}
	for u := 0; u < 4; u++ {
		for i := 0; i < 6; i++ {
			a, aok := orig.Rating(u, i)
			c, cok := back.Rating(u, i)
			if aok != cok || a != c {
				t.Fatalf("(%d,%d): %g,%v vs %g,%v", u, i, a, aok, c, cok)
			}
		}
	}
	// Derived statistics must be rebuilt too.
	if back.GlobalMean() != orig.GlobalMean() {
		t.Errorf("global mean %g, want %g", back.GlobalMean(), orig.GlobalMean())
	}
}

func TestMatrixGobEmpty(t *testing.T) {
	orig := NewBuilder(2, 3).Build()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != 2 || back.NumItems() != 3 || back.NumRatings() != 0 {
		t.Error("empty matrix did not round-trip")
	}
}

func TestMatrixGobDecodeGarbage(t *testing.T) {
	var m Matrix
	if err := m.GobDecode([]byte("garbage")); err == nil {
		t.Error("garbage must error")
	}
}
