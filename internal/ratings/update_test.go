package ratings

import (
	"math"
	"math/rand"
	"testing"
)

// fullRebuild replays every rating in m plus ups through a fresh Builder —
// the reference path Upserted must match bit-for-bit.
func fullRebuild(t *testing.T, m *Matrix, ups []Upsert) *Matrix {
	t.Helper()
	numUsers, numItems := m.NumUsers(), m.NumItems()
	for _, up := range ups {
		if up.User >= numUsers {
			numUsers = up.User + 1
		}
		if up.Item >= numItems {
			numItems = up.Item + 1
		}
	}
	b := NewBuilder(numUsers, numItems).SetScale(m.MinRating(), m.MaxRating())
	hasTimes := m.HasTimes()
	for u := 0; u < m.NumUsers(); u++ {
		times := m.UserRatingTimes(u)
		for k, e := range m.UserRatings(u) {
			if hasTimes {
				if err := b.AddWithTime(u, int(e.Index), e.Value, times[k]); err != nil {
					t.Fatal(err)
				}
			} else if err := b.Add(u, int(e.Index), e.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, up := range ups {
		if hasTimes || up.Time != 0 {
			if err := b.AddWithTime(up.User, up.Item, up.Value, up.Time); err != nil {
				t.Fatal(err)
			}
		} else if err := b.Add(up.User, up.Item, up.Value); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// requireSameMatrix asserts exact (bitwise) equality of every observable
// aspect of two matrices.
func requireSameMatrix(t *testing.T, want, got *Matrix) {
	t.Helper()
	if want.NumUsers() != got.NumUsers() || want.NumItems() != got.NumItems() {
		t.Fatalf("dims: want %dx%d got %dx%d", want.NumUsers(), want.NumItems(), got.NumUsers(), got.NumItems())
	}
	if want.NumRatings() != got.NumRatings() {
		t.Fatalf("nnz: want %d got %d", want.NumRatings(), got.NumRatings())
	}
	if want.GlobalMean() != got.GlobalMean() {
		t.Fatalf("global mean: want %v got %v", want.GlobalMean(), got.GlobalMean())
	}
	if want.MinRating() != got.MinRating() || want.MaxRating() != got.MaxRating() {
		t.Fatalf("scale mismatch")
	}
	if want.HasTimes() != got.HasTimes() {
		t.Fatalf("HasTimes: want %v got %v", want.HasTimes(), got.HasTimes())
	}
	for u := 0; u < want.NumUsers(); u++ {
		if want.UserMean(u) != got.UserMean(u) {
			t.Fatalf("user %d mean: want %v got %v", u, want.UserMean(u), got.UserMean(u))
		}
		wr, gr := want.UserRatings(u), got.UserRatings(u)
		if len(wr) != len(gr) {
			t.Fatalf("user %d row len: want %d got %d", u, len(wr), len(gr))
		}
		for k := range wr {
			if wr[k] != gr[k] {
				t.Fatalf("user %d row[%d]: want %+v got %+v", u, k, wr[k], gr[k])
			}
		}
		if want.HasTimes() {
			wt, gt := want.UserRatingTimes(u), got.UserRatingTimes(u)
			for k := range wr {
				if wt[k] != gt[k] {
					t.Fatalf("user %d time[%d]: want %d got %d", u, k, wt[k], gt[k])
				}
			}
		}
	}
	for i := 0; i < want.NumItems(); i++ {
		if want.ItemMean(i) != got.ItemMean(i) {
			t.Fatalf("item %d mean: want %v got %v", i, want.ItemMean(i), got.ItemMean(i))
		}
		wc, gc := want.ItemRatings(i), got.ItemRatings(i)
		if len(wc) != len(gc) {
			t.Fatalf("item %d col len: want %d got %d", i, len(wc), len(gc))
		}
		for k := range wc {
			if wc[k] != gc[k] {
				t.Fatalf("item %d col[%d]: want %+v got %+v", i, k, wc[k], gc[k])
			}
		}
	}
}

func randomMatrix(rng *rand.Rand, users, items, n int, timed bool) *Matrix {
	b := NewBuilder(users, items).SetScale(1, 5)
	for k := 0; k < n; k++ {
		u, i := rng.Intn(users), rng.Intn(items)
		v := float64(rng.Intn(9)+1) / 2
		if timed {
			b.AddWithTime(u, i, v, int64(rng.Intn(1000)+1))
		} else {
			b.MustAdd(u, i, v)
		}
	}
	return b.Build()
}

func TestUpsertedMatchesFullRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		timed := trial%2 == 1
		m := randomMatrix(rng, 20, 15, 120, timed)
		nUps := rng.Intn(12) + 1
		ups := make([]Upsert, nUps)
		for k := range ups {
			ups[k] = Upsert{
				User:  rng.Intn(24), // may grow users
				Item:  rng.Intn(18), // may grow items
				Value: float64(rng.Intn(9)+1) / 2,
			}
			if timed {
				ups[k].Time = int64(rng.Intn(1000) + 1)
			}
		}
		got, ok, err := m.Upserted(ups)
		if err != nil || !ok {
			t.Fatalf("trial %d: Upserted err=%v ok=%v", trial, err, ok)
		}
		want := fullRebuild(t, m, ups)
		requireSameMatrix(t, want, got)
	}
}

func TestUpsertedDuplicateLastWins(t *testing.T) {
	b := NewBuilder(3, 3).SetScale(1, 5)
	b.MustAdd(0, 0, 2)
	b.MustAdd(1, 1, 3)
	m := b.Build()
	ups := []Upsert{{User: 0, Item: 0, Value: 4}, {User: 0, Item: 0, Value: 5}, {User: 0, Item: 2, Value: 1}}
	got, ok, err := m.Upserted(ups)
	if err != nil || !ok {
		t.Fatalf("Upserted: err=%v ok=%v", err, ok)
	}
	if v, _ := got.Rating(0, 0); v != 5 {
		t.Fatalf("last write should win: got %v", v)
	}
	requireSameMatrix(t, fullRebuild(t, m, ups), got)
}

func TestUpsertedSharesUnchangedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, 10, 8, 50, false)
	const sentinel = 4.75 // not producible by randomMatrix
	got, ok, err := m.Upserted([]Upsert{{User: 0, Item: 0, Value: sentinel}})
	if err != nil || !ok {
		t.Fatalf("Upserted: err=%v ok=%v", err, ok)
	}
	for u := 1; u < m.NumUsers(); u++ {
		a, b := m.UserRatings(u), got.UserRatings(u)
		if len(a) > 0 && len(b) > 0 && &a[0] != &b[0] {
			t.Fatalf("row %d was copied, expected shared backing", u)
		}
	}
	// Old matrix unchanged.
	if v, has := m.Rating(0, 0); has && v == sentinel {
		t.Fatalf("old matrix mutated")
	}
}

func TestUpsertedTimesTransitionFallsBack(t *testing.T) {
	b := NewBuilder(2, 2).SetScale(1, 5)
	b.MustAdd(0, 0, 2)
	m := b.Build() // untimed
	_, ok, err := m.Upserted([]Upsert{{User: 1, Item: 1, Value: 3, Time: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("timestamped upsert into untimed matrix must request full rebuild")
	}
}

func TestUpsertedValidation(t *testing.T) {
	b := NewBuilder(2, 2).SetScale(1, 5)
	b.MustAdd(0, 0, 2)
	m := b.Build()
	cases := [][]Upsert{
		{{User: -1, Item: 0, Value: 3}},
		{{User: 0, Item: -2, Value: 3}},
		{{User: 0, Item: 0, Value: math.NaN()}},
		{{User: 0, Item: 0, Value: math.Inf(1)}},
	}
	for k, ups := range cases {
		if _, _, err := m.Upserted(ups); err == nil {
			t.Fatalf("case %d: expected error", k)
		}
	}
}

func TestUpsertedEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 5, 5, 12, false)
	got, ok, err := m.Upserted(nil)
	if err != nil || !ok || got != m {
		t.Fatalf("empty batch should return the same matrix (err=%v ok=%v)", err, ok)
	}
}
