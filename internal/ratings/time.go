package ratings

// Timestamp support. Timestamps are optional: matrices built without
// them carry none (HasTimes reports false) and all time accessors return
// zero. When present they align one-to-one with the row entries, which
// is what the time-decayed CFSF extension (paper §VI: "dates associated
// with the ratings ... may reflect shifts of user preferences") consumes.

// AddWithTime records a rating with a unix timestamp. Mixing Add and
// AddWithTime is allowed; untimed ratings carry timestamp 0. Duplicate
// cells keep the latest value together with that value's timestamp.
func (b *Builder) AddWithTime(user, item int, value float64, ts int64) error {
	if err := b.Add(user, item, value); err != nil {
		return err
	}
	b.triples[len(b.triples)-1].ts = ts
	b.anyTimes = true
	return nil
}

// HasTimes reports whether any rating carries a timestamp.
func (m *Matrix) HasTimes() bool { return m.rowTimes != nil }

// RatingTime returns the timestamp of the (u, i) rating; ok is false
// when the rating does not exist. An existing rating without a recorded
// timestamp returns 0, true.
func (m *Matrix) RatingTime(u, i int) (ts int64, ok bool) {
	row := m.rows[u]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid].Index) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(row) || int(row[lo].Index) != i {
		return 0, false
	}
	if m.rowTimes == nil {
		return 0, true
	}
	return m.rowTimes[u][lo], true
}

// UserRatingTimes returns the timestamps aligned with UserRatings(u), or
// nil when the matrix carries no timestamps. The slice is shared and
// must not be modified.
func (m *Matrix) UserRatingTimes(u int) []int64 {
	if m.rowTimes == nil {
		return nil
	}
	return m.rowTimes[u]
}

// MaxTime returns the largest recorded timestamp ("now" for decay
// computations), or 0 when the matrix has no timestamps.
func (m *Matrix) MaxTime() int64 {
	var max int64
	for u := range m.rowTimes {
		for _, t := range m.rowTimes[u] {
			if t > max {
				max = t
			}
		}
	}
	return max
}
