// Package ratings implements the sparse item–user matrix that every CF
// algorithm in this repository operates on, together with dataset I/O in
// the MovieLens u.data format and the Given-N evaluation splits used by
// the CFSF paper.
//
// The matrix is immutable once built and indexed both ways: compressed
// rows (one sorted rating list per user) and compressed columns (one
// sorted rating list per item), so both user-based and item-based
// algorithms get O(nnz/user) and O(nnz/item) access.
package ratings

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one stored rating inside a row or column list. For a user row,
// Index is the item id; for an item column, Index is the user id.
type Entry struct {
	Index int32
	Value float64
}

// Matrix is an immutable sparse P×Q item–user matrix (P users, Q items).
// It is safe for concurrent use.
type Matrix struct {
	numUsers int
	numItems int

	rows [][]Entry // rows[u] = ratings of user u sorted by item id
	cols [][]Entry // cols[i] = ratings of item i sorted by user id

	userMean []float64 // mean rating per user (0 when the user rated nothing)
	itemMean []float64 // mean rating per item (0 when the item has no ratings)
	global   float64   // mean over all ratings
	nnz      int

	// rowTimes, when non-nil, aligns a unix timestamp with every entry
	// of rows (see time.go). Matrices without timestamps leave it nil.
	rowTimes [][]int64

	minRating float64
	maxRating float64
}

// NumUsers returns P, the number of user rows.
func (m *Matrix) NumUsers() int { return m.numUsers }

// NumItems returns Q, the number of item columns.
func (m *Matrix) NumItems() int { return m.numItems }

// NumRatings returns the number of stored ratings.
func (m *Matrix) NumRatings() int { return m.nnz }

// Density returns nnz / (P*Q), the fill fraction of the matrix.
func (m *Matrix) Density() float64 {
	if m.numUsers == 0 || m.numItems == 0 {
		return 0
	}
	return float64(m.nnz) / (float64(m.numUsers) * float64(m.numItems))
}

// UserRatings returns user u's ratings sorted by item id. The returned
// slice is shared and must not be modified.
func (m *Matrix) UserRatings(u int) []Entry { return m.rows[u] }

// ItemRatings returns item i's ratings sorted by user id. The returned
// slice is shared and must not be modified.
func (m *Matrix) ItemRatings(i int) []Entry { return m.cols[i] }

// Rating returns the rating user u gave item i, and whether it exists.
func (m *Matrix) Rating(u, i int) (float64, bool) {
	row := m.rows[u]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid].Index) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && int(row[lo].Index) == i {
		return row[lo].Value, true
	}
	return 0, false
}

// UserMean returns the mean of user u's ratings, falling back to the
// global mean when the user has no ratings.
func (m *Matrix) UserMean(u int) float64 {
	if len(m.rows[u]) == 0 {
		return m.global
	}
	return m.userMean[u]
}

// ItemMean returns the mean of item i's ratings, falling back to the
// global mean when the item has no ratings.
func (m *Matrix) ItemMean(i int) float64 {
	if len(m.cols[i]) == 0 {
		return m.global
	}
	return m.itemMean[i]
}

// GlobalMean returns the mean over all stored ratings (0 for an empty
// matrix).
func (m *Matrix) GlobalMean() float64 { return m.global }

// MinRating and MaxRating bound the rating scale (1..5 for MovieLens).
func (m *Matrix) MinRating() float64 { return m.minRating }

// MaxRating returns the top of the rating scale.
func (m *Matrix) MaxRating() float64 { return m.maxRating }

// AvgRatingsPerUser returns nnz/P.
func (m *Matrix) AvgRatingsPerUser() float64 {
	if m.numUsers == 0 {
		return 0
	}
	return float64(m.nnz) / float64(m.numUsers)
}

// Builder accumulates ratings and produces an immutable Matrix. Adding
// the same (user, item) twice keeps the latest value.
type Builder struct {
	numUsers  int
	numItems  int
	triples   []triple
	minRating float64
	maxRating float64
	anyTimes  bool // at least one rating came in via AddWithTime
}

type triple struct {
	user, item int32
	value      float64
	ts         int64
}

// NewBuilder returns a Builder for a P×Q matrix on the given rating scale.
func NewBuilder(numUsers, numItems int) *Builder {
	return &Builder{
		numUsers:  numUsers,
		numItems:  numItems,
		minRating: 1,
		maxRating: 5,
	}
}

// SetScale overrides the rating scale recorded on the built matrix.
func (b *Builder) SetScale(min, max float64) *Builder {
	b.minRating, b.maxRating = min, max
	return b
}

// Add records one rating. It returns an error for out-of-range ids or a
// non-finite value.
func (b *Builder) Add(user, item int, value float64) error {
	if user < 0 || user >= b.numUsers {
		return fmt.Errorf("ratings: user %d out of range [0,%d)", user, b.numUsers)
	}
	if item < 0 || item >= b.numItems {
		return fmt.Errorf("ratings: item %d out of range [0,%d)", item, b.numItems)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("ratings: non-finite rating %v for (%d,%d)", value, user, item)
	}
	b.triples = append(b.triples, triple{user: int32(user), item: int32(item), value: value})
	return nil
}

// MustAdd is Add that panics on error; for use with ids the caller has
// already validated.
func (b *Builder) MustAdd(user, item int, value float64) {
	if err := b.Add(user, item, value); err != nil {
		panic(err)
	}
}

// Len returns the number of ratings recorded so far (before dedup).
func (b *Builder) Len() int { return len(b.triples) }

// Build produces the immutable matrix. The Builder remains usable.
func (b *Builder) Build() *Matrix {
	// Sort by (user, item, insertion order preserved by stable sort) and
	// deduplicate keeping the last value for a (user, item) pair.
	ts := make([]triple, len(b.triples))
	copy(ts, b.triples)
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].user != ts[j].user {
			return ts[i].user < ts[j].user
		}
		return ts[i].item < ts[j].item
	})
	dedup := ts[:0]
	for _, t := range ts {
		if n := len(dedup); n > 0 && dedup[n-1].user == t.user && dedup[n-1].item == t.item {
			dedup[n-1] = t // keep the latest value AND its timestamp together
			continue
		}
		dedup = append(dedup, t)
	}
	ts = dedup

	m := &Matrix{
		numUsers:  b.numUsers,
		numItems:  b.numItems,
		rows:      make([][]Entry, b.numUsers),
		cols:      make([][]Entry, b.numItems),
		userMean:  make([]float64, b.numUsers),
		itemMean:  make([]float64, b.numItems),
		nnz:       len(ts),
		minRating: b.minRating,
		maxRating: b.maxRating,
	}

	rowLen := make([]int, b.numUsers)
	colLen := make([]int, b.numItems)
	for _, t := range ts {
		rowLen[t.user]++
		colLen[t.item]++
	}
	// Single backing arrays keep the matrix compact and cache friendly.
	rowBack := make([]Entry, len(ts))
	colBack := make([]Entry, len(ts))
	off := 0
	for u := 0; u < b.numUsers; u++ {
		m.rows[u] = rowBack[off : off : off+rowLen[u]]
		off += rowLen[u]
	}
	off = 0
	for i := 0; i < b.numItems; i++ {
		m.cols[i] = colBack[off : off : off+colLen[i]]
		off += colLen[i]
	}

	var total float64
	userSum := make([]float64, b.numUsers)
	itemSum := make([]float64, b.numItems)
	for _, t := range ts {
		m.rows[t.user] = append(m.rows[t.user], Entry{t.item, t.value})
		m.cols[t.item] = append(m.cols[t.item], Entry{t.user, t.value})
		userSum[t.user] += t.value
		itemSum[t.item] += t.value
		total += t.value
	}
	// Rows were filled in (user, item) order so they are sorted; columns
	// were filled in user order per item (ts is user-major), also sorted.
	for u := 0; u < b.numUsers; u++ {
		if n := len(m.rows[u]); n > 0 {
			m.userMean[u] = userSum[u] / float64(n)
		}
	}
	for i := 0; i < b.numItems; i++ {
		if n := len(m.cols[i]); n > 0 {
			m.itemMean[i] = itemSum[i] / float64(n)
		}
	}
	if len(ts) > 0 {
		m.global = total / float64(len(ts))
	}
	if b.anyTimes {
		m.rowTimes = make([][]int64, b.numUsers)
		timeBack := make([]int64, len(ts))
		off := 0
		for u := range m.rowTimes {
			m.rowTimes[u] = timeBack[off:off]
			off += len(m.rows[u])
		}
		for _, t := range ts {
			u := int(t.user)
			m.rowTimes[u] = append(m.rowTimes[u], t.ts)
		}
	}
	return m
}

// SubsetUsers returns a new matrix containing only the rows of the listed
// users (renumbered 0..len(users)-1) over the same item space. It is the
// primitive behind the ML_100/200/300 training-set construction.
func (m *Matrix) SubsetUsers(users []int) *Matrix {
	b := NewBuilder(len(users), m.numItems)
	b.SetScale(m.minRating, m.maxRating)
	for nu, u := range users {
		for k, e := range m.rows[u] {
			if m.rowTimes != nil {
				if err := b.AddWithTime(nu, int(e.Index), e.Value, m.rowTimes[u][k]); err != nil {
					panic(err)
				}
				continue
			}
			_ = k
			b.MustAdd(nu, int(e.Index), e.Value)
		}
	}
	return b.Build()
}

// CoRatedItems iterates over the items rated by both users a and b,
// calling fn with the item id and the two ratings. Rows are sorted, so
// this is a linear merge.
func (m *Matrix) CoRatedItems(a, b int, fn func(item int32, ra, rb float64)) {
	ra, rb := m.rows[a], m.rows[b]
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i].Index < rb[j].Index:
			i++
		case ra[i].Index > rb[j].Index:
			j++
		default:
			fn(ra[i].Index, ra[i].Value, rb[j].Value)
			i++
			j++
		}
	}
}

// CoRatingUsers iterates over the users who rated both items a and b,
// calling fn with the user id and the two ratings.
func (m *Matrix) CoRatingUsers(a, b int, fn func(user int32, ra, rb float64)) {
	ca, cb := m.cols[a], m.cols[b]
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i].Index < cb[j].Index:
			i++
		case ca[i].Index > cb[j].Index:
			j++
		default:
			fn(ca[i].Index, ca[i].Value, cb[j].Value)
			i++
			j++
		}
	}
}
