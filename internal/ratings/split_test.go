package ratings

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// denseMatrix builds a p×q matrix where every user rated every item with
// a value derived from (u, i), handy for split accounting.
func denseMatrix(p, q int) *Matrix {
	b := NewBuilder(p, q)
	for u := 0; u < p; u++ {
		for i := 0; i < q; i++ {
			b.MustAdd(u, i, float64(1+(u+i)%5))
		}
	}
	return b.Build()
}

func TestMLSplitShape(t *testing.T) {
	full := denseMatrix(10, 6)
	s, err := MLSplit(full, 6, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Matrix.NumUsers() != 9 {
		t.Fatalf("split users = %d, want 9", s.Matrix.NumUsers())
	}
	if len(s.TestUsers) != 3 {
		t.Fatalf("test users = %d, want 3", len(s.TestUsers))
	}
	for k, u := range s.TestUsers {
		if u != 6+k {
			t.Errorf("test user %d renumbered to %d, want %d", k, u, 6+k)
		}
		if got := len(s.Matrix.UserRatings(u)); got != 2 {
			t.Errorf("test user %d has %d given ratings, want 2", u, got)
		}
	}
	// Every held-out cell is a target: 3 test users × (6-2) items.
	if len(s.Targets) != 12 {
		t.Errorf("targets = %d, want 12", len(s.Targets))
	}
	for _, tg := range s.Targets {
		if _, ok := s.Matrix.Rating(tg.User, tg.Item); ok {
			t.Fatalf("target (%d,%d) leaked into the observable matrix", tg.User, tg.Item)
		}
		want, _ := full.Rating(tg.User-6+7, tg.Item) // test user k maps from full user 7+k
		_ = want                                     // mapping checked structurally below
	}
}

func TestMLSplitTargetValues(t *testing.T) {
	full := denseMatrix(5, 4)
	s, err := MLSplit(full, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Test users are full users 3 and 4 renumbered to 3 and 4.
	for _, tg := range s.Targets {
		fullUser := tg.User // same ordinal since nTrain users come first
		want, ok := full.Rating(fullUser, tg.Item)
		if !ok || tg.Actual != want {
			t.Fatalf("target (%d,%d) = %g, want %g", tg.User, tg.Item, tg.Actual, want)
		}
	}
}

func TestMLSplitValidation(t *testing.T) {
	full := denseMatrix(5, 4)
	if _, err := MLSplit(full, 4, 2, 1); err == nil {
		t.Error("overlapping train/test must error")
	}
	if _, err := NewGivenN(full, []int{0, 0}, []int{1}, 1); err == nil {
		t.Error("duplicate train user must error")
	}
	if _, err := NewGivenN(full, []int{0}, []int{0}, 1); err == nil {
		t.Error("user in both sets must error")
	}
	if _, err := NewGivenN(full, []int{99}, []int{1}, 1); err == nil {
		t.Error("out-of-range user must error")
	}
	if _, err := NewGivenN(full, []int{0}, []int{1}, -1); err == nil {
		t.Error("negative given must error")
	}
}

func TestGivenNExceedsRatings(t *testing.T) {
	b := NewBuilder(2, 5)
	b.MustAdd(0, 0, 3)
	b.MustAdd(1, 0, 4)
	b.MustAdd(1, 1, 5)
	full := b.Build()
	s, err := NewGivenN(full, []int{0}, []int{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Targets) != 0 {
		t.Errorf("targets = %d, want 0 when given exceeds rating count", len(s.Targets))
	}
	if got := len(s.Matrix.UserRatings(s.TestUsers[0])); got != 2 {
		t.Errorf("all %d ratings should be given, got %d", 2, got)
	}
}

func TestTruncateTargets(t *testing.T) {
	full := denseMatrix(10, 6)
	s, err := MLSplit(full, 5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	half := s.TruncateTargets(0.4) // 2 of 5 test users
	if len(half.TestUsers) != 2 {
		t.Fatalf("truncated test users = %d, want 2", len(half.TestUsers))
	}
	keep := map[int]bool{half.TestUsers[0]: true, half.TestUsers[1]: true}
	for _, tg := range half.Targets {
		if !keep[tg.User] {
			t.Fatalf("target for dropped user %d survived", tg.User)
		}
	}
	if got, want := len(half.Targets), 2*4; got != want {
		t.Errorf("truncated targets = %d, want %d", got, want)
	}
	if full2 := s.TruncateTargets(1.5); len(full2.Targets) != len(s.Targets) {
		t.Error("frac > 1 must clamp to the full testset")
	}
	if none := s.TruncateTargets(-0.1); len(none.Targets) != 0 {
		t.Error("frac < 0 must clamp to empty")
	}
}

// Property: given + targets of each test user exactly partition that
// user's ratings in the full matrix.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 4 + rng.Intn(10)
		q := 3 + rng.Intn(10)
		b := NewBuilder(p, q)
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				if rng.Float64() < 0.5 {
					b.MustAdd(u, i, float64(1+rng.Intn(5)))
				}
			}
		}
		full := b.Build()
		nTrain := 1 + rng.Intn(p-2)
		nTest := 1 + rng.Intn(p-nTrain-1+1)
		if nTrain+nTest > p {
			nTest = p - nTrain
		}
		given := rng.Intn(5)
		s, err := MLSplit(full, nTrain, nTest, given)
		if err != nil {
			return false
		}
		targetCount := map[int]int{}
		for _, tg := range s.Targets {
			targetCount[tg.User]++
		}
		for k, u := range s.TestUsers {
			fullU := p - nTest + k
			total := len(full.UserRatings(fullU))
			g := len(s.Matrix.UserRatings(u))
			if g > given {
				return false
			}
			if g+targetCount[u] != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
