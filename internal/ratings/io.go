package ratings

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadUData parses the MovieLens u.data tab-separated format:
//
//	user_id \t item_id \t rating \t timestamp
//
// Ids in the file are 1-based (as GroupLens ships them) and are remapped
// to dense 0-based ids in first-seen order. The timestamp column is
// optional; when present it is stored on the matrix (see HasTimes).
// Blank lines and lines starting with '#' are skipped.
func ReadUData(r io.Reader) (*Matrix, error) {
	type rec struct {
		user, item int
		value      float64
		ts         int64
		hasTS      bool
	}
	var recs []rec
	userIDs := map[string]int{}
	itemIDs := map[string]int{}
	intern := func(m map[string]int, k string) int {
		if id, ok := m[k]; ok {
			return id
		}
		id := len(m)
		m[k] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("ratings: line %d: want at least 3 fields, got %d", line, len(fields))
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ratings: line %d: bad rating %q: %v", line, fields[2], err)
		}
		r := rec{
			user:  intern(userIDs, fields[0]),
			item:  intern(itemIDs, fields[1]),
			value: v,
		}
		if len(fields) >= 4 {
			if ts, err := strconv.ParseInt(fields[3], 10, 64); err == nil {
				r.ts, r.hasTS = ts, true
			}
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ratings: scan: %w", err)
	}
	b := NewBuilder(len(userIDs), len(itemIDs))
	anyTS := false
	for _, r := range recs {
		if r.hasTS && r.ts != 0 {
			anyTS = true
			break
		}
	}
	for _, r := range recs {
		var err error
		if anyTS {
			err = b.AddWithTime(r.user, r.item, r.value, r.ts)
		} else {
			err = b.Add(r.user, r.item, r.value)
		}
		if err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ReadUDataFile opens path and parses it with ReadUData.
func ReadUDataFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadUData(f)
}

// WriteUData writes the matrix in u.data format with 1-based ids, so
// generated datasets round-trip through ReadUData and load into tools
// that expect the GroupLens layout. Stored timestamps are written;
// matrices without timestamps emit 0.
func WriteUData(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < m.NumUsers(); u++ {
		times := m.UserRatingTimes(u)
		for k, e := range m.UserRatings(u) {
			var ts int64
			if times != nil {
				ts = times[k]
			}
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\t%d\n", u+1, e.Index+1, e.Value, ts); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteUDataFile creates path and writes the matrix with WriteUData.
func WriteUDataFile(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteUData(f, m); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
