package ratings

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadRatingsCSV parses the modern MovieLens ratings.csv layout:
//
//	userId,movieId,rating,timestamp
//
// A header row is detected and skipped automatically. Ids are remapped
// to dense 0-based ids in first-seen order, as in ReadUData; the
// timestamp column is optional and ignored.
func ReadRatingsCSV(r io.Reader) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually: 3 or 4 columns
	cr.TrimLeadingSpace = true

	type rec struct {
		user, item int
		value      float64
	}
	var recs []rec
	userIDs := map[string]int{}
	itemIDs := map[string]int{}
	intern := func(m map[string]int, k string) int {
		if id, ok := m[k]; ok {
			return id
		}
		id := len(m)
		m[k] = id
		return id
	}

	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ratings: csv: %w", err)
		}
		line++
		if len(row) == 1 && strings.TrimSpace(row[0]) == "" {
			continue
		}
		if len(row) < 3 {
			return nil, fmt.Errorf("ratings: csv line %d: want at least 3 columns, got %d", line, len(row))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(row[2]), 64)
		if err != nil {
			if line == 1 {
				continue // header row ("userId,movieId,rating,...")
			}
			return nil, fmt.Errorf("ratings: csv line %d: bad rating %q: %v", line, row[2], err)
		}
		recs = append(recs, rec{
			user:  intern(userIDs, strings.TrimSpace(row[0])),
			item:  intern(itemIDs, strings.TrimSpace(row[1])),
			value: v,
		})
	}
	b := NewBuilder(len(userIDs), len(itemIDs))
	for _, r := range recs {
		if err := b.Add(r.user, r.item, r.value); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ReadRatingsCSVFile opens path and parses it with ReadRatingsCSV.
func ReadRatingsCSVFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRatingsCSV(f)
}

// WriteRatingsCSV writes the matrix in ratings.csv format with a header
// row, 1-based ids and a zero timestamp.
func WriteRatingsCSV(w io.Writer, m *Matrix) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"userId", "movieId", "rating", "timestamp"}); err != nil {
		return err
	}
	for u := 0; u < m.NumUsers(); u++ {
		for _, e := range m.UserRatings(u) {
			rec := []string{
				strconv.Itoa(u + 1),
				strconv.Itoa(int(e.Index) + 1),
				strconv.FormatFloat(e.Value, 'g', -1, 64),
				"0",
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRatingsCSVFile creates path and writes the matrix as CSV.
func WriteRatingsCSVFile(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRatingsCSV(f, m); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadAuto loads a ratings file, dispatching on the extension: ".csv"
// uses ReadRatingsCSV, everything else the u.data tab format.
func ReadAuto(path string) (*Matrix, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return ReadRatingsCSVFile(path)
	}
	return ReadUDataFile(path)
}
