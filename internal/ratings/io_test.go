package ratings

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadUData(t *testing.T) {
	in := "1\t10\t4\t881250949\n" +
		"1\t20\t3\t881250950\n" +
		"2\t10\t5\t881250951\n" +
		"\n" +
		"# comment line\n" +
		"3\t30\t1\n" // timestamp optional
	m, err := ReadUData(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 3 || m.NumItems() != 3 {
		t.Fatalf("dims %d×%d, want 3×3", m.NumUsers(), m.NumItems())
	}
	if m.NumRatings() != 4 {
		t.Fatalf("ratings = %d, want 4", m.NumRatings())
	}
	// First-seen order: user "1"→0, item "10"→0.
	if r, ok := m.Rating(0, 0); !ok || r != 4 {
		t.Errorf("Rating(0,0) = %g,%v, want 4,true", r, ok)
	}
	if r, ok := m.Rating(1, 0); !ok || r != 5 {
		t.Errorf("Rating(1,0) = %g,%v, want 5,true", r, ok)
	}
}

func TestReadUDataErrors(t *testing.T) {
	if _, err := ReadUData(strings.NewReader("1\t2\n")); err == nil {
		t.Error("short line must error")
	}
	if _, err := ReadUData(strings.NewReader("1\t2\tabc\t0\n")); err == nil {
		t.Error("non-numeric rating must error")
	}
}

func TestReadUDataEmpty(t *testing.T) {
	m, err := ReadUData(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 0 || m.NumItems() != 0 || m.NumRatings() != 0 {
		t.Error("empty input must produce an empty matrix")
	}
}

func TestUDataRoundTrip(t *testing.T) {
	b := NewBuilder(3, 5)
	b.MustAdd(0, 0, 4)
	b.MustAdd(0, 4, 2)
	b.MustAdd(2, 1, 3.5)
	orig := b.Build()

	var buf bytes.Buffer
	if err := WriteUData(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUData(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Users/items with no ratings vanish in the file format; ratings and
	// values must survive.
	if back.NumRatings() != orig.NumRatings() {
		t.Fatalf("round trip ratings %d, want %d", back.NumRatings(), orig.NumRatings())
	}
	if r, ok := back.Rating(0, 1); !ok || r != 2 {
		t.Errorf("round trip value = %g,%v, want 2 (item renumbered)", r, ok)
	}
	if r, ok := back.Rating(1, 2); !ok || r != 3.5 {
		t.Errorf("fractional rating = %g,%v, want 3.5", r, ok)
	}
}

func TestUDataFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.data")
	b := NewBuilder(2, 2)
	b.MustAdd(0, 0, 1)
	b.MustAdd(1, 1, 5)
	if err := WriteUDataFile(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadUDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRatings() != 2 {
		t.Errorf("file round trip ratings = %d, want 2", m.NumRatings())
	}
}

func TestReadUDataFileMissing(t *testing.T) {
	if _, err := ReadUDataFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file must error")
	}
}
