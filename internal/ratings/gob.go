package ratings

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// matrixWire is the stable on-disk representation of a Matrix: dims,
// scale and the rating triples in row-major order. Versioned so the
// format can evolve without breaking old snapshots.
//
//cfsf:wire matrixWireVersion
type matrixWire struct {
	Version   int
	NumUsers  int
	NumItems  int
	MinRating float64
	MaxRating float64
	Users     []int32
	Items     []int32
	Values    []float64
}

const matrixWireVersion = 1

// GobEncode implements gob.GobEncoder, letting a Matrix be embedded in
// larger gob streams (model snapshots, caches).
func (m *Matrix) GobEncode() ([]byte, error) {
	w := matrixWire{
		Version:   matrixWireVersion,
		NumUsers:  m.numUsers,
		NumItems:  m.numItems,
		MinRating: m.minRating,
		MaxRating: m.maxRating,
		Users:     make([]int32, 0, m.nnz),
		Items:     make([]int32, 0, m.nnz),
		Values:    make([]float64, 0, m.nnz),
	}
	for u := 0; u < m.numUsers; u++ {
		for _, e := range m.rows[u] {
			w.Users = append(w.Users, int32(u))
			w.Items = append(w.Items, e.Index)
			w.Values = append(w.Values, e.Value)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(data []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Version != matrixWireVersion {
		return fmt.Errorf("ratings: unsupported matrix snapshot version %d", w.Version)
	}
	if len(w.Users) != len(w.Items) || len(w.Users) != len(w.Values) {
		return fmt.Errorf("ratings: corrupt matrix snapshot: %d/%d/%d triples",
			len(w.Users), len(w.Items), len(w.Values))
	}
	b := NewBuilder(w.NumUsers, w.NumItems)
	b.SetScale(w.MinRating, w.MaxRating)
	for k := range w.Users {
		if err := b.Add(int(w.Users[k]), int(w.Items[k]), w.Values[k]); err != nil {
			return fmt.Errorf("ratings: corrupt matrix snapshot: %w", err)
		}
	}
	*m = *b.Build()
	return nil
}
