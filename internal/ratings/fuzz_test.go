package ratings

import (
	"strings"
	"testing"
)

// FuzzReadUData checks that arbitrary input never panics the parser and
// that whatever parses also round-trips through WriteUData.
func FuzzReadUData(f *testing.F) {
	f.Add("1\t10\t4\t881250949\n")
	f.Add("1 10 4\n2 10 5\n")
	f.Add("# comment\n\n3\t30\t1\n")
	f.Add("a\tb\tc\n")
	f.Add("1\t2\t3.5\t0\n1\t2\t4\t0\n") // duplicate cell
	f.Add(strings.Repeat("9\t9\t5\t0\n", 50))

	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadUData(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if m.NumRatings() < 0 || m.NumUsers() < 0 || m.NumItems() < 0 {
			t.Fatalf("negative dimensions: %d %d %d", m.NumUsers(), m.NumItems(), m.NumRatings())
		}
		var sb strings.Builder
		if err := WriteUData(&sb, m); err != nil {
			t.Fatalf("write parsed matrix: %v", err)
		}
		back, err := ReadUData(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read written matrix: %v", err)
		}
		if back.NumRatings() != m.NumRatings() {
			t.Fatalf("round trip lost ratings: %d -> %d", m.NumRatings(), back.NumRatings())
		}
	})
}
