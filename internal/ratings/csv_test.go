package ratings

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadRatingsCSVWithHeader(t *testing.T) {
	in := "userId,movieId,rating,timestamp\n" +
		"1,10,4.0,964982703\n" +
		"1,20,3.5,964981247\n" +
		"2,10,5,964982224\n"
	m, err := ReadRatingsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 2 || m.NumItems() != 2 || m.NumRatings() != 3 {
		t.Fatalf("dims %d×%d/%d, want 2×2/3", m.NumUsers(), m.NumItems(), m.NumRatings())
	}
	if r, ok := m.Rating(0, 1); !ok || r != 3.5 {
		t.Errorf("half-star rating = %g,%v, want 3.5", r, ok)
	}
}

func TestReadRatingsCSVWithoutHeader(t *testing.T) {
	in := "1,10,4\n2,10,5\n"
	m, err := ReadRatingsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRatings() != 2 {
		t.Errorf("ratings = %d, want 2", m.NumRatings())
	}
}

func TestReadRatingsCSVErrors(t *testing.T) {
	if _, err := ReadRatingsCSV(strings.NewReader("1,2\n")); err == nil {
		t.Error("short row must error")
	}
	// Bad rating on a non-header line.
	if _, err := ReadRatingsCSV(strings.NewReader("1,10,4\n2,10,xyz\n")); err == nil {
		t.Error("bad rating after header must error")
	}
}

func TestRatingsCSVRoundTrip(t *testing.T) {
	b := NewBuilder(3, 4)
	b.MustAdd(0, 0, 4)
	b.MustAdd(1, 2, 3.5)
	b.MustAdd(2, 3, 1)
	orig := b.Build()
	var buf bytes.Buffer
	if err := WriteRatingsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "userId,movieId,rating,timestamp") {
		t.Error("missing header row")
	}
	back, err := ReadRatingsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRatings() != orig.NumRatings() {
		t.Errorf("round trip ratings %d, want %d", back.NumRatings(), orig.NumRatings())
	}
	if r, ok := back.Rating(1, 1); !ok || r != 3.5 {
		t.Errorf("fractional value lost: %g,%v", r, ok)
	}
}

func TestReadAutoDispatch(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(2, 2)
	b.MustAdd(0, 0, 4)
	b.MustAdd(1, 1, 2)
	m := b.Build()

	csvPath := filepath.Join(dir, "ratings.csv")
	if err := WriteRatingsCSVFile(csvPath, m); err != nil {
		t.Fatal(err)
	}
	udataPath := filepath.Join(dir, "u.data")
	if err := WriteUDataFile(udataPath, m); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{csvPath, udataPath} {
		got, err := ReadAuto(path)
		if err != nil {
			t.Fatalf("ReadAuto(%s): %v", path, err)
		}
		if got.NumRatings() != 2 {
			t.Errorf("ReadAuto(%s) ratings = %d, want 2", path, got.NumRatings())
		}
	}
	if _, err := ReadAuto(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file must error")
	}
}
