package ratings

import (
	"fmt"
	"math"
	"sort"
)

// Incremental matrix rebuild. Matrix is immutable, so "updating" it means
// producing a new Matrix — but a micro-batch of rating updates touches
// only a few rows and columns, and the rest of the structure can be
// shared with the previous matrix instead of re-sorted and re-copied.
//
// Upserted is bit-for-bit equivalent to replaying every old rating plus
// the updates through a fresh Builder: unchanged rows and columns are
// shared (their values are identical by construction), changed rows and
// columns are rebuilt by sorted merge, and every floating-point aggregate
// (user means, item means, the global mean) is re-accumulated in exactly
// the iteration order Builder.Build uses, so downstream consumers that
// require exact reproducibility (the sharded/unsharded parity contract in
// internal/core) see no difference.

// Upsert is one cell change for Matrix.Upserted: set (User, Item) to
// Value, growing the matrix when the ids lie past the current bounds.
// Within a batch the last write to a cell wins, matching Builder
// semantics.
type Upsert struct {
	User, Item int
	Value      float64
	Time       int64
}

// Upserted returns a new matrix with the updates applied, sharing all
// unchanged rows and columns with m. ok is false when the batch cannot be
// applied incrementally (a timestamped update against an untimed matrix
// changes the row-times layout of every row); the caller should fall back
// to a full Builder pass. An invalid update (negative id, non-finite
// value) returns an error, mirroring Builder.Add.
func (m *Matrix) Upserted(ups []Upsert) (next *Matrix, ok bool, err error) {
	if len(ups) == 0 {
		return m, true, nil
	}
	hasTimes := m.rowTimes != nil
	numUsers, numItems := m.numUsers, m.numItems
	for _, up := range ups {
		if up.User < 0 || up.Item < 0 {
			return nil, false, fmt.Errorf("ratings: negative id in upsert (%d,%d)", up.User, up.Item)
		}
		if math.IsNaN(up.Value) || math.IsInf(up.Value, 0) {
			return nil, false, fmt.Errorf("ratings: non-finite rating %v for (%d,%d)", up.Value, up.User, up.Item)
		}
		if !hasTimes && up.Time != 0 {
			return nil, false, nil // times transition: full rebuild required
		}
		if up.User >= numUsers {
			numUsers = up.User + 1
		}
		if up.Item >= numItems {
			numItems = up.Item + 1
		}
	}

	// Group updates by user, preserving batch order so last-wins
	// semantics match Builder dedup.
	perUser := make(map[int][]Upsert)
	changedItems := make(map[int]bool)
	for _, up := range ups {
		perUser[up.User] = append(perUser[up.User], up)
		changedItems[up.Item] = true
	}

	out := &Matrix{
		numUsers:  numUsers,
		numItems:  numItems,
		rows:      make([][]Entry, numUsers),
		cols:      make([][]Entry, numItems),
		userMean:  make([]float64, numUsers),
		itemMean:  make([]float64, numItems),
		minRating: m.minRating,
		maxRating: m.maxRating,
	}
	copy(out.rows, m.rows)
	copy(out.userMean, m.userMean)
	copy(out.cols, m.cols)
	copy(out.itemMean, m.itemMean)
	if hasTimes {
		out.rowTimes = make([][]int64, numUsers)
		copy(out.rowTimes, m.rowTimes)
	}

	// Rebuild changed rows by sorted merge of the old row and the user's
	// updates (sorted by item, last write per item wins).
	for u, list := range perUser {
		var oldRow []Entry
		var oldTimes []int64
		if u < m.numUsers {
			oldRow = m.rows[u]
			if hasTimes {
				oldTimes = m.rowTimes[u]
			}
		}
		newRow, newTimes := mergeRow(oldRow, oldTimes, list, hasTimes)
		out.rows[u] = newRow
		if hasTimes {
			out.rowTimes[u] = newTimes
		}
		var sum float64
		for _, e := range newRow {
			sum += e.Value
		}
		out.userMean[u] = sum / float64(len(newRow))
	}

	// Rebuild changed columns: upsert each changed user's final value for
	// the item, keeping ascending user order.
	for i := range changedItems {
		var colUps []Entry
		for u, list := range perUser {
			// Final value for (u, i), if this user touched the item.
			touched := false
			var val float64
			for _, up := range list {
				if up.Item == i {
					touched, val = true, up.Value
				}
			}
			if touched {
				colUps = append(colUps, Entry{Index: int32(u), Value: val})
			}
		}
		sort.Slice(colUps, func(a, b int) bool { return colUps[a].Index < colUps[b].Index })
		var oldCol []Entry
		if i < m.numItems {
			oldCol = m.cols[i]
		}
		newCol := mergeCol(oldCol, colUps)
		out.cols[i] = newCol
		var sum float64
		for _, e := range newCol {
			sum += e.Value
		}
		out.itemMean[i] = sum / float64(len(newCol))
	}

	// nnz and the global mean: re-accumulated over the full matrix in
	// row-major order, the exact iteration order of Builder.Build. The
	// O(nnz) pass is pure arithmetic over shared rows — no allocation, no
	// sorting — and is what keeps the incremental global mean bit-equal
	// to a full rebuild's.
	var total float64
	nnz := 0
	for u := 0; u < numUsers; u++ {
		row := out.rows[u]
		nnz += len(row)
		for _, e := range row {
			total += e.Value
		}
	}
	out.nnz = nnz
	if nnz > 0 {
		out.global = total / float64(nnz)
	}
	return out, true, nil
}

// mergeRow merges a sorted row with a user's updates (batch order, last
// write per item wins) into a new sorted row, carrying timestamps along
// when the matrix stores them.
func mergeRow(oldRow []Entry, oldTimes []int64, ups []Upsert, hasTimes bool) ([]Entry, []int64) {
	// Collapse the updates to one (item → value, time) each, then sort.
	type cell struct {
		item int32
		val  float64
		ts   int64
	}
	last := make(map[int32]cell, len(ups))
	for _, up := range ups {
		last[int32(up.Item)] = cell{item: int32(up.Item), val: up.Value, ts: up.Time}
	}
	cells := make([]cell, 0, len(last))
	for _, c := range last {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].item < cells[b].item })

	row := make([]Entry, 0, len(oldRow)+len(cells))
	var times []int64
	if hasTimes {
		times = make([]int64, 0, len(oldRow)+len(cells))
	}
	i, j := 0, 0
	for i < len(oldRow) || j < len(cells) {
		switch {
		case j >= len(cells) || (i < len(oldRow) && oldRow[i].Index < cells[j].item):
			row = append(row, oldRow[i])
			if hasTimes {
				times = append(times, oldTimes[i])
			}
			i++
		case i >= len(oldRow) || cells[j].item < oldRow[i].Index:
			row = append(row, Entry{Index: cells[j].item, Value: cells[j].val})
			if hasTimes {
				times = append(times, cells[j].ts)
			}
			j++
		default: // update overwrites the existing cell
			row = append(row, Entry{Index: cells[j].item, Value: cells[j].val})
			if hasTimes {
				times = append(times, cells[j].ts)
			}
			i++
			j++
		}
	}
	return row, times
}

// mergeCol merges a sorted column with sorted per-user upserts.
func mergeCol(oldCol, ups []Entry) []Entry {
	col := make([]Entry, 0, len(oldCol)+len(ups))
	i, j := 0, 0
	for i < len(oldCol) || j < len(ups) {
		switch {
		case j >= len(ups) || (i < len(oldCol) && oldCol[i].Index < ups[j].Index):
			col = append(col, oldCol[i])
			i++
		case i >= len(oldCol) || ups[j].Index < oldCol[i].Index:
			col = append(col, ups[j])
			j++
		default:
			col = append(col, ups[j])
			i++
			j++
		}
	}
	return col
}
