package ratings

import (
	"fmt"
	"sort"
)

// Target is one held-out rating an evaluation must predict.
type Target struct {
	User   int // user id in the split matrix's coordinate space
	Item   int
	Actual float64
}

// GivenNSplit is the evaluation protocol of the CFSF paper (§V-A): the
// observable matrix contains the full rows of the training users plus only
// the first N ("given") ratings of each test user; every remaining rating
// of a test user is a prediction target.
type GivenNSplit struct {
	// Matrix is the observable item–user matrix: training users first
	// (rows 0..len(TrainUsers)-1) followed by test users with only their
	// given ratings.
	Matrix *Matrix
	// TestUsers lists the test users' row ids inside Matrix.
	TestUsers []int
	// Targets are the held-out ratings to predict.
	Targets []Target
	// Given is the number of revealed ratings per test user.
	Given int
}

// NewGivenN builds a split from the full matrix. trainUsers and testUsers
// are row ids in full; they must be disjoint. For each test user the first
// `given` ratings (in item-id order, deterministic) are revealed and the
// rest become targets. A test user with <= given ratings contributes all
// ratings as given and no targets.
func NewGivenN(full *Matrix, trainUsers, testUsers []int, given int) (*GivenNSplit, error) {
	if given < 0 {
		return nil, fmt.Errorf("ratings: given must be >= 0, got %d", given)
	}
	seen := make(map[int]bool, len(trainUsers))
	for _, u := range trainUsers {
		if u < 0 || u >= full.NumUsers() {
			return nil, fmt.Errorf("ratings: train user %d out of range", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("ratings: duplicate train user %d", u)
		}
		seen[u] = true
	}
	for _, u := range testUsers {
		if u < 0 || u >= full.NumUsers() {
			return nil, fmt.Errorf("ratings: test user %d out of range", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("ratings: user %d in both train and test", u)
		}
		seen[u] = true
	}

	b := NewBuilder(len(trainUsers)+len(testUsers), full.NumItems())
	b.SetScale(full.MinRating(), full.MaxRating())
	add := func(nu int, fullUser, k int, e Entry) {
		if times := full.UserRatingTimes(fullUser); times != nil {
			if err := b.AddWithTime(nu, int(e.Index), e.Value, times[k]); err != nil {
				panic(err)
			}
			return
		}
		b.MustAdd(nu, int(e.Index), e.Value)
	}
	for nu, u := range trainUsers {
		for k, e := range full.UserRatings(u) {
			add(nu, u, k, e)
		}
	}
	split := &GivenNSplit{Given: given}
	for k, u := range testUsers {
		nu := len(trainUsers) + k
		split.TestUsers = append(split.TestUsers, nu)
		row := full.UserRatings(u)
		for j, e := range row {
			if j < given {
				add(nu, u, j, e)
			} else {
				split.Targets = append(split.Targets, Target{User: nu, Item: int(e.Index), Actual: e.Value})
			}
		}
	}
	split.Matrix = b.Build()
	return split, nil
}

// MLSplit reproduces the paper's MovieLens protocol: the first nTrain
// users form the training set (ML_100/200/300) and the last nTest users
// form the test set, revealing `given` ratings each.
func MLSplit(full *Matrix, nTrain, nTest, given int) (*GivenNSplit, error) {
	if nTrain+nTest > full.NumUsers() {
		return nil, fmt.Errorf("ratings: nTrain+nTest = %d exceeds %d users", nTrain+nTest, full.NumUsers())
	}
	train := make([]int, nTrain)
	for i := range train {
		train[i] = i
	}
	test := make([]int, nTest)
	for i := range test {
		test[i] = full.NumUsers() - nTest + i
	}
	return NewGivenN(full, train, test, given)
}

// TruncateTargets returns a copy of the split keeping only targets whose
// user is among the first `frac` fraction of test users (used by the
// Fig. 5 scalability experiment, which grows the testset from 10% to
// 100%). frac is clamped to [0,1].
func (s *GivenNSplit) TruncateTargets(frac float64) *GivenNSplit {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(s.TestUsers))*frac + 0.5)
	keep := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		keep[s.TestUsers[i]] = true
	}
	out := &GivenNSplit{Matrix: s.Matrix, Given: s.Given}
	out.TestUsers = append(out.TestUsers, s.TestUsers[:n]...)
	for _, t := range s.Targets {
		if keep[t.User] {
			out.Targets = append(out.Targets, t)
		}
	}
	return out
}

// MLSplitByTime is the temporal variant of MLSplit: for each test user
// the `given` *earliest* ratings (by timestamp) are revealed and the
// later ratings become targets — the protocol for evaluating
// time-decayed models, where the task is predicting a user's future from
// their past. It requires a matrix with timestamps.
func MLSplitByTime(full *Matrix, nTrain, nTest, given int) (*GivenNSplit, error) {
	if !full.HasTimes() {
		return nil, fmt.Errorf("ratings: MLSplitByTime needs a matrix with timestamps")
	}
	if nTrain+nTest > full.NumUsers() {
		return nil, fmt.Errorf("ratings: nTrain+nTest = %d exceeds %d users", nTrain+nTest, full.NumUsers())
	}
	if given < 0 {
		return nil, fmt.Errorf("ratings: given must be >= 0, got %d", given)
	}

	b := NewBuilder(nTrain+nTest, full.NumItems())
	b.SetScale(full.MinRating(), full.MaxRating())
	for nu := 0; nu < nTrain; nu++ {
		times := full.UserRatingTimes(nu)
		for k, e := range full.UserRatings(nu) {
			if err := b.AddWithTime(nu, int(e.Index), e.Value, times[k]); err != nil {
				return nil, err
			}
		}
	}
	split := &GivenNSplit{Given: given}
	for k := 0; k < nTest; k++ {
		u := full.NumUsers() - nTest + k
		nu := nTrain + k
		split.TestUsers = append(split.TestUsers, nu)
		row := full.UserRatings(u)
		times := full.UserRatingTimes(u)
		// Order this user's ratings by timestamp (stable on ties).
		idx := make([]int, len(row))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
		for rank, ri := range idx {
			e := row[ri]
			if rank < given {
				if err := b.AddWithTime(nu, int(e.Index), e.Value, times[ri]); err != nil {
					return nil, err
				}
			} else {
				split.Targets = append(split.Targets, Target{User: nu, Item: int(e.Index), Actual: e.Value})
			}
		}
	}
	split.Matrix = b.Build()
	return split, nil
}
