package ratings

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Matrix {
	t.Helper()
	b := NewBuilder(3, 4)
	// user 0: items 0,1; user 1: items 1,2,3; user 2: nothing
	for _, tr := range []struct {
		u, i int
		r    float64
	}{
		{0, 0, 4}, {0, 1, 2},
		{1, 1, 5}, {1, 2, 3}, {1, 3, 1},
	} {
		if err := b.Add(tr.u, tr.i, tr.r); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestMatrixBasics(t *testing.T) {
	m := buildSmall(t)
	if m.NumUsers() != 3 || m.NumItems() != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", m.NumUsers(), m.NumItems())
	}
	if m.NumRatings() != 5 {
		t.Errorf("NumRatings = %d, want 5", m.NumRatings())
	}
	if got, want := m.Density(), 5.0/12.0; !close(got, want) {
		t.Errorf("Density = %g, want %g", got, want)
	}
	if got, want := m.AvgRatingsPerUser(), 5.0/3.0; !close(got, want) {
		t.Errorf("AvgRatingsPerUser = %g, want %g", got, want)
	}
	if m.MinRating() != 1 || m.MaxRating() != 5 {
		t.Errorf("scale = [%g,%g], want [1,5]", m.MinRating(), m.MaxRating())
	}
}

func TestMatrixRatingLookup(t *testing.T) {
	m := buildSmall(t)
	if r, ok := m.Rating(0, 1); !ok || r != 2 {
		t.Errorf("Rating(0,1) = %g,%v, want 2,true", r, ok)
	}
	if r, ok := m.Rating(1, 3); !ok || r != 1 {
		t.Errorf("Rating(1,3) = %g,%v, want 1,true", r, ok)
	}
	if _, ok := m.Rating(0, 2); ok {
		t.Error("Rating(0,2) must be missing")
	}
	if _, ok := m.Rating(2, 0); ok {
		t.Error("Rating(2,0) must be missing for empty user")
	}
}

func TestMatrixMeans(t *testing.T) {
	m := buildSmall(t)
	if got := m.UserMean(0); !close(got, 3) {
		t.Errorf("UserMean(0) = %g, want 3", got)
	}
	if got := m.UserMean(1); !close(got, 3) {
		t.Errorf("UserMean(1) = %g, want 3", got)
	}
	global := (4.0 + 2 + 5 + 3 + 1) / 5
	if got := m.GlobalMean(); !close(got, global) {
		t.Errorf("GlobalMean = %g, want %g", got, global)
	}
	// Empty user falls back to the global mean.
	if got := m.UserMean(2); !close(got, global) {
		t.Errorf("UserMean(empty) = %g, want global %g", got, global)
	}
	if got := m.ItemMean(1); !close(got, 3.5) {
		t.Errorf("ItemMean(1) = %g, want 3.5", got)
	}
	if got := m.ItemMean(0); !close(got, 4) {
		t.Errorf("ItemMean(0) = %g, want 4", got)
	}
}

func TestMatrixRowsAndColsSorted(t *testing.T) {
	m := buildSmall(t)
	for u := 0; u < m.NumUsers(); u++ {
		row := m.UserRatings(u)
		for i := 1; i < len(row); i++ {
			if row[i-1].Index >= row[i].Index {
				t.Fatalf("user %d row not strictly sorted: %v", u, row)
			}
		}
	}
	for i := 0; i < m.NumItems(); i++ {
		col := m.ItemRatings(i)
		for j := 1; j < len(col); j++ {
			if col[j-1].Index >= col[j].Index {
				t.Fatalf("item %d col not strictly sorted: %v", i, col)
			}
		}
	}
}

func TestBuilderDuplicateKeepsLast(t *testing.T) {
	b := NewBuilder(1, 1)
	b.MustAdd(0, 0, 2)
	b.MustAdd(0, 0, 5)
	m := b.Build()
	if m.NumRatings() != 1 {
		t.Fatalf("NumRatings = %d, want 1 after dedup", m.NumRatings())
	}
	if r, _ := m.Rating(0, 0); r != 5 {
		t.Errorf("Rating = %g, want last value 5", r)
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(2, 2)
	if err := b.Add(2, 0, 3); err == nil {
		t.Error("user out of range must error")
	}
	if err := b.Add(-1, 0, 3); err == nil {
		t.Error("negative user must error")
	}
	if err := b.Add(0, 2, 3); err == nil {
		t.Error("item out of range must error")
	}
	if err := b.Add(0, 0, math.NaN()); err == nil {
		t.Error("NaN rating must error")
	}
	if err := b.Add(0, 0, math.Inf(1)); err == nil {
		t.Error("Inf rating must error")
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(1, 2)
	b.MustAdd(0, 0, 3)
	m1 := b.Build()
	b.MustAdd(0, 1, 4)
	m2 := b.Build()
	if m1.NumRatings() != 1 {
		t.Errorf("first build mutated: %d ratings", m1.NumRatings())
	}
	if m2.NumRatings() != 2 {
		t.Errorf("second build = %d ratings, want 2", m2.NumRatings())
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewBuilder(2, 3).Build()
	if m.NumRatings() != 0 || m.Density() != 0 || m.GlobalMean() != 0 {
		t.Error("empty matrix must report zeros")
	}
	if _, ok := m.Rating(0, 0); ok {
		t.Error("empty matrix has no ratings")
	}
}

func TestSubsetUsers(t *testing.T) {
	m := buildSmall(t)
	sub := m.SubsetUsers([]int{1, 2})
	if sub.NumUsers() != 2 || sub.NumItems() != 4 {
		t.Fatalf("subset dims %d×%d, want 2×4", sub.NumUsers(), sub.NumItems())
	}
	if sub.NumRatings() != 3 {
		t.Errorf("subset ratings = %d, want 3", sub.NumRatings())
	}
	if r, ok := sub.Rating(0, 2); !ok || r != 3 {
		t.Errorf("subset Rating(0,2) = %g,%v, want 3,true (renumbered user 1)", r, ok)
	}
}

func TestCoRatedItems(t *testing.T) {
	m := buildSmall(t)
	var items []int32
	m.CoRatedItems(0, 1, func(i int32, ra, rb float64) {
		items = append(items, i)
		if i == 1 && (ra != 2 || rb != 5) {
			t.Errorf("item 1 values = %g,%g, want 2,5", ra, rb)
		}
	})
	if len(items) != 1 || items[0] != 1 {
		t.Errorf("co-rated items = %v, want [1]", items)
	}
}

func TestCoRatingUsers(t *testing.T) {
	m := buildSmall(t)
	n := 0
	m.CoRatingUsers(1, 2, func(u int32, ra, rb float64) {
		n++
		if u != 1 || ra != 5 || rb != 3 {
			t.Errorf("co-rating user %d values %g,%g, want user 1: 5,3", u, ra, rb)
		}
	})
	if n != 1 {
		t.Errorf("co-rating users count = %d, want 1", n)
	}
}

// Property: Rating(u,i) agrees with a map built from the same triples, and
// row/col views are consistent with each other.
func TestMatrixConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 1+rng.Intn(20), 1+rng.Intn(20)
		b := NewBuilder(p, q)
		ref := map[[2]int]float64{}
		n := rng.Intn(150)
		for k := 0; k < n; k++ {
			u, i := rng.Intn(p), rng.Intn(q)
			r := float64(1 + rng.Intn(5))
			b.MustAdd(u, i, r)
			ref[[2]int{u, i}] = r
		}
		m := b.Build()
		if m.NumRatings() != len(ref) {
			return false
		}
		for u := 0; u < p; u++ {
			for i := 0; i < q; i++ {
				want, ok := ref[[2]int{u, i}]
				got, gok := m.Rating(u, i)
				if ok != gok || (ok && got != want) {
					return false
				}
			}
		}
		// Column view must contain exactly the same cells.
		cells := 0
		for i := 0; i < q; i++ {
			for _, e := range m.ItemRatings(i) {
				if ref[[2]int{int(e.Index), i}] != e.Value {
					return false
				}
				cells++
			}
		}
		return cells == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDuplicateKeepsLatestTimestamp(t *testing.T) {
	b := NewBuilder(1, 2)
	if err := b.AddWithTime(0, 0, 2, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWithTime(0, 0, 5, 200); err != nil {
		t.Fatal(err)
	}
	b.MustAdd(0, 1, 3) // untimed rating in a timed matrix
	m := b.Build()
	if !m.HasTimes() {
		t.Fatal("matrix should carry timestamps")
	}
	if r, _ := m.Rating(0, 0); r != 5 {
		t.Fatalf("value = %g, want latest 5", r)
	}
	if ts, ok := m.RatingTime(0, 0); !ok || ts != 200 {
		t.Fatalf("timestamp = %d,%v, want 200 (paired with the latest value)", ts, ok)
	}
	if ts, ok := m.RatingTime(0, 1); !ok || ts != 0 {
		t.Fatalf("untimed rating timestamp = %d,%v, want 0,true", ts, ok)
	}
	if _, ok := m.RatingTime(0, 5); ok {
		t.Error("RatingTime on out-of-row item must report missing")
	}
}

func TestMaxTime(t *testing.T) {
	b := NewBuilder(2, 2)
	if err := b.AddWithTime(0, 0, 3, 500); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWithTime(1, 1, 4, 900); err != nil {
		t.Fatal(err)
	}
	if got := b.Build().MaxTime(); got != 900 {
		t.Fatalf("MaxTime = %d, want 900", got)
	}
	if got := NewBuilder(1, 1).Build().MaxTime(); got != 0 {
		t.Fatalf("untimed MaxTime = %d, want 0", got)
	}
}
