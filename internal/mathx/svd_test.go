package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// lowRank builds A = sum_k s_k u_k v_k^T with orthogonal-ish random
// factors for ground truth.
func lowRank(rows, cols int, s []float64, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	u := NewDense(rows, len(s))
	v := NewDense(cols, len(s))
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	orthonormalize(u)
	orthonormalize(v)
	a := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var x float64
			for k := range s {
				x += s[k] * u.At(i, k) * v.At(j, k)
			}
			a.Set(i, j, x)
		}
	}
	return a
}

func TestTruncatedSVDRecoversLowRank(t *testing.T) {
	s := []float64{9, 5, 2}
	a := lowRank(30, 20, s, 3)
	res, err := TruncatedSVD(a, 3, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range s {
		if math.Abs(res.S[k]-want) > 1e-6 {
			t.Errorf("singular value %d = %g, want %g", k, res.S[k], want)
		}
	}
	// Reconstruction must match A entrywise.
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(res.Reconstruct(i, j)-a.At(i, j)) > 1e-6 {
				t.Fatalf("reconstruction (%d,%d) = %g, want %g", i, j, res.Reconstruct(i, j), a.At(i, j))
			}
		}
	}
}

func TestTruncatedSVDOrthonormalColumns(t *testing.T) {
	a := lowRank(25, 15, []float64{7, 4, 1.5, 0.5}, 9)
	res, err := TruncatedSVD(a, 4, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkOrtho := func(m *Dense, name string) {
		for p := 0; p < m.Cols; p++ {
			for q := 0; q < m.Cols; q++ {
				var dot float64
				for i := 0; i < m.Rows; i++ {
					dot += m.At(i, p) * m.At(i, q)
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					t.Fatalf("%s columns %d,%d dot = %g, want %g", name, p, q, dot, want)
				}
			}
		}
	}
	checkOrtho(res.U, "U")
	checkOrtho(res.V, "V")
}

func TestTruncatedSVDSortedDescending(t *testing.T) {
	a := lowRank(20, 20, []float64{3, 8, 1, 5}, 11) // unsorted input spectrum
	res, err := TruncatedSVD(a, 4, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(res.S); k++ {
		if res.S[k-1] < res.S[k]-1e-9 {
			t.Fatalf("singular values not descending: %v", res.S)
		}
	}
}

func TestTruncatedSVDBestApproximation(t *testing.T) {
	// Rank-1 truncation of a rank-2 matrix keeps the dominant component:
	// Frobenius error equals the dropped singular value.
	a := lowRank(15, 10, []float64{6, 2}, 17)
	res, err := TruncatedSVD(a, 1, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	var frob float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			d := a.At(i, j) - res.Reconstruct(i, j)
			frob += d * d
		}
	}
	if got := math.Sqrt(frob); math.Abs(got-2) > 1e-6 {
		t.Errorf("rank-1 residual %g, want 2 (the dropped σ)", got)
	}
}

func TestTruncatedSVDValidation(t *testing.T) {
	a := NewDense(4, 3)
	if _, err := TruncatedSVD(a, 0, 10, 1); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := TruncatedSVD(a, 4, 10, 1); err == nil {
		t.Error("k > min dim must error")
	}
}

func TestDenseAccessors(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 7)
	if d.At(1, 2) != 7 || d.At(0, 0) != 0 {
		t.Error("Dense accessors broken")
	}
}
