package mathx

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a minimal row-major dense matrix used by the SVD routine and
// the SVD-based CF baseline.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// SVDResult is a rank-k truncated singular value decomposition
// A ≈ U · diag(S) · Vᵀ with U (rows×k) and V (cols×k) having
// orthonormal columns and S sorted descending.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// TruncatedSVD computes a rank-k truncated SVD of a by subspace
// (orthogonal) iteration: alternately project through A and Aᵀ with QR
// re-orthonormalisation. iters ≈ 30 suffices for the well-separated
// spectra CF matrices have; the run is deterministic for a fixed seed.
func TruncatedSVD(a *Dense, k, iters int, seed int64) (SVDResult, error) {
	if k <= 0 || k > a.Rows || k > a.Cols {
		return SVDResult{}, fmt.Errorf("mathx: rank %d out of range for %d×%d", k, a.Rows, a.Cols)
	}
	if iters <= 0 {
		iters = 30
	}
	rng := rand.New(rand.NewSource(seed))

	v := NewDense(a.Cols, k)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	orthonormalize(v)

	u := NewDense(a.Rows, k)
	for it := 0; it < iters; it++ {
		mul(a, v, u)      // U <- A V
		orthonormalize(u) // QR
		mulT(a, u, v)     // V <- Aᵀ U
		orthonormalize(v) // QR
	}
	mul(a, v, u) // final unnormalised U carries the singular values

	s := make([]float64, k)
	for j := 0; j < k; j++ {
		var ss float64
		for i := 0; i < a.Rows; i++ {
			ss += u.At(i, j) * u.At(i, j)
		}
		s[j] = math.Sqrt(ss)
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := 0; i < a.Rows; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}

	// Sort components by descending singular value (subspace iteration
	// usually returns them sorted, but ties and round-off can swap).
	order := ArgsortDesc(s)
	res := SVDResult{U: NewDense(a.Rows, k), S: make([]float64, k), V: NewDense(a.Cols, k)}
	for newJ, oldJ := range order {
		res.S[newJ] = s[oldJ]
		for i := 0; i < a.Rows; i++ {
			res.U.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < a.Cols; i++ {
			res.V.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return res, nil
}

// Reconstruct returns the rank-k approximation entry (i, j).
func (r SVDResult) Reconstruct(i, j int) float64 {
	var v float64
	for c := range r.S {
		v += r.U.At(i, c) * r.S[c] * r.V.At(j, c)
	}
	return v
}

// mul computes dst = a · b for b, dst with k columns.
func mul(a, b, dst *Dense) {
	k := b.Cols
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		out := dst.Data[i*k : (i+1)*k]
		for c := 0; c < k; c++ {
			out[c] = 0
		}
		for j, av := range row {
			if av == 0 {
				continue
			}
			brow := b.Data[j*k : (j+1)*k]
			for c := 0; c < k; c++ {
				out[c] += av * brow[c]
			}
		}
	}
}

// mulT computes dst = aᵀ · b for b with k columns (dst is cols×k).
func mulT(a, b, dst *Dense) {
	k := b.Cols
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := b.Data[i*k : (i+1)*k]
		for j, av := range row {
			if av == 0 {
				continue
			}
			out := dst.Data[j*k : (j+1)*k]
			for c := 0; c < k; c++ {
				out[c] += av * brow[c]
			}
		}
	}
}

// orthonormalize runs modified Gram-Schmidt on the columns of m.
// Columns that collapse to zero norm are replaced by zero vectors.
func orthonormalize(m *Dense) {
	rows, cols := m.Rows, m.Cols
	for j := 0; j < cols; j++ {
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < rows; i++ {
				dot += m.At(i, j) * m.At(i, p)
			}
			for i := 0; i < rows; i++ {
				m.Set(i, j, m.At(i, j)-dot*m.At(i, p))
			}
		}
		var ss float64
		for i := 0; i < rows; i++ {
			ss += m.At(i, j) * m.At(i, j)
		}
		n := math.Sqrt(ss)
		if n < 1e-12 {
			for i := 0; i < rows; i++ {
				m.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / n
		for i := 0; i < rows; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
}
