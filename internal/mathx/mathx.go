// Package mathx provides small numeric helpers shared by the CFSF
// implementation: clamping, running statistics, top-k selection and
// co-iteration over sorted sparse vectors.
package mathx

import (
	"math"
	"slices"
	"sort"
)

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Welford accumulates mean and variance in a single numerically stable pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Scored is a generic (index, score) pair used for ranking.
type Scored struct {
	Index int32
	Score float64
}

// TopK keeps the k highest-scored items pushed into it. It is a bounded
// min-heap: O(n log k) for n pushes. The zero value is not usable; create
// one with NewTopK.
type TopK struct {
	k    int
	heap []Scored // min-heap on Score
}

// NewTopK returns a TopK that retains the k largest scores.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	return &TopK{k: k, heap: make([]Scored, 0, k)}
}

// Push offers one candidate to the heap.
func (t *TopK) Push(index int32, score float64) {
	if t.k == 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Scored{index, score})
		t.up(len(t.heap) - 1)
		return
	}
	if score <= t.heap[0].Score {
		return
	}
	t.heap[0] = Scored{index, score}
	t.down(0)
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return len(t.heap) }

// Reset empties the heap and sets a new retention bound. It keeps the
// backing array, which lets callers pool a TopK across requests instead
// of allocating one per call.
func (t *TopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.heap = t.heap[:0]
}

// Sorted returns the retained items ordered by descending score, breaking
// ties by ascending index so results are deterministic.
func (t *TopK) Sorted() []Scored {
	return t.AppendSorted(nil)
}

// AppendSorted appends the retained items to dst in the same order
// Sorted uses (score descending, ties by ascending index) and returns
// the extended slice. With a pooled dst it is the allocation-free form
// of Sorted.
func (t *TopK) AppendSorted(dst []Scored) []Scored {
	n := len(dst)
	dst = append(dst, t.heap...)
	SortScoredDesc(dst[n:])
	return dst
}

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.heap[p].Score <= t.heap[i].Score {
			break
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && t.heap[l].Score < t.heap[s].Score {
			s = l
		}
		if r < n && t.heap[r].Score < t.heap[s].Score {
			s = r
		}
		if s == i {
			return
		}
		t.heap[i], t.heap[s] = t.heap[s], t.heap[i]
		i = s
	}
}

// Precedes reports whether a ranks strictly before b in the canonical
// ranking order: higher score first, ties broken by ascending index.
// Every ranked list in the repo (GIS neighbour lists, like-minded
// selections, recommendations) uses this total order so that equal
// inputs always produce bit-identical rankings.
func Precedes(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// SortScoredDesc sorts list in place into the canonical ranking order
// (score descending, ties by ascending index).
func SortScoredDesc(list []Scored) {
	slices.SortFunc(list, func(a, b Scored) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return int(a.Index - b.Index)
	})
}

// SortScoredByIndex sorts list in place by ascending index. Rankings
// re-sorted this way support binary search and linear merges against
// other id-sorted rows.
func SortScoredByIndex(list []Scored) {
	slices.SortFunc(list, func(a, b Scored) int { return int(a.Index - b.Index) })
}

// SelectTopScored returns the top-n entries of list in the canonical
// ranking order, exactly as if the whole list had been sorted with
// SortScoredDesc and truncated; n <= 0 means unbounded (full sort).
// For n << len(list) the bounded-heap selection is O(len·log n) instead
// of O(len·log len). list is not modified; the result is freshly
// allocated.
func SelectTopScored(list []Scored, n int) []Scored {
	if n <= 0 || len(list) <= n {
		out := make([]Scored, len(list))
		copy(out, list)
		SortScoredDesc(out)
		return out
	}
	// Bounded selection keeping the n best under Precedes; the heap keeps
	// the *worst* retained entry at the root so it can be evicted in O(log n).
	heap := make([]Scored, n)
	copy(heap, list[:n])
	for i := n/2 - 1; i >= 0; i-- {
		siftWorstDown(heap, i)
	}
	for _, e := range list[n:] {
		if Precedes(e, heap[0]) {
			heap[0] = e
			siftWorstDown(heap, 0)
		}
	}
	SortScoredDesc(heap)
	return heap
}

// siftWorstDown restores the "worst retained entry at the root" heap
// property under the Precedes order, starting from position i.
func siftWorstDown(heap []Scored, i int) {
	n := len(heap)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && Precedes(heap[w], heap[l]) {
			w = l
		}
		if r < n && Precedes(heap[w], heap[r]) {
			w = r
		}
		if w == i {
			return
		}
		heap[i], heap[w] = heap[w], heap[i]
		i = w
	}
}

// TopSelect streams candidates one Offer at a time and retains the k
// best under the canonical ranking order — the incremental form of
// SelectTopScored for callers that produce scores on the fly (e.g.
// Recommend). Unlike TopK it never drops score-ties, so its output is
// bit-for-bit the sorted-and-truncated ranking. The zero value is
// usable after Reset; Reset keeps the backing array so a TopSelect can
// live in a sync.Pool.
type TopSelect struct {
	k int
	h []Scored // once full: "worst retained at root" heap under Precedes
}

// Reset empties the selector and sets the retention bound to k.
func (t *TopSelect) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.h = t.h[:0]
}

// Offer submits one candidate.
func (t *TopSelect) Offer(index int32, score float64) {
	if t.k == 0 {
		return
	}
	e := Scored{index, score}
	if len(t.h) < t.k {
		t.h = append(t.h, e)
		if len(t.h) == t.k {
			for i := t.k/2 - 1; i >= 0; i-- {
				siftWorstDown(t.h, i)
			}
		}
		return
	}
	if Precedes(e, t.h[0]) {
		t.h[0] = e
		siftWorstDown(t.h, 0)
	}
}

// Len returns the number of retained candidates.
func (t *TopSelect) Len() int { return len(t.h) }

// AppendRanked appends the retained candidates to dst in the canonical
// ranking order and returns the extended slice. The selector still owns
// its internal state and may be Reset and reused afterwards.
func (t *TopSelect) AppendRanked(dst []Scored) []Scored {
	n := len(dst)
	dst = append(dst, t.h...)
	SortScoredDesc(dst[n:])
	return dst
}

// ArgsortDesc returns the indices of scores ordered by descending value,
// ties broken by ascending index.
func ArgsortDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return idx
}

// AlmostEqual reports whether a and b differ by no more than eps.
func AlmostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
