// Package mathx provides small numeric helpers shared by the CFSF
// implementation: clamping, running statistics, top-k selection and
// co-iteration over sorted sparse vectors.
package mathx

import (
	"math"
	"sort"
)

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Welford accumulates mean and variance in a single numerically stable pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Scored is a generic (index, score) pair used for ranking.
type Scored struct {
	Index int32
	Score float64
}

// TopK keeps the k highest-scored items pushed into it. It is a bounded
// min-heap: O(n log k) for n pushes. The zero value is not usable; create
// one with NewTopK.
type TopK struct {
	k    int
	heap []Scored // min-heap on Score
}

// NewTopK returns a TopK that retains the k largest scores.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	return &TopK{k: k, heap: make([]Scored, 0, k)}
}

// Push offers one candidate to the heap.
func (t *TopK) Push(index int32, score float64) {
	if t.k == 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Scored{index, score})
		t.up(len(t.heap) - 1)
		return
	}
	if score <= t.heap[0].Score {
		return
	}
	t.heap[0] = Scored{index, score}
	t.down(0)
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return len(t.heap) }

// Sorted returns the retained items ordered by descending score, breaking
// ties by ascending index so results are deterministic.
func (t *TopK) Sorted() []Scored {
	out := make([]Scored, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.heap[p].Score <= t.heap[i].Score {
			break
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && t.heap[l].Score < t.heap[s].Score {
			s = l
		}
		if r < n && t.heap[r].Score < t.heap[s].Score {
			s = r
		}
		if s == i {
			return
		}
		t.heap[i], t.heap[s] = t.heap[s], t.heap[i]
		i = s
	}
}

// ArgsortDesc returns the indices of scores ordered by descending value,
// ties broken by ascending index.
func ArgsortDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return idx
}

// AlmostEqual reports whether a and b differ by no more than eps.
func AlmostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
