package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		v, lo, hi, want float64
	}{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{1, 1, 5, 1},
		{5, 1, 5, 5},
		{3.2, 1, 5, 3.2},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		got := Clamp(v, 1, 5)
		return got >= 1 && got <= 5 && (v < 1 || v > 5 || got == v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(7, 0, 5); got != 5 {
		t.Errorf("ClampInt(7,0,5) = %d, want 5", got)
	}
	if got := ClampInt(-3, 0, 5); got != 0 {
		t.Errorf("ClampInt(-3,0,5) = %d, want 0", got)
	}
	if got := ClampInt(3, 0, 5); got != 3 {
		t.Errorf("ClampInt(3,0,5) = %d, want 3", got)
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs))
	if !AlmostEqual(w.Mean(), mean, 1e-9) {
		t.Errorf("mean %g, want %g", w.Mean(), mean)
	}
	if !AlmostEqual(w.Variance(), variance, 1e-9) {
		t.Errorf("variance %g, want %g", w.Variance(), variance)
	}
	if !AlmostEqual(w.StdDev(), math.Sqrt(variance), 1e-9) {
		t.Errorf("stddev %g, want %g", w.StdDev(), math.Sqrt(variance))
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("empty Welford must report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 {
		t.Errorf("single mean %g, want 42", w.Mean())
	}
	if w.Variance() != 0 {
		t.Errorf("single variance %g, want 0", w.Variance())
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	top := NewTopK(3)
	for i, s := range []float64{0.1, 0.9, 0.5, 0.7, 0.2, 0.8} {
		top.Push(int32(i), s)
	}
	got := top.Sorted()
	want := []Scored{{1, 0.9}, {5, 0.8}, {3, 0.7}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	top := NewTopK(10)
	top.Push(1, 0.5)
	top.Push(2, 0.9)
	got := top.Sorted()
	if len(got) != 2 || got[0].Index != 2 || got[1].Index != 1 {
		t.Errorf("got %v, want [{2 0.9} {1 0.5}]", got)
	}
}

func TestTopKZero(t *testing.T) {
	top := NewTopK(0)
	top.Push(1, 0.5)
	if top.Len() != 0 || len(top.Sorted()) != 0 {
		t.Error("TopK(0) must retain nothing")
	}
	neg := NewTopK(-5)
	neg.Push(1, 0.5)
	if neg.Len() != 0 {
		t.Error("TopK(-5) must retain nothing")
	}
}

func TestTopKTieBreaksByIndex(t *testing.T) {
	top := NewTopK(4)
	for _, idx := range []int32{9, 3, 7, 1} {
		top.Push(idx, 0.5)
	}
	got := top.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1].Index > got[i].Index {
			t.Errorf("ties must sort by ascending index: %v", got)
		}
	}
}

// TestTopKMatchesFullSort is a property test: TopK(k) over random input
// must equal the first k of a full descending sort.
func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + int(kRaw)%20
		scores := make([]float64, n)
		top := NewTopK(k)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*100) / 100 // force some ties
			top.Push(int32(i), scores[i])
		}
		ref := make([]Scored, n)
		for i := range ref {
			ref[i] = Scored{int32(i), scores[i]}
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].Score != ref[b].Score {
				return ref[a].Score > ref[b].Score
			}
			return ref[a].Index < ref[b].Index
		})
		if k > n {
			k = n
		}
		got := top.Sorted()
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			// Indices may differ on ties at the cut boundary; scores must
			// match exactly.
			if got[i].Score != ref[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArgsortDesc(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1, 0.9}
	got := ArgsortDesc(scores)
	want := []int{1, 3, 0, 2} // ties by ascending index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgsortDesc = %v, want %v", got, want)
		}
	}
}

func TestArgsortDescEmpty(t *testing.T) {
	if got := ArgsortDesc(nil); len(got) != 0 {
		t.Errorf("ArgsortDesc(nil) = %v, want empty", got)
	}
}
