package mathx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refRanked is the specification both selectors must match bit-for-bit:
// sort everything with SortScoredDesc and truncate. n < 0 means no
// truncation (SelectTopScored's unbounded case).
func refRanked(list []Scored, n int) []Scored {
	out := make([]Scored, len(list))
	copy(out, list)
	SortScoredDesc(out)
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func randScored(rng *rand.Rand, n int) []Scored {
	out := make([]Scored, n)
	for i := range out {
		// Coarse scores force plenty of ties so the Index tiebreak is
		// actually exercised.
		out[i] = Scored{Index: int32(rng.Intn(1000)), Score: float64(rng.Intn(8)) / 4}
	}
	return out
}

func sameScored(a, b []Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectTopScoredMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		list := randScored(r, rng.Intn(200))
		n := 1 + r.Intn(40)
		return sameScored(SelectTopScored(list, n), refRanked(list, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectTopScoredLargeNAndZero(t *testing.T) {
	list := []Scored{{3, 1}, {1, 1}, {2, 5}}
	if got := SelectTopScored(list, 10); !sameScored(got, refRanked(list, 10)) {
		t.Errorf("n>len: got %v", got)
	}
	if got := SelectTopScored(list, 0); !sameScored(got, refRanked(list, -1)) {
		t.Errorf("n<=0 (unbounded): got %v", got)
	}
}

func TestTopSelectMatchesFullSort(t *testing.T) {
	var sel TopSelect
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		list := randScored(r, r.Intn(200))
		n := r.Intn(40)
		sel.Reset(n) // reuse across iterations: Reset must fully clear state
		for _, e := range list {
			sel.Offer(e.Index, e.Score)
		}
		return sameScored(sel.AppendRanked(nil), refRanked(list, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopSelectAppendRankedAppends(t *testing.T) {
	var sel TopSelect
	sel.Reset(2)
	sel.Offer(5, 1)
	sel.Offer(6, 3)
	sel.Offer(7, 2)
	dst := []Scored{{0, 99}}
	got := sel.AppendRanked(dst)
	want := []Scored{{0, 99}, {6, 3}, {7, 2}}
	if !sameScored(got, want) {
		t.Errorf("AppendRanked = %v, want %v", got, want)
	}
}

func TestTopKResetAndAppendSorted(t *testing.T) {
	top := NewTopK(2)
	top.Push(1, 0.5)
	top.Push(2, 0.9)
	top.Push(3, 0.7)
	first := top.AppendSorted(nil)
	top.Reset(3)
	if top.Len() != 0 {
		t.Fatalf("Len after Reset = %d", top.Len())
	}
	top.Push(4, 0.1)
	top.Push(5, 0.2)
	second := top.Sorted()
	if !sameScored(first, []Scored{{2, 0.9}, {3, 0.7}}) {
		t.Errorf("first = %v", first)
	}
	if !sameScored(second, []Scored{{5, 0.2}, {4, 0.1}}) {
		t.Errorf("second = %v", second)
	}
}

func TestSortScoredByIndex(t *testing.T) {
	list := []Scored{{9, 1}, {2, 3}, {5, 2}}
	SortScoredByIndex(list)
	want := []Scored{{2, 3}, {5, 2}, {9, 1}}
	if !sameScored(list, want) {
		t.Errorf("SortScoredByIndex = %v, want %v", list, want)
	}
}

func TestPrecedesTotalOrder(t *testing.T) {
	a, b := Scored{1, 0.5}, Scored{2, 0.5}
	if !Precedes(a, b) || Precedes(b, a) {
		t.Error("tie must break by ascending index")
	}
	if !Precedes(Scored{9, 1}, Scored{1, 0.5}) {
		t.Error("higher score must precede")
	}
}
