package baselines

import (
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
)

// SIR is the traditional item-based CF baseline of Eq. 1: the prediction
// for (u, i) is the similarity-weighted average of u's ratings on the
// items most similar to i, with item–item PCC computed over the entire
// matrix at Fit time.
type SIR struct {
	// Neighborhood caps how many of i's most similar items that u has
	// rated enter the average (0 = all with positive similarity).
	Neighborhood int
	// MinCoRatings filters unreliable similarities (default 2).
	MinCoRatings int
	// Workers bounds Fit parallelism.
	Workers int

	m   *ratings.Matrix
	gis *similarity.GIS
}

// Fit precomputes the full item–item similarity lists.
func (s *SIR) Fit(m *ratings.Matrix) error {
	s.m = m
	minCo := s.MinCoRatings
	if minCo == 0 {
		minCo = 2
	}
	s.gis = similarity.BuildGIS(m, similarity.GISOptions{
		Metric:       similarity.PCC,
		TopN:         0, // keep every positive neighbour; Eq. 1 has no local reduction
		MinCoRatings: minCo,
		Workers:      s.Workers,
	})
	return nil
}

// Predict implements Eq. 1 with a fallback chain for cold cases.
func (s *SIR) Predict(u, i int) float64 {
	if !inRange(s.m, u, i) {
		return fallback(s.m, u, i)
	}
	var num, den float64
	used := 0
	for _, n := range s.gis.Neighbors(i) {
		if s.Neighborhood > 0 && used >= s.Neighborhood {
			break
		}
		r, ok := s.m.Rating(u, int(n.Index))
		if !ok {
			continue
		}
		num += n.Score * r
		den += n.Score
		used++
	}
	if den <= 0 {
		return fallback(s.m, u, i)
	}
	return clampTo(s.m, num/den)
}
