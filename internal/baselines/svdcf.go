package baselines

import (
	"fmt"

	"cfsf/internal/mathx"
	"cfsf/internal/ratings"
)

// SVDCF is the SVD-based dimensionality-reduction baseline (Sarwar,
// Karypis, Konstan, Riedl, "Application of Dimensionality Reduction in
// Recommender Systems", 2000) — the "reducing the dimensionality of
// data" family the paper's related work mentions. The sparse matrix is
// mean-filled and user-centred, a rank-k truncated SVD is computed, and
// predictions read the low-rank reconstruction re-anchored at the user
// mean.
type SVDCF struct {
	// Rank is the truncation rank k (Sarwar found k≈14 good; default 14).
	Rank int
	// Iterations bounds the subspace iteration (default 30).
	Iterations int
	// Seed drives the SVD initialisation.
	Seed int64

	m   *ratings.Matrix
	svd mathx.SVDResult
}

// NewSVDCF returns the baseline with Sarwar's published rank.
func NewSVDCF() *SVDCF { return &SVDCF{Rank: 14, Iterations: 30} }

// Fit mean-fills, centres and decomposes the matrix.
func (s *SVDCF) Fit(m *ratings.Matrix) error {
	if m.NumRatings() == 0 {
		return fmt.Errorf("svdcf: empty matrix")
	}
	s.m = m
	k := s.Rank
	if k <= 0 {
		k = 14
	}
	if k > m.NumUsers() {
		k = m.NumUsers()
	}
	if k > m.NumItems() {
		k = m.NumItems()
	}

	// Dense fill: observed cells keep their value, missing cells take
	// the item mean (Sarwar's choice); then centre every row on the user
	// mean so the SVD models preference deviations.
	dense := mathx.NewDense(m.NumUsers(), m.NumItems())
	for u := 0; u < m.NumUsers(); u++ {
		um := m.UserMean(u)
		row := m.UserRatings(u)
		j := 0
		for i := 0; i < m.NumItems(); i++ {
			var v float64
			if j < len(row) && int(row[j].Index) == i {
				v = row[j].Value
				j++
			} else {
				v = m.ItemMean(i)
			}
			dense.Set(u, i, v-um)
		}
	}
	svd, err := mathx.TruncatedSVD(dense, k, s.Iterations, s.Seed+7)
	if err != nil {
		return fmt.Errorf("svdcf: %w", err)
	}
	s.svd = svd
	return nil
}

// Predict reads the rank-k reconstruction plus the user mean.
func (s *SVDCF) Predict(u, i int) float64 {
	if !inRange(s.m, u, i) {
		return fallback(s.m, u, i)
	}
	return clampTo(s.m, s.m.UserMean(u)+s.svd.Reconstruct(u, i))
}
