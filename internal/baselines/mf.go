package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"cfsf/internal/ratings"
)

// MF is a regularised matrix-factorisation baseline trained by SGD, the
// family the paper's related work cites as "other CF work" ([1], [12],
// [20]): r̂(u,i) = μ + b_u + b_i + p_u·q_i. It is not part of the
// paper's Table III but gives the repository a modern latent-factor
// reference point for the extension experiments.
type MF struct {
	// Factors is the latent dimensionality (default 16).
	Factors int
	// Epochs is the number of SGD passes (default 60).
	Epochs int
	// LearningRate is the SGD step (default 0.007).
	LearningRate float64
	// Regularization is the L2 penalty on factors and biases
	// (default 0.05).
	Regularization float64
	// Seed drives factor initialisation and example shuffling.
	Seed int64

	m      *ratings.Matrix
	mu     float64
	bu, bi []float64
	p, q   [][]float64
}

// NewMF returns an MF baseline with defaults tuned for the synthetic
// MovieLens-scale dataset.
func NewMF() *MF {
	return &MF{Factors: 16, Epochs: 60, LearningRate: 0.007, Regularization: 0.05}
}

// Fit trains the factors by stochastic gradient descent.
func (f *MF) Fit(m *ratings.Matrix) error {
	if m.NumRatings() == 0 {
		return fmt.Errorf("mf: empty matrix")
	}
	f.m = m
	k := f.Factors
	if k <= 0 {
		k = 16
	}
	epochs := f.Epochs
	if epochs <= 0 {
		epochs = 60
	}
	lr := f.LearningRate
	if lr <= 0 {
		lr = 0.007
	}
	reg := f.Regularization
	if reg <= 0 {
		reg = 0.05
	}

	rng := rand.New(rand.NewSource(f.Seed + 42))
	nu, ni := m.NumUsers(), m.NumItems()
	f.mu = m.GlobalMean()
	f.bu = make([]float64, nu)
	f.bi = make([]float64, ni)
	f.p = make([][]float64, nu)
	f.q = make([][]float64, ni)
	scale := 1 / math.Sqrt(float64(k))
	for u := range f.p {
		f.p[u] = make([]float64, k)
		for d := range f.p[u] {
			f.p[u][d] = rng.NormFloat64() * 0.1 * scale
		}
	}
	for i := range f.q {
		f.q[i] = make([]float64, k)
		for d := range f.q[i] {
			f.q[i][d] = rng.NormFloat64() * 0.1 * scale
		}
	}

	// Flatten the training triples once; shuffle per epoch.
	type triple struct {
		u, i int32
		r    float64
	}
	data := make([]triple, 0, m.NumRatings())
	for u := 0; u < nu; u++ {
		for _, e := range m.UserRatings(u) {
			data = append(data, triple{int32(u), e.Index, e.Value})
		}
	}

	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(data), func(a, b int) { data[a], data[b] = data[b], data[a] })
		for _, t := range data {
			u, i := int(t.u), int(t.i)
			pu, qi := f.p[u], f.q[i]
			pred := f.mu + f.bu[u] + f.bi[i]
			for d := 0; d < k; d++ {
				pred += pu[d] * qi[d]
			}
			err := t.r - pred
			f.bu[u] += lr * (err - reg*f.bu[u])
			f.bi[i] += lr * (err - reg*f.bi[i])
			for d := 0; d < k; d++ {
				pud, qid := pu[d], qi[d]
				pu[d] += lr * (err*qid - reg*pud)
				qi[d] += lr * (err*pud - reg*qid)
			}
		}
	}
	return nil
}

// Predict returns μ + b_u + b_i + p_u·q_i clamped to the scale.
func (f *MF) Predict(u, i int) float64 {
	if !inRange(f.m, u, i) {
		return fallback(f.m, u, i)
	}
	pred := f.mu + f.bu[u] + f.bi[i]
	pu, qi := f.p[u], f.q[i]
	for d := range pu {
		pred += pu[d] * qi[d]
	}
	return clampTo(f.m, pred)
}
