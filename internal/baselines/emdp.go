package baselines

import (
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
)

// EMDP is the effective-missing-data-prediction baseline (Ma, King, Lyu,
// SIGIR '07): user-based and item-based components are combined, but a
// neighbour only participates if its significance-weighted PCC exceeds a
// threshold (η for users, θ for items); when neither side has confident
// neighbours the prediction falls back to the mean blend. This is the
// threshold-driven method the paper's related work criticises as
// "computer-intensive" to tune.
type EMDP struct {
	// Lambda balances the user-based against the item-based component
	// when both are available (default 0.7).
	Lambda float64
	// Eta is the user-similarity threshold (default 0.4).
	Eta float64
	// Theta is the item-similarity threshold (default 0.4).
	Theta float64
	// GammaUser and GammaItem are the significance-weighting supports
	// (Ma's γ=30 for users, δ=25 for items).
	GammaUser int
	GammaItem int
	// Workers bounds Fit parallelism.
	Workers int

	m     *ratings.Matrix
	gis   *similarity.GIS
	cache *userSimCache[[]float64]
}

// NewEMDP returns EMDP with thresholds re-tuned for the synthetic
// dataset (Ma et al. published η=θ=0.4, γ=30, δ=25 for MovieLens; on our
// sparser co-rating structure those filter out nearly every neighbour).
func NewEMDP() *EMDP {
	return &EMDP{Lambda: 0.7, Eta: 0.12, Theta: 0.12, GammaUser: 15, GammaItem: 25}
}

// Fit precomputes significance-weighted item similarities.
func (e *EMDP) Fit(m *ratings.Matrix) error {
	e.m = m
	e.gis = similarity.BuildGIS(m, similarity.GISOptions{
		Metric:            similarity.PCC,
		TopN:              0,
		MinCoRatings:      2,
		SignificanceGamma: e.GammaItem,
		Workers:           e.Workers,
	})
	e.cache = newUserSimCache[[]float64](m.NumUsers())
	return nil
}

func (e *EMDP) sims(u int) []float64 {
	return e.cache.get(u, func() []float64 {
		out := make([]float64, e.m.NumUsers())
		for v := 0; v < e.m.NumUsers(); v++ {
			if v == u {
				continue
			}
			sim, co := similarity.UserPCC(e.m, u, v)
			out[v] = similarity.Significance(sim, co, e.GammaUser)
		}
		return out
	})
}

// Predict combines the thresholded user- and item-based components.
func (e *EMDP) Predict(u, i int) float64 {
	if !inRange(e.m, u, i) {
		return fallback(e.m, u, i)
	}
	// User-based part: raters of i whose similarity exceeds η.
	usims := e.sims(u)
	var uNum, uDen float64
	for _, r := range e.m.ItemRatings(i) {
		sim := usims[r.Index]
		if sim <= e.Eta {
			continue
		}
		uNum += sim * (r.Value - e.m.UserMean(int(r.Index)))
		uDen += sim
	}
	hasUser := uDen > 0
	userPred := 0.0
	if hasUser {
		userPred = e.m.UserMean(u) + uNum/uDen
	}

	// Item-based part: items u rated whose similarity to i exceeds θ.
	var iNum, iDen float64
	for _, n := range e.gis.Neighbors(i) {
		if n.Score <= e.Theta {
			break // neighbours are sorted descending
		}
		r, ok := e.m.Rating(u, int(n.Index))
		if !ok {
			continue
		}
		iNum += n.Score * (r - e.m.ItemMean(int(n.Index)))
		iDen += n.Score
	}
	hasItem := iDen > 0
	itemPred := 0.0
	if hasItem {
		itemPred = e.m.ItemMean(i) + iNum/iDen
	}

	switch {
	case hasUser && hasItem:
		return clampTo(e.m, e.Lambda*userPred+(1-e.Lambda)*itemPred)
	case hasUser:
		return clampTo(e.m, userPred)
	case hasItem:
		return clampTo(e.m, itemPred)
	default:
		// Ma's fallback: blend of the user and item means.
		return clampTo(e.m, e.Lambda*e.m.UserMean(u)+(1-e.Lambda)*e.m.ItemMean(i))
	}
}
