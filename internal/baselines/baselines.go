// Package baselines implements the comparison CF algorithms of the
// paper's evaluation (Tables II and III), each from its primary source:
//
//	SIR    — item-based CF with PCC (Eq. 1; Sarwar et al. '01 style)
//	SUR    — user-based CF with PCC (Eq. 2; Resnick-style centring)
//	SF     — similarity fusion over the full matrix (Wang et al. '06)
//	SCBPCC — cluster-based smoothing CF (Xue et al. '05)
//	EMDP   — effective missing-data prediction (Ma et al. '07)
//	PD     — personality diagnosis (Pennock et al. '00)
//	AM     — latent aspect model trained by EM (Hofmann '04 style)
//
// Every predictor implements the eval.Predictor contract: Fit once, then
// concurrency-safe Predict.
package baselines

import (
	"sync/atomic"

	"cfsf/internal/mathx"
	"cfsf/internal/ratings"
)

// fallback is the shared cold-start chain: user mean, item mean, global
// mean, middle of the scale.
func fallback(m *ratings.Matrix, u, i int) float64 {
	if u >= 0 && u < m.NumUsers() && len(m.UserRatings(u)) > 0 {
		return m.UserMean(u)
	}
	if i >= 0 && i < m.NumItems() && len(m.ItemRatings(i)) > 0 {
		return m.ItemMean(i)
	}
	if g := m.GlobalMean(); g != 0 {
		return g
	}
	return (m.MinRating() + m.MaxRating()) / 2
}

func clampTo(m *ratings.Matrix, v float64) float64 {
	return mathx.Clamp(v, m.MinRating(), m.MaxRating())
}

func inRange(m *ratings.Matrix, u, i int) bool {
	return u >= 0 && u < m.NumUsers() && i >= 0 && i < m.NumItems()
}

// userSimCache lazily computes and caches a per-user value (typically a
// similarity vector) in a concurrency-safe way. Multiple goroutines may
// compute the same entry once; the first store wins and duplicates are
// discarded, which is harmless because the computation is deterministic.
type userSimCache[T any] struct {
	slots []atomic.Pointer[T]
}

func newUserSimCache[T any](n int) *userSimCache[T] {
	return &userSimCache[T]{slots: make([]atomic.Pointer[T], n)}
}

func (c *userSimCache[T]) get(u int, compute func() T) T {
	if p := c.slots[u].Load(); p != nil {
		return *p
	}
	v := compute()
	c.slots[u].CompareAndSwap(nil, &v)
	return *c.slots[u].Load()
}
