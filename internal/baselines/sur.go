package baselines

import (
	"cfsf/internal/mathx"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
)

// SUR is the traditional user-based CF baseline of Eq. 2: the prediction
// for (u, i) aggregates the ratings that the users most similar to u gave
// item i, with user–user PCC computed over the entire matrix. Similarity
// vectors are computed lazily per active user and cached, which is the
// memory-based behaviour the paper contrasts CFSF against (search over
// the whole matrix, no offline reduction).
type SUR struct {
	// Neighborhood caps how many positive-similarity raters of i are
	// used (0 = all).
	Neighborhood int
	// Centered selects the Resnick mean-centred aggregation (default
	// true via NewSUR); plain Eq. 2 weighted averaging is kept for
	// fidelity experiments.
	Centered bool
	// MinCoRatings filters similarities supported by fewer co-rated
	// items (default 2).
	MinCoRatings int

	m     *ratings.Matrix
	cache *userSimCache[[]float64]
}

// NewSUR returns a SUR baseline with the standard centred aggregation.
func NewSUR() *SUR { return &SUR{Centered: true} }

// Fit stores the matrix and resets the similarity cache.
func (s *SUR) Fit(m *ratings.Matrix) error {
	s.m = m
	s.cache = newUserSimCache[[]float64](m.NumUsers())
	return nil
}

// sims returns the PCC of user u against every user (0 for self and for
// pairs below the co-rating minimum).
func (s *SUR) sims(u int) []float64 {
	return s.cache.get(u, func() []float64 {
		minCo := s.MinCoRatings
		if minCo == 0 {
			minCo = 2
		}
		out := make([]float64, s.m.NumUsers())
		for v := 0; v < s.m.NumUsers(); v++ {
			if v == u {
				continue
			}
			sim, co := similarity.UserPCC(s.m, u, v)
			if co >= minCo {
				out[v] = sim
			}
		}
		return out
	})
}

// Predict implements Eq. 2 (optionally mean-centred).
func (s *SUR) Predict(u, i int) float64 {
	if !inRange(s.m, u, i) {
		return fallback(s.m, u, i)
	}
	sims := s.sims(u)

	// Rank the raters of i by similarity, keep the positive top-N.
	top := mathx.NewTopK(topOrAll(s.Neighborhood, len(s.m.ItemRatings(i))))
	for _, e := range s.m.ItemRatings(i) {
		if sim := sims[e.Index]; sim > 0 {
			top.Push(e.Index, sim)
		}
	}
	var num, den float64
	for _, n := range top.Sorted() {
		r, _ := s.m.Rating(int(n.Index), i)
		if s.Centered {
			num += n.Score * (r - s.m.UserMean(int(n.Index)))
		} else {
			num += n.Score * r
		}
		den += n.Score
	}
	if den <= 0 {
		return fallback(s.m, u, i)
	}
	if s.Centered {
		return clampTo(s.m, s.m.UserMean(u)+num/den)
	}
	return clampTo(s.m, num/den)
}

func topOrAll(n, all int) int {
	if n <= 0 || n > all {
		return all
	}
	return n
}
