package baselines

import (
	"math"

	"cfsf/internal/mathx"
	"cfsf/internal/ratings"
	"cfsf/internal/similarity"
)

// SF is the similarity-fusion baseline (Wang, de Vries, Reinders,
// SIGIR '06) as characterised by the paper: a UI-based method that fuses
// SIR, SUR and SUIR computed over the *entire* matrix — no clustering, no
// smoothing, no local reduction — which is why it is accurate but slow.
// Only observed ratings participate.
type SF struct {
	// TopItems / TopUsers bound the neighbourhoods entering the fusion.
	TopItems int
	TopUsers int
	// Lambda and Delta play the same roles as in Eq. 14.
	Lambda float64
	Delta  float64
	// MinCoRatings filters unreliable similarities.
	MinCoRatings int
	// Workers bounds Fit parallelism.
	Workers int

	m     *ratings.Matrix
	gis   *similarity.GIS
	cache *userSimCache[[]float64]
}

// NewSF returns SF with the configuration used in the paper's comparison.
func NewSF() *SF {
	return &SF{TopItems: 50, TopUsers: 50, Lambda: 0.7, Delta: 0.15, MinCoRatings: 2}
}

// Fit precomputes item similarities; user similarities are lazy.
func (s *SF) Fit(m *ratings.Matrix) error {
	s.m = m
	s.gis = similarity.BuildGIS(m, similarity.GISOptions{
		Metric:       similarity.PCC,
		TopN:         0,
		MinCoRatings: s.MinCoRatings,
		Workers:      s.Workers,
	})
	s.cache = newUserSimCache[[]float64](m.NumUsers())
	return nil
}

func (s *SF) sims(u int) []float64 {
	return s.cache.get(u, func() []float64 {
		out := make([]float64, s.m.NumUsers())
		for v := 0; v < s.m.NumUsers(); v++ {
			if v == u {
				continue
			}
			sim, co := similarity.UserPCC(s.m, u, v)
			if co >= s.MinCoRatings {
				out[v] = sim
			}
		}
		return out
	})
}

// Predict fuses the three full-matrix components.
func (s *SF) Predict(u, i int) float64 {
	if !inRange(s.m, u, i) {
		return fallback(s.m, u, i)
	}
	items := s.gis.Neighbors(i)
	if s.TopItems > 0 && len(items) > s.TopItems {
		items = items[:s.TopItems]
	}
	usims := s.sims(u)
	topUsers := mathx.NewTopK(topOrAll(s.TopUsers, len(s.m.ItemRatings(i))))
	for _, e := range s.m.ItemRatings(i) {
		if sim := usims[e.Index]; sim > 0 {
			topUsers.Push(e.Index, sim)
		}
	}
	users := topUsers.Sorted()

	// SIR over observed ratings of u on similar items.
	var sirNum, sirDen float64
	for _, n := range items {
		if r, ok := s.m.Rating(u, int(n.Index)); ok {
			sirNum += n.Score * r
			sirDen += n.Score
		}
	}
	// SUR (centred) over similar users' observed ratings of i.
	var surNum, surDen float64
	for _, n := range users {
		r, _ := s.m.Rating(int(n.Index), i)
		surNum += n.Score * (r - s.m.UserMean(int(n.Index)))
		surDen += n.Score
	}
	// SUIR over observed ratings of similar users on similar items,
	// pair-weighted as in Eq. 3/13.
	var suirNum, suirDen float64
	for _, un := range users {
		for _, in := range items {
			r, ok := s.m.Rating(int(un.Index), int(in.Index))
			if !ok {
				continue
			}
			d := math.Sqrt(in.Score*in.Score + un.Score*un.Score)
			if d == 0 {
				continue
			}
			w := in.Score * un.Score / d
			if w <= 0 {
				continue
			}
			suirNum += w * r
			suirDen += w
		}
	}

	wSIR := (1 - s.Delta) * (1 - s.Lambda)
	wSUR := (1 - s.Delta) * s.Lambda
	wSUIR := s.Delta
	var num, den float64
	if sirDen > 0 {
		num += wSIR * (sirNum / sirDen)
		den += wSIR
	}
	if surDen > 0 {
		num += wSUR * (s.m.UserMean(u) + surNum/surDen)
		den += wSUR
	}
	if suirDen > 0 {
		num += wSUIR * (suirNum / suirDen)
		den += wSUIR
	}
	if den == 0 {
		return fallback(s.m, u, i)
	}
	return clampTo(s.m, num/den)
}
