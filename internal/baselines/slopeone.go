package baselines

import (
	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// SlopeOne is the weighted Slope One predictor (Lemire & Maclachlan '05):
// for every item pair it learns the average rating difference over
// co-rating users, and predicts r̂(u,j) as the support-weighted average
// of r(u,i) + dev(j,i) over the items i the user rated. It is a classic
// cheap item-based scheme included as an extension reference point.
type SlopeOne struct {
	// MinSupport drops item pairs with fewer co-rating users (default 2).
	MinSupport int
	// Workers bounds Fit parallelism.
	Workers int

	m *ratings.Matrix
	// dev[j] maps co-rated item i -> (sum of r_j - r_i, count).
	dev []map[int32]devEntry
}

type devEntry struct {
	sum   float64
	count int32
}

// NewSlopeOne returns a SlopeOne baseline with default support.
func NewSlopeOne() *SlopeOne { return &SlopeOne{MinSupport: 2} }

// Fit accumulates pairwise deviations. The pass is parallel over target
// items: for item j, iterate its raters' rows, which visits each
// co-rating pair exactly once per direction.
func (s *SlopeOne) Fit(m *ratings.Matrix) error {
	s.m = m
	q := m.NumItems()
	s.dev = make([]map[int32]devEntry, q)
	minSup := s.MinSupport
	if minSup <= 0 {
		minSup = 2
	}
	parallel.For(q, s.Workers, func(j int) {
		acc := map[int32]devEntry{}
		for _, ue := range m.ItemRatings(j) {
			u := int(ue.Index)
			for _, ie := range m.UserRatings(u) {
				if int(ie.Index) == j {
					continue
				}
				e := acc[ie.Index]
				e.sum += ue.Value - ie.Value
				e.count++
				acc[ie.Index] = e
			}
		}
		for i, e := range acc {
			if int(e.count) < minSup {
				delete(acc, i)
			}
		}
		s.dev[j] = acc
	})
	return nil
}

// Predict implements weighted Slope One.
func (s *SlopeOne) Predict(u, j int) float64 {
	if !inRange(s.m, u, j) {
		return fallback(s.m, u, j)
	}
	devs := s.dev[j]
	var num, den float64
	for _, e := range s.m.UserRatings(u) {
		d, ok := devs[e.Index]
		if !ok {
			continue
		}
		c := float64(d.count)
		num += (e.Value + d.sum/c) * c
		den += c
	}
	if den == 0 {
		return fallback(s.m, u, j)
	}
	return clampTo(s.m, num/den)
}
