package baselines

import (
	"math"

	"cfsf/internal/cluster"
	"cfsf/internal/mathx"
	"cfsf/internal/ratings"
	"cfsf/internal/smoothing"
)

// SCBPCC is the cluster-based smoothing baseline (Xue et al., SIGIR '05):
// users are clustered, unrated cells are smoothed within each cluster
// (the same Eq. 7–8 strategy CFSF adopts), and prediction is user-based
// over smoothed data with original/smoothed ratings weighted differently.
//
// Faithful to the paper's critique ("it identifies the similar
// [neighbours] over the entire item-user matrix each time"), neighbour
// selection scores every user per prediction — there is no iCluster
// pre-selection and no per-user cache. That is precisely the scalability
// gap Fig. 5 measures between SCBPCC and CFSF.
type SCBPCC struct {
	// Clusters is the user-cluster count (default 30).
	Clusters int
	// K is the neighbourhood size (default 25).
	K int
	// OriginalWeight is the Eq. 11-style weight of an original rating
	// (default 0.8: originals are trusted more than smoothed fills).
	OriginalWeight float64
	// Seed drives K-means++.
	Seed int64
	// MaxIter caps K-means iterations.
	MaxIter int
	// Workers bounds Fit parallelism.
	Workers int

	m  *ratings.Matrix
	sm *smoothing.Smoother
}

// NewSCBPCC returns SCBPCC with the defaults used in the comparison.
func NewSCBPCC() *SCBPCC {
	return &SCBPCC{Clusters: 30, K: 25, OriginalWeight: 0.8}
}

// Fit clusters the users and builds the smoother.
func (s *SCBPCC) Fit(m *ratings.Matrix) error {
	s.m = m
	k := s.Clusters
	if k <= 0 {
		k = 30
	}
	cl, err := cluster.Run(m, cluster.Options{
		K: k, Seed: s.Seed, MaxIter: s.MaxIter, Workers: s.Workers,
	})
	if err != nil {
		return err
	}
	s.sm = smoothing.New(m, cl)
	return nil
}

func (s *SCBPCC) weight(original bool) float64 {
	if original {
		return s.OriginalWeight
	}
	return 1 - s.OriginalWeight
}

// sim scores candidate v against active user a over a's observed items,
// with the candidate side drawn from smoothed data (w-weighted PCC, the
// same shape as CFSF's Eq. 10).
func (s *SCBPCC) sim(a, v int) float64 {
	am, vm := s.m.UserMean(a), s.m.UserMean(v)
	var num, denA, denV float64
	for _, e := range s.m.UserRatings(a) {
		rv, orig := s.sm.Rating(v, int(e.Index))
		w := s.weight(orig)
		dv := rv - vm
		da := e.Value - am
		num += w * dv * da
		denV += w * w * dv * dv
		denA += da * da
	}
	if denA == 0 || denV == 0 {
		return 0
	}
	return num / (math.Sqrt(denV) * math.Sqrt(denA))
}

// Predict is user-based over smoothed ratings with top-K neighbours
// selected from the entire matrix each call.
func (s *SCBPCC) Predict(u, i int) float64 {
	if !inRange(s.m, u, i) {
		return fallback(s.m, u, i)
	}
	k := s.K
	if k <= 0 {
		k = 25
	}
	top := mathx.NewTopK(k)
	for v := 0; v < s.m.NumUsers(); v++ {
		if v == u {
			continue
		}
		if sim := s.sim(u, v); sim > 0 {
			top.Push(int32(v), sim)
		}
	}
	var num, den float64
	for _, n := range top.Sorted() {
		v := int(n.Index)
		r, orig := s.sm.Rating(v, i)
		w := s.weight(orig) * n.Score
		num += w * (r - s.m.UserMean(v))
		den += w
	}
	if den <= 0 {
		return fallback(s.m, u, i)
	}
	return clampTo(s.m, s.m.UserMean(u)+num/den)
}
