package baselines

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cfsf/internal/eval"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func smallSynth() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 120
	cfg.Items = 150
	cfg.MinPerUser = 15
	cfg.MeanPerUser = 30
	cfg.Archetypes = 8
	return cfg
}

// all returns one fresh instance of every baseline.
func all() map[string]eval.Predictor {
	return map[string]eval.Predictor{
		"sir":    &SIR{},
		"sur":    NewSUR(),
		"sf":     NewSF(),
		"scbpcc": NewSCBPCC(),
		"emdp":   NewEMDP(),
		"pd":     NewPD(),
		"am":     NewAM(),
	}
}

// TestAllBaselinesContract exercises the Fit/Predict contract shared by
// every algorithm: fit succeeds, predictions are in scale, deterministic,
// and tolerant of out-of-range ids.
func TestAllBaselinesContract(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	m := d.Matrix
	for name, p := range all() {
		t.Run(name, func(t *testing.T) {
			if err := p.Fit(m); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			rng := rand.New(rand.NewSource(1))
			for n := 0; n < 200; n++ {
				u, i := rng.Intn(m.NumUsers()), rng.Intn(m.NumItems())
				v := p.Predict(u, i)
				if math.IsNaN(v) || v < m.MinRating() || v > m.MaxRating() {
					t.Fatalf("Predict(%d,%d) = %g outside scale", u, i, v)
				}
				if v2 := p.Predict(u, i); v2 != v {
					t.Fatalf("Predict(%d,%d) not deterministic: %g vs %g", u, i, v, v2)
				}
			}
			for _, pair := range [][2]int{{-1, 0}, {0, -1}, {m.NumUsers(), 0}, {0, m.NumItems()}} {
				v := p.Predict(pair[0], pair[1])
				if math.IsNaN(v) || v < m.MinRating() || v > m.MaxRating() {
					t.Fatalf("out-of-range Predict(%d,%d) = %g", pair[0], pair[1], v)
				}
			}
		})
	}
}

// TestBaselinesConcurrentPredict verifies the harness contract that
// Predict is safe and consistent under concurrency after Fit.
func TestBaselinesConcurrentPredict(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	m := d.Matrix
	for name, p := range all() {
		t.Run(name, func(t *testing.T) {
			if err := p.Fit(m); err != nil {
				t.Fatal(err)
			}
			ref := make([]float64, 60)
			for k := range ref {
				ref[k] = p.Predict(k%m.NumUsers(), (3*k)%m.NumItems())
			}
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := range ref {
						if got := p.Predict(k%m.NumUsers(), (3*k)%m.NumItems()); got != ref[k] {
							errs <- "diverged"
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if msg, open := <-errs; open {
				t.Fatal(msg)
			}
		})
	}
}

// TestBaselinesBeatGlobalMean: every algorithm must beat the trivial
// global-mean predictor on a Given-10 split of structured data.
func TestBaselinesBeatGlobalMean(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	var gm float64
	{
		g := split.Matrix.GlobalMean()
		var sum float64
		for _, tg := range split.Targets {
			sum += math.Abs(g - tg.Actual)
		}
		gm = sum / float64(len(split.Targets))
	}
	for name, p := range all() {
		t.Run(name, func(t *testing.T) {
			res, err := eval.Evaluate(p, split, eval.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.MAE >= gm {
				t.Errorf("%s MAE %.4f does not beat global mean %.4f", name, res.MAE, gm)
			}
		})
	}
}

func TestSIREq1OnHandMatrix(t *testing.T) {
	// Items 0 and 1 perfectly correlated; item 2 uncorrelated noise.
	b := ratings.NewBuilder(5, 3)
	for u := 0; u < 4; u++ {
		b.MustAdd(u, 0, float64(u+1))
		b.MustAdd(u, 1, float64(u+1))
	}
	b.MustAdd(4, 1, 4) // active user rated only item 1
	m := b.Build()
	s := &SIR{}
	if err := s.Fit(m); err != nil {
		t.Fatal(err)
	}
	// Predicting item 0 for user 4: only neighbour rated is item 1 with
	// sim 1 → prediction = r(4,1) = 4.
	if got := s.Predict(4, 0); math.Abs(got-4) > 1e-9 {
		t.Errorf("Predict = %g, want 4", got)
	}
}

func TestSIRNeighborhoodCap(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	s := &SIR{Neighborhood: 3}
	if err := s.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	v := s.Predict(0, 0)
	if v < 1 || v > 5 {
		t.Errorf("capped-neighbourhood prediction %g out of scale", v)
	}
}

func TestSURCenteredVsPlain(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	centered := NewSUR()
	plain := &SUR{Centered: false}
	rc, err := eval.Evaluate(centered, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := eval.Evaluate(plain, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With style diversity in the data, centring must help.
	if rc.MAE >= rp.MAE {
		t.Errorf("centred SUR %.4f not better than plain %.4f", rc.MAE, rp.MAE)
	}
}

func TestSURFallbackForIsolatedUser(t *testing.T) {
	// User 2 shares no items with anyone → prediction falls back.
	b := ratings.NewBuilder(3, 4)
	b.MustAdd(0, 0, 5)
	b.MustAdd(1, 0, 3)
	b.MustAdd(2, 3, 2)
	m := b.Build()
	s := NewSUR()
	if err := s.Fit(m); err != nil {
		t.Fatal(err)
	}
	if got := s.Predict(2, 0); math.Abs(got-2) > 1e-9 {
		t.Errorf("isolated user prediction %g, want own mean 2", got)
	}
}

func TestPDExpectationVsMode(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	exp := NewPD()
	mode := &PD{Sigma: 1.0, Expectation: false}
	if err := exp.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	if err := mode.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	// Mode predictions are discrete rating levels.
	for u := 0; u < 20; u++ {
		v := mode.Predict(u, u)
		if v != math.Trunc(v) {
			t.Fatalf("MAP prediction %g is not a discrete level", v)
		}
	}
}

func TestPDLevelsFollowScale(t *testing.T) {
	b := ratings.NewBuilder(2, 2)
	b.SetScale(1, 10)
	b.MustAdd(0, 0, 7)
	b.MustAdd(0, 1, 9)
	b.MustAdd(1, 0, 8)
	m := b.Build()
	p := NewPD()
	if err := p.Fit(m); err != nil {
		t.Fatal(err)
	}
	if len(p.levels) != 10 {
		t.Errorf("levels = %d, want 10 for a 1..10 scale", len(p.levels))
	}
}

func TestAMTrainsAndImproves(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	short := &AM{Z: 8, Iterations: 1, PriorStrength: 1}
	long := &AM{Z: 8, Iterations: 30, PriorStrength: 1}
	rs, err := eval.Evaluate(short, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := eval.Evaluate(long, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rl.MAE > rs.MAE+0.02 {
		t.Errorf("more EM iterations made AM clearly worse: %.4f vs %.4f", rl.MAE, rs.MAE)
	}
}

func TestAMEmptyMatrix(t *testing.T) {
	if err := NewAM().Fit(ratings.NewBuilder(2, 2).Build()); err == nil {
		t.Error("AM must reject an empty matrix")
	}
}

func TestEMDPThresholdsFallback(t *testing.T) {
	// Impossibly high thresholds force the mean-blend fallback.
	d := synth.MustGenerate(smallSynth())
	e := &EMDP{Lambda: 0.7, Eta: 0.999, Theta: 0.999, GammaUser: 1, GammaItem: 1}
	if err := e.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	m := d.Matrix
	u, i := 3, 7
	want := 0.7*m.UserMean(u) + 0.3*m.ItemMean(i)
	want = math.Max(1, math.Min(5, want))
	if got := e.Predict(u, i); math.Abs(got-want) > 1e-9 {
		t.Errorf("threshold fallback = %g, want %g", got, want)
	}
}

func TestSCBPCCSlowerButClusterAware(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	s := NewSCBPCC()
	s.Clusters = 8
	if err := s.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	v := s.Predict(0, 0)
	if v < 1 || v > 5 {
		t.Fatalf("prediction %g out of scale", v)
	}
}

func TestSFFusesComponents(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	full := NewSF()
	rFull, err := eval.Evaluate(full, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate SF with δ=0, λ=1 is plain user-based; fusion should not
	// be dramatically worse than it.
	degen := NewSF()
	degen.Lambda, degen.Delta = 1, 0
	rDegen, err := eval.Evaluate(degen, split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rFull.MAE > rDegen.MAE+0.05 {
		t.Errorf("SF fusion %.4f much worse than its own SUR part %.4f", rFull.MAE, rDegen.MAE)
	}
}

func TestFallbackChain(t *testing.T) {
	b := ratings.NewBuilder(2, 2)
	b.MustAdd(0, 0, 4)
	m := b.Build()
	if got := fallback(m, 0, 1); got != 4 {
		t.Errorf("user with ratings: fallback %g, want user mean 4", got)
	}
	if got := fallback(m, 1, 0); got != 4 {
		t.Errorf("empty user, rated item: fallback %g, want item mean 4", got)
	}
	if got := fallback(m, 1, 1); got != 4 {
		t.Errorf("empty user+item: fallback %g, want global mean 4", got)
	}
	empty := ratings.NewBuilder(1, 1).Build()
	if got := fallback(empty, 0, 0); got != 3 {
		t.Errorf("empty matrix fallback %g, want mid-scale 3", got)
	}
}

func TestUserSimCacheSingleComputation(t *testing.T) {
	c := newUserSimCache[int](4)
	calls := 0
	v := c.get(2, func() int { calls++; return 42 })
	if v != 42 || calls != 1 {
		t.Fatalf("first get = %d (%d calls)", v, calls)
	}
	v = c.get(2, func() int { calls++; return 99 })
	if v != 42 || calls != 1 {
		t.Errorf("cached get = %d (%d calls), want 42 (1)", v, calls)
	}
}
