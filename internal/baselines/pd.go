package baselines

import (
	"math"

	"cfsf/internal/ratings"
)

// PD is the personality-diagnosis baseline (Pennock, Horvitz, Lawrence,
// Giles, UAI '00): a probabilistic hybrid in which every existing user is
// a candidate "personality type" observed through Gaussian rating noise.
// The likelihood of the active user matching user v is the product of
// P(r_a,j | r_v,j) over the active user's ratings; the predicted rating
// distribution sums those likelihoods over the raters of the target item.
type PD struct {
	// Sigma is the Gaussian noise deviation (Pennock's default 1.0 on a
	// 1..5 scale).
	Sigma float64
	// Expectation selects E[r] over the posterior instead of the MAP
	// rating. Expectation gives smoother MAE and is the default via
	// NewPD; MAP is Pennock's original decision rule.
	Expectation bool

	m      *ratings.Matrix
	levels []float64
}

// NewPD returns PD with σ=1 and expectation decoding.
func NewPD() *PD { return &PD{Sigma: 1.0, Expectation: true} }

// Fit stores the matrix and enumerates the discrete rating levels.
func (p *PD) Fit(m *ratings.Matrix) error {
	p.m = m
	if p.Sigma <= 0 {
		p.Sigma = 1.0
	}
	p.levels = p.levels[:0]
	for v := m.MinRating(); v <= m.MaxRating()+1e-9; v++ {
		p.levels = append(p.levels, v)
	}
	return nil
}

// Predict computes the posterior over rating levels for (u, i).
func (p *PD) Predict(u, i int) float64 {
	if !inRange(p.m, u, i) {
		return fallback(p.m, u, i)
	}
	raters := p.m.ItemRatings(i)
	active := p.m.UserRatings(u)
	if len(raters) == 0 || len(active) == 0 {
		return fallback(p.m, u, i)
	}
	inv2s2 := 1 / (2 * p.Sigma * p.Sigma)

	// Log-likelihood of each rater being the active user's personality.
	logL := make([]float64, 0, len(raters))
	ratersR := make([]float64, 0, len(raters))
	maxL := math.Inf(-1)
	for _, ve := range raters {
		v := int(ve.Index)
		if v == u {
			continue
		}
		ll := 0.0
		n := 0
		p.m.CoRatedItems(u, v, func(_ int32, ra, rv float64) {
			d := ra - rv
			ll -= d * d * inv2s2
			n++
		})
		if n == 0 {
			continue
		}
		logL = append(logL, ll)
		ratersR = append(ratersR, ve.Value)
		if ll > maxL {
			maxL = ll
		}
	}
	if len(logL) == 0 {
		return fallback(p.m, u, i)
	}

	// Posterior over discrete rating levels.
	best, bestScore := p.levels[0], math.Inf(-1)
	var expNum, expDen float64
	for _, x := range p.levels {
		score := 0.0
		for k := range logL {
			d := x - ratersR[k]
			score += math.Exp(logL[k] - maxL - d*d*inv2s2)
		}
		if score > bestScore {
			best, bestScore = x, score
		}
		expNum += x * score
		expDen += score
	}
	if p.Expectation && expDen > 0 {
		return clampTo(p.m, expNum/expDen)
	}
	return clampTo(p.m, best)
}
