package baselines

import (
	"cfsf/internal/ratings"
)

// Bias is the damped baseline predictor r̂(u,i) = μ + b_i + b_u, where
// b_i is the item's damped deviation from the global mean and b_u is the
// user's damped deviation from (μ + b_i) averaged over their ratings.
// Every serious CF comparison needs this floor: a personalised method
// that cannot beat Bias is not learning collaborative structure.
type Bias struct {
	// Damping is the shrinkage pseudo-count (default 5, the classic
	// "bias model" setting).
	Damping float64

	m      *ratings.Matrix
	mu     float64
	bu, bi []float64
}

// NewBias returns a Bias baseline with default damping.
func NewBias() *Bias { return &Bias{Damping: 5} }

// Fit computes the damped biases in two passes.
func (b *Bias) Fit(m *ratings.Matrix) error {
	b.m = m
	b.mu = m.GlobalMean()
	d := b.Damping
	if d < 0 {
		d = 0
	}
	b.bi = make([]float64, m.NumItems())
	for i := 0; i < m.NumItems(); i++ {
		col := m.ItemRatings(i)
		var sum float64
		for _, e := range col {
			sum += e.Value - b.mu
		}
		b.bi[i] = sum / (d + float64(len(col)))
	}
	b.bu = make([]float64, m.NumUsers())
	for u := 0; u < m.NumUsers(); u++ {
		row := m.UserRatings(u)
		var sum float64
		for _, e := range row {
			sum += e.Value - b.mu - b.bi[e.Index]
		}
		b.bu[u] = sum / (d + float64(len(row)))
	}
	return nil
}

// Predict returns μ + b_i + b_u clamped to the scale.
func (b *Bias) Predict(u, i int) float64 {
	if !inRange(b.m, u, i) {
		return fallback(b.m, u, i)
	}
	return clampTo(b.m, b.mu+b.bi[i]+b.bu[u])
}
