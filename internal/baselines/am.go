package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"cfsf/internal/ratings"
)

// AM is the latent aspect-model baseline (Hofmann, TOIS '04 style): a
// mixture of Z latent aspects in which each user has a distribution
// p(z|u) and each (aspect, item) pair has a Gaussian rating mean μ_z,i.
// Parameters are trained with EM over the observed ratings; the
// prediction is E[r | u, i] = Σ_z p(z|u)·μ_z,i.
//
// As in the paper's Table III, the model's accuracy degrades sharply on
// small training sets (ML_100): with little data per user the aspect
// posteriors overfit, which this implementation tempers (but does not
// hide) with a small conjugate prior on μ.
type AM struct {
	// Z is the number of latent aspects (default 20).
	Z int
	// Iterations is the EM iteration count (default 40).
	Iterations int
	// Seed drives the random initialisation.
	Seed int64
	// PriorStrength is the pseudo-count pulling μ_z,i toward the item
	// mean (default 1.0).
	PriorStrength float64

	m     *ratings.Matrix
	pzu   [][]float64 // pzu[u][z]
	mu    [][]float64 // mu[z][i]
	muOK  [][]bool    // whether μ_z,i had any support
	sigma float64
}

// NewAM returns an aspect model with Z=20 and 40 EM iterations.
func NewAM() *AM { return &AM{Z: 20, Iterations: 40, PriorStrength: 1.0} }

// Fit trains the model by EM.
func (a *AM) Fit(m *ratings.Matrix) error {
	a.m = m
	z := a.Z
	if z <= 0 {
		z = 20
	}
	iters := a.Iterations
	if iters <= 0 {
		iters = 40
	}
	if m.NumRatings() == 0 {
		return fmt.Errorf("am: empty matrix")
	}
	rng := rand.New(rand.NewSource(a.Seed + 1))
	p, q := m.NumUsers(), m.NumItems()

	a.pzu = make([][]float64, p)
	for u := range a.pzu {
		a.pzu[u] = make([]float64, z)
		var s float64
		for k := range a.pzu[u] {
			a.pzu[u][k] = 0.5 + rng.Float64()
			s += a.pzu[u][k]
		}
		for k := range a.pzu[u] {
			a.pzu[u][k] /= s
		}
	}
	a.mu = make([][]float64, z)
	a.muOK = make([][]bool, z)
	for k := 0; k < z; k++ {
		a.mu[k] = make([]float64, q)
		a.muOK[k] = make([]bool, q)
		for i := 0; i < q; i++ {
			a.mu[k][i] = m.ItemMean(i) + rng.NormFloat64()*0.3
		}
	}
	a.sigma = 1.0

	post := make([]float64, z)
	numMu := make([][]float64, z)
	denMu := make([][]float64, z)
	numPz := make([][]float64, p)
	for k := 0; k < z; k++ {
		numMu[k] = make([]float64, q)
		denMu[k] = make([]float64, q)
	}
	for u := 0; u < p; u++ {
		numPz[u] = make([]float64, z)
	}

	for it := 0; it < iters; it++ {
		for k := 0; k < z; k++ {
			for i := 0; i < q; i++ {
				numMu[k][i], denMu[k][i] = 0, 0
			}
		}
		for u := 0; u < p; u++ {
			for k := 0; k < z; k++ {
				numPz[u][k] = 0
			}
		}
		var sigNum float64
		var sigDen float64
		inv2s2 := 1 / (2 * a.sigma * a.sigma)

		// E-step + sufficient statistics.
		for u := 0; u < p; u++ {
			for _, e := range m.UserRatings(u) {
				i := int(e.Index)
				var sum float64
				for k := 0; k < z; k++ {
					d := e.Value - a.mu[k][i]
					post[k] = a.pzu[u][k] * math.Exp(-d*d*inv2s2)
					sum += post[k]
				}
				if sum <= 0 {
					for k := 0; k < z; k++ {
						post[k] = 1 / float64(z)
					}
					sum = 1
				}
				for k := 0; k < z; k++ {
					g := post[k] / sum
					numMu[k][i] += g * e.Value
					denMu[k][i] += g
					numPz[u][k] += g
					d := e.Value - a.mu[k][i]
					sigNum += g * d * d
					sigDen += g
				}
			}
		}

		// M-step.
		for k := 0; k < z; k++ {
			for i := 0; i < q; i++ {
				prior := a.PriorStrength
				im := m.ItemMean(i)
				if denMu[k][i]+prior > 0 {
					a.mu[k][i] = (numMu[k][i] + prior*im) / (denMu[k][i] + prior)
					a.muOK[k][i] = denMu[k][i] > 0
				}
			}
		}
		for u := 0; u < p; u++ {
			n := float64(len(m.UserRatings(u)))
			if n == 0 {
				continue
			}
			for k := 0; k < z; k++ {
				a.pzu[u][k] = numPz[u][k] / n
			}
		}
		if sigDen > 0 {
			a.sigma = math.Sqrt(sigNum/sigDen) + 1e-3
		}
	}
	return nil
}

// Predict returns E[r | u, i] under the trained mixture.
func (a *AM) Predict(u, i int) float64 {
	if !inRange(a.m, u, i) {
		return fallback(a.m, u, i)
	}
	if len(a.m.ItemRatings(i)) == 0 || len(a.m.UserRatings(u)) == 0 {
		return fallback(a.m, u, i)
	}
	var v float64
	for k := range a.mu {
		v += a.pzu[u][k] * a.mu[k][i]
	}
	return clampTo(a.m, v)
}
