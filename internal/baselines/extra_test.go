package baselines

import (
	"math"
	"testing"

	"cfsf/internal/eval"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// extras returns the extension baselines (not part of the paper's
// Table III) for the shared contract checks.
func extras() map[string]eval.Predictor {
	return map[string]eval.Predictor{
		"mf":       NewMF(),
		"slopeone": NewSlopeOne(),
		"bias":     NewBias(),
		"svd":      NewSVDCF(),
	}
}

func TestExtraBaselinesContract(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	m := d.Matrix
	for name, p := range extras() {
		t.Run(name, func(t *testing.T) {
			if err := p.Fit(m); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			for n := 0; n < 200; n++ {
				u, i := n%m.NumUsers(), (n*7)%m.NumItems()
				v := p.Predict(u, i)
				if math.IsNaN(v) || v < m.MinRating() || v > m.MaxRating() {
					t.Fatalf("Predict(%d,%d) = %g out of scale", u, i, v)
				}
				if v2 := p.Predict(u, i); v2 != v {
					t.Fatalf("not deterministic at (%d,%d)", u, i)
				}
			}
			for _, pair := range [][2]int{{-1, 0}, {0, -1}, {m.NumUsers(), 0}, {0, m.NumItems()}} {
				if v := p.Predict(pair[0], pair[1]); math.IsNaN(v) {
					t.Fatalf("out-of-range Predict NaN")
				}
			}
		})
	}
}

func TestExtraBaselinesBeatGlobalMean(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := split.Matrix.GlobalMean()
	var gm float64
	for _, tg := range split.Targets {
		gm += math.Abs(g - tg.Actual)
	}
	gm /= float64(len(split.Targets))
	for name, p := range extras() {
		t.Run(name, func(t *testing.T) {
			res, err := eval.Evaluate(p, split, eval.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.MAE >= gm {
				t.Errorf("%s MAE %.4f does not beat global mean %.4f", name, res.MAE, gm)
			}
		})
	}
}

func TestMFLearnsStructure(t *testing.T) {
	// MF with factors must beat the pure bias model on structured data
	// (there is real user×item interaction signal to learn).
	d := synth.MustGenerate(smallSynth())
	split, err := ratings.MLSplit(d.Matrix, 80, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	mfRes, err := eval.Evaluate(NewMF(), split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	biasRes, err := eval.Evaluate(NewBias(), split, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mfRes.MAE >= biasRes.MAE {
		t.Errorf("MF %.4f does not beat Bias %.4f", mfRes.MAE, biasRes.MAE)
	}
}

func TestMFDeterministicAcrossFits(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	a, b := NewMF(), NewMF()
	if err := a.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d.Matrix); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 50; n++ {
		u, i := n%d.Matrix.NumUsers(), (n*3)%d.Matrix.NumItems()
		if a.Predict(u, i) != b.Predict(u, i) {
			t.Fatalf("MF not deterministic across fits at (%d,%d)", u, i)
		}
	}
}

func TestMFEmptyMatrix(t *testing.T) {
	if err := NewMF().Fit(ratings.NewBuilder(2, 2).Build()); err == nil {
		t.Error("MF must reject an empty matrix")
	}
}

func TestSlopeOneHandComputed(t *testing.T) {
	// Classic Slope One example: two items, deviation dev(1,0) = mean of
	// (r1 - r0) = ((3-1) + (4-2)) / 2 = 2.
	b := ratings.NewBuilder(3, 2)
	b.MustAdd(0, 0, 1)
	b.MustAdd(0, 1, 3)
	b.MustAdd(1, 0, 2)
	b.MustAdd(1, 1, 4)
	b.MustAdd(2, 0, 2) // active user rated only item 0
	m := b.Build()
	s := NewSlopeOne()
	if err := s.Fit(m); err != nil {
		t.Fatal(err)
	}
	// Predict item 1 for user 2: r(2,0) + dev = 2 + 2 = 4.
	if got := s.Predict(2, 1); math.Abs(got-4) > 1e-12 {
		t.Errorf("SlopeOne predict = %g, want 4", got)
	}
}

func TestSlopeOneMinSupport(t *testing.T) {
	// Only one co-rating user: with MinSupport 2 the pair is dropped and
	// prediction falls back to the user mean.
	b := ratings.NewBuilder(2, 2)
	b.MustAdd(0, 0, 1)
	b.MustAdd(0, 1, 5)
	b.MustAdd(1, 0, 3)
	m := b.Build()
	s := NewSlopeOne()
	if err := s.Fit(m); err != nil {
		t.Fatal(err)
	}
	if got := s.Predict(1, 1); math.Abs(got-3) > 1e-12 {
		t.Errorf("unsupported pair should fall back to user mean 3, got %g", got)
	}
	relaxed := &SlopeOne{MinSupport: 1}
	if err := relaxed.Fit(m); err != nil {
		t.Fatal(err)
	}
	if got := relaxed.Predict(1, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("with support 1: 3 + dev(1,0)=4 → clamped... got %g, want 5", got)
	}
}

func TestBiasHandComputed(t *testing.T) {
	// With damping 0 the biases are exact means.
	b := ratings.NewBuilder(2, 2)
	b.MustAdd(0, 0, 5)
	b.MustAdd(0, 1, 3)
	b.MustAdd(1, 0, 1)
	m := b.Build()
	p := &Bias{Damping: 0}
	if err := p.Fit(m); err != nil {
		t.Fatal(err)
	}
	mu := 3.0
	bi0 := ((5 - mu) + (1 - mu)) / 2 // 0
	bu1 := (1 - mu - bi0) / 1        // -2
	want := mu + bi0 + bu1           // 1
	if got := p.Predict(1, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Bias predict = %g, want %g", got, want)
	}
}

func TestBiasDampingShrinks(t *testing.T) {
	b := ratings.NewBuilder(2, 1)
	b.MustAdd(0, 0, 5)
	b.MustAdd(1, 0, 1)
	m := b.Build()
	heavy := &Bias{Damping: 100}
	if err := heavy.Fit(m); err != nil {
		t.Fatal(err)
	}
	// With huge damping everything shrinks to the global mean.
	if got := heavy.Predict(0, 0); math.Abs(got-3) > 0.2 {
		t.Errorf("heavily damped prediction %g should be near global mean 3", got)
	}
}
