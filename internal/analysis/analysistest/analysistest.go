// Package analysistest runs an analyzer over fixture packages laid out
// GOPATH-style under testdata/src/<pkg> and checks its diagnostics
// against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixture packages may import each other (resolved from testdata/src),
// standard-library packages, and packages of this module (resolved from
// compiler export data via `go list -export`).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cfsf/internal/analysis"
)

// Run loads each fixture package under filepath.Join(dir, "src"), applies
// the analyzer, and reports mismatches between its diagnostics and the
// fixtures' want comments on t. It returns the diagnostics for callers
// that assert more.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := loadFixtures(dir, pkgpaths)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a}, analysis.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		checkWants(t, pkg, diags)
	}
	return diags
}

// loadFixtures type-checks the named fixture packages (and, recursively,
// the fixture packages they import).
func loadFixtures(dir string, pkgpaths []string) ([]*analysis.Package, error) {
	src := filepath.Join(dir, "src")
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		src:    src,
		fset:   fset,
		loaded: map[string]*analysis.Package{},
	}
	// Collect every external import reachable from the fixture tree so a
	// single `go list -export` resolves them all.
	external, err := ld.externalImports()
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(external) > 0 {
		// Run from the current directory: for a `go test` process that is
		// the analyzer's package directory inside the module, so
		// module-local imports resolve alongside the standard library.
		exports, err = analysis.ListExports("", external...)
		if err != nil {
			return nil, err
		}
	}
	ld.fallback = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok || e == "" {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		return os.Open(e)
	})

	var out []*analysis.Package
	for _, p := range pkgpaths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type fixtureLoader struct {
	src      string
	fset     *token.FileSet
	loaded   map[string]*analysis.Package
	loading  []string
	fallback types.Importer
}

// Import implements types.Importer over the fixture tree with export-data
// fallback, so fixture packages can import each other.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(ld.src, path)) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.fallback.Import(path)
}

func (ld *fixtureLoader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		return pkg, nil
	}
	for _, p := range ld.loading {
		if p == path {
			return nil, fmt.Errorf("analysistest: import cycle through %q", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.src, path)
	filenames, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(ld.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typecheck fixture %s: %w", path, err)
	}
	pkg := &analysis.Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.loaded[path] = pkg
	return pkg, nil
}

// externalImports scans every fixture file for imports that have no
// directory under testdata/src.
func (ld *fixtureLoader) externalImports() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(ld.src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !dirExists(filepath.Join(ld.src, p)) {
				seen[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// checkWants matches the package's diagnostics against its want comments.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		if d.Package != pkg.Path {
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want comment's
// tail, honoring escapes via strconv.Unquote.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		rest := s[i:]
		// Find the closing quote, skipping escaped ones.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return out
		}
		if q, err := strconv.Unquote(rest[:end+1]); err == nil {
			out = append(out, q)
		}
		s = rest[end+1:]
	}
}
