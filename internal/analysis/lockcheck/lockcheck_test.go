package lockcheck_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "locked", "guarded", "guarduser")
}
