// Package lockcheck enforces two field-level concurrency contracts
// declared by annotation:
//
//   - //cfsf:guarded-by <mutex> — the field may only be accessed while
//     <mutex> (a sync.Mutex or sync.RWMutex field of the same struct) is
//     held on the local call path: a Lock/RLock on the same receiver
//     chain earlier in the function (deferred Unlocks keep it held), a
//     //cfsf:locked <mutex> contract on the enclosing function, or the
//     value being freshly constructed in this function and therefore not
//     yet published.
//
//   - //cfsf:immutable — the field is written only while its struct is
//     under construction (assigned from a composite literal in the same
//     function) or inside a function annotated //cfsf:init-only <why>.
//     This is the copy-on-write contract of Model and ShardedModel: a
//     published model is never mutated; every apply/retrain builds a
//     fresh value and swaps a pointer at the documented publication
//     point. An in-place write to a shared model — the GIS swap bug
//     class — is exactly what this flags.
//
// Contracts travel as facts: every annotated field's contract is
// exported under its object path, so a dependent package touching an
// imported guarded field is held to the same rule as code next to the
// declaration. Within a function the analysis is local and
// flow-approximate by design — see the shared walker in
// internal/analysis/lockstate. Helper functions called with the lock
// held declare it with //cfsf:locked <mutex>.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"cfsf/internal/analysis"
	"cfsf/internal/analysis/lockstate"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "enforces //cfsf:guarded-by and //cfsf:immutable field contracts, across packages via facts",
	Run:       run,
	FactTypes: []analysis.Fact{(*GuardedFact)(nil)},
}

// GuardedFact is the exported form of a field contract: dependent
// packages importing the field see the same guarded-by/immutable rule
// its declaration states.
type GuardedFact struct {
	Mutex     string // guarded-by mutex field name ("" for immutable-only)
	Immutable bool
}

// AFact marks GuardedFact as a fact.
func (*GuardedFact) AFact() {}

// fieldContract describes one annotated field.
type fieldContract struct {
	mutex     string // guarded-by mutex field name ("" for immutable-only)
	immutable bool
}

func run(pass *analysis.Pass) error {
	contracts := collectContracts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, contracts)
		}
	}
	return nil
}

// collectContracts parses field annotations from every struct type
// declaration, validating that a guarded-by target names a sync.Mutex or
// sync.RWMutex field of the same struct, and exports each contract as a
// fact for dependent packages.
func collectContracts(pass *analysis.Pass) map[types.Object]fieldContract {
	contracts := map[types.Object]fieldContract{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := map[string]bool{}
			for _, field := range st.Fields.List {
				t := pass.Info.TypeOf(field.Type)
				if lockstate.IsMutex(t) {
					for _, name := range field.Names {
						mutexFields[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				gb, hasGB := analysis.FieldAnnotation(field, "guarded-by")
				_, hasIM := analysis.FieldAnnotation(field, "immutable")
				if !hasGB && !hasIM {
					continue
				}
				c := fieldContract{immutable: hasIM}
				if hasGB {
					mutex, _, _ := strings.Cut(gb.Arg, " ")
					if mutex == "" || !mutexFields[mutex] {
						pass.Reportf(gb.Pos, "//cfsf:guarded-by %q does not name a sync.Mutex/RWMutex field of this struct", mutex)
						continue
					}
					c.mutex = mutex
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						contracts[obj] = c
						pass.ExportObjectFact(obj, &GuardedFact{Mutex: c.mutex, Immutable: c.immutable})
					}
				}
			}
			return true
		})
	}
	return contracts
}

// checker carries the per-function lock state.
type checker struct {
	pass      *analysis.Pass
	contracts map[types.Object]fieldContract
	w         *lockstate.Walker
	fresh     map[types.Object]bool // vars assigned from composite literals here
	initOnly  bool                  // //cfsf:init-only function
	// reported dedupes per selector node: assignment targets are visited
	// by both checkWrite (chain walk) and checkExpr (read scan).
	reported map[*ast.SelectorExpr]bool
	// imported caches cross-package contract lookups by field object.
	imported map[types.Object]*fieldContract
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, contracts map[types.Object]fieldContract) {
	c := &checker{
		pass:      pass,
		contracts: contracts,
		fresh:     map[types.Object]bool{},
		reported:  map[*ast.SelectorExpr]bool{},
		imported:  map[types.Object]*fieldContract{},
	}
	c.w = &lockstate.Walker{
		Info:        pass.Info,
		OnExpr:      c.checkExpr,
		OnWrite:     c.checkWrite,
		OnAssign:    c.trackFresh,
		OnValueSpec: c.trackFreshSpec,
	}
	if a, ok := analysis.FuncAnnotation(fd.Doc, "locked"); ok {
		// The first word names the mutex; anything after it is the
		// justification (why the caller holds it / why the value is
		// unpublished).
		mutex, _, _ := strings.Cut(a.Arg, " ")
		if mutex == "" {
			pass.Reportf(a.Pos, "//cfsf:locked requires the mutex name")
		} else if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			c.w.Seed(fd.Recv.List[0].Names[0].Name + "." + mutex)
		}
	}
	if a, ok := analysis.FuncAnnotation(fd.Doc, "init-only"); ok {
		c.initOnly = pass.JustificationOrReport(a)
	}
	c.w.Walk(fd.Body)
}

// trackFresh records LHS variables assigned from composite literals
// (construction sites: the value is not yet published).
func (c *checker) trackFresh(v *ast.AssignStmt) {
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i, rhs := range v.Rhs {
		if !isCompositeLit(rhs) {
			continue
		}
		if id, ok := v.Lhs[i].(*ast.Ident); ok {
			if obj := c.pass.Info.Defs[id]; obj != nil {
				c.fresh[obj] = true
			} else if obj := c.pass.Info.Uses[id]; obj != nil {
				c.fresh[obj] = true
			}
		}
	}
}

func (c *checker) trackFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, val := range vs.Values {
		if !isCompositeLit(val) {
			continue
		}
		if obj := c.pass.Info.Defs[vs.Names[i]]; obj != nil {
			c.fresh[obj] = true
		}
	}
}

func isCompositeLit(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// checkExpr checks every guarded-field read reachable in e. Function
// literals are skipped: a closure runs later, possibly on another
// goroutine, so the current lock state does not apply — their bodies
// would need their own contracts (none of the annotated code accesses
// guarded fields from closures).
func (c *checker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		c.checkSelector(sel, false)
		return true
	})
}

// checkWrite checks an assignment target: immutable-field writes and
// guarded-field writes alike. The target may be nested (x.stats.Field,
// x.shards[i].Count): every selector on the chain is checked.
func (c *checker) checkWrite(lhs ast.Expr) {
	e := lhs
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			c.checkSelector(v, true)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return
		}
	}
}

// contractFor resolves the field's contract: declared in this package,
// or imported as a fact from the declaring one.
func (c *checker) contractFor(obj types.Object) (fieldContract, bool) {
	if contract, ok := c.contracts[obj]; ok {
		return contract, true
	}
	if cached, ok := c.imported[obj]; ok {
		if cached == nil {
			return fieldContract{}, false
		}
		return *cached, true
	}
	var gf GuardedFact
	if obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(obj, &gf) {
		contract := fieldContract{mutex: gf.Mutex, immutable: gf.Immutable}
		c.imported[obj] = &contract
		return contract, true
	}
	c.imported[obj] = nil
	return fieldContract{}, false
}

// checkSelector verifies one field access against its contract.
func (c *checker) checkSelector(sel *ast.SelectorExpr, write bool) {
	s, ok := c.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	contract, ok := c.contractFor(s.Obj())
	if !ok {
		return
	}
	root := analysis.RootIdent(sel.X)
	if root != nil {
		if obj := c.pass.Info.Uses[root]; obj != nil && c.fresh[obj] {
			return // construction site: not yet published
		}
	}
	if c.reported[sel] {
		return
	}
	if contract.immutable && write && !c.initOnly {
		c.reported[sel] = true
		c.pass.Reportf(sel.Pos(),
			"write to immutable field %s of a published value: copy-on-write requires building a fresh value and swapping at the publication point (or //cfsf:init-only <why> on a pre-publication helper)",
			fmt.Sprintf("%s.%s", typeName(s.Recv()), s.Obj().Name()))
	}
	if contract.mutex != "" {
		base := analysis.ExprString(sel.X)
		if base == "" || !c.w.Held(base+"."+contract.mutex) {
			c.reported[sel] = true
			c.pass.Reportf(sel.Pos(),
				"guarded field %s accessed without %s.%s held on the local path (lock it, or declare the contract with //cfsf:locked %s on the enclosing function)",
				s.Obj().Name(), baseOr(base, "receiver"), contract.mutex, contract.mutex)
		}
	}
}

func baseOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
