// Package lockcheck enforces two field-level concurrency contracts
// declared by annotation:
//
//   - //cfsf:guarded-by <mutex> — the field may only be accessed while
//     <mutex> (a sync.Mutex or sync.RWMutex field of the same struct) is
//     held on the local call path: a Lock/RLock on the same receiver
//     chain earlier in the function (deferred Unlocks keep it held), a
//     //cfsf:locked <mutex> contract on the enclosing function, or the
//     value being freshly constructed in this function and therefore not
//     yet published.
//
//   - //cfsf:immutable — the field is written only while its struct is
//     under construction (assigned from a composite literal in the same
//     function) or inside a function annotated //cfsf:init-only <why>.
//     This is the copy-on-write contract of Model and ShardedModel: a
//     published model is never mutated; every apply/retrain builds a
//     fresh value and swaps a pointer at the documented publication
//     point. An in-place write to a shared model — the GIS swap bug
//     class — is exactly what this flags.
//
// The analysis is local and flow-approximate by design: it walks each
// function's statements in source order, tracking Lock/Unlock pairs by
// the receiver expression's spelling (m.mu, w.mu). That catches the bug
// class that matters — an access with no lock acquisition on any local
// path — without whole-program may-alias analysis. Helper functions
// called with the lock held declare it with //cfsf:locked <mutex>.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"cfsf/internal/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "enforces //cfsf:guarded-by and //cfsf:immutable field contracts",
	Run:  run,
}

// fieldContract describes one annotated field.
type fieldContract struct {
	mutex     string // guarded-by mutex field name ("" for immutable-only)
	immutable bool
}

func run(pass *analysis.Pass) error {
	contracts := collectContracts(pass)
	if len(contracts) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, contracts)
		}
	}
	return nil
}

// collectContracts parses field annotations from every struct type
// declaration, validating that a guarded-by target names a sync.Mutex or
// sync.RWMutex field of the same struct.
func collectContracts(pass *analysis.Pass) map[types.Object]fieldContract {
	contracts := map[types.Object]fieldContract{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := map[string]bool{}
			for _, field := range st.Fields.List {
				t := pass.Info.TypeOf(field.Type)
				if isMutex(t) {
					for _, name := range field.Names {
						mutexFields[name.Name] = true
					}
				}
			}
			for _, field := range st.Fields.List {
				gb, hasGB := analysis.FieldAnnotation(field, "guarded-by")
				_, hasIM := analysis.FieldAnnotation(field, "immutable")
				if !hasGB && !hasIM {
					continue
				}
				c := fieldContract{immutable: hasIM}
				if hasGB {
					mutex, _, _ := strings.Cut(gb.Arg, " ")
					if mutex == "" || !mutexFields[mutex] {
						pass.Reportf(gb.Pos, "//cfsf:guarded-by %q does not name a sync.Mutex/RWMutex field of this struct", mutex)
						continue
					}
					c.mutex = mutex
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						contracts[obj] = c
					}
				}
			}
			return true
		})
	}
	return contracts
}

func isMutex(t types.Type) bool {
	return analysis.IsNamedType(t, "sync", "Mutex") || analysis.IsNamedType(t, "sync", "RWMutex")
}

// checker carries the per-function lock state.
type checker struct {
	pass      *analysis.Pass
	contracts map[types.Object]fieldContract
	held      map[string]bool       // "m.mu" -> locked on the current path
	fresh     map[types.Object]bool // vars assigned from composite literals here
	initOnly  bool                  // //cfsf:init-only function
	// reported dedupes per selector node: assignment targets are visited
	// by both checkWrite (chain walk) and checkExpr (read scan).
	reported map[*ast.SelectorExpr]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, contracts map[types.Object]fieldContract) {
	c := &checker{
		pass:      pass,
		contracts: contracts,
		held:      map[string]bool{},
		fresh:     map[types.Object]bool{},
		reported:  map[*ast.SelectorExpr]bool{},
	}
	if a, ok := analysis.FuncAnnotation(fd.Doc, "locked"); ok {
		// The first word names the mutex; anything after it is the
		// justification (why the caller holds it / why the value is
		// unpublished).
		mutex, _, _ := strings.Cut(a.Arg, " ")
		if mutex == "" {
			pass.Reportf(a.Pos, "//cfsf:locked requires the mutex name")
		} else if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			c.held[fd.Recv.List[0].Names[0].Name+"."+mutex] = true
		}
	}
	if a, ok := analysis.FuncAnnotation(fd.Doc, "init-only"); ok {
		c.initOnly = pass.JustificationOrReport(a)
	}
	c.stmts(fd.Body.List)
}

// stmts walks a statement list in source order, updating lock state and
// checking every field access. Branch bodies share (and persist) the
// state — an over-approximation that matches the straight-line
// lock-use idiom this repo follows.
func (c *checker) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		c.stmt(stmt)
	}
}

func (c *checker) stmt(stmt ast.Stmt) {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if !c.lockCall(v.X, false) {
			c.checkExpr(v.X)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; any
		// other deferred call is checked with the current state.
		if !c.lockCall(v.Call, true) {
			c.checkExpr(v.Call)
		}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			c.checkExpr(rhs)
		}
		c.trackFresh(v)
		for _, lhs := range v.Lhs {
			c.checkWrite(lhs)
			c.checkExpr(lhs)
		}
	case *ast.IncDecStmt:
		c.checkWrite(v.X)
		c.checkExpr(v.X)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						c.checkExpr(val)
					}
					c.trackFreshSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			c.checkExpr(r)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		c.checkExpr(v.Cond)
		// A branch that ends in return/break/continue/panic never reaches
		// the statements after the if: its lock changes (the early-return
		// `mu.Unlock(); return` idiom) must not leak onto the fall-through
		// path.
		saved := copyHeld(c.held)
		c.stmts(v.Body.List)
		if terminates(v.Body.List) {
			c.held = saved
		}
		if v.Else != nil {
			saved = copyHeld(c.held)
			c.stmt(v.Else)
			if blk, ok := v.Else.(*ast.BlockStmt); ok && terminates(blk.List) {
				c.held = saved
			}
		}
	case *ast.ForStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		if v.Cond != nil {
			c.checkExpr(v.Cond)
		}
		c.stmts(v.Body.List)
		if v.Post != nil {
			c.stmt(v.Post)
		}
	case *ast.RangeStmt:
		c.checkExpr(v.X)
		c.stmts(v.Body.List)
	case *ast.BlockStmt:
		c.stmts(v.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		if v.Tag != nil {
			c.checkExpr(v.Tag)
		}
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.checkExpr(e)
				}
				c.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		c.stmt(v.Assign)
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm)
				}
				c.stmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		c.checkExpr(v.Call)
	case *ast.SendStmt:
		c.checkExpr(v.Chan)
		c.checkExpr(v.Value)
	case *ast.LabeledStmt:
		c.stmt(v.Stmt)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// terminates reports whether a statement list always leaves the
// enclosing flow: its last statement is a return, a branch
// (break/continue/goto), or a panic call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// lockCall updates lock state if e is a mutex Lock/Unlock call on a
// field selector; it reports true when the call was lock management.
func (c *checker) lockCall(e ast.Expr, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := c.pass.Info.TypeOf(sel.X)
	if !isMutex(recv) {
		return false
	}
	key := analysis.ExprString(sel.X)
	if key == "" {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		c.held[key] = true
		return true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(c.held, key)
		}
		return true
	case "TryLock", "TryRLock":
		// The result decides; treat as acquired (over-approximate).
		c.held[key] = true
		return true
	}
	return false
}

// trackFresh records LHS variables assigned from composite literals
// (construction sites: the value is not yet published).
func (c *checker) trackFresh(v *ast.AssignStmt) {
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i, rhs := range v.Rhs {
		if !isCompositeLit(rhs) {
			continue
		}
		if id, ok := v.Lhs[i].(*ast.Ident); ok {
			if obj := c.pass.Info.Defs[id]; obj != nil {
				c.fresh[obj] = true
			} else if obj := c.pass.Info.Uses[id]; obj != nil {
				c.fresh[obj] = true
			}
		}
	}
}

func (c *checker) trackFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, val := range vs.Values {
		if !isCompositeLit(val) {
			continue
		}
		if obj := c.pass.Info.Defs[vs.Names[i]]; obj != nil {
			c.fresh[obj] = true
		}
	}
}

func isCompositeLit(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// checkExpr checks every guarded-field read reachable in e. Function
// literals are skipped: a closure runs later, possibly on another
// goroutine, so the current lock state does not apply — their bodies
// would need their own contracts (none of the annotated code accesses
// guarded fields from closures).
func (c *checker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		c.checkSelector(sel, false)
		return true
	})
}

// checkWrite checks an assignment target: immutable-field writes and
// guarded-field writes alike. The target may be nested (x.stats.Field,
// x.shards[i].Count): every selector on the chain is checked.
func (c *checker) checkWrite(lhs ast.Expr) {
	e := lhs
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			c.checkSelector(v, true)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return
		}
	}
}

// checkSelector verifies one field access against its contract.
func (c *checker) checkSelector(sel *ast.SelectorExpr, write bool) {
	s, ok := c.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	contract, ok := c.contracts[s.Obj()]
	if !ok {
		return
	}
	root := analysis.RootIdent(sel.X)
	if root != nil {
		if obj := c.pass.Info.Uses[root]; obj != nil && c.fresh[obj] {
			return // construction site: not yet published
		}
	}
	if c.reported[sel] {
		return
	}
	if contract.immutable && write && !c.initOnly {
		c.reported[sel] = true
		c.pass.Reportf(sel.Pos(),
			"write to immutable field %s of a published value: copy-on-write requires building a fresh value and swapping at the publication point (or //cfsf:init-only <why> on a pre-publication helper)",
			fmt.Sprintf("%s.%s", typeName(s.Recv()), s.Obj().Name()))
	}
	if contract.mutex != "" {
		base := analysis.ExprString(sel.X)
		if base == "" || !c.held[base+"."+contract.mutex] {
			c.reported[sel] = true
			c.pass.Reportf(sel.Pos(),
				"guarded field %s accessed without %s.%s held on the local path (lock it, or declare the contract with //cfsf:locked %s on the enclosing function)",
				s.Obj().Name(), baseOr(base, "receiver"), contract.mutex, contract.mutex)
		}
	}
}

func baseOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
