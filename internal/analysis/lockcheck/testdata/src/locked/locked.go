// Package locked exercises the lockcheck analyzer.
package locked

import "sync"

// Counter guards a field with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int //cfsf:guarded-by mu
}

// Inc locks across the access: legal.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Get reads without the lock: flagged.
func (c *Counter) Get() int {
	return c.n // want "guarded field n accessed without c.mu held"
}

// reset declares the caller-holds-the-lock contract: legal.
//
//cfsf:locked mu
func (c *Counter) reset() {
	c.n = 0
}

// double unlocks and then keeps writing: flagged.
func (c *Counter) double() {
	c.mu.Lock()
	c.n *= 2
	c.mu.Unlock()
	c.n++ // want "guarded field n accessed without c.mu held"
}

// earlyReturn uses the unlock-and-bail idiom: the lock stays held on the
// fall-through path, so the later access is legal.
func (c *Counter) earlyReturn(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// fresh builds an unpublished value: construction writes are legal.
func fresh(start int) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

// Gauge uses an RWMutex and a read lock.
type Gauge struct {
	rw sync.RWMutex
	v  float64 //cfsf:guarded-by rw
}

// Load read-locks: legal.
func (g *Gauge) Load() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

// Peek skips the lock: flagged.
func (g *Gauge) Peek() float64 {
	return g.v // want "guarded field v accessed without g.rw held"
}

// Bad annotates a mutex that does not exist on the struct.
type Bad struct {
	n int //cfsf:guarded-by missing // want "does not name a sync.Mutex/RWMutex field"
}

// Config is plain data.
type Config struct {
	Alpha float64
}

// Model is copy-on-write: published values are never mutated.
type Model struct {
	cfg Config    //cfsf:immutable
	gis []float64 //cfsf:immutable
}

// Train builds a fresh model: construction writes are legal.
func Train(cfg Config) *Model {
	m := &Model{cfg: cfg}
	m.gis = make([]float64, 8)
	return m
}

// freshVar constructs through a var declaration: legal.
func freshVar(cfg Config) Model {
	var m = Model{cfg: cfg}
	m.gis = []float64{1}
	return m
}

// swapInPlace replaces state on a published model: flagged.
func swapInPlace(m *Model, gis []float64) {
	m.gis = gis // want "write to immutable field Model.gis of a published value"
}

// poisonElement writes through an immutable field: flagged.
func poisonElement(m *Model) {
	m.gis[0] = 1 // want "write to immutable field Model.gis of a published value"
}

// rebuild runs before publication by contract: legal.
//
//cfsf:init-only called from Train before the model pointer escapes
func rebuild(m *Model) {
	m.gis = make([]float64, 8)
}

// read only reads: immutable fields are freely readable.
func read(m *Model) float64 {
	return m.cfg.Alpha + m.gis[0]
}
