// Package guarded declares field contracts that the guarduser fixture
// consumes across the package boundary, exercising lockcheck's fact
// export.
package guarded

import "sync"

// Store is shared state whose contracts travel as facts.
type Store struct {
	// Mu orders access to Count.
	Mu sync.Mutex
	// Count is the live counter.
	Count int //cfsf:guarded-by Mu
	// Limits never changes after construction.
	Limits []int //cfsf:immutable
}

// New builds a Store; the composite literal is a construction site.
func New(limits []int) *Store {
	return &Store{Limits: limits}
}
