// Package guarduser accesses guarded.Store fields from outside the
// declaring package: the contracts arrive as imported facts.
package guarduser

import "guarded"

// read holds the mutex: legal.
func read(s *guarded.Store) int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.Count
}

// sneak reads the guarded field without the lock: flagged.
func sneak(s *guarded.Store) int {
	return s.Count // want "guarded field Count accessed without s.Mu held"
}

// bump writes it without the lock: flagged.
func bump(s *guarded.Store) {
	s.Mu.Lock()
	s.Count++
	s.Mu.Unlock()
	s.Count++ // want "guarded field Count accessed without s.Mu held"
}

// clobber mutates an immutable field of a published value: flagged.
func clobber(s *guarded.Store) {
	s.Limits[0] = 0 // want "write to immutable field Store.Limits"
}

// construct writes during construction: legal (fresh value).
func construct(limits []int) *guarded.Store {
	s := &guarded.Store{}
	s.Limits = limits
	s.Count = 1
	return s
}
