package analysis

// The scheduler. Packages are analyzed in dependency order — a package
// runs only after every package it imports (within the loaded set) has
// run and sealed its facts — and independent packages run in parallel.
// Within one package, analyzers run sequentially and share the
// annotation index and call graph.

import (
	"fmt"
	"runtime"
	"sync"
)

// RunOptions configures one RunAnalyzers invocation.
type RunOptions struct {
	// Filter decides per (analyzer, package path); nil runs every
	// analyzer on every package.
	Filter func(a *Analyzer, pkgPath string) bool
	// Workers bounds concurrent package passes: 1 is sequential (in
	// dependency order), <= 0 selects GOMAXPROCS.
	Workers int
}

// Program is the whole-run view handed to Finish hooks after every
// package pass has completed.
type Program struct {
	store *FactStore
}

// PackageFacts returns every sealed fact the named analyzer exported,
// across all analyzed packages, in deterministic order.
func (prog *Program) PackageFacts(analyzer string) ([]ProgramFact, error) {
	return prog.store.packageFacts(analyzer)
}

// RunAnalyzers applies every analyzer to every package in dependency
// order and returns the combined diagnostics sorted by position,
// including any produced by Finish hooks.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	if err := RegisterFactTypes(analyzers); err != nil {
		return nil, err
	}
	store := NewFactStore()

	// Dependency edges within the loaded set, by import path. The
	// imports recorded during type checking are export-data packages;
	// their paths match the source-loaded targets'.
	index := make(map[string]int, len(pkgs))
	for i, p := range pkgs {
		index[p.Path] = i
	}
	indeg := make([]int, len(pkgs))
	dependents := make([][]int, len(pkgs))
	for i, p := range pkgs {
		for _, imp := range p.Types.Imports() {
			if j, ok := index[imp.Path()]; ok && j != i {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) && len(pkgs) > 0 {
		workers = len(pkgs)
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []int // indices with indeg 0, not yet claimed
		done     int
		firstErr error
		perPkg   = make([][]Diagnostic, len(pkgs))
	)
	for i := range pkgs {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}

	runPkg := func(i int) ([]Diagnostic, error) {
		pkg := pkgs[i]
		var diags []Diagnostic
		var ann *Annotations
		var cg *CallGraph
		for _, a := range analyzers {
			if opts.Filter != nil && !opts.Filter(a, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ann:      ann,
				cg:       cg,
				store:    store,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			// Share the per-package annotation index and call graph.
			ann, cg = pass.Annotations(), pass.cg
		}
		if err := store.Seal(pkg.Path); err != nil {
			return nil, err
		}
		return diags, nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && done < len(pkgs) && firstErr == nil {
					cond.Wait()
				}
				if firstErr != nil || done >= len(pkgs) {
					mu.Unlock()
					return
				}
				i := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				diags, err := runPkg(i)

				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				perPkg[i] = diags
				done++
				for _, d := range dependents[i] {
					indeg[d]--
					if indeg[d] == 0 {
						ready = append(ready, d)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	prog := &Program{store: store}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		diags = append(diags, a.Finish(prog)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}
