// Package cowcheck enforces the //cfsf:cow contract on copy-on-write
// mirror fields (Model.topM, Model.recCache, recEntry backing arrays):
// the field may be written only before its owner is published —
// published meaning stored through a sync/atomic typed Store/Swap or
// assigned into a longer-lived structure (the under-lock swap). After
// that point the value is shared with concurrent readers that rely on
// it never changing; the fix for "I need to change it" is always to
// build a fresh value and swap at the publication point.
//
// Compared to lockcheck's //cfsf:immutable this check:
//
//   - descends into function literals, inheriting the enclosing
//     context — the repo's builders write mirrors inside parallel.For
//     closures, which //cfsf:immutable cannot see;
//   - tracks the publication point inside a function: even an
//     //cfsf:init-only builder may not touch a cow field of a value it
//     has already Stored;
//   - follows writes across calls: a function that writes cow fields
//     of its receiver or parameters exports CowWriterFact, and calling
//     it with a possibly-published argument is flagged at the call
//     site, in any package.
//
// A write is legal when the root value is fresh (built from a
// composite literal in this function and not yet published) or the
// function is annotated //cfsf:init-only <why> (it runs before
// publication by contract). Escape: //cfsf:cow-ok <why> on the line.
package cowcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"cfsf/internal/analysis"
)

// Analyzer is the cowcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "cowcheck",
	Doc:       "forbids writes to //cfsf:cow fields after the owning value's publication point",
	Run:       run,
	FactTypes: []analysis.Fact{(*CowFieldFact)(nil), (*CowWriterFact)(nil)},
}

// CowFieldFact marks one field as copy-on-write.
type CowFieldFact struct {
	Name string
}

// AFact marks CowFieldFact as a fact.
func (*CowFieldFact) AFact() {}

// CowWriterFact: the function writes cow fields reachable from the
// listed parameters (flattened index: receiver first). Callers must
// pass fresh or pre-publication values.
type CowWriterFact struct {
	Params []int
	Fields []string // written field names, for diagnostics
}

// AFact marks CowWriterFact as a fact.
func (*CowWriterFact) AFact() {}

func run(pass *analysis.Pass) error {
	cow := collectCow(pass)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase A: export CowWriterFact summaries to a fixpoint so calls to
	// writers declared later in the package resolve.
	for round := 0; ; round++ {
		changed := false
		for _, fd := range decls {
			if newFnChecker(pass, cow, fd, false).walk() {
				changed = true
			}
		}
		if !changed || round >= 4 {
			break
		}
	}
	// Phase B: report.
	for _, fd := range decls {
		newFnChecker(pass, cow, fd, true).walk()
	}
	return nil
}

// collectCow indexes //cfsf:cow annotated fields and exports each as a
// fact for dependent packages.
func collectCow(pass *analysis.Pass) map[types.Object]bool {
	cow := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := analysis.FieldAnnotation(field, "cow"); !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						cow[obj] = true
						pass.ExportObjectFact(obj, &CowFieldFact{Name: name.Name})
					}
				}
			}
			return true
		})
	}
	return cow
}

type fnChecker struct {
	pass   *analysis.Pass
	cow    map[types.Object]bool
	fd     *ast.FuncDecl
	fn     *types.Func
	report bool

	initOnly  bool
	fresh     map[types.Object]bool // composite-literal locals
	published map[types.Object]bool // stored atomically or into a structure
	paramIdx  map[types.Object]int  // flattened parameter index

	writes   map[int]map[string]bool // param index -> cow fields written
	imported map[types.Object]bool   // cross-package cow-field cache
	reported map[token.Pos]bool
	exported bool
}

func newFnChecker(pass *analysis.Pass, cow map[types.Object]bool, fd *ast.FuncDecl, report bool) *fnChecker {
	c := &fnChecker{
		pass:      pass,
		cow:       cow,
		fd:        fd,
		report:    report,
		fresh:     map[types.Object]bool{},
		published: map[types.Object]bool{},
		paramIdx:  map[types.Object]int{},
		writes:    map[int]map[string]bool{},
		imported:  map[types.Object]bool{},
		reported:  map[token.Pos]bool{},
	}
	c.fn, _ = pass.Info.Defs[fd.Name].(*types.Func)
	if _, ok := analysis.FuncAnnotation(fd.Doc, "init-only"); ok {
		c.initOnly = true // the justification string is enforced by lockcheck
	}
	idx := 0
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					c.paramIdx[obj] = idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	return c
}

func (c *fnChecker) walk() bool {
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			c.trackFresh(v)
			for _, lhs := range v.Lhs {
				c.checkWrite(lhs)
			}
			for _, rhs := range v.Rhs {
				c.trackPublishAssign(v.Lhs, rhs)
			}
		case *ast.ValueSpec:
			c.trackFreshSpec(v)
		case *ast.IncDecStmt:
			c.checkWrite(v.X)
		case *ast.CallExpr:
			c.checkCall(v)
		}
		return true
	})
	if c.fn != nil && !c.report && len(c.writes) > 0 {
		params := make([]int, 0, len(c.writes))
		fieldSet := map[string]bool{}
		for p, fields := range c.writes {
			params = append(params, p)
			for f := range fields {
				fieldSet[f] = true
			}
		}
		sort.Ints(params)
		fields := make([]string, 0, len(fieldSet))
		for f := range fieldSet {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		var have CowWriterFact
		if !(c.pass.ImportObjectFact(c.fn, &have) && len(have.Params) == len(params) && len(have.Fields) == len(fields)) {
			c.pass.ExportObjectFact(c.fn, &CowWriterFact{Params: params, Fields: fields})
			c.exported = true
		}
	}
	return c.exported
}

func (c *fnChecker) trackFresh(v *ast.AssignStmt) {
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i, rhs := range v.Rhs {
		id, ok := v.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		switch {
		case isCompositeLit(rhs):
			c.fresh[obj] = true
		case c.atomicLoaded(rhs):
			// m := ptr.Load(): m aliases the live published value.
			c.published[obj] = true
		}
	}
}

func (c *fnChecker) trackFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, val := range vs.Values {
		if !isCompositeLit(val) {
			continue
		}
		if obj := c.pass.Info.Defs[vs.Names[i]]; obj != nil {
			c.fresh[obj] = true
		}
	}
}

func isCompositeLit(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// trackPublishAssign marks a fresh value published when it is assigned
// into something that outlives the function: a field of a non-fresh
// value, or a package-level variable (the under-lock swap idiom).
func (c *fnChecker) trackPublishAssign(lhs []ast.Expr, rhs ast.Expr) {
	obj := c.rootObj(rhs)
	if obj == nil || !(c.fresh[obj] || c.isParam(obj)) {
		return
	}
	for _, l := range lhs {
		switch v := ast.Unparen(l).(type) {
		case *ast.SelectorExpr:
			if root := c.rootObj(v.X); root == nil || !c.fresh[root] {
				c.published[obj] = true
			}
		case *ast.Ident:
			if o := c.objOf(v); o != nil {
				if vr, ok := o.(*types.Var); ok && vr.Parent() == c.pass.Pkg.Scope() {
					c.published[obj] = true
				}
			}
		case *ast.IndexExpr:
			if root := c.rootObj(v.X); root == nil || !c.fresh[root] {
				c.published[obj] = true
			}
		}
	}
}

func (c *fnChecker) isParam(obj types.Object) bool {
	_, ok := c.paramIdx[obj]
	return ok
}

func (c *fnChecker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.Info.Defs[id]
}

func (c *fnChecker) rootObj(e ast.Expr) types.Object {
	if root := analysis.RootIdent(e); root != nil {
		return c.objOf(root)
	}
	return nil
}

// isCowField resolves whether a selected field carries the cow
// contract, locally or via imported fact.
func (c *fnChecker) isCowField(obj types.Object) bool {
	if c.cow[obj] {
		return true
	}
	if known, ok := c.imported[obj]; ok {
		return known
	}
	var f CowFieldFact
	known := obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(obj, &f)
	c.imported[obj] = known
	return known
}

// checkWrite walks an assignment target's selector chain looking for
// cow fields.
func (c *fnChecker) checkWrite(lhs ast.Expr) {
	e := lhs
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			c.checkSelectorWrite(v)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return
		}
	}
}

func (c *fnChecker) checkSelectorWrite(sel *ast.SelectorExpr) {
	s, ok := c.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || !c.isCowField(s.Obj()) {
		return
	}
	root := c.rootObj(sel.X)
	if root == nil {
		// Call-rooted chain, e.g. ptr.Load().f = x.
		if c.atomicLoaded(baseExpr(sel.X)) {
			c.reportPublished(sel.Pos(), s.Obj().Name())
		}
		return
	}
	if c.published[root] {
		c.reportPublished(sel.Pos(), s.Obj().Name())
		return
	}
	if c.fresh[root] {
		return
	}
	// Writes to a parameter's cow field become a summary: each call
	// site decides legality. This holds for init-only builders too, so
	// the obligation propagates to their callers.
	if idx, ok := c.paramIdx[root]; ok {
		c.recordWrite(idx, s.Obj().Name())
		return
	}
	if c.initOnly {
		return
	}
	if isPackageLevelVar(root) {
		c.violation(sel.Pos(),
			"write to copy-on-write field %s of package-level %s: cow fields may only be written on a fresh value or in an //cfsf:init-only builder",
			s.Obj().Name(), root.Name())
	}
	// Other locals are presumed unpublished: whoever produced them is
	// checked at its own publication sites.
}

func (c *fnChecker) recordWrite(idx int, field string) {
	set := c.writes[idx]
	if set == nil {
		set = map[string]bool{}
		c.writes[idx] = set
	}
	set[field] = true
}

func (c *fnChecker) reportPublished(pos token.Pos, field string) {
	c.violation(pos,
		"write to copy-on-write field %s after its value was published: readers already share it (build a fresh value and swap at the publication point)",
		field)
}

// checkCall handles the two call-site rules: atomic Store/Swap marks
// its argument published, and calling a CowWriterFact function with a
// possibly-published argument is a violation.
func (c *fnChecker) checkCall(call *ast.CallExpr) {
	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil {
		return
	}
	if isAtomicStore(fn) {
		for _, arg := range call.Args {
			if obj := c.rootObj(arg); obj != nil {
				c.published[obj] = true
			}
		}
		return
	}
	var w CowWriterFact
	if !c.pass.ImportObjectFact(fn, &w) {
		return
	}
	flat := c.flatArgs(call, fn)
	for _, i := range w.Params {
		if i >= len(flat) {
			continue
		}
		obj := c.rootObj(flat[i])
		if obj == nil {
			if c.atomicLoaded(baseExpr(flat[i])) {
				c.violation(flat[i].Pos(),
					"%s writes copy-on-write fields (%v) of this argument, which was loaded from the live published pointer", fn.Name(), w.Fields)
			}
			continue
		}
		if c.published[obj] {
			c.violation(flat[i].Pos(),
				"%s writes copy-on-write fields (%v) of this argument, which was already published", fn.Name(), w.Fields)
			continue
		}
		if c.fresh[obj] || c.initOnly {
			continue
		}
		if idx, ok := c.paramIdx[obj]; ok {
			// Propagate the obligation to our own callers.
			for _, f := range w.Fields {
				c.recordWrite(idx, f)
			}
			continue
		}
		if isPackageLevelVar(obj) {
			c.violation(flat[i].Pos(),
				"%s writes copy-on-write fields (%v) of package-level %s, which is shared by definition (build a fresh value and swap it in)",
				fn.Name(), w.Fields, obj.Name())
		}
	}
}

// baseExpr strips the selector/index/star chain down to its base
// expression (the one RootIdent gave up on).
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return v
		}
	}
}

// atomicLoaded reports whether e is a direct call of an atomic typed
// Load method — its result is the live published value by definition.
func (c *fnChecker) atomicLoaded(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(c.pass.Info, call)
	return fn != nil && fn.Name() == "Load" && isAtomicMethod(fn)
}

func isPackageLevelVar(obj types.Object) bool {
	vr, ok := obj.(*types.Var)
	return ok && !vr.IsField() && vr.Parent() != nil && vr.Parent().Parent() == types.Universe
}

func (c *fnChecker) flatArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := c.pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
	}
	return call.Args
}

// isAtomicStore matches Store/Swap methods of sync/atomic typed
// wrappers — the publication point.
func isAtomicStore(fn *types.Func) bool {
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
		return isAtomicMethod(fn)
	}
	return false
}

// isAtomicMethod reports whether fn is a method of a sync/atomic typed
// wrapper (atomic.Pointer[T], atomic.Uint64, ...).
func isAtomicMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

func (c *fnChecker) violation(pos token.Pos, format string, args ...any) {
	if !c.report || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	if a, ok := c.pass.Annotations().Covering(c.pass.Fset, pos, "cow-ok"); ok {
		c.pass.JustificationOrReport(a)
		return
	}
	c.pass.Reportf(pos, format, args...)
}
