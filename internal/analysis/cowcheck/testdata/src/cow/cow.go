// Package cow exercises the single-package cow contract: fresh
// construction, init-only builders writing inside closures, the
// publication point (atomic Store and structure escape), and writes to
// the live value loaded back out.
package cow

import "sync/atomic"

type model struct {
	topM [][]int //cfsf:cow swapped whole via ptr.Store; rows shared with readers
	rank []int   //cfsf:cow same contract
}

var ptr atomic.Pointer[model]

type holder struct{ cur *model }

var slot holder

// build writes cow fields of a fresh composite literal: legal.
func build(n int) *model {
	m := &model{}
	m.topM = make([][]int, n)
	for i := range m.topM {
		m.topM[i] = []int{i}
	}
	return m
}

// run stands in for parallel.For: it invokes the closure synchronously.
func run(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// buildParallel mirrors Model.buildTopM: an init-only builder writing
// its receiver's cow field inside a worker closure. The closure
// inherits the builder's context, so the writes are legal here and the
// obligation moves to buildParallel's call sites.
//
//cfsf:init-only called on models that have not been published yet
func (m *model) buildParallel(n int) {
	run(n, func(i int) {
		m.topM[i] = []int{i}
	})
}

// publishThenWrite mutates a value it already Stored.
func publishThenWrite() {
	m := &model{}
	m.rank = []int{1}
	ptr.Store(m)
	m.rank = []int{2} // want "after its value was published"
}

// escapeThenWrite publishes by storing into a package-level structure
// (the under-lock swap idiom) and then keeps writing.
func escapeThenWrite(n int) {
	m := &model{}
	slot.cur = m
	m.rank = []int{n} // want "after its value was published"
}

// mutateLoaded writes the live value handed back by Load.
func mutateLoaded() {
	m := ptr.Load()
	m.rank = nil // want "after its value was published"
}

// mutateLoadedInline writes through the Load call directly.
func mutateLoadedInline() {
	ptr.Load().rank = nil // want "after its value was published"
}

// setRank writes a parameter's cow field: not a local violation, but
// it becomes a writer summary checked at every call site.
func setRank(m *model, r []int) {
	m.rank = r
}

// callerFresh passes a fresh value to the writer: legal.
func callerFresh(n int) *model {
	m := &model{}
	setRank(m, []int{n})
	m.buildParallel(n)
	return m
}

// callerLoaded hands the live value to the writer.
func callerLoaded() {
	setRank(ptr.Load(), nil) // want "loaded from the live published pointer"
}

// callerPublished stores first, then calls the writer.
func callerPublished(n int) {
	m := &model{}
	ptr.Store(m)
	m.buildParallel(n) // want "writes copy-on-write fields"
}

// forward propagates the obligation through a middleman: forward's own
// summary makes callerLoadedForward's call site the violation.
func forward(m *model) {
	setRank(m, nil)
}

func callerLoadedForward() {
	m := ptr.Load()
	forward(m) // want "already published"
}

// approximate demonstrates the escape hatch.
func approximate() {
	m := ptr.Load()
	m.rank = m.rank[:0] //cfsf:cow-ok fixture: deliberate in-place trim to exercise the escape hatch
}
