// Package cowuser drives cowapi from another package: both the cow
// field contract and the writer summary cross the boundary as facts.
package cowuser

import (
	"sync/atomic"

	"cowapi"
)

var cur atomic.Pointer[cowapi.Model]

// swapIn is the intended lifecycle: build, rebuild, publish.
func swapIn(n int) {
	m := cowapi.NewModel(n)
	m.Rebuild(n)
	cur.Store(m)
}

// stompLive writes a cow field of the live model.
func stompLive() {
	m := cur.Load()
	m.TopM[0] = nil // want "after its value was published"
}

// rebuildLive hands the live model to an imported writer.
func rebuildLive(n int) {
	cur.Load().Rebuild(n) // want "loaded from the live published pointer"
}

// rebuildPublished publishes first, then rebuilds.
func rebuildPublished(n int) {
	m := &cowapi.Model{}
	cur.Store(m)
	m.Rebuild(n) // want "writes copy-on-write fields"
}
