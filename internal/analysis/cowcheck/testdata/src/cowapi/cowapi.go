// Package cowapi exports a cow-annotated type and its builders so a
// dependent package exercises CowFieldFact and CowWriterFact across
// the package boundary.
package cowapi

type Model struct {
	TopM [][]int //cfsf:cow swapped whole at the host's publication point
}

// NewModel builds a fresh model.
func NewModel(n int) *Model {
	m := &Model{}
	m.TopM = make([][]int, n)
	return m
}

// Rebuild rewrites the mirror in place; callers must only hand it
// unpublished values.
//
//cfsf:init-only called on models that have not been published yet
func (m *Model) Rebuild(n int) {
	for i := range m.TopM {
		m.TopM[i] = []int{n}
	}
}
