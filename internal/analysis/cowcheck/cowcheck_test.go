package cowcheck_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/cowcheck"
)

func TestCow(t *testing.T) {
	analysistest.Run(t, "testdata", cowcheck.Analyzer, "cow")
}

func TestCowCrossPackage(t *testing.T) {
	// cowapi first so its field and writer facts are sealed before
	// cowuser's pass imports them.
	analysistest.Run(t, "testdata", cowcheck.Analyzer, "cowapi", "cowuser")
}
