package analysis

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// swapGoList substitutes the go-list invocation for the duration of the
// test. The hook is package state, so these tests must not be parallel.
func swapGoList(t *testing.T, fn func(dir string, args []string) ([]byte, error)) {
	t.Helper()
	orig := goListOutput
	goListOutput = fn
	t.Cleanup(func() { goListOutput = orig })
}

func TestGoListMalformedOutput(t *testing.T) {
	swapGoList(t, func(string, []string) ([]byte, error) {
		return []byte(`{"ImportPath": "cfsf/internal/bro`), nil // truncated JSON
	})
	_, err := LoadPackages(".", "./...")
	if err == nil || !strings.Contains(err.Error(), "decode go list output") {
		t.Fatalf("LoadPackages on malformed go list output: err = %v, want decode error", err)
	}
}

func TestGoListCommandFailure(t *testing.T) {
	// A bare temp dir is not inside a module, so the real `go list`
	// exits non-zero and the loader must surface its stderr.
	dir := t.TempDir()
	_, err := LoadPackages(dir, "./...")
	if err == nil || !strings.Contains(err.Error(), "go list") {
		t.Fatalf("LoadPackages outside a module: err = %v, want go list failure", err)
	}
}

func TestLoadPackagesSurfacesListError(t *testing.T) {
	swapGoList(t, func(_ string, args []string) ([]byte, error) {
		for _, a := range args {
			if a == "-deps" {
				return nil, nil // dependency pass: nothing to export
			}
		}
		return []byte(`{"ImportPath": "broken/pkg", "Error": {"Err": "build constraints exclude all Go files"}}`), nil
	})
	_, err := LoadPackages(".", "broken/pkg")
	if err == nil || !strings.Contains(err.Error(), "broken/pkg: build constraints exclude all Go files") {
		t.Fatalf("LoadPackages on errored target: err = %v, want the go list error", err)
	}
}

// cannedTarget routes the dependency pass to empty output and the
// target pass to a single listed package rooted at dir.
func cannedTarget(dir, importPath string, goFiles ...string) func(string, []string) ([]byte, error) {
	return func(_ string, args []string) ([]byte, error) {
		for _, a := range args {
			if a == "-deps" {
				return nil, nil
			}
		}
		out := `{"ImportPath": "` + importPath + `", "Dir": "` + dir + `", "Name": "p", "GoFiles": ["` +
			strings.Join(goFiles, `", "`) + `"]}`
		return []byte(out), nil
	}
}

func TestLoadPackagesParseError(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(src, []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	swapGoList(t, cannedTarget(dir, "example/p", "bad.go"))
	_, err := LoadPackages(dir)
	if err == nil || !strings.Contains(err.Error(), "analysis: parse") {
		t.Fatalf("LoadPackages on syntax error: err = %v, want parse error", err)
	}
}

func TestLoadPackagesMissingExportData(t *testing.T) {
	// The dependency pass returns no export entries, so type-checking a
	// file that imports the standard library must fail through
	// exportLookup's "no export data" path.
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\nimport \"os\"\n\nvar _ = os.Args\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	swapGoList(t, cannedTarget(dir, "example/p", "p.go"))
	_, err := LoadPackages(dir)
	if err == nil || !strings.Contains(err.Error(), "analysis: typecheck") ||
		!strings.Contains(err.Error(), `no export data for "os"`) {
		t.Fatalf("LoadPackages without export data: err = %v, want typecheck/no-export-data error", err)
	}
}

func TestLoadPackagesTypecheckError(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\nvar x int = \"not an int\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	swapGoList(t, cannedTarget(dir, "example/p", "p.go"))
	_, err := LoadPackages(dir)
	if err == nil || !strings.Contains(err.Error(), "analysis: typecheck example/p") {
		t.Fatalf("LoadPackages on type error: err = %v, want typecheck error", err)
	}
}

func TestListExportsPropagatesListFailure(t *testing.T) {
	wantErr := errors.New("go list exploded")
	swapGoList(t, func(string, []string) ([]byte, error) { return nil, wantErr })
	if _, err := ListExports("."); !errors.Is(err, wantErr) {
		t.Fatalf("ListExports: err = %v, want %v", err, wantErr)
	}
}

func TestListExportsMapsPaths(t *testing.T) {
	swapGoList(t, func(string, []string) ([]byte, error) {
		return []byte(`{"ImportPath": "fmt", "Export": "/cache/fmt.a"}
{"ImportPath": "os", "Export": "/cache/os.a"}`), nil
	})
	exports, err := ListExports(".", "fmt", "os")
	if err != nil {
		t.Fatal(err)
	}
	if exports["fmt"] != "/cache/fmt.a" || exports["os"] != "/cache/os.a" {
		t.Fatalf("ListExports = %v, want both cache paths mapped", exports)
	}
}
