package poolescape_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, "testdata", poolescape.Analyzer, "pool")
}

func TestPoolEscapeCrossPackage(t *testing.T) {
	// poolapi is listed first so its ownership facts are sealed before
	// pooluser's pass imports them.
	analysistest.Run(t, "testdata", poolescape.Analyzer, "poolapi", "pooluser")
}
