// Package poolescape enforces the ownership contract of sync.Pool
// scratch memory (lmScratchPool, recScratchPool): a value fetched with
// Get is owned exclusively between Get and Put, and memory it backs
// must not outlive the Put — not returned to callers, not stored into
// longer-lived structures, not published through an atomic Store, not
// captured by a goroutine, and not touched again after the Put.
// Violating any of these hands two concurrent requests the same
// buffer, which corrupts results silently (the bug class pooling
// introduced in PR 7).
//
// The analysis is a per-function taint walk with interprocedural
// summaries as facts:
//
//   - DerivesFact on a function whose results alias parameter memory
//     (gatherCandidates returns buf; TopSelect.AppendRanked returns
//     dst) — at a call site the result inherits the argument's taint;
//   - PutsFact on a function that returns a parameter to a pool
//     (putRecScratch) — after the call the argument is dead;
//   - GetsFact on an annotated handout function that returns pool
//     memory to an owning caller — its results are taint sources.
//
// Aliasing follows Go's backing-array semantics: slicing (b[:0]),
// field selection, &x, type assertions, and append's first argument
// propagate taint; element copies (append's appended values, x[i] of a
// value element, range values) do not. Pointer-typed elements inside
// pooled slices are out of scope.
//
// Escape: //cfsf:pool-escape-ok <why> on the offending line or the
// function's doc comment. A function annotated at the doc level that
// returns pool memory exports GetsFact, so its callers inherit the
// ownership obligation instead of a blind spot.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"

	"cfsf/internal/analysis"
	"cfsf/internal/analysis/lockstate"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name:      "poolescape",
	Doc:       "flags sync.Pool scratch memory that escapes or is used past its Put",
	Run:       run,
	FactTypes: []analysis.Fact{(*DerivesFact)(nil), (*PutsFact)(nil), (*GetsFact)(nil)},
}

// DerivesFact: the function's results may alias the memory of the
// listed parameters (flattened index: receiver first, then parameters).
type DerivesFact struct {
	Params []int
}

// AFact marks DerivesFact as a fact.
func (*DerivesFact) AFact() {}

// PutsFact: the function returns the listed parameters (flattened
// index) to a sync.Pool; the caller's arguments are dead afterwards.
type PutsFact struct {
	Params []int
}

// AFact marks PutsFact as a fact.
func (*PutsFact) AFact() {}

// GetsFact: the function hands out pool-owned memory (an annotated
// handout like a Get wrapper); call results are taint sources.
type GetsFact struct {
	Pool string // description, for diagnostics
}

// AFact marks GetsFact as a fact.
func (*GetsFact) AFact() {}

// taint tracks which flattened parameters and which per-function pool
// Get sites a value may alias. Both are bitmasks (functions with more
// than 64 parameters or Gets saturate into the last bit, erring loud).
type taint struct {
	params uint64
	pools  uint64
}

func (t taint) or(u taint) taint { return taint{t.params | u.params, t.pools | u.pools} }
func (t taint) empty() bool      { return t.params == 0 && t.pools == 0 }

func bitList(mask uint64) []int {
	var out []int
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << i
	}
	return out
}

func maskOf(list []int) uint64 {
	var m uint64
	for _, i := range list {
		if i < 64 {
			m |= 1 << i
		} else {
			m |= 1 << 63
		}
	}
	return m
}

func run(pass *analysis.Pass) error {
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase A: compute summaries to a fixpoint so intra-package calls to
	// functions declared later (or mutually recursive helpers) resolve.
	// Each round re-walks every function with the facts exported so far;
	// the export set only grows, so the loop terminates.
	for round := 0; ; round++ {
		changed := false
		for _, fd := range decls {
			if newFnChecker(pass, fd, false).walk() {
				changed = true
			}
		}
		if !changed || round >= 4 {
			break
		}
	}
	// Phase B: report violations with the full summary set in hand.
	for _, fd := range decls {
		newFnChecker(pass, fd, true).walk()
	}
	return nil
}

// fnChecker walks one function body in source order.
type fnChecker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	fn     *types.Func
	report bool

	vars      map[types.Object]taint
	deadPools uint64 // Get sites already Put on this path
	deferred  uint64 // Get sites Put by a deferred call (dead at return)
	nextPool  uint

	retParams uint64 // param memory aliased by some result
	retPools  bool   // some result aliases pool memory
	putParams uint64 // params this function returns to a pool

	annOK    bool // //cfsf:pool-escape-ok on the function doc
	handout  bool // a return site carries the annotation instead
	reported map[token.Pos]bool
	exported bool // a new fact was exported this walk
}

func newFnChecker(pass *analysis.Pass, fd *ast.FuncDecl, report bool) *fnChecker {
	c := &fnChecker{
		pass:     pass,
		fd:       fd,
		report:   report,
		vars:     map[types.Object]taint{},
		reported: map[token.Pos]bool{},
	}
	c.fn, _ = pass.Info.Defs[fd.Name].(*types.Func)
	if a, ok := analysis.FuncAnnotation(fd.Doc, "pool-escape-ok"); ok {
		c.annOK = pass.JustificationOrReport(a)
	}
	// Seed parameters (receiver first) with their own taint bit.
	idx := 0
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					c.vars[obj] = taint{params: 1 << min63(idx)}
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	return c
}

func min63(i int) int {
	if i > 63 {
		return 63
	}
	return i
}

// walk runs the function and exports its summary; it reports whether a
// fact not previously exported was produced.
func (c *fnChecker) walk() bool {
	c.stmts(c.fd.Body.List)
	if c.fn != nil && !c.report {
		if c.retParams != 0 {
			c.exportOnce(&DerivesFact{Params: bitList(c.retParams)})
		}
		if c.putParams != 0 {
			c.exportOnce(&PutsFact{Params: bitList(c.putParams)})
		}
		if c.retPools && (c.annOK || c.handout) {
			c.exportOnce(&GetsFact{Pool: c.fn.Name()})
		}
	}
	return c.exported
}

// exportOnce exports f unless an identical fact is already in place.
func (c *fnChecker) exportOnce(f analysis.Fact) {
	switch want := f.(type) {
	case *DerivesFact:
		var have DerivesFact
		if c.pass.ImportObjectFact(c.fn, &have) && maskOf(have.Params) == maskOf(want.Params) {
			return
		}
	case *PutsFact:
		var have PutsFact
		if c.pass.ImportObjectFact(c.fn, &have) && maskOf(have.Params) == maskOf(want.Params) {
			return
		}
	case *GetsFact:
		var have GetsFact
		if c.pass.ImportObjectFact(c.fn, &have) {
			return
		}
	}
	c.pass.ExportObjectFact(c.fn, f)
	c.exported = true
}

func (c *fnChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *fnChecker) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		c.expr(v.X)
		c.poolCall(v.X, false)
	case *ast.DeferStmt:
		c.expr(v.Call)
		c.poolCall(v.Call, true)
	case *ast.GoStmt:
		c.goCall(v.Call)
	case *ast.AssignStmt:
		c.assign(v)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt:
		c.ret(v)
	case *ast.IfStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		c.expr(v.Cond)
		// Early-put-and-return branches must not kill the scratch on the
		// fall-through path (same restoration as lockstate).
		savedDead, savedDeferred := c.deadPools, c.deferred
		c.stmts(v.Body.List)
		if lockstate.Terminates(v.Body.List) {
			c.deadPools, c.deferred = savedDead, savedDeferred
		}
		if v.Else != nil {
			savedDead, savedDeferred = c.deadPools, c.deferred
			c.stmt(v.Else)
			if blk, ok := v.Else.(*ast.BlockStmt); ok && lockstate.Terminates(blk.List) {
				c.deadPools, c.deferred = savedDead, savedDeferred
			}
		}
	case *ast.ForStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		if v.Cond != nil {
			c.expr(v.Cond)
		}
		c.stmts(v.Body.List)
		if v.Post != nil {
			c.stmt(v.Post)
		}
	case *ast.RangeStmt:
		c.expr(v.X)
		c.stmts(v.Body.List)
	case *ast.BlockStmt:
		c.stmts(v.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		if v.Tag != nil {
			c.expr(v.Tag)
		}
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.expr(e)
				}
				c.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			c.stmt(v.Init)
		}
		c.stmt(v.Assign)
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm)
				}
				c.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		c.expr(v.Chan)
		c.expr(v.Value)
		if t := c.taintOf(v.Value); t.pools != 0 {
			c.violation(v.Value.Pos(), "pool-backed scratch sent on a channel escapes its Put")
		}
	case *ast.IncDecStmt:
		c.expr(v.X)
	case *ast.LabeledStmt:
		c.stmt(v.Stmt)
	}
}

func (c *fnChecker) valueSpec(vs *ast.ValueSpec) {
	for _, val := range vs.Values {
		c.expr(val)
	}
	if len(vs.Values) == 1 && len(vs.Names) >= 1 {
		t := c.taintOf(vs.Values[0])
		for _, name := range vs.Names {
			c.bind(name, t)
		}
	} else if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			c.bind(name, c.taintOf(vs.Values[i]))
		}
	}
}

func (c *fnChecker) assign(v *ast.AssignStmt) {
	for _, rhs := range v.Rhs {
		c.expr(rhs)
		c.poolCall(rhs, false)
	}
	// Bind taints: n:n assignments map one to one; n:1 (multi-value
	// call) gives every LHS the call's taint — the taintable-kind
	// filter in bind keeps ints and strings clean.
	if len(v.Lhs) == len(v.Rhs) {
		for i, lhs := range v.Lhs {
			c.assignOne(lhs, c.taintOf(v.Rhs[i]))
		}
	} else if len(v.Rhs) == 1 {
		t := c.taintOf(v.Rhs[0])
		for _, lhs := range v.Lhs {
			c.assignOne(lhs, t)
		}
	}
	for _, lhs := range v.Lhs {
		c.expr(lhs)
	}
}

// assignOne records taint flow into one assignment target and checks
// store-escapes: pool memory written somewhere that outlives the Put.
func (c *fnChecker) assignOne(lhs ast.Expr, t taint) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if vr, ok := obj.(*types.Var); ok && vr.Parent() == c.pass.Pkg.Scope() {
			// Package-level variable: anything stored here outlives the Put.
			if t.pools != 0 {
				c.violation(lhs.Pos(), "pool-backed scratch stored in package variable %s escapes its Put", id.Name)
			}
			return
		}
		c.bind(id, t)
		return
	}
	if t.pools == 0 {
		return
	}
	// Writing pool memory into a field or element of something that is
	// not itself pool-backed publishes it past the Put.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if c.taintOf(sel.X).pools == 0 {
			c.violation(lhs.Pos(), "pool-backed scratch stored in %s escapes its Put", analysis.ExprString(sel))
		}
		return
	}
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if c.taintOf(idx.X).pools == 0 {
			c.violation(lhs.Pos(), "pool-backed scratch stored in %s escapes its Put", analysis.ExprString(idx.X))
		}
	}
}

func (c *fnChecker) bind(id *ast.Ident, t taint) {
	obj := c.pass.Info.Defs[id]
	if obj == nil {
		obj = c.pass.Info.Uses[id]
	}
	if obj == nil || !taintableKind(obj.Type()) {
		return
	}
	if t.empty() {
		delete(c.vars, obj)
		return
	}
	c.vars[obj] = t
}

// taintableKind limits tracking to reference-shaped types; scalar
// copies (counts, scores) cannot alias pool memory.
func taintableKind(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// ret checks returned values and accumulates the result summary.
func (c *fnChecker) ret(v *ast.ReturnStmt) {
	for _, r := range v.Results {
		t := c.taintOf(r)
		c.retParams |= t.params
		if t.pools == 0 {
			c.expr(r)
			continue
		}
		if t.pools&(c.deadPools|c.deferred) != 0 {
			// Report the return-specific message; the generic
			// use-after-put scan would fire at the same position.
			c.violation(r.Pos(), "returns pool-backed memory that is already (or deferred to be) returned to the pool: the caller would race the next Get")
			continue
		}
		c.expr(r)
		c.retPools = true
		if c.annOK {
			continue
		}
		if a, ok := c.pass.Annotations().Covering(c.pass.Fset, r.Pos(), "pool-escape-ok"); ok {
			c.handout = true
			if c.report {
				c.pass.JustificationOrReport(a)
			}
			continue
		}
		c.violation(r.Pos(), "returns pool-backed scratch memory: the buffer escapes its Put (copy it, or annotate an ownership-transferring handout with //cfsf:pool-escape-ok <why>)")
	}
	// Named-result bare returns: nothing tracked (the repo style binds
	// results explicitly before returning).
}

// goCall flags pool memory crossing into a goroutine: by argument or by
// closure capture.
func (c *fnChecker) goCall(call *ast.CallExpr) {
	c.expr(call)
	for _, arg := range call.Args {
		if c.taintOf(arg).pools != 0 {
			c.violation(arg.Pos(), "pool-backed scratch passed to a goroutine escapes its Put")
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := c.pass.Info.Uses[id]; obj != nil {
				if t, ok := c.vars[obj]; ok && t.pools != 0 {
					c.violation(id.Pos(), "pool-backed scratch %s captured by a goroutine escapes its Put", id.Name)
					return false
				}
			}
			return true
		})
	}
}

// poolCall handles Put effects: (*sync.Pool).Put kills the argument's
// pool taint; a call with PutsFact kills the listed arguments'.
func (c *fnChecker) poolCall(e ast.Expr, deferredCall bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil {
		return
	}
	kill := func(argTaint taint) {
		c.putParams |= argTaint.params
		if deferredCall {
			c.deferred |= argTaint.pools
		} else {
			c.deadPools |= argTaint.pools
		}
	}
	if isPoolMethod(fn, "Put") && len(call.Args) == 1 {
		kill(c.taintOf(call.Args[0]))
		return
	}
	var puts PutsFact
	if c.pass.ImportObjectFact(fn, &puts) {
		flat := c.flatArgs(call, fn)
		for _, i := range puts.Params {
			if i < len(flat) {
				kill(c.taintOf(flat[i]))
			}
		}
	}
}

// flatArgs returns the call's arguments with the receiver (if any)
// first, matching the flattened parameter indexing of the facts.
func (c *fnChecker) flatArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := c.pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
	}
	return call.Args
}

// taintOf evaluates an expression's taint under Go's backing-array
// aliasing rules.
func (c *fnChecker) taintOf(e ast.Expr) taint {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.Info.Uses[v]
		if obj == nil {
			obj = c.pass.Info.Defs[v]
		}
		if obj != nil {
			return c.vars[obj]
		}
	case *ast.SelectorExpr:
		if s, ok := c.pass.Info.Selections[v]; ok && s.Kind() == types.FieldVal {
			return c.taintOf(v.X)
		}
	case *ast.SliceExpr:
		return c.taintOf(v.X)
	case *ast.StarExpr:
		return c.taintOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return c.taintOf(v.X)
		}
	case *ast.TypeAssertExpr:
		return c.taintOf(v.X)
	case *ast.CallExpr:
		return c.callTaint(v)
	}
	return taint{}
}

// callTaint resolves the taint of a call's results.
func (c *fnChecker) callTaint(call *ast.CallExpr) taint {
	// append aliases its first argument's backing array; the appended
	// values are copies.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			return c.taintOf(call.Args[0])
		}
	}
	fn := analysis.Callee(c.pass.Info, call)
	if fn == nil {
		return taint{}
	}
	if isPoolMethod(fn, "Get") {
		bit := uint64(1) << min63(int(c.nextPool))
		c.nextPool++
		return taint{pools: bit}
	}
	var out taint
	var gets GetsFact
	if c.pass.ImportObjectFact(fn, &gets) {
		bit := uint64(1) << min63(int(c.nextPool))
		c.nextPool++
		out.pools |= bit
	}
	var derives DerivesFact
	if c.pass.ImportObjectFact(fn, &derives) {
		flat := c.flatArgs(call, fn)
		for _, i := range derives.Params {
			if i < len(flat) {
				out = out.or(c.taintOf(flat[i]))
			}
		}
	}
	return out
}

// expr scans e for uses of values whose pool was already Put on this
// path. It also lets atomic publication of pool memory surface: a
// tainted argument to an atomic Store/Swap escapes.
func (c *fnChecker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Closure bodies run with the walker's current state (the
			// repo's closures are synchronous: parallel.For and friends);
			// goroutine captures are handled in goCall.
			return true
		case *ast.CallExpr:
			if fn := analysis.Callee(c.pass.Info, v); fn != nil && isAtomicStore(fn) {
				for _, arg := range v.Args {
					if c.taintOf(arg).pools != 0 {
						c.violation(arg.Pos(), "pool-backed scratch published through %s escapes its Put", fn.Name())
					}
				}
			}
		case *ast.Ident:
			obj := c.pass.Info.Uses[v]
			if obj == nil {
				return true
			}
			if t, ok := c.vars[obj]; ok && t.pools&c.deadPools != 0 {
				c.violation(v.Pos(), "%s used after it was returned to the pool: the next Get may already own it", v.Name)
				return false
			}
		}
		return true
	})
}

func isPoolMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamedType(sig.Recv().Type(), "sync", "Pool")
}

// isAtomicStore matches Store/Swap/CompareAndSwap methods of the typed
// sync/atomic wrappers (atomic.Pointer[T].Store publishes its argument).
func isAtomicStore(fn *types.Func) bool {
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// violation reports once per position, only in the reporting phase, and
// honors a covering //cfsf:pool-escape-ok line annotation.
func (c *fnChecker) violation(pos token.Pos, format string, args ...any) {
	if !c.report || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	if a, ok := c.pass.Annotations().Covering(c.pass.Fset, pos, "pool-escape-ok"); ok {
		c.pass.JustificationOrReport(a)
		return
	}
	c.pass.Reportf(pos, format, args...)
}
