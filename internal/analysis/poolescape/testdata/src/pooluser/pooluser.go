// Package pooluser drives poolapi from another package: GetsFact,
// DerivesFact, and PutsFact all cross the boundary.
package pooluser

import "poolapi"

// ok consumes the scratch fully inside the Get/Put window.
func ok(n int) int {
	sc := poolapi.GetScratch()
	b := poolapi.Fill(sc, n)
	t := len(b)
	poolapi.PutScratch(sc)
	return t
}

// leak returns memory the Put already reclaimed.
func leak(n int) []int {
	sc := poolapi.GetScratch()
	b := poolapi.Fill(sc, n)
	poolapi.PutScratch(sc)
	return b // want "already .or deferred to be. returned to the pool"
}

// hold returns live pool memory without owning annotation.
func hold(n int) []int {
	sc := poolapi.GetScratch()
	return poolapi.Fill(sc, n) // want "returns pool-backed scratch memory"
}
