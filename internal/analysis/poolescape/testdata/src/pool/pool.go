// Package pool exercises poolescape within one package.
package pool

import "sync"

type scratch struct {
	buf []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// sink is a package-level escape target.
var sink []int

// holder is a longer-lived structure.
type holder struct {
	kept []int
}

// fill derives its result from sc's memory: exports DerivesFact.
func fill(sc *scratch, n int) []int {
	b := sc.buf[:0]
	for i := 0; i < n; i++ {
		b = append(b, i)
	}
	return b
}

// put returns the scratch through a helper: exports PutsFact.
func put(sc *scratch) {
	scratchPool.Put(sc)
}

// clean copies what it keeps before the Put: legal.
func clean(n int) []int {
	sc := scratchPool.Get().(*scratch)
	b := fill(sc, n)
	out := make([]int, len(b))
	copy(out, b)
	sc.buf = b[:0]
	put(sc)
	return out
}

// escapeReturn returns scratch-backed memory already handed back: the
// derived slice dies with the helper Put.
func escapeReturn(n int) []int {
	sc := scratchPool.Get().(*scratch)
	b := fill(sc, n)
	put(sc)
	return b // want "already .or deferred to be. returned to the pool"
}

// escapeLive returns scratch memory that was never Put: leak and alias
// escape in one.
func escapeLive(n int) []int {
	sc := scratchPool.Get().(*scratch)
	return fill(sc, n) // want "returns pool-backed scratch memory"
}

// escapeStore parks scratch memory in a package variable.
func escapeStore(n int) {
	sc := scratchPool.Get().(*scratch)
	sink = fill(sc, n) // want "stored in package variable sink"
	put(sc)
}

// escapeField parks scratch memory in a caller-provided struct.
func escapeField(h *holder, n int) {
	sc := scratchPool.Get().(*scratch)
	h.kept = fill(sc, n) // want "stored in h.kept"
	put(sc)
}

// useAfterPut touches the scratch after handing it back.
func useAfterPut(n int) int {
	sc := scratchPool.Get().(*scratch)
	put(sc)
	return len(sc.buf) // want "used after it was returned to the pool"
}

// earlyPut puts on an error branch and returns clean data on the main
// path: the branch's kill must not leak onto the fall-through.
func earlyPut(n int) []int {
	sc := scratchPool.Get().(*scratch)
	if n < 0 {
		put(sc)
		return nil
	}
	b := fill(sc, n)
	out := append([]int(nil), b...)
	put(sc)
	return out
}

// escapeGo hands the scratch to a goroutine.
func escapeGo() {
	sc := scratchPool.Get().(*scratch)
	go func() {
		_ = sc.buf // want "captured by a goroutine"
	}()
	scratchPool.Put(sc)
}

// deferPut returns scratch memory whose Put is deferred: the caller
// would race the next Get.
func deferPut(n int) []int {
	sc := scratchPool.Get().(*scratch)
	defer put(sc)
	return fill(sc, n) // want "already .or deferred to be. returned to the pool"
}

// handout transfers ownership deliberately.
//
//cfsf:pool-escape-ok callers own the scratch and must hand it to put when done
func handout() *scratch {
	return scratchPool.Get().(*scratch)
}

// viaHandout consumes a handout and leaks it: the GetsFact on handout
// keeps the taint flowing.
func viaHandout(n int) []int {
	sc := handout()
	return fill(sc, n) // want "returns pool-backed scratch memory"
}
