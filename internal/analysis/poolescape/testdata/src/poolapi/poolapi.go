// Package poolapi exports a pooled-scratch API whose ownership
// contract travels to pooluser as facts.
package poolapi

import "sync"

// Scratch is request-scoped pooled memory.
type Scratch struct {
	Buf []int
}

var p = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch hands a scratch to the caller.
//
//cfsf:pool-escape-ok callers own the scratch until PutScratch
func GetScratch() *Scratch {
	return p.Get().(*Scratch)
}

// PutScratch returns it.
func PutScratch(sc *Scratch) {
	p.Put(sc)
}

// Fill appends into the scratch's buffer and returns the alias.
func Fill(sc *Scratch, n int) []int {
	b := sc.Buf[:0]
	for i := 0; i < n; i++ {
		b = append(b, i)
	}
	return b
}
