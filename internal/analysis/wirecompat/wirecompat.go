// Package wirecompat pins the shape of serialized types to a reviewed
// golden, so wire-format changes cannot ship silently. A type opted in
// with
//
//	//cfsf:wire <versionConst>
//
// on its declaration is fingerprinted — a canonical rendering of its
// exported fields, struct tags included, recursively expanding named
// struct types from the same module (their fields are part of the wire
// format too; stdlib and third-party types stay opaque so toolchain
// drift cannot move the fingerprint). The fingerprint and the named
// version constant's value are compared against wire_golden.json in the
// package directory:
//
//   - shape changed, version unchanged: the bug this analyzer exists
//     for — reported at the version constant, which is where the fix
//     goes;
//   - shape changed, version bumped: legitimate evolution, but the
//     golden no longer documents the current wire format — refresh it
//     with `cfsf-lint -update-wire-golden`;
//   - shape unchanged, version changed: a bump (or revert) without a
//     shape change — reported at the constant;
//   - no golden entry: new wire type — record it with
//     `cfsf-lint -update-wire-golden`.
//
// With Update set (the driver's -update-wire-golden), each package's
// golden is rewritten from the current source instead of reported
// against; review the diff like any other contract change.
package wirecompat

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cfsf/internal/analysis"
)

// Analyzer is the wirecompat pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirecompat",
	Doc:  "pins //cfsf:wire type shapes and version constants to a reviewed per-package golden",
	Run:  run,
}

// Update switches the pass from checking goldens to rewriting them.
// The driver sets it once before RunAnalyzers; passes only read it.
var Update bool

// GoldenFile is the per-package golden's filename.
const GoldenFile = "wire_golden.json"

type goldenEntry struct {
	Version int64  `json:"version"`
	Fields  string `json:"fields"`
}

type wireType struct {
	name     string
	typePos  ast.Node // the TypeSpec, for shape findings
	constObj types.Object
	version  int64
	fields   string
}

func run(pass *analysis.Pass) error {
	var wires []wireType
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				ann, ok := typeAnnotation(gd, ts)
				if !ok {
					continue
				}
				if w, ok := resolve(pass, ts, ann); ok {
					wires = append(wires, w)
				}
			}
		}
	}
	if len(wires) == 0 {
		return nil
	}
	path := filepath.Join(dirOf(pass, wires[0].typePos), GoldenFile)
	if Update {
		return writeGolden(path, wires)
	}
	golden, err := readGolden(path)
	if err != nil {
		pass.Reportf(wires[0].typePos.Pos(), "wirecompat: reading %s: %v", GoldenFile, err)
		return nil
	}
	for _, w := range wires {
		check(pass, w, golden)
	}
	return nil
}

// typeAnnotation finds //cfsf:wire on the type's declaration: the
// GenDecl doc (the usual spot), the TypeSpec doc, or its line comment.
func typeAnnotation(gd *ast.GenDecl, ts *ast.TypeSpec) (analysis.Annotation, bool) {
	for _, doc := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
		if ann, ok := analysis.FuncAnnotation(doc, "wire"); ok {
			return ann, true
		}
	}
	return analysis.Annotation{}, false
}

// resolve turns one annotated TypeSpec into a wireType, reporting
// malformed annotations as findings.
func resolve(pass *analysis.Pass, ts *ast.TypeSpec, ann analysis.Annotation) (wireType, bool) {
	constName, _, _ := strings.Cut(ann.Arg, " ")
	if constName == "" {
		pass.Reportf(ann.Pos, "//cfsf:wire requires the version constant's name")
		return wireType{}, false
	}
	obj := pass.Pkg.Scope().Lookup(constName)
	cst, ok := obj.(*types.Const)
	if !ok {
		pass.Reportf(ann.Pos, "//cfsf:wire %s: no such constant in package %s", constName, pass.Pkg.Path())
		return wireType{}, false
	}
	version, ok := constant.Int64Val(cst.Val())
	if !ok {
		pass.Reportf(ann.Pos, "//cfsf:wire %s: not an integer constant", constName)
		return wireType{}, false
	}
	tobj := pass.Info.Defs[ts.Name]
	if tobj == nil {
		return wireType{}, false
	}
	st, ok := tobj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ann.Pos, "//cfsf:wire only applies to struct types")
		return wireType{}, false
	}
	home := firstSegment(pass.Pkg.Path())
	return wireType{
		name:     ts.Name.Name,
		typePos:  ts,
		constObj: cst,
		version:  version,
		fields:   fingerprintStruct(st, home, map[string]bool{}),
	}, true
}

func check(pass *analysis.Pass, w wireType, golden map[string]goldenEntry) {
	g, ok := golden[w.name]
	if !ok {
		pass.Reportf(w.typePos.Pos(),
			"wire type %s has no entry in %s: record the reviewed shape with `cfsf-lint -update-wire-golden`",
			w.name, GoldenFile)
		return
	}
	switch {
	case w.fields == g.Fields && w.version == g.Version:
		// In sync.
	case w.fields != g.Fields && w.version == g.Version:
		pass.Reportf(w.constObj.Pos(),
			"wire type %s changed shape without bumping %s (reviewed: %s, now: %s): old snapshots would decode wrong, bump the version and refresh the golden",
			w.name, w.constObj.Name(), g.Fields, w.fields)
	case w.fields != g.Fields:
		pass.Reportf(w.typePos.Pos(),
			"golden entry for wire type %s is stale (version bumped to %d): refresh it with `cfsf-lint -update-wire-golden`",
			w.name, w.version)
	default: // fields match, version differs
		pass.Reportf(w.constObj.Pos(),
			"%s is %d but the reviewed golden records version %d for this exact shape: bump only together with a shape change, then refresh the golden",
			w.constObj.Name(), w.version, g.Version)
	}
}

func dirOf(pass *analysis.Pass, n ast.Node) string {
	return filepath.Dir(pass.Fset.Position(n.Pos()).Filename)
}

func readGolden(path string) (map[string]goldenEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]goldenEntry{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]goldenEntry{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func writeGolden(path string, wires []wireType) error {
	out := make(map[string]goldenEntry, len(wires))
	for _, w := range wires {
		out[w.name] = goldenEntry{Version: w.version, Fields: w.fields}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// customEncoder reports the method a named type serializes itself
// with, or "" when encoders see its plain fields.
func customEncoder(t types.Type) string {
	ms := types.NewMethodSet(types.NewPointer(t))
	for _, name := range [...]string{"GobEncode", "MarshalBinary", "MarshalJSON"} {
		if sel := ms.Lookup(nil, name); sel != nil {
			if _, ok := sel.Obj().(*types.Func); ok {
				return name
			}
		}
	}
	return ""
}

// firstSegment returns the import path's leading element — the module
// boundary for expansion purposes.
func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

var qualifier = func(p *types.Package) string { return p.Path() }

// fingerprintType renders one type canonically. Named struct types
// whose package shares the module's first path segment are expanded —
// their exported fields are part of the wire format — with a seen set
// breaking cycles; everything else renders as its qualified name, kept
// opaque so stdlib internals never leak into the fingerprint.
func fingerprintType(t types.Type, home string, seen map[string]bool) string {
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		full := obj.Name()
		if obj.Pkg() != nil {
			full = obj.Pkg().Path() + "." + obj.Name()
		}
		if m := customEncoder(v); m != "" {
			// The type owns its wire format (and versioning) through a
			// custom encoder; expanding its fields would pin the wrong
			// thing. Annotate the encoder's own wire type instead.
			return full + "(" + m + ")"
		}
		st, isStruct := v.Underlying().(*types.Struct)
		if isStruct && obj.Pkg() != nil && firstSegment(obj.Pkg().Path()) == home && !seen[full] {
			// seen guards the current expansion path only, so sibling
			// fields of one type render identically wherever they sit.
			seen[full] = true
			s := full + fingerprintStruct(st, home, seen)
			delete(seen, full)
			return s
		}
		return types.TypeString(t, qualifier)
	case *types.Pointer:
		return "*" + fingerprintType(v.Elem(), home, seen)
	case *types.Slice:
		return "[]" + fingerprintType(v.Elem(), home, seen)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", v.Len(), fingerprintType(v.Elem(), home, seen))
	case *types.Map:
		return "map[" + fingerprintType(v.Key(), home, seen) + "]" + fingerprintType(v.Elem(), home, seen)
	case *types.Struct:
		return fingerprintStruct(v, home, seen)
	default:
		return types.TypeString(t, qualifier)
	}
}

// fingerprintStruct renders the exported fields (the ones encoders
// see), tags included.
func fingerprintStruct(st *types.Struct, home string, seen map[string]bool) string {
	var fields []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		s := f.Name() + " " + fingerprintType(f.Type(), home, seen)
		if tag := st.Tag(i); tag != "" {
			s += " `" + tag + "`"
		}
		fields = append(fields, s)
	}
	sort.Strings(fields)
	return "{" + strings.Join(fields, "; ") + "}"
}
