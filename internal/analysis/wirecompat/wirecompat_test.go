package wirecompat_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/wirecompat"
)

func TestShapeChangeWithoutBump(t *testing.T) {
	analysistest.Run(t, "testdata", wirecompat.Analyzer, "wire")
}

func TestMissingGoldenEntry(t *testing.T) {
	analysistest.Run(t, "testdata", wirecompat.Analyzer, "wirenew")
}

func TestInSync(t *testing.T) {
	analysistest.Run(t, "testdata", wirecompat.Analyzer, "wireok")
}

// TestVersionRevertFails is the negative test the contract demands:
// take the in-sync fixture and delete its version bump — the analyzer
// must fail.
func TestVersionRevertFails(t *testing.T) {
	tmp := copyFixture(t, "wireok", map[string]string{
		"recVersion = 2": `recVersion = 1 // want "golden records version 2"`,
	}, true)
	analysistest.Run(t, tmp, wirecompat.Analyzer, "wireok")
}

// TestUpdateWritesGolden checks the -update-wire-golden round trip: an
// unrecorded package gets a golden written, after which the normal mode
// is clean.
func TestUpdateWritesGolden(t *testing.T) {
	tmp := copyFixture(t, "wireok", nil, false)
	wirecompat.Update = true
	defer func() { wirecompat.Update = false }()
	analysistest.Run(t, tmp, wirecompat.Analyzer, "wireok")
	wirecompat.Update = false
	if _, err := os.Stat(filepath.Join(tmp, "src", "wireok", wirecompat.GoldenFile)); err != nil {
		t.Fatalf("update did not write the golden: %v", err)
	}
	analysistest.Run(t, tmp, wirecompat.Analyzer, "wireok")
}

// TestRegenerateFixtureGoldens rewrites the in-sync fixture's golden
// from source. Run it after deliberately evolving the fixture:
//
//	WIRECOMPAT_REGEN=1 go test ./internal/analysis/wirecompat/ -run Regenerate
func TestRegenerateFixtureGoldens(t *testing.T) {
	if os.Getenv("WIRECOMPAT_REGEN") == "" {
		t.Skip("set WIRECOMPAT_REGEN=1 to rewrite fixture goldens")
	}
	wirecompat.Update = true
	defer func() { wirecompat.Update = false }()
	analysistest.Run(t, "testdata", wirecompat.Analyzer, "wireok")
}

// copyFixture clones testdata/src/<name> into a temp tree, applying
// replacements to .go files; withGolden controls whether the golden
// comes along.
func copyFixture(t *testing.T, name string, replace map[string]string, withGolden bool) string {
	t.Helper()
	tmp := t.TempDir()
	srcDir := filepath.Join("testdata", "src", name)
	dstDir := filepath.Join(tmp, "src", name)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if e.Name() == wirecompat.GoldenFile && !withGolden {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(e.Name(), ".go") {
			s := string(data)
			for old, new := range replace {
				if !strings.Contains(s, old) {
					t.Fatalf("fixture %s does not contain %q", e.Name(), old)
				}
				s = strings.ReplaceAll(s, old, new)
			}
			data = []byte(s)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return tmp
}
