// Package wire grew a field without a version bump: the committed
// golden still records the reviewed v1 shape.
package wire

//cfsf:wire snapshotVersion
type snapshot struct {
	Version int
	Users   []int32
	Scores  []float64
}

const snapshotVersion = 1 // want "changed shape without bumping"
