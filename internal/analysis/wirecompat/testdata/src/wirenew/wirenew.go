// Package wirenew declares a wire type that has never been recorded.
package wirenew

//cfsf:wire blobVersion
type blob struct { // want "no entry"
	Version int
	Payload []byte
}

const blobVersion = 1
