// Package wireok is in sync with its golden: same shape, same version.
// The nested named struct exercises same-module expansion — its fields
// are part of record's wire format.
package wireok

//cfsf:wire recVersion
type record struct {
	Version int
	Names   []string
	Meta    meta
}

type meta struct {
	Tag string `json:"tag"`
}

const recVersion = 2
