// Package lockstate is the shared held-lock tracker behind lockcheck and
// lockorder. It walks one function body in source order, maintaining the
// set of mutexes held on the current path keyed by the receiver
// expression's spelling ("m.mu", "w.compactMu"), with the early-return
// restoration lockcheck pioneered: a branch that terminates (return,
// break, panic) cannot leak its lock changes onto the fall-through path.
//
// The walk is flow-approximate by design — branch bodies share and
// persist state — which matches the straight-line lock-use idiom this
// repo follows and keeps both analyzers cheap.
package lockstate

import (
	"go/ast"
	"go/types"

	"cfsf/internal/analysis"
)

// IsMutex reports whether t is sync.Mutex or sync.RWMutex (directly or
// behind a pointer).
func IsMutex(t types.Type) bool {
	return analysis.IsNamedType(t, "sync", "Mutex") || analysis.IsNamedType(t, "sync", "RWMutex")
}

// Walker drives one function body. All callbacks are optional; they
// observe the walk with Held reflecting the state at that point. Read
// the held set through Held() — the underlying map is replaced on
// early-return restoration.
type Walker struct {
	Info *types.Info

	// OnAcquire fires after a Lock/RLock/TryLock on sel added key to the
	// held set.
	OnAcquire func(sel *ast.SelectorExpr, key string)
	// OnExpr fires for every checked expression (lock-management calls
	// excluded): RHS values, conditions, call statements, return results.
	OnExpr func(e ast.Expr)
	// OnWrite fires for every assignment target (also IncDec operands).
	OnWrite func(lhs ast.Expr)
	// OnAssign fires for each assignment after its RHS OnExpr calls and
	// before its LHS OnWrite calls — the construction-tracking hook.
	OnAssign func(st *ast.AssignStmt)
	// OnValueSpec is OnAssign for var declarations.
	OnValueSpec func(vs *ast.ValueSpec)

	held map[string]bool
}

// Held reports whether the lock spelled key ("m.mu") is held at the
// current point of the walk.
func (w *Walker) Held(key string) bool { return w.held[key] }

// HeldSet returns a copy of the currently held lock keys.
func (w *Walker) HeldSet() map[string]bool { return copyHeld(w.held) }

// Seed marks key held on entry (the //cfsf:locked contract).
func (w *Walker) Seed(key string) {
	if w.held == nil {
		w.held = map[string]bool{}
	}
	w.held[key] = true
}

// Walk traverses the body in source order.
func (w *Walker) Walk(body *ast.BlockStmt) {
	if w.held == nil {
		w.held = map[string]bool{}
	}
	w.stmts(body.List)
}

func (w *Walker) expr(e ast.Expr) {
	if w.OnExpr != nil && e != nil {
		w.OnExpr(e)
	}
}

func (w *Walker) write(e ast.Expr) {
	if w.OnWrite != nil {
		w.OnWrite(e)
	}
}

func (w *Walker) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		w.stmt(stmt)
	}
}

func (w *Walker) stmt(stmt ast.Stmt) {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if !w.lockCall(v.X, false) {
			w.expr(v.X)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; any
		// other deferred call is checked with the current state.
		if !w.lockCall(v.Call, true) {
			w.expr(v.Call)
		}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			w.expr(rhs)
		}
		if w.OnAssign != nil {
			w.OnAssign(v)
		}
		for _, lhs := range v.Lhs {
			w.write(lhs)
			w.expr(lhs)
		}
	case *ast.IncDecStmt:
		w.write(v.X)
		w.expr(v.X)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.expr(val)
					}
					if w.OnValueSpec != nil {
						w.OnValueSpec(vs)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.expr(v.Cond)
		// A branch that ends in return/break/continue/panic never reaches
		// the statements after the if: its lock changes (the early-return
		// `mu.Unlock(); return` idiom) must not leak onto the fall-through
		// path.
		saved := copyHeld(w.held)
		w.stmts(v.Body.List)
		if Terminates(v.Body.List) {
			w.held = saved
		}
		if v.Else != nil {
			saved = copyHeld(w.held)
			w.stmt(v.Else)
			if blk, ok := v.Else.(*ast.BlockStmt); ok && Terminates(blk.List) {
				w.held = saved
			}
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		if v.Cond != nil {
			w.expr(v.Cond)
		}
		w.stmts(v.Body.List)
		if v.Post != nil {
			w.stmt(v.Post)
		}
	case *ast.RangeStmt:
		w.expr(v.X)
		w.stmts(v.Body.List)
	case *ast.BlockStmt:
		w.stmts(v.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		if v.Tag != nil {
			w.expr(v.Tag)
		}
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.stmt(v.Assign)
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range v.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		w.expr(v.Call)
	case *ast.SendStmt:
		w.expr(v.Chan)
		w.expr(v.Value)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// Terminates reports whether a statement list always leaves the
// enclosing flow: its last statement is a return, a branch
// (break/continue/goto), or a panic call.
func Terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return Terminates(last.List)
	}
	return false
}

// lockCall updates lock state if e is a mutex Lock/Unlock call on a
// selector; it reports true when the call was lock management.
func (w *Walker) lockCall(e ast.Expr, deferred bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := w.Info.TypeOf(sel.X)
	if !IsMutex(recv) {
		return false
	}
	key := analysis.ExprString(sel.X)
	if key == "" {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		w.held[key] = true
		if w.OnAcquire != nil {
			w.OnAcquire(sel, key)
		}
		return true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(w.held, key)
		}
		return true
	case "TryLock", "TryRLock":
		// The result decides; treat as acquired (over-approximate).
		w.held[key] = true
		if w.OnAcquire != nil {
			w.OnAcquire(sel, key)
		}
		return true
	}
	return false
}
