// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: named analyzers run over parsed,
// type-checked packages and report position-tagged diagnostics. It
// exists because CFSF's correctness rests on invariants no compiler
// checks — bit-for-bit WAL replay, copy-on-write model publication,
// checked fsync errors — and the toolchain image carries no external
// modules, so the usual x/tools framework is rebuilt here on the
// standard library (go/ast + go/types, with export data served by
// `go list -export`).
//
// The annotation grammar the analyzers share (see README "Static
// analysis"):
//
//	//cfsf:guarded-by <mutex>   field: access only with <mutex> held
//	//cfsf:immutable            field: writes only during construction
//	//cfsf:locked <mutex>       func: caller holds <mutex>, or the value
//	//	                        is not yet published
//	//cfsf:init-only <why>      func: runs before publication; may write
//	//	                        immutable fields
//	//cfsf:ordered-ok <why>     map range: order-nondeterminism is safe
//	//cfsf:wallclock-ok <why>   stmt or func: time.Now is metrics-only
//	//cfsf:select-ok <why>      multi-case select is order-insensitive
//
// Every suppression annotation requires a non-empty justification
// string; an annotation without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and baselines.
	Name string
	// Doc is a one-paragraph description shown by the driver's -help.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists the concrete fact types Run exports (pointers to
	// gob-serializable structs). An analyzer that exports a type not
	// listed here fails at seal time.
	FactTypes []Fact
	// Finish, when non-nil, runs once after every package pass has
	// completed, with the whole run's sealed facts in hand — the hook
	// for whole-program checks (e.g. lock-order cycles) that no single
	// package can see.
	Finish func(*Program) []Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Package  string         `json:"package"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String formats the diagnostic the way the driver prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	ann   *Annotations
	cg    *CallGraph
	store *FactStore
	diags *[]Diagnostic
}

// CallGraph returns the package's static call graph, built on first
// use and shared by every analyzer running on the package.
func (p *Pass) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p.Info, p.Files)
	}
	return p.cg
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.Path(),
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotations returns the package's parsed //cfsf: annotations.
func (p *Pass) Annotations() *Annotations {
	if p.ann == nil {
		p.ann = collectAnnotations(p.Fset, p.Files)
	}
	return p.ann
}

// Annotation is one //cfsf:<key> <argument> comment.
type Annotation struct {
	Key string
	Arg string
	Pos token.Pos
}

// Annotations indexes a package's //cfsf: comments by file and line.
type Annotations struct {
	// byLine maps filename -> line -> annotations written on that line.
	byLine map[string]map[int][]Annotation
}

const annPrefix = "cfsf:"

func parseAnnotation(c *ast.Comment) (Annotation, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, annPrefix) {
		return Annotation{}, false
	}
	body := strings.TrimPrefix(text, annPrefix)
	key, arg, _ := strings.Cut(body, " ")
	// A justification ends at any embedded "//": nothing after a comment
	// marker is part of the argument.
	if i := strings.Index(arg, "//"); i >= 0 {
		arg = arg[:i]
	}
	return Annotation{Key: key, Arg: strings.TrimSpace(arg), Pos: c.Pos()}, true
}

func collectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: map[string]map[int][]Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := parseAnnotation(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Annotation{}
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ann)
			}
		}
	}
	return a
}

// Covering returns the annotation with the given key that covers pos: one
// written on the same line (a trailing comment) or on the line directly
// above (a leading comment). ok is false when none applies.
func (a *Annotations) Covering(fset *token.FileSet, pos token.Pos, key string) (Annotation, bool) {
	p := fset.Position(pos)
	lines := a.byLine[p.Filename]
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, ann := range lines[line] {
			if ann.Key == key {
				return ann, true
			}
		}
	}
	return Annotation{}, false
}

// FuncAnnotation returns the annotation with the given key from a
// function's doc comment, if present.
func FuncAnnotation(doc *ast.CommentGroup, key string) (Annotation, bool) {
	if doc == nil {
		return Annotation{}, false
	}
	for _, c := range doc.List {
		if ann, ok := parseAnnotation(c); ok && ann.Key == key {
			return ann, true
		}
	}
	return Annotation{}, false
}

// FieldAnnotation returns the annotation with the given key attached to a
// struct field (doc comment above it or trailing line comment).
func FieldAnnotation(field *ast.Field, key string) (Annotation, bool) {
	for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if ann, ok := parseAnnotation(c); ok && ann.Key == key {
				return ann, true
			}
		}
	}
	return Annotation{}, false
}

// sortDiagnostics orders diagnostics by position, analyzer, message —
// the stable order every entry point reports in.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// JustificationOrReport returns true when the annotation carries a
// non-empty justification; otherwise it reports the missing-justification
// policy violation and returns false (the finding stays suppressed — the
// annotation states intent — but the empty justification is its own
// finding, so CI still fails until one is written).
func (p *Pass) JustificationOrReport(ann Annotation) bool {
	if strings.TrimSpace(ann.Arg) != "" {
		return true
	}
	p.Reportf(ann.Pos, "//cfsf:%s requires a justification string", ann.Key)
	return false
}
