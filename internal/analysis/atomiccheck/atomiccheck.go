// Package atomiccheck enforces all-or-nothing atomicity: a variable or
// field that is ever accessed through sync/atomic (atomic.LoadUint64,
// atomic.AddInt64, atomic.StorePointer, ...) must never be read or
// written plainly. A mixed access pattern is a data race the memory
// model gives no meaning to — the plain read can see a torn or stale
// value no matter how careful the atomic side is — and it is invisible
// to the race detector unless both sides happen to fire in one test
// run.
//
// The set of atomically-accessed objects travels as facts, so a
// dependent package reading an imported counter field plainly is
// flagged even though every atomic access lives in the declaring
// package. New-style typed atomics (atomic.Uint64, atomic.Pointer[T])
// need no analysis: their representation is unexported, so the type
// system already forbids plain access.
//
// Escape: //cfsf:atomic-ok <why> on the access line, for reads that are
// deliberately approximate (a stats snapshot that tolerates staleness)
// — the justification string is required.
package atomiccheck

import (
	"go/ast"
	"go/types"

	"cfsf/internal/analysis"
)

// Analyzer is the atomiccheck pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomiccheck",
	Doc:       "flags plain reads/writes of variables that are accessed with sync/atomic elsewhere",
	Run:       run,
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
}

// AtomicFact marks one variable or field as atomically accessed.
type AtomicFact struct {
	Name string // object name, for diagnostics
}

// AFact marks AtomicFact as a fact.
func (*AtomicFact) AFact() {}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		atomic:     map[types.Object]bool{},
		sanctioned: map[ast.Node]bool{},
		imported:   map[types.Object]bool{},
	}
	for _, f := range pass.Files {
		c.collect(f)
	}
	for obj := range c.atomic {
		pass.ExportObjectFact(obj, &AtomicFact{Name: obj.Name()})
	}
	for _, f := range pass.Files {
		c.check(f)
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// atomic is every object whose address flows into a sync/atomic call
	// in this package.
	atomic map[types.Object]bool
	// sanctioned marks the operand nodes inside those calls, so the check
	// walk does not flag the atomic accesses themselves.
	sanctioned map[ast.Node]bool
	// imported caches cross-package fact lookups (true = atomic).
	imported map[types.Object]bool
}

// collect records `&x` arguments of sync/atomic package-level calls.
func (c *checker) collect(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(c.pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			target := ast.Unparen(un.X)
			if obj := c.objectOf(target); obj != nil {
				c.atomic[obj] = true
				c.sanctioned[target] = true
			}
		}
		return true
	})
}

// objectOf resolves an atomic operand to a package-level var or a field
// object; locals are ignored (a local cannot be accessed from elsewhere
// without already being shared some other racy way).
func (c *checker) objectOf(e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		obj := c.pass.Info.Uses[v]
		if obj == nil {
			obj = c.pass.Info.Defs[v]
		}
		if vr, ok := obj.(*types.Var); ok && vr.Parent() == c.pass.Pkg.Scope() {
			return obj
		}
	case *ast.SelectorExpr:
		if s, ok := c.pass.Info.Selections[v]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		// Qualified package-level var: pkg.Counter.
		if obj, ok := c.pass.Info.Uses[v.Sel].(*types.Var); ok && !obj.IsField() {
			return obj
		}
	}
	return nil
}

// isAtomic reports whether obj is atomically accessed — here or, via
// fact import, in any package analyzed before this one.
func (c *checker) isAtomic(obj types.Object) bool {
	if c.atomic[obj] {
		return true
	}
	if known, ok := c.imported[obj]; ok {
		return known
	}
	var af AtomicFact
	known := obj.Pkg() != nil && obj.Pkg() != c.pass.Pkg && c.pass.ImportObjectFact(obj, &af)
	c.imported[obj] = known
	return known
}

// check flags every unsanctioned mention of an atomic object.
func (c *checker) check(f *ast.File) {
	ann := c.pass.Annotations()
	ast.Inspect(f, func(n ast.Node) bool {
		if c.sanctioned[n] {
			return false
		}
		var obj types.Object
		switch v := n.(type) {
		case *ast.Ident:
			o := c.pass.Info.Uses[v]
			if vr, ok := o.(*types.Var); ok && !vr.IsField() && vr.Parent() != nil && vr.Parent().Parent() == types.Universe {
				obj = o
			}
		case *ast.SelectorExpr:
			if s, ok := c.pass.Info.Selections[v]; ok && s.Kind() == types.FieldVal {
				obj = s.Obj()
			} else if o, ok := c.pass.Info.Uses[v.Sel].(*types.Var); ok && !o.IsField() {
				obj = o
			}
		default:
			return true
		}
		if obj == nil || !c.isAtomic(obj) {
			return true
		}
		if a, ok := ann.Covering(c.pass.Fset, n.Pos(), "atomic-ok"); ok {
			c.pass.JustificationOrReport(a)
			return false
		}
		c.pass.Reportf(n.Pos(),
			"plain access to %s, which is accessed with sync/atomic elsewhere: mixed plain/atomic access is a data race (use sync/atomic here, or //cfsf:atomic-ok <why> for a deliberately approximate read)",
			obj.Name())
		return false
	})
	// Keep the walk result deterministic for nested selectors: returning
	// false above stops descent so one access reports once.
}
