package atomiccheck_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/atomiccheck"
)

func TestAtomicCheck(t *testing.T) {
	// atomics is listed first so its pass exports the AtomicFact set
	// that atomicuser's pass imports.
	analysistest.Run(t, "testdata", atomiccheck.Analyzer, "atomics", "atomicuser")
}
