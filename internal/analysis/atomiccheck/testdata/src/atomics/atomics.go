// Package atomics exercises atomiccheck within one package.
package atomics

import "sync/atomic"

// Hits is always bumped atomically.
var Hits uint64

// Misses is only ever touched plainly: legal (never atomic).
var Misses uint64

// Stats mixes an atomic counter with a plain field.
type Stats struct {
	N    uint64
	name string
}

func bump() {
	atomic.AddUint64(&Hits, 1)
}

func read() uint64 {
	return atomic.LoadUint64(&Hits)
}

func plainRead() uint64 {
	return Hits // want "plain access to Hits"
}

func plainWrite() {
	Hits = 0 // want "plain access to Hits"
}

func missesOK() uint64 {
	Misses++
	return Misses
}

func (s *Stats) inc() {
	atomic.AddUint64(&s.N, 1)
}

func (s *Stats) peek() uint64 {
	return s.N // want "plain access to N"
}

func (s *Stats) snapshot() uint64 {
	//cfsf:atomic-ok startup-only read before any goroutine exists
	return s.N
}

func (s *Stats) label() string { return s.name }
