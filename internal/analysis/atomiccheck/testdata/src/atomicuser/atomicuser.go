// Package atomicuser accesses atomics' objects from outside the
// declaring package: the atomic-access set arrives as imported facts.
package atomicuser

import (
	"sync/atomic"

	"atomics"
)

func bump() {
	atomic.AddUint64(&atomics.Hits, 1)
}

func sneakVar() uint64 {
	return atomics.Hits // want "plain access to Hits"
}

func sneakField(s *atomics.Stats) uint64 {
	return s.N // want "plain access to N"
}

func properField(s *atomics.Stats) uint64 {
	return atomic.LoadUint64(&s.N)
}

func missesOK() uint64 {
	return atomics.Misses
}
