// Package nondeterm forbids sources of run-to-run nondeterminism in
// packages on the crash-recovery replay path. Recovery replays WAL
// micro-batches through the same code that served live traffic and must
// reproduce the serving model bit for bit; anything that reads a wall
// clock into model state, draws from the process-global random source,
// or races on a multi-ready select can diverge replay from history.
//
// Checks:
//
//   - time.Now / time.Since calls — allowed only with a
//     //cfsf:wallclock-ok annotation (on the statement, or in the
//     enclosing function's doc comment for metrics-heavy functions);
//     the justification string is required.
//   - package-level math/rand functions (Intn, Float64, Shuffle, ...),
//     which draw from the shared global source. Seeded generators
//     (rand.New(rand.NewSource(seed))) stay legal: they are how the
//     paper's K-means++ stays reproducible.
//   - select statements with more than one communication case (Go picks
//     a ready case pseudorandomly) — allowed with //cfsf:select-ok. A
//     single case plus default is fine: that shape is deterministic.
//
// The pass is deliberately intraprocedural (no facts): clock reads in
// non-replay packages are metrics-only by design, so propagating
// "calls time.Now" summaries across the package boundary would flag
// exactly the calls the scoping rule exists to allow.
package nondeterm

import (
	"go/ast"
	"go/types"

	"cfsf/internal/analysis"
)

// Analyzer is the nondeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc:  "forbids wall clocks, global math/rand, and multi-ready selects on the replay path",
	Run:  run,
}

// globalRandConstructors are the math/rand functions that do NOT touch
// the shared source: building a seeded generator is deterministic.
var globalRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	ann := pass.Annotations()
	for _, f := range pass.Files {
		// Walk with the enclosing function's doc comment in scope so a
		// func-level //cfsf:wallclock-ok covers every call inside it.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcWallclockOK := false
			if a, ok := analysis.FuncAnnotation(fd.Doc, "wallclock-ok"); ok {
				funcWallclockOK = pass.JustificationOrReport(a)
			}
			funcSelectOK := false
			if a, ok := analysis.FuncAnnotation(fd.Doc, "select-ok"); ok {
				funcSelectOK = pass.JustificationOrReport(a)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, ann, v, funcWallclockOK)
				case *ast.SelectStmt:
					checkSelect(pass, ann, v, funcSelectOK)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, ann *analysis.Annotations, call *ast.CallExpr, funcWallclockOK bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() != "Now" && fn.Name() != "Since" {
			return
		}
		if funcWallclockOK {
			return
		}
		if a, ok := ann.Covering(pass.Fset, call.Pos(), "wallclock-ok"); ok {
			pass.JustificationOrReport(a)
			return
		}
		pass.Reportf(call.Pos(),
			"time.%s on the replay path: wall-clock values must not reach model state (annotate //cfsf:wallclock-ok <why> if this is metrics-only)",
			fn.Name())
	case "math/rand", "math/rand/v2":
		// Only package-level functions draw from the shared source;
		// methods on a seeded *rand.Rand are deterministic.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		if globalRandConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s uses the process-global random source on the replay path; use a seeded rand.New(rand.NewSource(seed)) instead",
			fn.Pkg().Name(), fn.Name())
	}
}

func checkSelect(pass *analysis.Pass, ann *analysis.Annotations, sel *ast.SelectStmt, funcSelectOK bool) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm <= 1 {
		return // single case (+ optional default) is deterministic
	}
	if funcSelectOK {
		return
	}
	if a, ok := ann.Covering(pass.Fset, sel.Pos(), "select-ok"); ok {
		pass.JustificationOrReport(a)
		return
	}
	pass.Reportf(sel.Pos(),
		"select with %d communication cases on the replay path is scheduled pseudorandomly; order must be captured in the WAL (annotate //cfsf:select-ok <why> if it is)",
		comm)
}
