package nondeterm_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer, "nondet")
}
