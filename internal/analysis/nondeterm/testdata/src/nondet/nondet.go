// Package nondet exercises the nondeterm analyzer.
package nondet

import (
	"math/rand"
	"time"
)

// stampState reads the wall clock into a value: flagged.
func stampState() int64 {
	return time.Now().UnixNano() // want "time.Now on the replay path"
}

// observeLatency is metrics-only, annotated at the statement.
func observeLatency(start time.Time) time.Duration {
	//cfsf:wallclock-ok latency metric only, never reaches model state
	return time.Since(start)
}

// timedRun is annotated at function level: every clock read inside is
// covered, including ones in nested closures.
//
//cfsf:wallclock-ok duration metrics for the stats snapshot only
func timedRun() time.Duration {
	start := time.Now()
	f := func() time.Duration { return time.Since(start) }
	return f()
}

// bareAnnotation suppresses without a justification: flagged.
func bareAnnotation() time.Time {
	//cfsf:wallclock-ok // want "cfsf:wallclock-ok requires a justification string"
	return time.Now()
}

// pick draws from the process-global source: flagged.
func pick(n int) int {
	return rand.Intn(n) // want "rand.Intn uses the process-global random source"
}

// seeded builds a deterministic generator: legal, including its methods.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// shuffleGlobal permutes via the shared source: flagged.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses the process-global random source"
}

// fanIn races two ready channels: flagged.
func fanIn(a, b chan int) int {
	select { // want "select with 2 communication cases on the replay path"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll is one case plus default: deterministic, legal.
func poll(c chan int) (int, bool) {
	select {
	case v := <-c:
		return v, true
	default:
		return 0, false
	}
}

// runLoop's arrival order is journaled before apply: annotated.
func runLoop(a, b chan int) int {
	//cfsf:select-ok arrival order is sequenced by the WAL before apply
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
