package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of a call expression: a package
// function or a method reached through a direct selector. It returns nil
// for calls through function values, interfaces it cannot resolve
// statically, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPackageFunc reports whether fn is the named function (or method) of
// the package with the given import path.
func IsPackageFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsNamedType reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReturnsError reports whether fn's signature includes an error result.
func ReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// RootIdent returns the leftmost identifier of a selector/index chain
// (the x of x.a.b[i].c), or nil when the base is not an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// ExprString renders a (small) expression the way it appears in source,
// for use as a lock-identity key. Unsupported shapes return "".
func ExprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := ExprString(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.StarExpr:
		return ExprString(v.X)
	}
	return ""
}
