// Package mapiter exercises the mapiterfloat analyzer.
package mapiter

import (
	"sort"

	"wal"
)

// sumUnsorted accumulates floats in map-iteration order: flagged.
func sumUnsorted(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation in map-iteration order"
	}
	return total
}

// sumSorted uses the sorted-keys idiom: the append is exempt because its
// destination is sorted before use.
func sumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// collectUnsorted appends map values and returns them unsorted: flagged.
func collectUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want "append to out in map-iteration order"
	}
	return out
}

// denseCommutative is annotated: each key writes its own dense slot, so
// iteration order cannot matter.
func denseCommutative(m map[int]float64) []float64 {
	dense := make([]float64, 128)
	//cfsf:ordered-ok per-key writes to distinct dense slots commute
	for k, v := range m {
		dense[k%128] += v
	}
	return dense
}

// emptyJustification suppresses without saying why: the bare annotation
// is its own finding.
func emptyJustification(m map[int]float64) float64 {
	var total float64
	//cfsf:ordered-ok // want "cfsf:ordered-ok requires a justification string"
	for _, v := range m {
		total += v
	}
	return total
}

// journalInMapOrder writes WAL records while ranging a map: flagged.
func journalInMapOrder(w *wal.WAL, m map[int]float64) {
	for u, r := range m {
		_ = wal.Append(w, u, r) // want "WAL write \\(Append\\) in map-iteration order"
	}
}

// nestedClosure hides the accumulation inside a function literal body:
// still flagged (closure bodies are walked as their own lists).
func nestedClosure(m map[int]float64) func() float64 {
	return func() float64 {
		var total float64
		for _, v := range m {
			total += v // want "floating-point accumulation in map-iteration order"
		}
		return total
	}
}

// perKeyLocal accumulates into a variable declared inside the loop body:
// the sum resets every iteration, so order cannot matter.
func perKeyLocal(m map[int][]float64) []float64 {
	dense := make([]float64, 128)
	for k, vs := range m {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		dense[k%128] = sum
	}
	return dense
}

// intCounter only counts: integer accumulation is exact, not flagged.
func intCounter(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
