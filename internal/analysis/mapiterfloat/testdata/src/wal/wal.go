// Package wal is a fixture stand-in for the real WAL: the analyzer
// matches any package whose import path ends in "wal".
package wal

// WAL is a minimal journal handle.
type WAL struct{}

// Append journals one record.
func Append(w *WAL, user int, rating float64) error { return nil }
