// Package mapiterfloat flags `for range` loops over maps whose bodies do
// order-sensitive work: accumulate floating-point values (float addition
// is not associative, so iteration order changes the bits), append to
// slices that flow onward un-sorted, or write WAL records. Go randomizes
// map iteration order per run, so any of these breaks the repo's
// bit-for-bit crash-replay guarantee the moment the map has two entries.
//
// Escapes:
//
//   - the sorted-keys idiom: a loop that only collects keys/values by
//     append is accepted when the destination slice is passed to a
//     sort/slices sorting function later in the same function — that is
//     the canonical fix and needs no annotation;
//   - //cfsf:ordered-ok <why> on the range statement, for loops whose
//     body is genuinely commutative (pure dense-array writes, per-key
//     counters). The justification string is required: the annotation
//     records why order cannot matter, and review enforces it.
//
// The pass is deliberately intraprocedural (no facts): the
// order-sensitivity of a loop body is visible where the loop is
// written, and the sorted-keys escape is a same-function idiom.
package mapiterfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cfsf/internal/analysis"
)

// Analyzer is the mapiterfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiterfloat",
	Doc:  "flags order-sensitive work (float accumulation, unsorted appends, WAL writes) inside map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Walk every function body, including function literals (their
		// bodies are analyzed as independent statement lists: the
		// sorted-keys idiom is only recognized within one closure).
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					walkStmts(pass, v.Body.List)
				}
				return true
			case *ast.FuncLit:
				walkStmts(pass, v.Body.List)
				return true
			}
			return true
		})
	}
	return nil
}

// walkStmts recurses through a statement list, analyzing every map-range
// statement with its surrounding list in hand (the sorted-keys idiom
// check needs the statements that follow the loop).
func walkStmts(pass *analysis.Pass, list []ast.Stmt) {
	for i, stmt := range list {
		if rs, ok := stmt.(*ast.RangeStmt); ok && isMapRange(pass, rs) {
			checkMapRange(pass, rs, list[i+1:])
		}
		// Recurse into nested bodies (including the range body itself:
		// a map range inside a map range is analyzed on its own).
		for _, body := range nestedBodies(stmt) {
			walkStmts(pass, body)
		}
	}
}

func nestedBodies(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch v := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, v.List)
	case *ast.IfStmt:
		out = append(out, v.Body.List)
		if v.Else != nil {
			out = append(out, []ast.Stmt{v.Else})
		}
	case *ast.ForStmt:
		out = append(out, v.Body.List)
	case *ast.RangeStmt:
		out = append(out, v.Body.List)
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, []ast.Stmt{v.Stmt})
	case *ast.DeclStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.BranchStmt, *ast.EmptyStmt:
		// No nested statement lists. Function literals are not descended
		// into here: run() walks every FuncLit body as its own list.
	}
	return out
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	if a, ok := pass.Annotations().Covering(pass.Fset, rs.Pos(), "ordered-ok"); ok {
		pass.JustificationOrReport(a)
		return
	}

	var floatAccum token.Pos
	var walWrite token.Pos
	var walName string
	appendTargets := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			switch v.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range v.Lhs {
					// An accumulator declared inside the loop body resets
					// every iteration: per-key sums are order-independent.
					if declaredWithin(pass, lhs, rs.Body) {
						continue
					}
					if isFloat(pass.Info.TypeOf(lhs)) && floatAccum == token.NoPos {
						floatAccum = v.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "append" && len(v.Args) > 0 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if dst := analysis.RootIdent(v.Args[0]); dst != nil {
						if obj := pass.Info.Uses[dst]; obj != nil {
							if _, seen := appendTargets[obj]; !seen {
								appendTargets[obj] = v.Pos()
							}
						}
					}
				}
			}
			if fn := analysis.Callee(pass.Info, v); fn != nil && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "wal" || strings.HasSuffix(fn.Pkg().Path(), "/wal")) {
				if walWrite == token.NoPos {
					walWrite, walName = v.Pos(), fn.Name()
				}
			}
		}
		return true
	})

	if floatAccum != token.NoPos {
		pass.Reportf(floatAccum,
			"floating-point accumulation in map-iteration order is nondeterministic (float addition is not associative); iterate sorted keys or annotate //cfsf:ordered-ok <why>")
	}
	if walWrite != token.NoPos {
		pass.Reportf(walWrite,
			"WAL write (%s) in map-iteration order journals records in a random order, breaking bit-for-bit replay; iterate sorted keys", walName)
	}
	for obj, pos := range appendTargets {
		if sortedAfter(pass, obj, after) {
			continue
		}
		pass.Reportf(pos,
			"append to %s in map-iteration order produces a randomly ordered slice; sort it before use (sorted-keys idiom) or annotate //cfsf:ordered-ok <why>", obj.Name())
	}
}

// declaredWithin reports whether the root variable of lhs is declared
// inside the given block (a per-iteration local).
func declaredWithin(pass *analysis.Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	id := analysis.RootIdent(lhs)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isSortFunc recognizes the stdlib functions that impose a total order
// on their slice argument.
func isSortFunc(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort/slices sorting
// function in the statements following the loop — the sorted-keys idiom.
func sortedAfter(pass *analysis.Pass, obj types.Object, after []ast.Stmt) bool {
	for _, stmt := range after {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !isSortFunc(fn.Pkg().Path(), fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				if id := analysis.RootIdent(arg); id != nil && pass.Info.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
