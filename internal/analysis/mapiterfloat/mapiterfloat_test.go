package mapiterfloat_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/mapiterfloat"
)

func TestMapIterFloat(t *testing.T) {
	analysistest.Run(t, "testdata", mapiterfloat.Analyzer, "mapiter")
}
