package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the lightweight static call graph of one package: every
// declared function or method, mapped to the calls its body makes that
// resolve to a static callee (package functions and direct method
// calls; calls through function values and interfaces are absent).
// Calls inside function literals are attributed to the enclosing
// declaration — for the invariants the analyzers check, a closure's
// body is part of the function that built it.
type CallGraph struct {
	funcs []*types.Func
	calls map[*types.Func][]CallSite
}

// CallSite is one static call within a function body.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// Functions returns the package's declared functions and methods in
// source order.
func (g *CallGraph) Functions() []*types.Func { return g.funcs }

// Calls returns the static call sites inside fn's declaration, in
// source order. fn must be declared in the graph's package.
func (g *CallGraph) Calls(fn *types.Func) []CallSite { return g.calls[fn] }

// buildCallGraph walks every function declaration of the package.
func buildCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{calls: map[*types.Func][]CallSite{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, fn)
			var sites []CallSite
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(info, call); callee != nil {
					sites = append(sites, CallSite{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
			g.calls[fn] = sites
		}
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Pos() < g.funcs[j].Pos() })
	return g
}

// Reaches reports whether any function in from can reach to through the
// package-local graph (from included when it equals to's caller chain).
// Cross-package edges are not followed; callers that need them consult
// facts instead.
func (g *CallGraph) Reaches(from, to *types.Func) bool {
	seen := map[*types.Func]bool{}
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if fn == to {
			return true
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		for _, site := range g.calls[fn] {
			if walk(site.Callee) {
				return true
			}
		}
		return false
	}
	return walk(from)
}
