package walerr_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/walerr"
)

func TestWALErr(t *testing.T) {
	// wal is listed so its pass exports the CriticalAPIFact set that
	// walclient's pass imports.
	analysistest.Run(t, "testdata", walerr.Analyzer, "wal", "walclient")
}
