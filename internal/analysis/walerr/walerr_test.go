package walerr_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/walerr"
)

func TestWALErr(t *testing.T) {
	analysistest.Run(t, "testdata", walerr.Analyzer, "walclient")
}
