// Package walerr flags silently discarded errors on durability-critical
// calls: the internal/wal API (append, fsync, rotate, compact, replay,
// close), os.File Sync/Close on write handles, and os.Rename. A WAL
// append whose error vanishes acknowledges a rating that was never
// journaled; an fsync error that is dropped converts "durable per
// policy" into "durable if the disk felt like it"; a dropped rename
// error leaves code proceeding as if a temp file had been promoted (a
// compacted base or snapshot blob) when it never was.
//
// Discarding is "silent" when the call is an expression statement or a
// defer/go statement. An explicit blank assignment (`_ = f.Close()`) is
// accepted: it is visible in review and greppable, which is the policy —
// the analyzer exists to catch errors that disappear without a trace,
// not to forbid deliberate, documented discards on error-cleanup paths.
//
// os.File.Close is only policed on write handles: files obtained from
// os.Create, os.OpenFile, or os.CreateTemp (a dropped Close error on a
// written file can hide lost data), and struct fields of type *os.File
// (long-lived handles like the WAL's active segment). Read handles from
// os.Open may close silently.
package walerr

import (
	"go/ast"
	"go/types"
	"strings"

	"cfsf/internal/analysis"
)

// Analyzer is the walerr pass.
var Analyzer = &analysis.Analyzer{
	Name:      "walerr",
	Doc:       "flags discarded errors from internal/wal calls, os.File Sync/Close on write paths, and os.Rename",
	Run:       run,
	FactTypes: []analysis.Fact{(*CriticalAPIFact)(nil)},
}

// CriticalAPIFact marks one wal function whose error return is
// durability-critical. Exported while the wal package itself is
// analyzed; dependents then police their calls by fact lookup instead
// of re-deriving what counts as a WAL call. Requires the wal package to
// be in the analyzed set (cfsf-lint runs on ./...; fixtures list it).
type CriticalAPIFact struct {
	Func string // function or Type.Method name, for diagnostics
}

// AFact marks CriticalAPIFact as a fact.
func (*CriticalAPIFact) AFact() {}

// isWALPackage matches the real module path and the analysistest fixture
// path alike.
func isWALPackage(path string) bool {
	return path == "wal" || strings.HasSuffix(path, "/wal")
}

// exportCriticalAPI marks every error-returning function and method of a
// wal package, exported and unexported alike (unexported ones matter to
// the package's own internal calls).
func exportCriticalAPI(pass *analysis.Pass) {
	if !isWALPackage(pass.Pkg.Path()) {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		switch o := scope.Lookup(name).(type) {
		case *types.Func:
			if analysis.ReturnsError(o) {
				pass.ExportObjectFact(o, &CriticalAPIFact{Func: o.Name()})
			}
		case *types.TypeName:
			named, ok := o.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				if analysis.ReturnsError(m) {
					pass.ExportObjectFact(m, &CriticalAPIFact{Func: name + "." + m.Name()})
				}
			}
		}
	}
}

func run(pass *analysis.Pass) error {
	exportCriticalAPI(pass)
	writeHandles := collectWriteHandles(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			check(pass, call, writeHandles)
			return true
		})
	}
	return nil
}

// collectWriteHandles returns every variable assigned from os.Create,
// os.OpenFile, or os.CreateTemp anywhere in the package. Tracking by
// types.Object keeps the set valid across closure boundaries.
func collectWriteHandles(pass *analysis.Pass) map[types.Object]bool {
	handles := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return
		}
		switch fn.Name() {
		case "Create", "OpenFile", "CreateTemp":
		default:
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				handles[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				handles[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				// Multi-value: `f, err := os.Create(...)` — the call is the
				// sole RHS; the handle is LHS[0].
				if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
					record(st.Lhs[0], st.Rhs[0])
				}
			case *ast.ValueSpec:
				if len(st.Values) == 1 && len(st.Names) >= 1 {
					record(st.Names[0], st.Values[0])
				}
			}
			return true
		})
	}
	return handles
}

func check(pass *analysis.Pass, call *ast.CallExpr, writeHandles map[types.Object]bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return
	}
	// Case 1: any call to a function the wal package's own analysis
	// marked durability-critical (fact lookup spans packages).
	var crit CriticalAPIFact
	if pass.ImportObjectFact(fn, &crit) {
		pass.Reportf(call.Pos(),
			"error from %s.%s is silently discarded; WAL errors must be checked and propagated (use `_ =` only for deliberate discards)",
			fn.Pkg().Name(), fn.Name())
		return
	}
	// Case 2: os.Rename — the atomic-promotion step of every temp+rename
	// publish (compacted base, snapshot blob, manifest). Proceeding past
	// a failed rename means acting as if the file were published.
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
		pass.Reportf(call.Pos(),
			"error from os.Rename is silently discarded; a failed rename leaves the published file missing or stale")
		return
	}
	// Cases 3+4: os.File Sync anywhere, Close on write handles.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !analysis.IsNamedType(sig.Recv().Type(), "os", "File") {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch fn.Name() {
	case "Sync":
		pass.Reportf(call.Pos(),
			"error from (*os.File).Sync is silently discarded; a dropped fsync error silently voids durability")
	case "Close":
		if isWriteHandle(pass, sel.X, writeHandles) {
			pass.Reportf(call.Pos(),
				"error from (*os.File).Close on a write handle is silently discarded; a failed close can lose buffered writes")
		}
	}
}

// isWriteHandle reports whether the Close receiver is a tracked
// write-opened variable or a struct field of type *os.File.
func isWriteHandle(pass *analysis.Pass, recv ast.Expr, writeHandles map[types.Object]bool) bool {
	switch v := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[v]
		return obj != nil && writeHandles[obj]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return true
		}
	}
	return false
}
