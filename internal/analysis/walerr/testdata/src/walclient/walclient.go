// Package walclient exercises the walerr analyzer.
package walclient

import (
	"os"

	"wal"
)

// ack drops the append error on the floor: flagged.
func ack(w *wal.WAL, rec []byte) {
	w.Append(rec) // want "error from wal.Append is silently discarded"
}

// shutdown defers a close whose error vanishes: flagged.
func shutdown(w *wal.WAL) {
	defer w.Close() // want "error from wal.Close is silently discarded"
}

// rotateAsync discards in a goroutine: flagged.
func rotateAsync(w *wal.WAL) {
	go w.Rotate() // want "error from wal.Rotate is silently discarded"
}

// checked propagates the error: legal.
func checked(w *wal.WAL, rec []byte) error {
	return w.Append(rec)
}

// deliberate documents its discard with a blank assignment: legal.
func deliberate(w *wal.WAL) {
	_ = w.Close()
}

// size calls a non-error method: nothing to discard.
func size(w *wal.WAL) int64 {
	return w.Size()
}

// snapshot drops Sync and Close on a write handle: both flagged.
func snapshot(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want "Close on a write handle is silently discarded"
		return err
	}
	f.Sync() // want "Sync is silently discarded"
	return f.Close()
}

// promote drops the rename that publishes a temp file: flagged.
func promote(tmp, final string) {
	os.Rename(tmp, final) // want "error from os.Rename is silently discarded"
}

// promoteChecked propagates the rename error: legal; the cleanup rename
// documents its discard: legal.
func promoteChecked(tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Rename(final, tmp)
		return err
	}
	return nil
}

// reader closes a read handle silently: legal (os.Open, not a write
// handle).
func reader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// segment holds a long-lived file handle.
type segment struct {
	f *os.File
}

// close discards the field handle's Close error: flagged (struct fields
// of type *os.File are treated as write handles).
func (s *segment) close() {
	s.f.Close() // want "Close on a write handle is silently discarded"
}

// closure discards inside a function literal on a write-opened handle:
// flagged (handles are tracked package-wide by object).
func closure(path string) func() {
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)
	return func() {
		f.Close() // want "Close on a write handle is silently discarded"
	}
}
