// Package wal is a fixture stand-in for the real WAL: the analyzer
// matches any package whose import path ends in "wal".
package wal

// WAL is a minimal journal handle.
type WAL struct{}

// Append journals one record.
func (w *WAL) Append(rec []byte) error { return nil }

// Sync forces the journal to stable storage.
func (w *WAL) Sync() error { return nil }

// Rotate seals the active segment and opens a new one.
func (w *WAL) Rotate() error { return nil }

// Close seals and closes the journal.
func (w *WAL) Close() error { return nil }

// Open opens a journal rooted at dir.
func Open(dir string) (*WAL, error) { return &WAL{}, nil }

// Size reports the journal size; no error to discard.
func (w *WAL) Size() int64 { return 0 }
