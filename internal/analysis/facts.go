package analysis

// Cross-package facts: the interprocedural half of the framework. While
// an analyzer runs on one package it may export facts — serializable
// summaries attached to that package's objects (functions, fields,
// types) or to the package itself — and import the facts that the same
// analyzer exported from the packages this one imports. Packages are
// analyzed in dependency order (see runner.go), so by the time a pass
// asks about a callee in another package, that package's facts are
// sealed and available.
//
// Facts are keyed by object path — a stable, position-independent name
// for a package-level object ("Train", "Model.topM", "WAL.Append") —
// and serialized through gob when the package's analysis completes,
// mirroring how compiler export data travels beside the source (the
// `go list -export` load path in load.go). The round trip is not
// optional: every fact a pass exports is encoded and re-decoded before
// any dependent package sees it, so a fact type that cannot survive
// serialization fails loudly rather than working only in-process.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a summary exported during one package's analysis and imported
// while analyzing its dependents. Implementations must be pointers to
// gob-serializable structs and must be listed in their analyzer's
// FactTypes.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// ObjectPath returns the stable intra-package path of a package-level
// object: "Name" for package-scope functions, types, vars and consts;
// "Type.Method" for methods; "Type.Field" for fields of package-level
// named struct types. ok is false for objects facts cannot address
// (locals, fields of anonymous structs, objects without a package).
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			named := namedOf(recv.Type())
			if named == nil {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.Var:
		if o.IsField() {
			if path, ok := fieldPath(o); ok {
				return path, true
			}
			return "", false
		}
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	return "", false
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldIndexes caches, per types.Package, the map from field object to
// its "Type.Field" path. Built once by scanning the package scope's
// named struct types.
var fieldIndexes sync.Map // *types.Package -> map[types.Object]string

func fieldPath(field *types.Var) (string, bool) {
	pkg := field.Pkg()
	if pkg == nil {
		return "", false
	}
	idx, ok := fieldIndexes.Load(pkg)
	if !ok {
		m := map[types.Object]string{}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				m[st.Field(i)] = name + "." + st.Field(i).Name()
			}
		}
		idx, _ = fieldIndexes.LoadOrStore(pkg, m)
	}
	path, ok := idx.(map[types.Object]string)[field]
	return path, ok
}

// factKey addresses one fact: the exporting analyzer, the object path
// ("" for a package fact), and the concrete fact type's name.
type factKey struct {
	Analyzer string
	Object   string
	Type     string
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Key  factKey
	Fact Fact // interface value; concrete types gob-registered via FactTypes
}

// FactStore holds every package's facts for one analysis run. Open
// packages (currently being analyzed) accumulate facts in memory; when
// a package's last analyzer finishes the set is sealed — gob-encoded —
// and dependents decode it on first import.
type FactStore struct {
	mu      sync.Mutex
	open    map[string]map[factKey]Fact
	sealed  map[string][]byte
	decoded map[string]map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		open:    map[string]map[factKey]Fact{},
		sealed:  map[string][]byte{},
		decoded: map[string]map[factKey]Fact{},
	}
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// RegisterFactTypes gob-registers every fact type of the given
// analyzers, so sealed fact sets can encode them as interface values.
func RegisterFactTypes(analyzers []*Analyzer) error {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			if reflect.TypeOf(f).Kind() != reflect.Pointer {
				return fmt.Errorf("analysis: %s: fact type %T must be a pointer", a.Name, f)
			}
			gob.Register(f)
		}
	}
	return nil
}

func (s *FactStore) export(analyzer, pkgPath, objPath string, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.open[pkgPath]
	if set == nil {
		set = map[factKey]Fact{}
		s.open[pkgPath] = set
	}
	set[factKey{analyzer, objPath, factTypeName(f)}] = f
}

// lookup finds a fact in the open set (same package, same run) or the
// sealed set of a completed package, decoding the blob on first use.
func (s *FactStore) lookup(analyzer, pkgPath, objPath string, f Fact) (Fact, bool) {
	key := factKey{analyzer, objPath, factTypeName(f)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if set, ok := s.open[pkgPath]; ok {
		if got, ok := set[key]; ok {
			return got, true
		}
	}
	set, err := s.decodedSetLocked(pkgPath)
	if err != nil || set == nil {
		return nil, false
	}
	got, ok := set[key]
	return got, ok
}

func (s *FactStore) decodedSetLocked(pkgPath string) (map[factKey]Fact, error) {
	if set, ok := s.decoded[pkgPath]; ok {
		return set, nil
	}
	blob, ok := s.sealed[pkgPath]
	if !ok {
		return nil, nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("analysis: decode facts of %s: %w", pkgPath, err)
	}
	set := make(map[factKey]Fact, len(wire))
	for _, w := range wire {
		set[w.Key] = w.Fact
	}
	s.decoded[pkgPath] = set
	return set, nil
}

// Seal serializes a completed package's facts. After Seal, dependents
// import through the gob round trip; exporting to the package again is
// a bug in the scheduler.
func (s *FactStore) Seal(pkgPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.open[pkgPath]
	delete(s.open, pkgPath)
	if len(set) == 0 {
		return nil
	}
	wire := make([]wireFact, 0, len(set))
	for k, f := range set {
		wire = append(wire, wireFact{Key: k, Fact: f})
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i].Key, wire[j].Key
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("analysis: encode facts of %s: %w", pkgPath, err)
	}
	s.sealed[pkgPath] = buf.Bytes()
	return nil
}

// packageFacts returns every sealed fact of one analyzer across all
// packages, as (package path, object path, fact) tuples in
// deterministic order. Used by Finish hooks for whole-program checks.
func (s *FactStore) packageFacts(analyzer string) ([]ProgramFact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths := make([]string, 0, len(s.sealed))
	for p := range s.sealed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []ProgramFact
	for _, p := range paths {
		set, err := s.decodedSetLocked(p)
		if err != nil {
			return nil, err
		}
		keys := make([]factKey, 0, len(set))
		for k := range set {
			if k.Analyzer == analyzer {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Object != keys[j].Object {
				return keys[i].Object < keys[j].Object
			}
			return keys[i].Type < keys[j].Type
		})
		for _, k := range keys {
			out = append(out, ProgramFact{Package: p, Object: k.Object, Fact: set[k]})
		}
	}
	return out, nil
}

// ProgramFact is one sealed fact seen from a Finish hook.
type ProgramFact struct {
	Package string // exporting package path
	Object  string // object path within it ("" for a package fact)
	Fact    Fact
}

// copyFact assigns src's contents into the pointer dst (both must be
// pointers to the same struct type).
func copyFact(dst, src Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// ExportObjectFact exports a fact about obj, which must belong to the
// package under analysis. Facts about objects the path scheme cannot
// address are dropped silently (locals never matter to dependents).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		return
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return
	}
	p.store.export(p.Analyzer.Name, p.Pkg.Path(), path, f)
}

// ImportObjectFact copies the fact of the given concrete type about obj
// into f and reports whether one was found. obj may belong to the
// current package (facts exported earlier in this pass) or to any
// package analyzed before it.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	got, ok := p.store.lookup(p.Analyzer.Name, obj.Pkg().Path(), path, f)
	if !ok {
		return false
	}
	copyFact(f, got)
	return true
}

// ExportPackageFact exports a fact about the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	p.store.export(p.Analyzer.Name, p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the package fact of f's concrete type
// exported by pkgPath into f and reports whether one was found.
func (p *Pass) ImportPackageFact(pkgPath string, f Fact) bool {
	got, ok := p.store.lookup(p.Analyzer.Name, pkgPath, "", f)
	if !ok {
		return false
	}
	copyFact(f, got)
	return true
}
