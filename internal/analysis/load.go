package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goListOutput invokes the go tool and returns its raw stdout. A
// variable so tests can substitute canned (including malformed) output
// and exercise the decode and error paths without a toolchain run.
var goListOutput = func(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.String())
	}
	return out, nil
}

// goList runs `go list` with the given arguments in dir and decodes the
// concatenated JSON objects it prints.
func goList(dir string, args ...string) ([]listedPackage, error) {
	out, err := goListOutput(dir, args)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds a types.Importer that resolves imports from the
// compiler export data recorded in exports (import path -> file).
func exportLookup(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok || e == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})
}

// ListExports resolves import paths (standard library or module
// packages) to compiler export-data files via `go list -export`, run in
// dir ("" = current directory, which must be inside a module).
func ListExports(dir string, paths ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		exports[p.ImportPath] = p.Export
	}
	return exports, nil
}

// LoadPackages loads, parses, and type-checks the packages matching the
// given go-list patterns, rooted at dir (the module directory). Test
// files are excluded: the analyzers police production invariants, and
// tests legitimately use wall clocks and unordered maps.
//
// The heavy lifting is delegated to the go toolchain: one
// `go list -deps -export` invocation compiles (or reuses from the build
// cache) export data for every dependency, so each target package is
// type-checked from its own source against binary import data — the same
// strategy go vet uses, minus the x/tools plumbing.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Incomplete,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles,Incomplete,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := exportLookup(fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from explicit files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
