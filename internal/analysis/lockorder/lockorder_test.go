package lockorder_test

import (
	"testing"

	"cfsf/internal/analysis/analysistest"
	"cfsf/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockab")
}

func TestLockOrderCrossPackage(t *testing.T) {
	// lockapi first so Add's AcquiresFact is sealed before lockuser's
	// pass imports it.
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockapi", "lockuser")
}
