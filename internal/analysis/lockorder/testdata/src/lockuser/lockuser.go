// Package lockuser cycles its own mutex against lockapi.Registry's:
// one direction through an imported AcquiresFact, the other directly.
package lockuser

import (
	"sync"

	"lockapi"
)

type cache struct {
	mu   sync.Mutex
	seen map[string]bool
}

// fill calls into the registry with the cache lock held:
// cache.mu -> Registry.Mu.
func (c *cache) fill(r *lockapi.Registry) {
	c.mu.Lock()
	r.Add("x") // want "lock order cycle"
	c.mu.Unlock()
}

// reverse takes the registry lock first: Registry.Mu -> cache.mu.
func (c *cache) reverse(r *lockapi.Registry) {
	r.Mu.Lock()
	c.mu.Lock() // want "lock order cycle"
	c.mu.Unlock()
	r.Mu.Unlock()
}
