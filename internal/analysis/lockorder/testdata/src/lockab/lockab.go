// Package lockab exercises the acquisition-order graph inside one
// package: a direct AB-BA cycle, a transitive cycle through a helper's
// AcquiresFact, same-class self-edges (ignored), and the
// lock-order-ok escape hatch breaking a would-be cycle.
package lockab

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

type sys struct {
	a A
	b B
	c C
	d D
	e E
}

// abPath acquires a then b; with baPath below, a direct AB-BA cycle.
func (s *sys) abPath() {
	s.a.mu.Lock()
	s.b.mu.Lock() // want "lock order cycle"
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}

// baPath is the reverse order.
func (s *sys) baPath() {
	s.b.mu.Lock()
	s.a.mu.Lock() // want "lock order cycle"
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}

// abAgain repeats abPath's order: same edge, reported once at its
// first site, so no want here.
func (s *sys) abAgain() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

// aThenC holds a across a call to lockC (declared below, so the
// summary only resolves through the fixpoint): edge A.mu -> C.mu.
func (s *sys) aThenC() {
	s.a.mu.Lock()
	s.lockC() // want "lock order cycle"
	s.a.mu.Unlock()
}

// cThenA closes the transitive cycle.
func (s *sys) cThenA() {
	s.c.mu.Lock()
	s.a.mu.Lock() // want "lock order cycle"
	s.a.mu.Unlock()
	s.c.mu.Unlock()
}

// lockC gives aThenC its AcquiresFact.
func (s *sys) lockC() {
	s.c.mu.Lock()
	s.c.mu.Unlock()
}

// transfer locks two instances of one class: self-edges are out of
// scope, no finding.
func transfer(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// dThenE/eThenD would be a cycle, but the D->E direction carries a
// justified suppression, which removes that edge and breaks the cycle
// for both sites.
func (s *sys) dThenE() {
	s.d.mu.Lock()
	s.e.mu.Lock() //cfsf:lock-order-ok fixture: stands in for a tiered-lock pair with an external ordering guarantee
	s.e.mu.Unlock()
	s.d.mu.Unlock()
}

func (s *sys) eThenD() {
	s.e.mu.Lock()
	s.d.mu.Lock()
	s.d.mu.Unlock()
	s.e.mu.Unlock()
}

// releasedBetween holds nothing when b is taken: no edge.
func (s *sys) releasedBetween() {
	s.a.mu.Lock()
	s.a.mu.Unlock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
}
