// Package lockapi exports a locking type so a dependent package's
// acquisition order can cycle against it through AcquiresFact.
package lockapi

import "sync"

type Registry struct {
	Mu    sync.Mutex
	names []string
}

// Add locks the registry; the fact travels to importers.
func (r *Registry) Add(n string) {
	r.Mu.Lock()
	r.names = append(r.names, n)
	r.Mu.Unlock()
}
