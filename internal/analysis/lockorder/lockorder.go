// Package lockorder builds the program-wide mutex acquisition-order
// graph and flags AB-BA cycles — the deadlock class that needs two
// goroutines and two call paths to fire, so no single-function or even
// single-package check can see it.
//
// Locks are grouped into classes: a struct-field mutex is
// "pkgpath.Type.field" (every instance of core.shard.mu is one class —
// ordering between instances of the same class is out of scope, so
// self-edges are ignored), a package-level mutex is "pkgpath.var".
// While walking each function with the shared held-lock tracker, two
// events add edges held-class -> new-class:
//
//   - a direct Lock/RLock with other classes held;
//   - a call to a function whose AcquiresFact (the transitive set of
//     classes it may lock, propagated bottom-up through package-local
//     calls and imported facts) is non-empty.
//
// Each package exports its edges as an EdgesFact; the Finish hook
// merges all packages' edges, finds strongly connected components, and
// reports every edge inside a cycle at the acquisition (or call) site
// that created it.
//
// Escape: //cfsf:lock-order-ok <why> on the acquiring line, for pairs
// with an external ordering guarantee the graph cannot see (e.g. tiered
// locks never taken by the same goroutine). Suppressing one direction
// breaks the cycle, so the reverse direction stops firing too.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cfsf/internal/analysis"
	"cfsf/internal/analysis/lockstate"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "detects AB-BA mutex acquisition cycles across the whole program",
	Run:       run,
	Finish:    finish,
	FactTypes: []analysis.Fact{(*AcquiresFact)(nil), (*EdgesFact)(nil)},
}

// AcquiresFact lists the lock classes a function may acquire,
// transitively through its callees.
type AcquiresFact struct {
	Classes []string
}

// AFact marks AcquiresFact as a fact.
func (*AcquiresFact) AFact() {}

// LockEdge records "To was acquired while From was held" at one site.
type LockEdge struct {
	From string
	To   string
	File string
	Line int
}

// EdgesFact is one package's contribution to the acquisition-order
// graph.
type EdgesFact struct {
	Edges []LockEdge
}

// AFact marks EdgesFact as a fact.
func (*EdgesFact) AFact() {}

func run(pass *analysis.Pass) error {
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Fixpoint over AcquiresFact so package-local calls resolve
	// regardless of declaration order (and mutual recursion converges).
	for round := 0; ; round++ {
		changed := false
		for _, fd := range decls {
			if newWalker(pass, fd, false).walk() {
				changed = true
			}
		}
		if !changed || round >= 4 {
			break
		}
	}
	// Final pass: facts are stable; collect edges once.
	var edges []LockEdge
	seen := map[string]bool{}
	for _, fd := range decls {
		w := newWalker(pass, fd, true)
		w.walk()
		for _, e := range w.edges {
			k := e.From + "\x00" + e.To
			if seen[k] {
				continue
			}
			seen[k] = true
			edges = append(edges, e)
		}
	}
	if len(edges) > 0 {
		pass.ExportPackageFact(&EdgesFact{Edges: edges})
	}
	return nil
}

type walker struct {
	pass  *analysis.Pass
	fd    *ast.FuncDecl
	fn    *types.Func
	final bool

	w         *lockstate.Walker
	heldClass map[string]string // held key ("m.mu") -> lock class
	acquires  map[string]bool   // classes this function may lock
	edges     []LockEdge
	imported  map[*types.Func]*AcquiresFact
	exported  bool
}

func newWalker(pass *analysis.Pass, fd *ast.FuncDecl, final bool) *walker {
	c := &walker{
		pass:      pass,
		fd:        fd,
		final:     final,
		heldClass: map[string]string{},
		acquires:  map[string]bool{},
		imported:  map[*types.Func]*AcquiresFact{},
	}
	c.fn, _ = pass.Info.Defs[fd.Name].(*types.Func)
	c.w = &lockstate.Walker{
		Info:      pass.Info,
		OnAcquire: c.onAcquire,
		OnExpr:    c.onExpr,
	}
	if a, ok := analysis.FuncAnnotation(fd.Doc, "locked"); ok {
		// Same grammar as lockcheck: the first word names the receiver's
		// mutex field. The receiver type resolves it to a class, so locks
		// held by contract still order against locks acquired here.
		mutex, _, _ := strings.Cut(a.Arg, " ")
		if mutex != "" && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			recv := fd.Recv.List[0].Names[0]
			key := recv.Name + "." + mutex
			c.w.Seed(key)
			// The class context lets direct acquisitions inside the helper
			// order against the contract lock. It is NOT added to acquires:
			// the helper's caller holds it already — claiming the helper
			// acquires it would fabricate edges in the caller's order.
			if obj := pass.Info.Defs[recv]; obj != nil {
				if tn := namedName(obj.Type()); tn != "" {
					c.heldClass[key] = pass.Pkg.Path() + "." + tn + "." + mutex
				}
			}
		}
	}
	return c
}

func (c *walker) walk() bool {
	c.w.Walk(c.fd.Body)
	if c.fn != nil && !c.final && len(c.acquires) > 0 {
		classes := make([]string, 0, len(c.acquires))
		for cl := range c.acquires {
			classes = append(classes, cl)
		}
		sort.Strings(classes)
		var have AcquiresFact
		if !(c.pass.ImportObjectFact(c.fn, &have) && len(have.Classes) == len(classes)) {
			c.pass.ExportObjectFact(c.fn, &AcquiresFact{Classes: classes})
			c.exported = true
		}
	}
	return c.exported
}

// onAcquire fires for a direct Lock/RLock: record the class and the
// edges from everything already held.
func (c *walker) onAcquire(sel *ast.SelectorExpr, key string) {
	class := c.classOf(sel.X)
	if class == "" {
		return
	}
	c.heldClass[key] = class
	c.acquires[class] = true
	c.addEdges(sel.Pos(), key, []string{class})
}

// onExpr scans evaluated expressions for calls whose callees acquire
// locks (per AcquiresFact), adding edges from the held set.
func (c *walker) onExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(c.pass.Info, call)
		if fn == nil {
			return true
		}
		fact := c.acquiresOf(fn)
		if fact == nil || len(fact.Classes) == 0 {
			return true
		}
		for _, cl := range fact.Classes {
			c.acquires[cl] = true
		}
		c.addEdges(call.Pos(), "", fact.Classes)
		return true
	})
}

func (c *walker) acquiresOf(fn *types.Func) *AcquiresFact {
	if fact, ok := c.imported[fn]; ok {
		return fact
	}
	var af AcquiresFact
	var fact *AcquiresFact
	if c.pass.ImportObjectFact(fn, &af) {
		fact = &af
	}
	c.imported[fn] = fact
	return fact
}

// addEdges records held-class -> new-class edges for every class in
// acquired, skipping self-edges and suppressed sites. selfKey, when
// non-empty, is the held key of the acquisition itself.
func (c *walker) addEdges(pos token.Pos, selfKey string, acquired []string) {
	if !c.final {
		return
	}
	held := c.w.HeldSet()
	suppressed := false
	if a, ok := c.pass.Annotations().Covering(c.pass.Fset, pos, "lock-order-ok"); ok {
		suppressed = c.pass.JustificationOrReport(a)
	}
	if suppressed {
		return
	}
	p := c.pass.Fset.Position(pos)
	for key := range held {
		if key == selfKey {
			continue
		}
		from := c.heldClass[key]
		if from == "" {
			continue
		}
		for _, to := range acquired {
			if to == from {
				continue
			}
			c.edges = append(c.edges, LockEdge{From: from, To: to, File: p.Filename, Line: p.Line})
		}
	}
}

// classOf maps a mutex expression to its lock class: a field mutex to
// "pkgpath.Type.field", a package-level mutex var to "pkgpath.var",
// anything else (locals, unresolvable shapes) to "".
func (c *walker) classOf(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := c.pass.Info.Selections[v]; ok && s.Kind() == types.FieldVal {
			obj := s.Obj()
			if tn := namedName(s.Recv()); tn != "" && obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + tn + "." + obj.Name()
			}
			return ""
		}
		if obj, ok := c.pass.Info.Uses[v.Sel].(*types.Var); ok && !obj.IsField() && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		obj, _ := c.pass.Info.Uses[v].(*types.Var)
		if obj != nil && !obj.IsField() && obj.Parent() == c.pass.Pkg.Scope() {
			return c.pass.Pkg.Path() + "." + obj.Name()
		}
	}
	return ""
}

// namedName returns the name of the (pointer-stripped) named type, or
// "" for anonymous shapes.
func namedName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// finish merges every package's edges, finds the strongly connected
// components of the class graph, and reports each edge inside one.
func finish(prog *analysis.Program) []analysis.Diagnostic {
	facts, err := prog.PackageFacts("lockorder")
	if err != nil {
		return []analysis.Diagnostic{{
			Analyzer: "lockorder",
			Message:  fmt.Sprintf("loading lock-order facts: %v", err),
		}}
	}
	type site struct {
		edge LockEdge
		pkg  string
	}
	var sites []site
	seen := map[string]bool{}
	adj := map[string][]string{}
	for _, pf := range facts {
		ef, ok := pf.Fact.(*EdgesFact)
		if !ok || pf.Object != "" {
			continue
		}
		for _, e := range ef.Edges {
			k := e.From + "\x00" + e.To
			if seen[k] {
				continue
			}
			seen[k] = true
			sites = append(sites, site{edge: e, pkg: pf.Package})
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	scc := stronglyConnected(adj)
	var diags []analysis.Diagnostic
	for _, s := range sites {
		comp, ok := scc[s.edge.From]
		if !ok || comp != scc[s.edge.To] {
			continue
		}
		// Both endpoints in one nontrivial SCC: this edge is part of a
		// cycle. (Self-edges were never recorded, so comp equality implies
		// a multi-class cycle.)
		members := make([]string, 0)
		for cl, id := range scc {
			if id == comp {
				members = append(members, cl)
			}
		}
		sort.Strings(members)
		diags = append(diags, analysis.Diagnostic{
			Analyzer: "lockorder",
			Package:  s.pkg,
			Pos:      token.Position{Filename: s.edge.File, Line: s.edge.Line},
			Message: fmt.Sprintf(
				"lock order cycle: %s is acquired here while %s is held, and the opposite order occurs elsewhere (cycle through %s); pick one global order or //cfsf:lock-order-ok <why>",
				s.edge.To, s.edge.From, strings.Join(members, ", ")),
		})
	}
	return diags
}

// stronglyConnected returns a component id per node, where only nodes
// in components with more than one member (i.e. on a cycle, given no
// self-edges) are assigned. Tarjan's algorithm, iterative enough for
// the handful of lock classes a real program has.
func stronglyConnected(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	inAdj := map[string]bool{}
	for from, tos := range adj {
		if !inAdj[from] {
			inAdj[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !inAdj[to] {
				inAdj[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := map[string]int{}
	compSize := map[int]int{}
	ncomp := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := ncomp
			ncomp++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = id
				compSize[id]++
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	// Keep only multi-member components.
	for v, id := range comp {
		if compSize[id] < 2 {
			delete(comp, v)
		}
	}
	return comp
}
