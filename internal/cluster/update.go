package cluster

import (
	"math"

	"cfsf/internal/ratings"
)

// Nearest returns the cluster whose centroid is closest to user u under
// the PCC distance, using the Result's stored per-cluster means. It is
// the incremental counterpart of a full K-means pass: new or changed
// users are placed without moving anyone else.
func (r *Result) Nearest(m *ratings.Matrix, u int) int {
	overall := r.overallMeans()
	best, bestC := math.Inf(1), 0
	for c := 0; c < r.K; c++ {
		if d := r.pccDistance(m, u, c, overall[c]); d < best {
			best, bestC = d, c
		}
	}
	return bestC
}

// ReassignUsers returns a copy of the clustering in which each listed
// user (including ids beyond the original assignment, for newly added
// users) is moved to its nearest centroid, with memberships and centroid
// statistics recomputed from the given matrix. The centroids used for
// placement are the *old* ones, so the operation is deterministic and
// order-independent.
func (r *Result) ReassignUsers(m *ratings.Matrix, users []int) *Result {
	out := &Result{
		K:          r.K,
		Assign:     make([]int, m.NumUsers()),
		Members:    make([][]int, r.K),
		Mean:       make([][]float64, r.K),
		Count:      make([][]int32, r.K),
		Iterations: r.Iterations,
	}
	for u := range out.Assign {
		if u < len(r.Assign) {
			out.Assign[u] = r.Assign[u]
		}
	}
	overall := r.overallMeans()
	for _, u := range users {
		if u < 0 || u >= m.NumUsers() {
			continue
		}
		best, bestC := math.Inf(1), 0
		for c := 0; c < r.K; c++ {
			if d := r.pccDistance(m, u, c, overall[c]); d < best {
				best, bestC = d, c
			}
		}
		out.Assign[u] = bestC
	}

	q := m.NumItems()
	for c := 0; c < r.K; c++ {
		out.Mean[c] = make([]float64, q)
		out.Count[c] = make([]int32, q)
	}
	for u := 0; u < m.NumUsers(); u++ {
		c := out.Assign[u]
		out.Members[c] = append(out.Members[c], u)
		for _, e := range m.UserRatings(u) {
			out.Mean[c][e.Index] += e.Value
			out.Count[c][e.Index]++
		}
	}
	for c := 0; c < r.K; c++ {
		for i := 0; i < q; i++ {
			if out.Count[c][i] > 0 {
				out.Mean[c][i] /= float64(out.Count[c][i])
			}
		}
	}
	return out
}

// overallMeans computes each centroid's mean over its covered items.
func (r *Result) overallMeans() []float64 {
	out := make([]float64, r.K)
	for c := 0; c < r.K; c++ {
		var sum float64
		n := 0
		for i, cnt := range r.Count[c] {
			if cnt > 0 {
				sum += r.Mean[c][i]
				n++
			}
		}
		if n > 0 {
			out[c] = sum / float64(n)
		}
	}
	return out
}

// pccDistance is 1 − PCC(user, centroid c), mirroring the K-means metric.
func (r *Result) pccDistance(m *ratings.Matrix, u, c int, centroidMean float64) float64 {
	um := m.UserMean(u)
	var sxy, sxx, syy float64
	n := 0
	for _, e := range m.UserRatings(u) {
		if int(e.Index) >= len(r.Count[c]) || r.Count[c][e.Index] == 0 {
			continue
		}
		dx := e.Value - um
		dy := r.Mean[c][e.Index] - centroidMean
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
		n++
	}
	if n == 0 || sxx == 0 || syy == 0 {
		return 1
	}
	return 1 - sxy/(math.Sqrt(sxx)*math.Sqrt(syy))
}
