package cluster

import (
	"math/rand"
	"testing"

	"cfsf/internal/ratings"
)

func randMatrix(rng *rand.Rand, users, items, n int) *ratings.Matrix {
	b := ratings.NewBuilder(users, items).SetScale(1, 5)
	for k := 0; k < n; k++ {
		b.MustAdd(rng.Intn(users), rng.Intn(items), float64(rng.Intn(9)+1)/2)
	}
	return b.Build()
}

// requireSameResult asserts that the incremental refresh and the full
// reassignment produced identical clusterings. Untouched clusters in the
// refresh may carry shorter (pre-growth) centroid arrays; the values in
// the shared prefix must match exactly and the full rebuild must be zero
// beyond it.
func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.K != got.K {
		t.Fatalf("K: want %d got %d", want.K, got.K)
	}
	if len(want.Assign) != len(got.Assign) {
		t.Fatalf("assign len: want %d got %d", len(want.Assign), len(got.Assign))
	}
	for u := range want.Assign {
		if want.Assign[u] != got.Assign[u] {
			t.Fatalf("user %d: want cluster %d got %d", u, want.Assign[u], got.Assign[u])
		}
	}
	for c := 0; c < want.K; c++ {
		if len(want.Members[c]) != len(got.Members[c]) {
			t.Fatalf("cluster %d members: want %d got %d", c, len(want.Members[c]), len(got.Members[c]))
		}
		for j := range want.Members[c] {
			if want.Members[c][j] != got.Members[c][j] {
				t.Fatalf("cluster %d member[%d]: want %d got %d", c, j, want.Members[c][j], got.Members[c][j])
			}
		}
		for i := range want.Mean[c] {
			wm, wc := want.Mean[c][i], want.Count[c][i]
			var gm float64
			var gc int32
			if i < len(got.Mean[c]) {
				gm, gc = got.Mean[c][i], got.Count[c][i]
			}
			if wm != gm || wc != gc {
				t.Fatalf("cluster %d item %d: want (%v,%d) got (%v,%d)", c, i, wm, wc, gm, gc)
			}
		}
	}
}

func TestRefreshUsersMatchesReassign(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		m := randMatrix(rng, 25, 15, 180)
		res, err := Run(m, Options{K: 4, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		// A changed-user set, possibly with new users and new items.
		growU := rng.Intn(3)
		growI := rng.Intn(3)
		b := ratings.NewBuilder(25+growU, 15+growI).SetScale(1, 5)
		for u := 0; u < 25; u++ {
			for _, e := range m.UserRatings(u) {
				b.MustAdd(u, int(e.Index), e.Value)
			}
		}
		users := map[int]bool{}
		for k := 0; k < rng.Intn(5)+1; k++ {
			u := rng.Intn(25 + growU)
			b.MustAdd(u, rng.Intn(15+growI), float64(rng.Intn(9)+1)/2)
			users[u] = true
		}
		for u := 25; u < 25+growU; u++ { // every new user must rate something
			b.MustAdd(u, rng.Intn(15+growI), float64(rng.Intn(9)+1)/2)
			users[u] = true
		}
		m2 := b.Build()
		list := make([]int, 0, len(users))
		for u := range users {
			list = append(list, u)
		}

		want := res.ReassignUsers(m2, list)
		got, affected := res.RefreshUsers(m2, list)
		requireSameResult(t, want, got)

		// Every listed user's old and new cluster must be flagged.
		for _, u := range list {
			if u < len(res.Assign) && !affected[res.Assign[u]] {
				t.Fatalf("old cluster %d of user %d not marked affected", res.Assign[u], u)
			}
			if !affected[got.Assign[u]] {
				t.Fatalf("new cluster %d of user %d not marked affected", got.Assign[u], u)
			}
		}
	}
}

func TestRefreshUsersSharesUntouchedClusters(t *testing.T) {
	m := blockMatrix(40, 20)
	res, err := Run(m, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Change one user without moving it: same block, new rating value.
	u := res.Members[0][0]
	b := ratings.NewBuilder(40, 20)
	for v := 0; v < 40; v++ {
		for _, e := range m.UserRatings(v) {
			b.MustAdd(v, int(e.Index), e.Value)
		}
	}
	b.MustAdd(u, int(m.UserRatings(u)[0].Index), 4)
	m2 := b.Build()

	got, affected := res.RefreshUsers(m2, []int{u})
	if len(affected) != 1 || !affected[0] {
		t.Fatalf("affected = %v, want exactly {0}", affected)
	}
	// Cluster 1 structures are shared, not copied.
	if &got.Mean[1][0] != &res.Mean[1][0] {
		t.Fatal("untouched cluster's mean array was copied")
	}
	if &got.Members[1][0] != &res.Members[1][0] {
		t.Fatal("untouched cluster's member list was copied")
	}
}

func TestNearestAllMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMatrix(rng, 30, 12, 200)
	res, err := Run(m, Options{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	users := []int{0, 7, 13, 29}
	got := res.NearestAll(m, users)
	for j, u := range users {
		if want := res.Nearest(m, u); got[j] != want {
			t.Fatalf("user %d: NearestAll %d, Nearest %d", u, got[j], want)
		}
	}
}
