package cluster

import (
	"math"

	"cfsf/internal/ratings"
)

// Incremental, shard-aware counterpart of ReassignUsers. A micro-batch of
// rating updates usually touches users in one or two clusters; rebuilding
// every cluster's membership list and centroid statistics (O(nnz)) for
// that is the dominant cost ReassignUsers pays. RefreshUsers rebuilds only
// the clusters whose membership could have changed — the old and new
// cluster of every listed user — and shares the rest with the receiver.
//
// The result is bit-for-bit identical to ReassignUsers(m, users): affected
// clusters re-accumulate their means over members in ascending user order
// (the same order the full pass visits them), and untouched clusters'
// float arrays are reused verbatim (zero-padded when the item dimension
// grew, which matches the full rebuild because new items can only have
// been rated by listed users).

// RefreshUsers returns a copy of the clustering in which each listed user
// is moved to its nearest old centroid, rebuilding only the affected
// clusters. The second result reports which clusters were rebuilt (the
// shards a caller must refresh downstream).
func (r *Result) RefreshUsers(m *ratings.Matrix, users []int) (*Result, map[int]bool) {
	affected := make(map[int]bool)
	out := &Result{
		K:          r.K,
		Assign:     make([]int, m.NumUsers()),
		Members:    make([][]int, r.K),
		Mean:       make([][]float64, r.K),
		Count:      make([][]int32, r.K),
		Iterations: r.Iterations,
	}
	for u := range out.Assign {
		if u < len(r.Assign) {
			out.Assign[u] = r.Assign[u]
		} else {
			// ReassignUsers defaults unplaced new users to cluster 0.
			affected[0] = true
		}
	}
	overall := r.overallMeans()
	for _, u := range users {
		if u < 0 || u >= m.NumUsers() {
			continue
		}
		if u < len(r.Assign) {
			affected[r.Assign[u]] = true
		}
		best, bestC := math.Inf(1), 0
		for c := 0; c < r.K; c++ {
			if d := r.pccDistance(m, u, c, overall[c]); d < best {
				best, bestC = d, c
			}
		}
		out.Assign[u] = bestC
		affected[bestC] = true
	}

	q := m.NumItems()
	for c := 0; c < r.K; c++ {
		if affected[c] {
			out.Mean[c] = make([]float64, q)
			out.Count[c] = make([]int32, q)
			continue
		}
		out.Members[c] = r.Members[c]
		out.Mean[c] = padFloats(r.Mean[c], q)
		out.Count[c] = padCounts(r.Count[c], q)
	}
	for u := 0; u < m.NumUsers(); u++ {
		c := out.Assign[u]
		if !affected[c] {
			continue
		}
		out.Members[c] = append(out.Members[c], u)
		for _, e := range m.UserRatings(u) {
			out.Mean[c][e.Index] += e.Value
			out.Count[c][e.Index]++
		}
	}
	//cfsf:ordered-ok each affected cluster normalizes only its own Mean row, so visit order cannot change any value
	for c := range affected {
		for i := 0; i < q; i++ {
			if out.Count[c][i] > 0 {
				out.Mean[c][i] /= float64(out.Count[c][i])
			}
		}
	}
	return out, affected
}

// NearestAll places each listed user on its nearest centroid, computing
// the per-centroid overall means once for the whole sweep (Nearest
// recomputes them per call, which a shard-sized batch cannot afford).
func (r *Result) NearestAll(m *ratings.Matrix, users []int) []int {
	overall := r.overallMeans()
	out := make([]int, len(users))
	for j, u := range users {
		best, bestC := math.Inf(1), 0
		for c := 0; c < r.K; c++ {
			if d := r.pccDistance(m, u, c, overall[c]); d < best {
				best, bestC = d, c
			}
		}
		out[j] = bestC
	}
	return out
}

func padFloats(a []float64, n int) []float64 {
	if len(a) == n {
		return a
	}
	out := make([]float64, n)
	copy(out, a)
	return out
}

func padCounts(a []int32, n int) []int32 {
	if len(a) == n {
		return a
	}
	out := make([]int32, n)
	copy(out, a)
	return out
}
