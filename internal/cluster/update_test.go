package cluster

import (
	"testing"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

func TestNearestPicksMatchingBlock(t *testing.T) {
	m := blockMatrix(40, 20)
	res, err := Run(m, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every user's nearest centroid must be its own cluster (the
	// clustering converged).
	for u := 0; u < m.NumUsers(); u++ {
		if got := res.Nearest(m, u); got != res.Assign[u] {
			t.Fatalf("user %d: Nearest = %d, assigned %d", u, got, res.Assign[u])
		}
	}
}

func TestReassignUsersNewUser(t *testing.T) {
	m := blockMatrix(40, 20)
	res, err := Run(m, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the matrix with one user who mimics block A (loves the first
	// half of the items).
	b := ratings.NewBuilder(41, 20)
	for u := 0; u < 40; u++ {
		for _, e := range m.UserRatings(u) {
			b.MustAdd(u, int(e.Index), e.Value)
		}
	}
	for i := 0; i < 10; i++ {
		b.MustAdd(40, i, 5)
	}
	for i := 10; i < 20; i++ {
		b.MustAdd(40, i, 1)
	}
	m2 := b.Build()

	updated := res.ReassignUsers(m2, []int{40})
	if len(updated.Assign) != 41 {
		t.Fatalf("assign covers %d users, want 41", len(updated.Assign))
	}
	if updated.Assign[40] != res.Assign[0] {
		t.Errorf("new block-A user assigned cluster %d, block A is %d", updated.Assign[40], res.Assign[0])
	}
	// Existing users keep their clusters.
	for u := 0; u < 40; u++ {
		if updated.Assign[u] != res.Assign[u] {
			t.Fatalf("user %d moved from %d to %d without being listed", u, res.Assign[u], updated.Assign[u])
		}
	}
	// Statistics were recomputed over the new matrix: the new user's
	// ratings appear in its cluster's counts.
	c := updated.Assign[40]
	if updated.Count[c][0] != res.Count[c][0]+1 {
		t.Errorf("cluster %d item 0 count %d, want %d", c, updated.Count[c][0], res.Count[c][0]+1)
	}
	// Original result untouched.
	if len(res.Assign) != 40 {
		t.Error("original result mutated")
	}
}

func TestReassignUsersMembershipConsistent(t *testing.T) {
	m := blockMatrix(30, 12)
	res, err := Run(m, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	updated := res.ReassignUsers(m, []int{0, 5, 29})
	seen := 0
	for c, members := range updated.Members {
		for _, u := range members {
			if updated.Assign[u] != c {
				t.Fatalf("member list inconsistent for user %d", u)
			}
			seen++
		}
	}
	if seen != m.NumUsers() {
		t.Fatalf("members cover %d users, want %d", seen, m.NumUsers())
	}
}

func TestReassignUsersIgnoresOutOfRange(t *testing.T) {
	m := blockMatrix(20, 10)
	res, err := Run(m, Options{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	updated := res.ReassignUsers(m, []int{-5, 1000})
	for u := 0; u < 20; u++ {
		if updated.Assign[u] != res.Assign[u] {
			t.Fatal("out-of-range reassign changed assignments")
		}
	}
}

func TestSilhouetteSeparatedBlocks(t *testing.T) {
	m := blockMatrix(40, 20)
	good, err := Run(m, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := Silhouette(m, good)
	if s < 0.5 {
		t.Errorf("well-separated blocks silhouette = %.3f, want >= 0.5", s)
	}
	// A deliberately wrong clustering (interleaved users) must score
	// clearly worse.
	bad := &Result{K: 2, Assign: make([]int, 40), Members: make([][]int, 2)}
	for u := 0; u < 40; u++ {
		c := u % 2
		bad.Assign[u] = c
		bad.Members[c] = append(bad.Members[c], u)
	}
	if sb := Silhouette(m, bad); sb >= s {
		t.Errorf("interleaved clustering silhouette %.3f not below true clustering %.3f", sb, s)
	}
}

func TestSilhouetteEdgeCases(t *testing.T) {
	m := blockMatrix(6, 8)
	one, err := Run(m, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(m, one); s != 0 {
		t.Errorf("K=1 silhouette = %g, want 0", s)
	}
}

// TestSilhouetteDetectsOverClustering: on data generated from 5
// archetypes, the silhouette at a plausible K must clearly beat a badly
// over-specified K (fragmented clusters score poorly), and every score
// must stay within [-1, 1]. (Silhouette does not reliably *peak* at the
// generative K — coarser splits of correlated archetypes can score
// higher — so the test pins the robust direction only.)
func TestSilhouetteDetectsOverClustering(t *testing.T) {
	cfg := smallSynth()
	cfg.Archetypes = 5
	cfg.Users = 90
	cfg.ArchetypeSpread = 0.05
	d := synth.MustGenerate(cfg)
	score := func(k int) float64 {
		res, err := Run(d.Matrix, Options{K: k, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := Silhouette(d.Matrix, res)
		if s < -1 || s > 1 {
			t.Fatalf("silhouette %g out of [-1,1] at K=%d", s, k)
		}
		return s
	}
	atTrue := score(5)
	atHuge := score(30)
	if atTrue <= atHuge {
		t.Errorf("silhouette at K=5 (%.3f) not above over-clustered K=30 (%.3f)", atTrue, atHuge)
	}
}
