package cluster

import (
	"math"

	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Silhouette computes the mean silhouette coefficient of the clustering
// under the PCC distance: for each user, (b − a) / max(a, b) with a =
// mean distance to own-cluster members and b = the smallest mean
// distance to another cluster. Values near 1 mean tight, well-separated
// clusters; near 0, overlapping ones. It quantifies how well a chosen C
// matches the data's latent structure (the Fig. 4 analysis).
//
// Distances are computed user↔user with Eq. 6 PCC (1 − sim, neutral 1
// when there is no co-rated overlap). Cost is O(P²·overlap); fine at the
// paper's 500-user scale.
func Silhouette(m *ratings.Matrix, res *Result) float64 {
	p := m.NumUsers()
	if p < 2 || res.K < 2 {
		return 0
	}

	// Pairwise distance matrix (symmetric).
	dist := make([][]float64, p)
	for u := range dist {
		dist[u] = make([]float64, p)
	}
	parallel.For(p, 0, func(u int) {
		for v := u + 1; v < p; v++ {
			d := pccUserDistance(m, u, v)
			dist[u][v] = d
		}
	})
	for u := 0; u < p; u++ {
		for v := 0; v < u; v++ {
			dist[u][v] = dist[v][u]
		}
	}

	var total float64
	counted := 0
	for u := 0; u < p; u++ {
		own := res.Assign[u]
		if len(res.Members[own]) < 2 {
			continue // silhouette undefined for singleton clusters
		}
		var a float64
		bBest := math.Inf(1)
		for c := 0; c < res.K; c++ {
			members := res.Members[c]
			if len(members) == 0 {
				continue
			}
			var sum float64
			n := 0
			for _, v := range members {
				if v == u {
					continue
				}
				sum += dist[u][v]
				n++
			}
			if n == 0 {
				continue
			}
			mean := sum / float64(n)
			if c == own {
				a = mean
			} else if mean < bBest {
				bBest = mean
			}
		}
		if math.IsInf(bBest, 1) {
			continue
		}
		den := a
		if bBest > den {
			den = bBest
		}
		if den > 0 {
			total += (bBest - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// pccUserDistance is 1 − PCC(u, v) over co-rated items, neutral 1 when
// undefined (range [0, 2]).
func pccUserDistance(m *ratings.Matrix, u, v int) float64 {
	um, vm := m.UserMean(u), m.UserMean(v)
	var sxy, sxx, syy float64
	n := 0
	m.CoRatedItems(u, v, func(_ int32, ru, rv float64) {
		du, dv := ru-um, rv-vm
		sxy += du * dv
		sxx += du * du
		syy += dv * dv
		n++
	})
	if n == 0 || sxx == 0 || syy == 0 {
		return 1
	}
	return 1 - sxy/(math.Sqrt(sxx)*math.Sqrt(syy))
}
