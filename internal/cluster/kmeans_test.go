package cluster

import (
	"testing"

	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// blockMatrix builds users in two obvious taste blocks: block A loves the
// first half of the items, block B loves the second half.
func blockMatrix(p, q int) *ratings.Matrix {
	b := ratings.NewBuilder(p, q)
	for u := 0; u < p; u++ {
		lovesFirst := u < p/2
		for i := 0; i < q; i++ {
			var r float64
			if (i < q/2) == lovesFirst {
				r = 5
			} else {
				r = 1
			}
			// Leave some holes so rows are not identical.
			if (u+i)%5 == 0 {
				continue
			}
			b.MustAdd(u, i, r)
		}
	}
	return b.Build()
}

func TestKMeansSeparatesBlocks(t *testing.T) {
	m := blockMatrix(40, 20)
	res, err := Run(m, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All users in the same block must share a cluster.
	for u := 1; u < 20; u++ {
		if res.Assign[u] != res.Assign[0] {
			t.Fatalf("block A split: user %d in %d, user 0 in %d", u, res.Assign[u], res.Assign[0])
		}
	}
	for u := 21; u < 40; u++ {
		if res.Assign[u] != res.Assign[20] {
			t.Fatalf("block B split: user %d in %d, user 20 in %d", u, res.Assign[u], res.Assign[20])
		}
	}
	if res.Assign[0] == res.Assign[20] {
		t.Fatal("blocks A and B merged into one cluster")
	}
}

func TestKMeansAssignInRangeAndMembersConsistent(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	res, err := Run(d.Matrix, Options{K: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 7 {
		t.Fatalf("K = %d, want 7", res.K)
	}
	count := 0
	for c, members := range res.Members {
		for _, u := range members {
			if res.Assign[u] != c {
				t.Fatalf("user %d listed in cluster %d but assigned %d", u, c, res.Assign[u])
			}
			count++
		}
	}
	if count != d.Matrix.NumUsers() {
		t.Fatalf("members cover %d users, want %d", count, d.Matrix.NumUsers())
	}
	for u, c := range res.Assign {
		if c < 0 || c >= res.K {
			t.Fatalf("user %d assigned out-of-range cluster %d", u, c)
		}
	}
}

func TestKMeansNoEmptyClusters(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	res, err := Run(d.Matrix, Options{K: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for c, members := range res.Members {
		if len(members) == 0 {
			t.Errorf("cluster %d is empty", c)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	a, err := Run(d.Matrix, Options{K: 5, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d.Matrix, Options{K: 5, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatalf("assignment differs across worker counts at user %d", u)
		}
	}
}

func TestKMeansKExceedsUsers(t *testing.T) {
	m := blockMatrix(6, 10)
	res, err := Run(m, Options{K: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("K clamped to %d, want 6", res.K)
	}
}

func TestKMeansInvalidK(t *testing.T) {
	m := blockMatrix(6, 10)
	if _, err := Run(m, Options{K: 0}); err == nil {
		t.Error("K=0 must error")
	}
	if _, err := Run(m, Options{K: -3}); err == nil {
		t.Error("negative K must error")
	}
}

func TestKMeansCentroidStats(t *testing.T) {
	m := blockMatrix(20, 10)
	res, err := Run(m, Options{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute centroid means manually from the assignment.
	for c := 0; c < res.K; c++ {
		sum := make([]float64, m.NumItems())
		cnt := make([]int32, m.NumItems())
		for _, u := range res.Members[c] {
			for _, e := range m.UserRatings(u) {
				sum[e.Index] += e.Value
				cnt[e.Index]++
			}
		}
		for i := 0; i < m.NumItems(); i++ {
			if cnt[i] != res.Count[c][i] {
				t.Fatalf("cluster %d item %d count %d, want %d", c, i, res.Count[c][i], cnt[i])
			}
			if cnt[i] > 0 {
				want := sum[i] / float64(cnt[i])
				if diff := res.Mean[c][i] - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("cluster %d item %d mean %g, want %g", c, i, res.Mean[c][i], want)
				}
			}
		}
	}
}

func TestKMeansEuclideanMetric(t *testing.T) {
	m := blockMatrix(30, 16)
	res, err := Run(m, Options{K: 2, Seed: 4, Metric: Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] == res.Assign[29] {
		t.Error("euclidean metric failed to separate opposite blocks")
	}
}

func TestKMeansInertiaNonNegative(t *testing.T) {
	d := synth.MustGenerate(smallSynth())
	res, err := Run(d.Matrix, Options{K: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia < 0 {
		t.Errorf("inertia %g < 0", res.Inertia)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations %d < 1", res.Iterations)
	}
}

func TestMetricStrings(t *testing.T) {
	if PCCDistance.String() != "pcc" || Euclidean.String() != "euclidean" || Metric(42).String() != "unknown" {
		t.Error("Metric.String() mismatch")
	}
}

// TestKMeansRecoverArchetypes checks cluster purity on synthetic data:
// most users of an archetype should land in the same cluster.
func TestKMeansRecoverArchetypes(t *testing.T) {
	cfg := smallSynth()
	cfg.Archetypes = 4
	cfg.Users = 120
	d := synth.MustGenerate(cfg)
	res, err := Run(d.Matrix, Options{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// For each archetype find its majority cluster; purity = fraction of
	// users in their archetype's majority cluster.
	counts := map[[2]int]int{}
	for u, a := range d.UserArchetype {
		counts[[2]int{a, res.Assign[u]}]++
	}
	pure := 0
	for a := 0; a < 4; a++ {
		best := 0
		for c := 0; c < res.K; c++ {
			if n := counts[[2]int{a, c}]; n > best {
				best = n
			}
		}
		pure += best
	}
	if frac := float64(pure) / float64(cfg.Users); frac < 0.7 {
		t.Errorf("cluster purity %.2f < 0.7", frac)
	}
}

func smallSynth() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 100
	cfg.Items = 150
	cfg.MinPerUser = 15
	cfg.MeanPerUser = 30
	cfg.Archetypes = 8
	return cfg
}
