// Package cluster implements the user clustering step of the CFSF
// offline phase (paper §IV-C): K-means over user rating profiles, using
// the PCC similarity of Eq. 6 (converted to a distance) between a user's
// sparse rating vector and a cluster centroid. K-means++ seeding and
// empty-cluster repair keep the result stable; assignment is parallel
// over users and fully deterministic for a fixed seed.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Metric selects the distance used between a user and a centroid.
type Metric int

const (
	// PCCDistance is 1 − PCC(user, centroid), the paper's choice (Eq. 6).
	PCCDistance Metric = iota
	// Euclidean is the RMS difference over the items the user rated,
	// provided as a baseline/ablation metric.
	Euclidean
)

func (m Metric) String() string {
	switch m {
	case PCCDistance:
		return "pcc"
	case Euclidean:
		return "euclidean"
	default:
		return "unknown"
	}
}

// Options configures Run.
type Options struct {
	K       int    // number of clusters (paper default C = 30)
	MaxIter int    // iteration cap (0 = 100)
	Seed    int64  // PRNG seed for k-means++ initialisation
	Metric  Metric // user↔centroid distance
	Workers int    // parallelism for the assignment step (<=0 = GOMAXPROCS)
}

// Result is a completed clustering.
type Result struct {
	// Assign maps each user to a cluster in [0, K).
	Assign []int
	// Members lists the users of each cluster.
	Members [][]int
	// Mean[c][i] is the average rating cluster c's members gave item i
	// (meaningful only where Count[c][i] > 0).
	Mean [][]float64
	// Count[c][i] is how many members of cluster c rated item i.
	Count [][]int32
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Inertia is the summed distance of each user to its centroid at
	// convergence (lower is tighter).
	Inertia float64
	// K is the cluster count the result was built with.
	K int
}

// Run clusters the users of m. It returns an error for an invalid K.
func Run(m *ratings.Matrix, opts Options) (*Result, error) {
	p := m.NumUsers()
	if opts.K <= 0 {
		return nil, fmt.Errorf("cluster: K must be positive, got %d", opts.K)
	}
	k := opts.K
	if k > p {
		k = p
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	c := newCentroids(k, m.NumItems())
	c.seedPlusPlus(m, rng, opts)

	assign := make([]int, p)
	for i := range assign {
		assign[i] = -1
	}
	dist := make([]float64, p)

	iter := 0
	for ; iter < maxIter; iter++ {
		moved := assignAll(m, c, assign, dist, opts)
		c.recompute(m, assign)
		c.repairEmpty(m, assign, dist)
		if moved == 0 {
			break
		}
	}

	res := &Result{
		Assign:     assign,
		Members:    make([][]int, k),
		Mean:       c.mean,
		Count:      c.count,
		Iterations: iter + 1,
		K:          k,
	}
	for u, cl := range assign {
		res.Members[cl] = append(res.Members[cl], u)
		res.Inertia += dist[u]
	}
	return res, nil
}

// centroids holds per-cluster per-item rating means and support counts.
type centroids struct {
	k     int
	q     int
	mean  [][]float64
	count [][]int32
	// overall mean of each centroid over its covered items, used to
	// centre the centroid in the PCC computation.
	overall []float64
}

func newCentroids(k, q int) *centroids {
	c := &centroids{k: k, q: q,
		mean:    make([][]float64, k),
		count:   make([][]int32, k),
		overall: make([]float64, k),
	}
	for i := 0; i < k; i++ {
		c.mean[i] = make([]float64, q)
		c.count[i] = make([]int32, q)
	}
	return c
}

// setFromUser initialises centroid cl to a single user's profile.
func (c *centroids) setFromUser(m *ratings.Matrix, cl, u int) {
	mean, count := c.mean[cl], c.count[cl]
	for i := range mean {
		mean[i], count[i] = 0, 0
	}
	var sum float64
	row := m.UserRatings(u)
	for _, e := range row {
		mean[e.Index] = e.Value
		count[e.Index] = 1
		sum += e.Value
	}
	if len(row) > 0 {
		c.overall[cl] = sum / float64(len(row))
	}
}

// distance computes the user↔centroid distance per the chosen metric over
// the items the user rated that the centroid covers. Users with no
// overlap get the maximum distance for the metric.
func (c *centroids) distance(m *ratings.Matrix, u, cl int, metric Metric) float64 {
	mean, count := c.mean[cl], c.count[cl]
	switch metric {
	case Euclidean:
		var ss float64
		n := 0
		for _, e := range m.UserRatings(u) {
			if count[e.Index] == 0 {
				continue
			}
			d := e.Value - mean[e.Index]
			ss += d * d
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return math.Sqrt(ss / float64(n))
	default: // PCCDistance
		um := m.UserMean(u)
		cm := c.overall[cl]
		var sxy, sxx, syy float64
		n := 0
		for _, e := range m.UserRatings(u) {
			if count[e.Index] == 0 {
				continue
			}
			dx := e.Value - um
			dy := mean[e.Index] - cm
			sxy += dx * dy
			sxx += dx * dx
			syy += dy * dy
			n++
		}
		if n == 0 || sxx == 0 || syy == 0 {
			return 1 // PCC 0 → neutral distance
		}
		return 1 - sxy/(math.Sqrt(sxx)*math.Sqrt(syy)) // in [0, 2]
	}
}

// seedPlusPlus runs k-means++ initialisation.
func (c *centroids) seedPlusPlus(m *ratings.Matrix, rng *rand.Rand, opts Options) {
	p := m.NumUsers()
	first := rng.Intn(p)
	c.setFromUser(m, 0, first)
	d2 := make([]float64, p)
	for cl := 1; cl < c.k; cl++ {
		var total float64
		for u := 0; u < p; u++ {
			best := math.Inf(1)
			for prev := 0; prev < cl; prev++ {
				if d := c.distance(m, u, prev, opts.Metric); d < best {
					best = d
				}
			}
			if math.IsInf(best, 1) {
				best = 2
			}
			d2[u] = best * best
			total += d2[u]
		}
		pick := 0
		if total > 0 {
			target := rng.Float64() * total
			acc := 0.0
			for u := 0; u < p; u++ {
				acc += d2[u]
				if acc >= target {
					pick = u
					break
				}
			}
		} else {
			pick = rng.Intn(p)
		}
		c.setFromUser(m, cl, pick)
	}
}

// assignAll reassigns every user to its nearest centroid, returning how
// many users changed cluster. dist[u] receives the chosen distance.
func assignAll(m *ratings.Matrix, c *centroids, assign []int, dist []float64, opts Options) int {
	p := m.NumUsers()
	movedPer := parallel.MapReduce(p, opts.Workers, func() int { return 0 }, func(moved, u int) int {
		best, bestCl := math.Inf(1), 0
		for cl := 0; cl < c.k; cl++ {
			if d := c.distance(m, u, cl, opts.Metric); d < best {
				best, bestCl = d, cl
			}
		}
		dist[u] = best
		if math.IsInf(best, 1) {
			dist[u] = 2
		}
		if assign[u] != bestCl {
			assign[u] = bestCl
			moved++
		}
		return moved
	})
	moved := 0
	for _, m := range movedPer {
		moved += m
	}
	return moved
}

// recompute rebuilds centroid means and counts from the assignment.
func (c *centroids) recompute(m *ratings.Matrix, assign []int) {
	for cl := 0; cl < c.k; cl++ {
		mean, count := c.mean[cl], c.count[cl]
		for i := range mean {
			mean[i], count[i] = 0, 0
		}
	}
	for u, cl := range assign {
		mean, count := c.mean[cl], c.count[cl]
		for _, e := range m.UserRatings(u) {
			mean[e.Index] += e.Value
			count[e.Index]++
		}
	}
	for cl := 0; cl < c.k; cl++ {
		mean, count := c.mean[cl], c.count[cl]
		var sum float64
		n := 0
		for i := range mean {
			if count[i] > 0 {
				mean[i] /= float64(count[i])
				sum += mean[i]
				n++
			}
		}
		if n > 0 {
			c.overall[cl] = sum / float64(n)
		} else {
			c.overall[cl] = 0
		}
	}
}

// repairEmpty moves the globally farthest user into each empty cluster so
// every cluster stays populated (smoothing needs non-empty clusters).
func (c *centroids) repairEmpty(m *ratings.Matrix, assign []int, dist []float64) {
	size := make([]int, c.k)
	for _, cl := range assign {
		size[cl]++
	}
	for cl := 0; cl < c.k; cl++ {
		if size[cl] > 0 {
			continue
		}
		far, farU := -1.0, -1
		for u := range assign {
			if size[assign[u]] <= 1 {
				continue // do not empty another cluster
			}
			if dist[u] > far {
				far, farU = dist[u], u
			}
		}
		if farU < 0 {
			continue
		}
		size[assign[farU]]--
		assign[farU] = cl
		size[cl]++
		c.setFromUser(m, cl, farU)
		dist[farU] = 0
	}
}
