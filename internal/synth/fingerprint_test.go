package synth

import "testing"

// TestDatasetFingerprint locks the default dataset against accidental
// generator changes: every number in EXPERIMENTS.md was measured on this
// exact dataset, so a silent change to the generation stream would
// invalidate the recorded results. If you change the generator or its
// defaults ON PURPOSE, update this fingerprint AND regenerate
// EXPERIMENTS.md (cmd/cfsf-bench -all).
func TestDatasetFingerprint(t *testing.T) {
	d := MustGenerate(DefaultConfig())
	m := d.Matrix

	if m.NumRatings() != 46565 {
		t.Fatalf("total ratings = %d, want 46565 — generator stream changed", m.NumRatings())
	}

	// First three ratings of user 0 (item id, value).
	row := m.UserRatings(0)
	if len(row) < 3 {
		t.Fatal("user 0 has fewer than 3 ratings")
	}
	type cell struct {
		item int32
		val  float64
	}
	want := []cell{{14, 3}, {53, 3}, {86, 3}}
	for k, w := range want {
		if row[k].Index != w.item || row[k].Value != w.val {
			t.Fatalf("user 0 rating %d = (%d, %g), want (%d, %g) — generator stream changed",
				k, row[k].Index, row[k].Value, w.item, w.val)
		}
	}

	// A rating-weighted checksum over the whole matrix.
	var sum float64
	for u := 0; u < m.NumUsers(); u++ {
		for _, e := range m.UserRatings(u) {
			sum += e.Value * float64(int(e.Index)%97+1)
		}
	}
	const wantSum = 7258665.0
	if diff := sum - wantSum; diff > 1 || diff < -1 {
		t.Fatalf("matrix checksum = %.6g, want %.6g — generator stream changed", sum, wantSum)
	}
}
