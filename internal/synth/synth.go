// Package synth generates MovieLens-like rating datasets with the
// statistical structure the CFSF paper's mechanisms exploit. The real
// GroupLens download is unavailable offline, so experiments run on this
// generator instead (see DESIGN.md §2 for the substitution argument):
//
//   - users are drawn from taste archetypes, so K-means user clusters and
//     "like-minded users" exist;
//   - items carry genre mixtures, so item–item PCC similarity (the GIS)
//     has real signal;
//   - every user has a personal rating-style bias, reproducing the
//     "diversity in user rating styles" that the smoothing strategy is
//     designed to remove;
//   - item popularity follows a Zipf law, giving the long-tail sparsity
//     pattern of commercial matrices;
//   - ratings are 1..5 integers at a configurable density
//     (default ≈ 9.4%, the paper's Table I).
//
// Generation is fully deterministic for a given Config (seeded PRNG, no
// global state), so every experiment in this repository is reproducible.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cfsf/internal/ratings"
)

// Config parameterises the generator. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Users      int   // number of users (paper: 500)
	Items      int   // number of items (paper: 1000)
	Archetypes int   // latent taste archetypes (drives the "true" user-cluster count)
	Genres     int   // item genre vocabulary (MovieLens has 18+1)
	Seed       int64 // PRNG seed; equal configs generate equal datasets

	MinPerUser  int     // minimum ratings per user (paper: ≥ 40)
	MeanPerUser float64 // target average ratings per user (paper: 94.4)

	AffinityGain    float64 // how strongly taste affinity moves the rating
	ArchetypeSpread float64 // per-user perturbation around the archetype preference
	UserBiasStd     float64 // per-user rating-style offset (smoothing target)
	// UserScaleStd is the log-std of the per-user rating-style scale: an
	// "extreme" user (scale > 1) swings to 1s and 5s where a "middle"
	// user (scale < 1) stays near their mean. Together with UserBiasStd
	// this is the "diversity in user rating styles" the paper's
	// smoothing strategy targets.
	UserScaleStd   float64
	ItemBiasStd    float64 // per-item quality offset
	NoiseStd       float64 // iid rating noise
	JunkProb       float64 // probability a rating is pure noise (misclick/mood)
	PopularitySkew float64 // Zipf exponent for item popularity
	AffinitySelect float64 // how strongly users pick items they will like

	// DriftStd makes preferences shift over time (the "shifts of user
	// preferences" of the paper's §VI): each *archetype* carries a
	// per-genre N(0, DriftStd) trend vector, and every user's effective
	// preference moves along their archetype's trend as the global
	// timeline advances — taste trends, not private random walks, so
	// recent ratings from anyone carry information about the present.
	// 0 disables drift. Ratings always carry synthetic timestamps;
	// drift and timestamps draw from a separate PRNG stream so
	// DriftStd=0 reproduces the exact dataset of earlier versions.
	DriftStd float64
}

// DefaultConfig mirrors the paper's Table I statistics.
func DefaultConfig() Config {
	return Config{
		Users:           500,
		Items:           1000,
		Archetypes:      30,
		Genres:          18,
		Seed:            1,
		MinPerUser:      40,
		MeanPerUser:     94.4,
		AffinityGain:    2.0,
		ArchetypeSpread: 0.10,
		UserBiasStd:     0.55,
		UserScaleStd:    0.35,
		ItemBiasStd:     0.25,
		NoiseStd:        0.45,
		JunkProb:        0.03,
		PopularitySkew:  0.8,
		AffinitySelect:  1.0,
	}
}

// Dataset is a generated matrix plus the latent structure used to build
// it, which examples and tests can use as ground truth.
type Dataset struct {
	Matrix *ratings.Matrix
	// ItemGenres[i] lists the genre ids of item i (1 or 2 genres).
	ItemGenres [][]int
	// GenreNames gives a display name per genre id.
	GenreNames []string
	// UserArchetype[u] is the taste archetype user u was drawn from.
	UserArchetype []int
	// ItemTitles gives a synthetic display title per item.
	ItemTitles []string
	Config     Config
}

var genreVocabulary = []string{
	"Action", "Adventure", "Animation", "Children", "Comedy", "Crime",
	"Documentary", "Drama", "Fantasy", "FilmNoir", "Horror", "Musical",
	"Mystery", "Romance", "SciFi", "Thriller", "War", "Western", "IMAX",
	"Biography", "Sport", "History", "Family", "Short",
}

// Generate builds a dataset from cfg. It panics only on programmer error
// (invalid configuration is reported as an error).
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("synth: need positive Users and Items, got %d, %d", cfg.Users, cfg.Items)
	}
	if cfg.Archetypes <= 0 {
		return nil, fmt.Errorf("synth: need positive Archetypes, got %d", cfg.Archetypes)
	}
	if cfg.Genres <= 0 || cfg.Genres > len(genreVocabulary) {
		return nil, fmt.Errorf("synth: Genres must be in [1,%d], got %d", len(genreVocabulary), cfg.Genres)
	}
	if cfg.MeanPerUser < float64(cfg.MinPerUser) {
		return nil, fmt.Errorf("synth: MeanPerUser %.1f below MinPerUser %d", cfg.MeanPerUser, cfg.MinPerUser)
	}
	if cfg.MinPerUser > cfg.Items {
		return nil, fmt.Errorf("synth: MinPerUser %d exceeds Items %d", cfg.MinPerUser, cfg.Items)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Archetype preference vectors over genres, in [-1, 1].
	arch := make([][]float64, cfg.Archetypes)
	for a := range arch {
		arch[a] = make([]float64, cfg.Genres)
		for g := range arch[a] {
			arch[a][g] = rng.Float64()*2 - 1
		}
	}

	// Items: genre mixture, quality bias, Zipf popularity weight.
	itemGenres := make([][]int, cfg.Items)
	itemBias := make([]float64, cfg.Items)
	popWeight := make([]float64, cfg.Items)
	itemTitles := make([]string, cfg.Items)
	perm := rng.Perm(cfg.Items) // popularity rank assignment
	for i := 0; i < cfg.Items; i++ {
		g1 := rng.Intn(cfg.Genres)
		itemGenres[i] = []int{g1}
		if rng.Float64() < 0.4 {
			g2 := rng.Intn(cfg.Genres)
			if g2 != g1 {
				itemGenres[i] = append(itemGenres[i], g2)
			}
		}
		itemBias[i] = rng.NormFloat64() * cfg.ItemBiasStd
		rank := perm[i] + 1
		popWeight[i] = 1 / math.Pow(float64(rank), cfg.PopularitySkew)
		itemTitles[i] = fmt.Sprintf("%s Movie #%03d", genreVocabulary[g1], i+1)
	}

	// Users: archetype with small personal perturbation, style bias,
	// activity level.
	userPref := make([][]float64, cfg.Users)
	userArch := make([]int, cfg.Users)
	userBias := make([]float64, cfg.Users)
	userScale := make([]float64, cfg.Users)
	userCount := make([]int, cfg.Users)
	extraMean := cfg.MeanPerUser - float64(cfg.MinPerUser)
	for u := 0; u < cfg.Users; u++ {
		a := rng.Intn(cfg.Archetypes)
		userArch[u] = a
		pref := make([]float64, cfg.Genres)
		for g := range pref {
			pref[g] = clamp(arch[a][g]+rng.NormFloat64()*cfg.ArchetypeSpread, -1, 1)
		}
		userPref[u] = pref
		userBias[u] = rng.NormFloat64() * cfg.UserBiasStd
		userScale[u] = math.Exp(rng.NormFloat64() * cfg.UserScaleStd)
		n := cfg.MinPerUser + int(rng.ExpFloat64()*extraMean)
		if n > cfg.Items {
			n = cfg.Items
		}
		userCount[u] = n
	}

	affinity := func(u, i int) float64 {
		s := 0.0
		for _, g := range itemGenres[i] {
			s += userPref[u][g]
		}
		return s / float64(len(itemGenres[i]))
	}

	b := ratings.NewBuilder(cfg.Users, cfg.Items)
	keys := make([]float64, cfg.Items)
	order := make([]int, cfg.Items)
	// Separate stream for temporal structure so the rating draws are
	// unchanged when drift is off.
	trng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	const epoch = int64(1_000_000_000)
	const horizon = int64(365 * 24 * 3600) // one year of rating activity
	// Drift as interpolation: each archetype's preference moves from its
	// start vector toward a drifted target over the year, so effective
	// preferences never saturate at the clamp boundary.
	var archDrift [][]float64
	if cfg.DriftStd > 0 {
		archDrift = make([][]float64, cfg.Archetypes)
		for a := range archDrift {
			archDrift[a] = make([]float64, cfg.Genres)
			for g := range archDrift[a] {
				target := clamp(arch[a][g]+trng.NormFloat64()*cfg.DriftStd, -1, 1)
				archDrift[a][g] = target - arch[a][g]
			}
		}
	}
	for u := 0; u < cfg.Users; u++ {
		// Weighted sampling without replacement via the exponential-keys
		// trick: item weight = popularity × exp(selection-affinity); the
		// n smallest -ln(U)/w win.
		for i := 0; i < cfg.Items; i++ {
			w := popWeight[i] * math.Exp(cfg.AffinitySelect*affinity(u, i))
			keys[i] = -math.Log(1-rng.Float64()) / w
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

		var drift []float64
		if archDrift != nil {
			drift = archDrift[userArch[u]]
		}
		// Users rate throughout the shared one-year horizon; timestamps
		// advance from a random start in its first tenth.
		n := userCount[u]
		ts := epoch + int64(trng.Intn(int(horizon/10)))
		step := (horizon - (ts - epoch)) / int64(n+1)
		for k := 0; k < n; k++ {
			i := order[k]
			aff := affinity(u, i)
			if drift != nil {
				// Global trend progress at this rating's moment.
				p := float64(ts-epoch) / float64(horizon)
				var s float64
				for _, g := range itemGenres[i] {
					s += clamp(userPref[u][g]+p*drift[g], -1, 1)
				}
				aff = s / float64(len(itemGenres[i]))
			}
			var r float64
			if rng.Float64() < cfg.JunkProb {
				// Heavy-tail noise: misclicks and mood ratings carry no
				// signal at all; smoothing dilutes them, single original
				// ratings do not.
				r = float64(1 + rng.Intn(5))
			} else {
				raw := 3.05 + userBias[u] + userScale[u]*(itemBias[i]+
					cfg.AffinityGain*aff+
					rng.NormFloat64()*cfg.NoiseStd)
				r = math.Round(clamp(raw, 1, 5))
			}
			if err := b.AddWithTime(u, i, r, ts); err != nil {
				return nil, err
			}
			jitter := step / 2
			if jitter < 1 {
				jitter = 1
			}
			ts += step/2 + int64(trng.Intn(int(jitter)+1))
		}
	}

	return &Dataset{
		Matrix:        b.Build(),
		ItemGenres:    itemGenres,
		GenreNames:    append([]string(nil), genreVocabulary[:cfg.Genres]...),
		UserArchetype: userArch,
		ItemTitles:    itemTitles,
		Config:        cfg,
	}, nil
}

// FeatureMatrix returns a one-hot genre feature vector per item, the
// "attributes of items" input for the content-boosted GIS (paper §VI
// future work). Items with two genres get 1/√2 weight on each.
func (d *Dataset) FeatureMatrix() [][]float64 {
	out := make([][]float64, len(d.ItemGenres))
	dim := len(d.GenreNames)
	for i, genres := range d.ItemGenres {
		v := make([]float64, dim)
		w := 1.0
		if len(genres) > 1 {
			w = 1 / math.Sqrt2
		}
		for _, g := range genres {
			v[g] = w
		}
		out[i] = v
	}
	return out
}

// MustGenerate is Generate that panics on error, for use with known-good
// configurations in examples and benchmarks.
func MustGenerate(cfg Config) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
