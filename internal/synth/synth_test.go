package synth

import (
	"math"
	"sort"
	"testing"

	"cfsf/internal/ratings"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 80
	cfg.Items = 120
	cfg.MinPerUser = 10
	cfg.MeanPerUser = 20
	cfg.Archetypes = 8
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.Matrix.NumRatings() != b.Matrix.NumRatings() {
		t.Fatalf("non-deterministic rating count: %d vs %d", a.Matrix.NumRatings(), b.Matrix.NumRatings())
	}
	for u := 0; u < cfg.Users; u++ {
		ra, rb := a.Matrix.UserRatings(u), b.Matrix.UserRatings(u)
		if len(ra) != len(rb) {
			t.Fatalf("user %d row length differs", u)
		}
		for k := range ra {
			if ra[k] != rb[k] {
				t.Fatalf("user %d entry %d differs: %v vs %v", u, k, ra[k], rb[k])
			}
		}
	}
	for u := range a.UserArchetype {
		if a.UserArchetype[u] != b.UserArchetype[u] {
			t.Fatal("archetype assignment not deterministic")
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := smallConfig()
	a := MustGenerate(cfg)
	cfg.Seed = 999
	b := MustGenerate(cfg)
	same := true
	for u := 0; u < cfg.Users && same; u++ {
		ra, rb := a.Matrix.UserRatings(u), b.Matrix.UserRatings(u)
		if len(ra) != len(rb) {
			same = false
			break
		}
		for k := range ra {
			if ra[k] != rb[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateShape(t *testing.T) {
	d := MustGenerate(DefaultConfig())
	m := d.Matrix
	if m.NumUsers() != 500 || m.NumItems() != 1000 {
		t.Fatalf("dims %d×%d, want 500×1000", m.NumUsers(), m.NumItems())
	}
	// Paper Table I statistics: density ≈ 9.44%, avg ≈ 94.4/user.
	if d := m.Density(); d < 0.07 || d > 0.12 {
		t.Errorf("density %.4f outside [0.07, 0.12]", d)
	}
	for u := 0; u < m.NumUsers(); u++ {
		if n := len(m.UserRatings(u)); n < 40 {
			t.Fatalf("user %d rated %d items, want >= 40 (paper constraint)", u, n)
		}
	}
}

func TestRatingsOnScale(t *testing.T) {
	d := MustGenerate(smallConfig())
	for u := 0; u < d.Matrix.NumUsers(); u++ {
		for _, e := range d.Matrix.UserRatings(u) {
			if e.Value < 1 || e.Value > 5 || e.Value != math.Trunc(e.Value) {
				t.Fatalf("rating %g not an integer in [1,5]", e.Value)
			}
		}
	}
}

func TestGenerateMetadata(t *testing.T) {
	cfg := smallConfig()
	d := MustGenerate(cfg)
	if len(d.ItemGenres) != cfg.Items || len(d.ItemTitles) != cfg.Items {
		t.Fatal("item metadata length mismatch")
	}
	if len(d.GenreNames) != cfg.Genres {
		t.Fatalf("genre names = %d, want %d", len(d.GenreNames), cfg.Genres)
	}
	for i, gs := range d.ItemGenres {
		if len(gs) < 1 || len(gs) > 2 {
			t.Fatalf("item %d has %d genres, want 1-2", i, len(gs))
		}
		for _, g := range gs {
			if g < 0 || g >= cfg.Genres {
				t.Fatalf("item %d genre %d out of range", i, g)
			}
		}
	}
	for u, a := range d.UserArchetype {
		if a < 0 || a >= cfg.Archetypes {
			t.Fatalf("user %d archetype %d out of range", u, a)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Items = -1 },
		func(c *Config) { c.Archetypes = 0 },
		func(c *Config) { c.Genres = 0 },
		func(c *Config) { c.Genres = 100 },
		func(c *Config) { c.MeanPerUser = 5; c.MinPerUser = 10 },
		func(c *Config) { c.MinPerUser = c.Items + 1 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestClusterStructureExists verifies the property CFSF depends on: users
// of the same archetype are more similar (PCC) than users of different
// archetypes, on average.
func TestClusterStructureExists(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 120
	cfg.MeanPerUser = 40
	d := MustGenerate(cfg)
	m := d.Matrix

	pcc := func(a, b int) (float64, bool) {
		ma, mb := m.UserMean(a), m.UserMean(b)
		var sxy, sxx, syy float64
		n := 0
		m.CoRatedItems(a, b, func(_ int32, ra, rb float64) {
			sxy += (ra - ma) * (rb - mb)
			sxx += (ra - ma) * (ra - ma)
			syy += (rb - mb) * (rb - mb)
			n++
		})
		if n < 3 || sxx == 0 || syy == 0 {
			return 0, false
		}
		return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), true
	}

	var same, diff float64
	var nSame, nDiff int
	for a := 0; a < m.NumUsers(); a++ {
		for b := a + 1; b < m.NumUsers(); b++ {
			s, ok := pcc(a, b)
			if !ok {
				continue
			}
			if d.UserArchetype[a] == d.UserArchetype[b] {
				same += s
				nSame++
			} else {
				diff += s
				nDiff++
			}
		}
	}
	if nSame == 0 || nDiff == 0 {
		t.Skip("not enough co-rated pairs")
	}
	if same/float64(nSame) <= diff/float64(nDiff)+0.1 {
		t.Errorf("same-archetype mean PCC %.3f not clearly above cross-archetype %.3f",
			same/float64(nSame), diff/float64(nDiff))
	}
}

// TestStyleDiversityExists verifies user mean ratings vary (the rating
// style diversity that smoothing removes).
func TestStyleDiversityExists(t *testing.T) {
	d := MustGenerate(DefaultConfig())
	m := d.Matrix
	var lo, hi float64 = 5, 1
	for u := 0; u < m.NumUsers(); u++ {
		mu := m.UserMean(u)
		if mu < lo {
			lo = mu
		}
		if mu > hi {
			hi = mu
		}
	}
	if hi-lo < 0.8 {
		t.Errorf("user mean range %.2f too narrow for style diversity", hi-lo)
	}
}

// TestPopularitySkew verifies a long-tail item distribution: the top
// decile of items receives several times the ratings of the bottom decile.
func TestPopularitySkew(t *testing.T) {
	d := MustGenerate(DefaultConfig())
	m := d.Matrix
	counts := make([]int, m.NumItems())
	for i := range counts {
		counts[i] = len(m.ItemRatings(i))
	}
	sort.Ints(counts)
	dec := len(counts) / 10
	var top, bottom int
	for i := 0; i < dec; i++ {
		bottom += counts[i]
		top += counts[len(counts)-1-i]
	}
	if bottom == 0 || float64(top)/float64(bottom) < 3 {
		t.Errorf("popularity skew top/bottom decile = %d/%d, want >= 3x", top, bottom)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := MustGenerate(smallConfig())
	path := t.TempDir() + "/u.data"
	if err := ratings.WriteUDataFile(path, d.Matrix); err != nil {
		t.Fatal(err)
	}
	back, err := ratings.ReadUDataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRatings() != d.Matrix.NumRatings() {
		t.Errorf("round trip ratings %d, want %d", back.NumRatings(), d.Matrix.NumRatings())
	}
}
