package server

import (
	"fmt"
	"net/http"

	"cfsf/internal/lifecycle"
)

// handleAdminSnapshot writes a model snapshot synchronously via the
// lifecycle manager and reports where it landed. Without a manager the
// server has no durability layer and responds 503.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if f := s.follower(); f != nil {
		s.redirectToLeader(w, r, f)
		return
	}
	mgr := s.manager()
	if mgr == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	info, err := mgr.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.reg.Counter("admin_snapshot_total").Inc()
	resp := map[string]any{
		"status":      "ok",
		"path":        info.Path,
		"covered_seq": info.CoveredSeq,
		"duration_ms": durMS(info.Duration),
	}
	if info.Skipped {
		resp["status"] = "skipped"
	} else {
		resp["bytes"] = info.Bytes
		resp["shards_written"] = info.ShardsWritten
		resp["shards_clean"] = info.ShardsClean
		resp["shared_written"] = info.SharedWritten
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminCompact folds checkpoint-covered WAL segments into the
// compacted base synchronously. ?force=1 runs the pass even below the
// configured segment threshold and rewrites the base alone when no
// segment is foldable (re-deduping under an advanced horizon). Useful
// when compaction is disabled (-compact=false) or to reclaim space
// without waiting for the next snapshot.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if f := s.follower(); f != nil {
		s.redirectToLeader(w, r, f)
		return
	}
	mgr := s.manager()
	if mgr == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	force := false
	switch v := r.URL.Query().Get("force"); v {
	case "", "0", "false":
	case "1", "true":
		force = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad force value %q (want 1/true or 0/false)", v))
		return
	}
	cs, err := mgr.Compact(force)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.reg.Counter("admin_compact_total").Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":              "ok",
		"segments_folded":     cs.SegmentsFolded,
		"records_in":          cs.RecordsIn,
		"records_out":         cs.RecordsOut,
		"dropped_cells":       cs.DroppedCells,
		"dropped_commits":     cs.DroppedCommits,
		"dropped_checkpoints": cs.DroppedCheckpoints,
	})
}

// handleAdminRetrain starts a background retrain of the serving model
// (the drift-repair pass internal/core/update.go calls for). ?mode=
// selects "shards" (per-shard sweep) or "full" (stop-the-world KMeans);
// empty means the manager's configured default. The retrained model is
// swapped in without blocking reads; 409 when a retrain is already in
// flight, 400 for an unknown mode.
func (s *Server) handleAdminRetrain(w http.ResponseWriter, r *http.Request) {
	if f := s.follower(); f != nil {
		s.redirectToLeader(w, r, f)
		return
	}
	mgr := s.manager()
	if mgr == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode != "" && mode != lifecycle.RetrainShards && mode != lifecycle.RetrainFull {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown retrain mode %q (want %q or %q)",
			mode, lifecycle.RetrainShards, lifecycle.RetrainFull))
		return
	}
	if !mgr.TriggerRetrain(mode) {
		writeError(w, http.StatusConflict, fmt.Errorf("retrain already in flight"))
		return
	}
	s.reg.Counter("admin_retrain_total").Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "started", "mode": mode})
}

var errNoManager = fmt.Errorf("no lifecycle manager configured (start the server with -data-dir)")
