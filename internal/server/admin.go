package server

import (
	"fmt"
	"net/http"

	"cfsf/internal/lifecycle"
)

// handleAdminSnapshot writes a model snapshot synchronously via the
// lifecycle manager and reports where it landed. Without a manager the
// server has no durability layer and responds 503.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	mgr := s.manager()
	if mgr == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	info, err := mgr.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.reg.Counter("admin_snapshot_total").Inc()
	resp := map[string]any{
		"status":      "ok",
		"path":        info.Path,
		"covered_seq": info.CoveredSeq,
		"duration_ms": durMS(info.Duration),
	}
	if info.Skipped {
		resp["status"] = "skipped"
	} else {
		resp["bytes"] = info.Bytes
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminRetrain starts a background retrain of the serving model
// (the drift-repair pass internal/core/update.go calls for). ?mode=
// selects "shards" (per-shard sweep) or "full" (stop-the-world KMeans);
// empty means the manager's configured default. The retrained model is
// swapped in without blocking reads; 409 when a retrain is already in
// flight, 400 for an unknown mode.
func (s *Server) handleAdminRetrain(w http.ResponseWriter, r *http.Request) {
	mgr := s.manager()
	if mgr == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode != "" && mode != lifecycle.RetrainShards && mode != lifecycle.RetrainFull {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown retrain mode %q (want %q or %q)",
			mode, lifecycle.RetrainShards, lifecycle.RetrainFull))
		return
	}
	if !mgr.TriggerRetrain(mode) {
		writeError(w, http.StatusConflict, fmt.Errorf("retrain already in flight"))
		return
	}
	s.reg.Counter("admin_retrain_total").Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "started", "mode": mode})
}

var errNoManager = fmt.Errorf("no lifecycle manager configured (start the server with -data-dir)")
