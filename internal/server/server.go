// Package server implements the JSON-over-HTTP recommendation API used
// by cmd/cfsf-server, demonstrating the paper's offline/online split in
// a serving setting: the expensive offline phase runs once, the cheap
// online phase answers every request from the current model, and new
// ratings stream in through the incremental-refresh extension
// (Model.WithUpdates) without downtime.
//
// Endpoints:
//
//	GET  /healthz                 -> {"status":"ok"}
//	GET  /stats                   -> dataset, model, and train-phase statistics
//	GET  /metrics                 -> per-endpoint request counts + latency
//	                                 percentiles, model gauges (JSON)
//	GET  /predict?user=U&item=I   -> fused prediction with components
//	POST /predict/batch           -> {"pairs":[{"user":U,"item":I},...]}
//	                                 parallel fan-out prediction
//	GET  /recommend?user=U&n=N    -> top-N items for the user
//	POST /rate                    -> {"user":U,"item":I,"rating":R} applies
//	                                 an incremental model refresh (or, with a
//	                                 lifecycle manager, journals the rating
//	                                 and queues it for the next micro-batch);
//	                                 an array body [{...},{...}] ingests the
//	                                 whole batch under one WAL append group
//	                                 and answers with per-item seqs
//	POST /admin/snapshot          -> write a model snapshot now (manager mode)
//	POST /admin/retrain           -> start a full background retrain (manager mode)
//
// Every handler is wrapped in middleware that records request count,
// status class, in-flight gauge, and a latency histogram per endpoint
// (internal/obs); Options.Debug additionally mounts net/http/pprof
// under /debug/pprof/.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/replication"
)

// Options tunes the request-safety limits of the server. The zero value
// selects the defaults noted on each field.
type Options struct {
	// GrowthMargin is how far past the current matrix bounds a /rate id
	// may grow the matrix: an update with User >= NumUsers+GrowthMargin
	// (or likewise for items) is rejected with 400 instead of
	// allocating. <= 0 means 1 — only the next fresh user/item id is
	// accepted, matching the RatingUpdate contract.
	GrowthMargin int
	// MaxBodyBytes caps request bodies (http.MaxBytesReader) on /rate
	// and /predict/batch. <= 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of pairs in one /predict/batch call.
	// <= 0 means 1024.
	MaxBatch int
	// Debug mounts net/http/pprof under /debug/pprof/.
	Debug bool
	// Registry receives the server's metrics; one is created when nil.
	Registry *obs.Registry
	// Manager, when non-nil, owns the serving model: /rate journals to
	// its WAL and queues the update for micro-batched application
	// (responding "queued" instead of "applied"), and the /admin
	// endpoints become operational. Share its obs.Registry with this
	// Options' Registry so /metrics covers wal/lifecycle instrumentation.
	Manager *lifecycle.Manager
	// AdminToken, when non-empty, gates every /admin/* endpoint behind
	// "Authorization: Bearer <token>" (constant-time compare). Empty
	// leaves admin open, preserving single-operator deployments.
	AdminToken string
	// MaxQPS caps the serving endpoints (/predict, /predict/batch,
	// /recommend, /rate) at this many requests per second with a
	// one-second burst; excess answers 429 + Retry-After. <= 0 disables
	// the cap.
	MaxQPS int
}

func (o Options) withDefaults() Options {
	if o.GrowthMargin <= 0 {
		o.GrowthMargin = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Server serves a CFSF model. Reads go through an atomic pointer so
// predictions never block; writes (incoming ratings) refresh the model
// incrementally under a mutex and swap the pointer.
//
// A Server can be constructed before its model exists (NewWarming): it
// answers /healthz and /metrics immediately while every model-dependent
// endpoint returns 503 "warming up", and Activate later installs the
// model (and optional lifecycle manager) and flips readiness. This is
// what lets cmd/cfsf-server open its listener before the offline phase
// or snapshot+WAL recovery finishes, so load balancers — and the loadgen
// harness measuring recovery time — can watch /healthz?ready=1 go green
// the moment the model is actually servable.
type Server struct {
	model   atomic.Pointer[core.Model]
	mu      sync.Mutex                        // serialises /rate refreshes (no-manager mode)
	mgr     atomic.Pointer[lifecycle.Manager] // owns the model when non-nil
	flw     atomic.Pointer[replication.Follower]
	repl    atomic.Pointer[replication.Leader]
	limiter *qpsLimiter              // nil when MaxQPS is unset
	ready   atomic.Bool              // model (and manager or follower) installed
	titles  atomic.Pointer[[]string] // optional item display names
	opts    Options
	reg     *obs.Registry
	start   time.Time

	epMu      sync.Mutex
	endpoints map[string]*endpointMetrics //cfsf:guarded-by epMu
}

// New returns a Server for the model with default Options; titles may be
// nil.
func New(model *core.Model, titles []string) *Server {
	return NewWithOptions(model, titles, Options{})
}

// NewWithOptions returns a ready Server with explicit request-safety
// limits.
func NewWithOptions(model *core.Model, titles []string, opts Options) *Server {
	s := NewWarming(opts)
	s.Activate(model, titles, opts.Manager)
	return s
}

// NewWarming returns a Server with no model yet: alive but not ready.
// /healthz and /metrics serve immediately; everything touching the model
// answers 503 until Activate installs one. Options.Manager is ignored
// here — pass the manager to Activate once it has booted.
func NewWarming(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		reg:       opts.Registry,
		start:     time.Now(),
		endpoints: map[string]*endpointMetrics{},
	}
	if opts.MaxQPS > 0 {
		s.limiter = newQPSLimiter(opts.MaxQPS)
	}
	s.reg.Gauge("server_ready").Set(0)
	return s
}

// Activate installs the serving model (or the lifecycle manager that owns
// one) and marks the server ready. It must be called exactly once; the
// readiness flip is the publication point, so handlers never observe a
// half-installed model.
func (s *Server) Activate(model *core.Model, titles []string, mgr *lifecycle.Manager) {
	if mgr != nil {
		s.mgr.Store(mgr)
		if model == nil {
			model = mgr.Model()
		}
	}
	s.titles.Store(&titles)
	s.model.Store(model)
	s.recordModelGauges(model)
	s.ready.Store(true)
	s.reg.Gauge("server_ready").Set(1)
}

// Ready reports whether the model is installed and servable.
func (s *Server) Ready() bool { return s.ready.Load() }

// manager returns the lifecycle manager owning the model, or nil.
func (s *Server) manager() *lifecycle.Manager { return s.mgr.Load() }

// current returns the model to serve this request from: the manager's
// (which swaps it on every micro-batch) or the server's own pointer. It
// is nil until Activate.
func (s *Server) current() *core.Model {
	if f := s.follower(); f != nil {
		return f.Model()
	}
	if mgr := s.manager(); mgr != nil {
		return mgr.Model()
	}
	return s.model.Load()
}

// itemTitles returns the display names installed by Activate, or nil.
func (s *Server) itemTitles() []string {
	if p := s.titles.Load(); p != nil {
		return *p
	}
	return nil
}

// Model returns the currently served model.
func (s *Server) Model() *core.Model { return s.current() }

// Registry returns the metrics registry backing GET /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the routed HTTP handler with every endpoint
// instrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("GET /healthz", s.handleHealth))
	mux.HandleFunc("GET /stats", s.instrument("GET /stats", s.requireReady(s.handleStats)))
	mux.HandleFunc("GET /metrics", s.instrument("GET /metrics", s.handleMetrics))
	mux.HandleFunc("GET /predict", s.instrument("GET /predict", s.limitQPS(s.requireReady(s.handlePredict))))
	mux.HandleFunc("POST /predict/batch", s.instrument("POST /predict/batch", s.limitQPS(s.requireReady(s.handlePredictBatch))))
	mux.HandleFunc("GET /recommend", s.instrument("GET /recommend", s.limitQPS(s.requireReady(s.handleRecommend))))
	mux.HandleFunc("POST /rate", s.instrument("POST /rate", s.limitQPS(s.requireReady(s.handleRate))))
	mux.HandleFunc("POST /admin/snapshot", s.instrument("POST /admin/snapshot", s.requireAdmin(s.requireReady(s.handleAdminSnapshot))))
	mux.HandleFunc("POST /admin/retrain", s.instrument("POST /admin/retrain", s.requireAdmin(s.requireReady(s.handleAdminRetrain))))
	mux.HandleFunc("POST /admin/compact", s.instrument("POST /admin/compact", s.requireAdmin(s.requireReady(s.handleAdminCompact))))
	mux.HandleFunc("GET "+replication.PathWAL, s.instrument("GET "+replication.PathWAL, s.requireAdmin(s.requireReady(s.handleReplWAL))))
	mux.HandleFunc("GET "+replication.PathManifest, s.instrument("GET "+replication.PathManifest, s.requireAdmin(s.requireReady(s.handleReplManifest))))
	mux.HandleFunc("GET "+replication.PathBlob, s.instrument("GET "+replication.PathBlob, s.requireAdmin(s.requireReady(s.handleReplBlob))))
	mux.HandleFunc("GET "+replication.PathFingerprint, s.instrument("GET "+replication.PathFingerprint, s.requireAdmin(s.requireReady(s.handleFingerprint))))
	if s.opts.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// requireReady guards a model-dependent handler: until Activate installs
// the model, requests are shed with 503 instead of dereferencing a nil
// model. Load balancers should key on /healthz?ready=1 instead of
// tripping this path.
func (s *Server) requireReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errWarmingUp)
			return
		}
		h(w, r)
	}
}

var errWarmingUp = errors.New("warming up: model not loaded yet")

// recordModelGauges publishes the served model's dimensions and
// train-phase timings into the registry so /metrics tracks every swap.
func (s *Server) recordModelGauges(mod *core.Model) {
	if mod == nil {
		return
	}
	m := mod.Matrix()
	st := mod.Stats()
	s.reg.Gauge("model_users").Set(float64(m.NumUsers()))
	s.reg.Gauge("model_items").Set(float64(m.NumItems()))
	s.reg.Gauge("model_ratings").Set(float64(m.NumRatings()))
	s.reg.Gauge("model_train_gis_ms").Set(durMS(st.GISDuration))
	s.reg.Gauge("model_train_cluster_ms").Set(durMS(st.ClusterDuration))
	s.reg.Gauge("model_train_smooth_ms").Set(durMS(st.SmoothDuration))
	s.reg.Gauge("model_train_icluster_ms").Set(durMS(st.IClusterDuration))
	s.reg.Gauge("model_train_total_ms").Set(durMS(st.TotalDuration))
	incremental := 0.0
	if st.Incremental {
		incremental = 1
	}
	s.reg.Gauge("model_incremental").Set(incremental)
	s.reg.Gauge("model_shards").Set(float64(mod.Config().Clusters))
	rc := core.ReadRecCacheStats()
	s.reg.Gauge("recommend_cache_hits").Set(float64(rc.Hits))
	s.reg.Gauge("recommend_cache_misses").Set(float64(rc.Misses))
	s.reg.Gauge("recommend_cache_repairs").Set(float64(rc.Repairs))
	s.reg.Gauge("recommend_cache_repair_fallbacks").Set(float64(rc.RepairFallbacks))
	s.reg.Gauge("recommend_cache_carried").Set(float64(rc.Carried))
	s.reg.Gauge("recommend_cache_invalidated").Set(float64(rc.Invalidated))
}

// recCacheView is the /stats JSON form of the process-wide
// recommendation-cache counters (reccache.go).
func recCacheView() map[string]any {
	rc := core.ReadRecCacheStats()
	return map[string]any{
		"hits":             rc.Hits,
		"misses":           rc.Misses,
		"repairs":          rc.Repairs,
		"repair_fallbacks": rc.RepairFallbacks,
		"carried":          rc.Carried,
		"invalidated":      rc.Invalidated,
	}
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// decodeJSON decodes a single JSON document from the (size-limited)
// request body, rejecting bodies over maxBytes and trailing garbage
// after the document.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errBodyTooLarge
		}
		return fmt.Errorf("decode body: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errBodyTooLarge
		}
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

var errBodyTooLarge = errors.New("request body too large")

// rateReq is one rating in a POST /rate body — either the whole body
// (single-object form) or one element of the array form.
type rateReq struct {
	User   int     `json:"user"`
	Item   int     `json:"item"`
	Rating float64 `json:"rating"`
	Time   int64   `json:"time,omitempty"`
}

// handleRate accepts one rating or an array of them. Without a
// lifecycle manager it folds the rating(s) into the model synchronously
// (validation runs under the same lock as the update so a concurrent
// swap can never change the model between the two) and responds
// {"status":"applied"}. With a manager it journals the rating(s) to the
// WAL — an array body becomes ONE append group: a single buffered write
// and fsync covering every entry — queues them for micro-batched
// application, and responds 202 {"status":"queued"} with the assigned
// seq (or per-item "seqs") and the pending count; a subsequent read may
// not see the ratings until their batch lands (see the README's
// read-your-write note).
func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	if f := s.follower(); f != nil {
		s.redirectToLeader(w, r, f)
		return
	}
	var raw json.RawMessage
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &raw); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	if isJSONArray(raw) {
		s.handleRateBatch(w, raw)
		return
	}
	var req rateReq
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if req.User < 0 || req.Item < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative id"))
		return
	}

	if mgr := s.manager(); mgr != nil {
		s.handleRateQueued(w, mgr, req.User, req.Item, req.Rating, req.Time)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.model.Load()
	if err := s.validateRate(cur, req.User, req.Item, req.Rating); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	next, err := cur.WithUpdates([]core.RatingUpdate{{
		User: req.User, Item: req.Item, Value: req.Rating, Time: req.Time,
	}})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.model.Store(next)
	s.recordModelGauges(next)
	s.reg.Counter("rate_applied_total").Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "applied",
		"users":   next.Matrix().NumUsers(),
		"items":   next.Matrix().NumItems(),
		"ratings": next.Matrix().NumRatings(),
	})
}

// validateRate checks a rating against the given model's scale and the
// growth margin.
func (s *Server) validateRate(cur *core.Model, user, item int, rating float64) error {
	return s.validateRateMargin(cur, user, item, rating, s.opts.GrowthMargin)
}

// validateRateMargin is validateRate with an explicit growth margin: the
// batch path widens it by the entry's position so a batch may introduce
// several consecutive fresh users or items in one request.
func (s *Server) validateRateMargin(cur *core.Model, user, item int, rating float64, margin int) error {
	m := cur.Matrix()
	if rating < m.MinRating() || rating > m.MaxRating() {
		return fmt.Errorf("rating %g outside scale %g..%g", rating, m.MinRating(), m.MaxRating())
	}
	if user >= m.NumUsers()+margin || item >= m.NumItems()+margin {
		return fmt.Errorf("id (%d,%d) more than %d past current bounds %d×%d",
			user, item, margin, m.NumUsers(), m.NumItems())
	}
	return nil
}

// isJSONArray reports whether the document's first non-whitespace byte
// opens an array — the discriminator between /rate's two body forms.
func isJSONArray(raw json.RawMessage) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return b == '['
	}
	return false
}

// handleRateBatch is the array-body form of /rate: every entry is
// validated up front, then the whole batch is ingested atomically — one
// WAL append group (manager mode) or one WithUpdates pass (standalone).
// Entry i may reference ids up to GrowthMargin+i past the current
// bounds, since earlier entries in the same batch may have introduced
// the ids it builds on.
func (s *Server) handleRateBatch(w http.ResponseWriter, raw json.RawMessage) {
	var reqs []rateReq
	if err := json.Unmarshal(raw, &reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(reqs) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch size %d exceeds limit %d", len(reqs), s.opts.MaxBatch))
		return
	}
	validate := func(cur *core.Model) ([]core.RatingUpdate, error) {
		ups := make([]core.RatingUpdate, len(reqs))
		for i, q := range reqs {
			if q.User < 0 || q.Item < 0 {
				return nil, fmt.Errorf("entry %d: negative id", i)
			}
			if err := s.validateRateMargin(cur, q.User, q.Item, q.Rating, s.opts.GrowthMargin+i); err != nil {
				return nil, fmt.Errorf("entry %d: %w", i, err)
			}
			ups[i] = core.RatingUpdate{User: q.User, Item: q.Item, Value: q.Rating, Time: q.Time}
		}
		return ups, nil
	}

	if mgr := s.manager(); mgr != nil {
		ups, err := validate(mgr.Model())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		seqs, pending, err := mgr.SubmitBatch(ups)
		switch {
		case errors.Is(err, lifecycle.ErrQueueFull), errors.Is(err, lifecycle.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.reg.Counter("rate_queued_total").Add(int64(len(ups)))
		s.reg.Counter("rate_batches_total").Inc()
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":  "queued",
			"count":   len(seqs),
			"seqs":    seqs,
			"pending": pending,
		})
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.model.Load()
	ups, err := validate(cur)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	next, err := cur.WithUpdates(ups)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.model.Store(next)
	s.recordModelGauges(next)
	s.reg.Counter("rate_applied_total").Add(int64(len(ups)))
	s.reg.Counter("rate_batches_total").Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "applied",
		"count":   len(ups),
		"users":   next.Matrix().NumUsers(),
		"items":   next.Matrix().NumItems(),
		"ratings": next.Matrix().NumRatings(),
	})
}

// handleRateQueued is the manager-backed /rate path: journal, enqueue,
// acknowledge. Validation runs against the serving model at submission
// time; because application is asynchronous the model may grow between
// validation and apply, which only ever widens what would be accepted.
func (s *Server) handleRateQueued(w http.ResponseWriter, mgr *lifecycle.Manager, user, item int, rating float64, ts int64) {
	if err := s.validateRate(mgr.Model(), user, item, rating); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seq, pending, err := mgr.Submit(core.RatingUpdate{User: user, Item: item, Value: rating, Time: ts})
	switch {
	case errors.Is(err, lifecycle.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, lifecycle.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.reg.Counter("rate_queued_total").Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"status":  "queued",
		"seq":     seq,
		"pending": pending,
	})
}

// handleHealth distinguishes liveness from readiness: a 200 with
// "ready":false means the process is up but the model is still training
// or recovering (snapshot load + WAL-tail replay). With ?ready=1 the
// check becomes a readiness probe: 503 until Activate, so load balancers
// and the loadgen harness can wait for — and time — warm-up precisely.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	ready := s.ready.Load()
	resp := map[string]any{"status": "ok", "ready": ready}
	if f := s.follower(); f != nil {
		resp["role"] = "follower"
		resp["applied_seq"] = f.AppliedSeq()
	} else if mgr := s.manager(); mgr != nil {
		resp["pending"] = mgr.Pending()
		resp["applied_seq"] = mgr.AppliedSeq()
	}
	status := http.StatusOK
	if !ready && r.URL.Query().Get("ready") != "" {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// shardStats returns the per-shard view of the serving model: the
// manager's live counters when one owns the model, otherwise a fresh
// routing-only view of the standalone model (sizes are real, apply and
// retrain counters are zero because the standalone path doesn't shard).
func (s *Server) shardStats() []core.ShardStats {
	if mgr := s.manager(); mgr != nil {
		return mgr.ShardStats()
	}
	if mod := s.current(); mod != nil {
		return core.NewSharded(mod).ShardStats()
	}
	return nil
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	mod := s.current()
	m := mod.Matrix()
	st := mod.Stats()
	cfg := mod.Config()
	shards := s.shardStats()
	resp := map[string]any{
		"num_shards":    len(shards),
		"shards":        shards,
		"users":         m.NumUsers(),
		"items":         m.NumItems(),
		"ratings":       m.NumRatings(),
		"density":       m.Density(),
		"gis_neighbors": st.GISNeighbors,
		"cluster_iters": st.ClusterIters,
		"train_ms": map[string]any{
			"gis":      durMS(st.GISDuration),
			"cluster":  durMS(st.ClusterDuration),
			"smooth":   durMS(st.SmoothDuration),
			"icluster": durMS(st.IClusterDuration),
			"total":    durMS(st.TotalDuration),
		},
		"train_total_ms":  st.TotalDuration.Milliseconds(),
		"incremental":     st.Incremental,
		"updates_applied": st.UpdatesApplied,
		"recommend_cache": recCacheView(),
		"config": map[string]any{
			"M": cfg.M, "K": cfg.K, "C": cfg.Clusters,
			"lambda": cfg.Lambda, "delta": cfg.Delta, "epsilon": cfg.OriginalWeight,
		},
	}
	// The queue view the loadgen steady scenario asserts on: depth and
	// apply-lag (newest journaled seq minus applied watermark) must drain
	// back to zero once traffic stops.
	if mgr := s.manager(); mgr != nil {
		ws := mgr.WALStats()
		lc := map[string]any{
			"pending":      mgr.Pending(),
			"apply_lag":    mgr.ApplyLag(),
			"applied_seq":  mgr.AppliedSeq(),
			"wal_last_seq": ws.LastSeq,
			"retraining":   mgr.Retraining(),
			"storage": map[string]any{
				"wal_segments":     ws.Segments,
				"wal_compactions":  ws.Compactions,
				"wal_base_records": ws.BaseRecords,
				"wal_base_bytes":   ws.BaseBytes,
			},
		}
		// What the last non-skipped snapshot actually wrote: with
		// incremental manifests most shards are clean and skipped.
		if snap := mgr.SnapshotStats(); snap.Path != "" {
			lc["last_snapshot"] = snap
		}
		resp["lifecycle"] = lc
	}
	if rs := s.replicationStats(); rs != nil {
		resp["replication"] = rs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics reports the per-endpoint view plus the raw registry
// snapshot. Model and queue gauges are refreshed at scrape time so they
// track the serving model even when swaps happen inside the lifecycle
// manager. Unlike /stats it serves before Activate too — a scrape of a
// warming server sees server_ready=0 and whatever boot has recorded.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.recordModelGauges(s.current())
	if mgr := s.manager(); mgr != nil {
		mgr.PublishGauges()
	}
	if f := s.follower(); f != nil {
		f.Stats() // refreshes the replication lag gauges at scrape time
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"ready":          s.ready.Load(),
		"endpoints":      s.endpointsView(),
		"registry":       s.reg.Snapshot(),
		"shards":         s.shardStats(),
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	user, err := boundedIntParam(r, "user", 0, maxIDParam)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	item, err := boundedIntParam(r, "item", 0, maxIDParam)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mod := s.current()
	m := mod.Matrix()
	if user < 0 || user >= m.NumUsers() || item < 0 || item >= m.NumItems() {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("user %d or item %d outside %d×%d", user, item, m.NumUsers(), m.NumItems()))
		return
	}
	p := mod.PredictDetailed(user, item)
	resp := map[string]any{
		"user": user, "item": item, "prediction": round3(p.Value),
		"components": map[string]any{
			"sir": round3(p.SIR), "sur": round3(p.SUR), "suir": round3(p.SUIR),
		},
		"local_items": p.ItemsUsed, "local_users": p.UsersUsed,
	}
	if titles := s.itemTitles(); item < len(titles) {
		resp["title"] = titles[item]
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePredictBatch predicts every pair of the request in one parallel
// fan-out (Model.PredictBatch over internal/parallel). Out-of-bounds
// pairs fall back to the cold-start chain rather than failing the batch,
// exactly as single predictions outside the matrix would.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pairs []struct {
			User int `json:"user"`
			Item int `json:"item"`
		} `json:"pairs"`
	}
	if err := decodeJSON(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Pairs) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch size %d exceeds limit %d", len(req.Pairs), s.opts.MaxBatch))
		return
	}
	pairs := make([]core.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = core.Pair{User: p.User, Item: p.Item}
	}
	mod := s.current()
	t := time.Now()
	values := mod.PredictBatch(pairs)
	elapsed := time.Since(t)
	preds := make([]map[string]any, len(pairs))
	for i, p := range pairs {
		preds[i] = map[string]any{
			"user": p.User, "item": p.Item, "prediction": round3(values[i]),
		}
	}
	s.reg.Counter("batch_pairs_total").Add(int64(len(pairs)))
	writeJSON(w, http.StatusOK, map[string]any{
		"count":       len(preds),
		"elapsed_ms":  durMS(elapsed),
		"predictions": preds,
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, err := boundedIntParam(r, "user", 0, maxIDParam)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := optionalBoundedIntParam(r, "n", 1, 100, 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mod := s.current()
	m := mod.Matrix()
	if user < 0 || user >= m.NumUsers() {
		writeError(w, http.StatusNotFound, fmt.Errorf("user %d outside 0..%d", user, m.NumUsers()-1))
		return
	}
	recs := mod.Recommend(user, n)
	titles := s.itemTitles()
	items := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		entry := map[string]any{"item": rec.Item, "score": round3(rec.Score)}
		if rec.Item < len(titles) {
			entry["title"] = titles[rec.Item]
		}
		items = append(items, entry)
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": user, "recommendations": items})
}

// maxIDParam bounds user/item ids accepted from the query string. Ids
// are int32 inside the model, so anything above this is garbage input,
// not a resource that might exist; matrix-bounds checks (404) still
// apply below it.
const maxIDParam = 1<<31 - 1

// boundedIntParam parses the named query parameter as an integer in
// [lo, hi]. Every handler reading numeric query input goes through this
// one parser, so the rejection surface is uniform: missing, non-integer
// (including fractional and overflow) and out-of-range values all yield
// one 400 with the accepted range spelled out.
func boundedIntParam(r *http.Request, name string, lo, hi int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %q is not an integer", name, v)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("parameter %q: %d outside %d..%d", name, n, lo, hi)
	}
	return n, nil
}

// optionalBoundedIntParam is boundedIntParam with a default for an
// absent parameter; a present value is validated identically.
func optionalBoundedIntParam(r *http.Request, name string, lo, hi, def int) (int, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return boundedIntParam(r, name, lo, hi)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("cfsf-server: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// round3 rounds to three decimals. math.Round (round half away from
// zero) rather than int(v*1000+0.5), which truncates toward zero and
// mis-rounds negative values (e.g. signed deviations or future metrics).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
