// Package server implements the JSON-over-HTTP recommendation API used
// by cmd/cfsf-server, demonstrating the paper's offline/online split in
// a serving setting: the expensive offline phase runs once, the cheap
// online phase answers every request from the current model, and new
// ratings stream in through the incremental-refresh extension
// (Model.WithUpdates) without downtime.
//
// Endpoints:
//
//	GET  /healthz                 -> {"status":"ok"}
//	GET  /stats                   -> dataset and model statistics
//	GET  /predict?user=U&item=I   -> fused prediction with components
//	GET  /recommend?user=U&n=N    -> top-N items for the user
//	POST /rate                    -> {"user":U,"item":I,"rating":R} applies
//	                                 an incremental model refresh
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"cfsf/internal/core"
)

// Server serves a CFSF model. Reads go through an atomic pointer so
// predictions never block; writes (incoming ratings) refresh the model
// incrementally under a mutex and swap the pointer.
type Server struct {
	model  atomic.Pointer[core.Model]
	mu     sync.Mutex // serialises /rate refreshes
	titles []string   // optional item display names
}

// New returns a Server for the model; titles may be nil.
func New(model *core.Model, titles []string) *Server {
	s := &Server{titles: titles}
	s.model.Store(model)
	return s
}

// Model returns the currently served model.
func (s *Server) Model() *core.Model { return s.model.Load() }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /predict", s.handlePredict)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("POST /rate", s.handleRate)
	return mux
}

// handleRate folds one rating into the model via the incremental
// refresh and swaps the served model.
func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User   int     `json:"user"`
		Item   int     `json:"item"`
		Rating float64 `json:"rating"`
		Time   int64   `json:"time,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %v", err))
		return
	}
	cur := s.model.Load()
	m := cur.Matrix()
	if req.User < 0 || req.Item < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("negative id"))
		return
	}
	if req.Rating < m.MinRating() || req.Rating > m.MaxRating() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("rating %g outside scale %g..%g", req.Rating, m.MinRating(), m.MaxRating()))
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	next, err := s.model.Load().WithUpdates([]core.RatingUpdate{{
		User: req.User, Item: req.Item, Value: req.Rating, Time: req.Time,
	}})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.model.Store(next)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "applied",
		"users":   next.Matrix().NumUsers(),
		"items":   next.Matrix().NumItems(),
		"ratings": next.Matrix().NumRatings(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	mod := s.model.Load()
	m := mod.Matrix()
	st := mod.Stats()
	cfg := mod.Config()
	writeJSON(w, http.StatusOK, map[string]any{
		"users":          m.NumUsers(),
		"items":          m.NumItems(),
		"ratings":        m.NumRatings(),
		"density":        m.Density(),
		"gis_neighbors":  st.GISNeighbors,
		"cluster_iters":  st.ClusterIters,
		"train_total_ms": st.TotalDuration.Milliseconds(),
		"config": map[string]any{
			"M": cfg.M, "K": cfg.K, "C": cfg.Clusters,
			"lambda": cfg.Lambda, "delta": cfg.Delta, "epsilon": cfg.OriginalWeight,
		},
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	user, err := intParam(r, "user")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	item, err := intParam(r, "item")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mod := s.model.Load()
	m := mod.Matrix()
	if user < 0 || user >= m.NumUsers() || item < 0 || item >= m.NumItems() {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("user %d or item %d outside %d×%d", user, item, m.NumUsers(), m.NumItems()))
		return
	}
	p := mod.PredictDetailed(user, item)
	resp := map[string]any{
		"user": user, "item": item, "prediction": round3(p.Value),
		"components": map[string]any{
			"sir": round3(p.SIR), "sur": round3(p.SUR), "suir": round3(p.SUIR),
		},
		"local_items": p.ItemsUsed, "local_users": p.UsersUsed,
	}
	if s.titles != nil && item < len(s.titles) {
		resp["title"] = s.titles[item]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, err := intParam(r, "user")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err = strconv.Atoi(v); err != nil || n <= 0 || n > 100 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("n must be in 1..100"))
			return
		}
	}
	mod := s.model.Load()
	m := mod.Matrix()
	if user < 0 || user >= m.NumUsers() {
		writeError(w, http.StatusNotFound, fmt.Errorf("user %d outside 0..%d", user, m.NumUsers()-1))
		return
	}
	recs := mod.Recommend(user, n)
	items := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		entry := map[string]any{"item": rec.Item, "score": round3(rec.Score)}
		if s.titles != nil && rec.Item < len(s.titles) {
			entry["title"] = s.titles[rec.Item]
		}
		items = append(items, entry)
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": user, "recommendations": items})
}

func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("cfsf-server: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
