package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/wal"
)

// TestWarmingServerReadiness covers the liveness/readiness split: a
// warming server answers /healthz and /metrics immediately, sheds every
// model-dependent request with 503, and flips all of it atomically at
// Activate.
func TestWarmingServerReadiness(t *testing.T) {
	srv := NewWarming(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	getStatus := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, decodeBody(t, resp)
	}

	// Alive but not ready: plain /healthz is 200 with ready=false, the
	// readiness probe form is 503.
	if code, body := getStatus("/healthz"); code != http.StatusOK || body["ready"] != false {
		t.Errorf("warming /healthz = %d %v, want 200 ready=false", code, body)
	}
	if code, _ := getStatus("/healthz?ready=1"); code != http.StatusServiceUnavailable {
		t.Errorf("warming /healthz?ready=1 = %d, want 503", code)
	}
	if code, body := getStatus("/metrics"); code != http.StatusOK || body["ready"] != false {
		t.Errorf("warming /metrics = %d ready=%v, want 200 ready=false", code, body["ready"])
	}
	for _, path := range []string{"/stats", "/predict?user=0&item=0", "/recommend?user=0"} {
		if code, _ := getStatus(path); code != http.StatusServiceUnavailable {
			t.Errorf("warming GET %s = %d, want 503", path, code)
		}
	}
	if srv.Ready() {
		t.Fatal("Ready() = true before Activate")
	}

	srv.Activate(smallModel(t), nil, nil)

	if !srv.Ready() {
		t.Fatal("Ready() = false after Activate")
	}
	if code, body := getStatus("/healthz?ready=1"); code != http.StatusOK || body["ready"] != true {
		t.Errorf("ready /healthz?ready=1 = %d %v, want 200 ready=true", code, body)
	}
	if code, _ := getStatus("/predict?user=0&item=0"); code != http.StatusOK {
		t.Errorf("ready /predict = %d, want 200", code)
	}
	if code, _ := getStatus("/stats"); code != http.StatusOK {
		t.Errorf("ready /stats = %d, want 200", code)
	}
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode body: %v", err)
	}
	return body
}

// waitDrained polls until every submitted rating is applied (pending and
// apply-lag both zero) or the deadline passes.
func waitDrained(t *testing.T, mgr *lifecycle.Manager) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if mgr.Pending() == 0 && mgr.ApplyLag() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("queue never drained: pending=%d lag=%d", mgr.Pending(), mgr.ApplyLag())
}

// TestStatsLifecycleQueueView checks the /stats "lifecycle" section and
// the /healthz pending/applied fields a durable server exposes: after
// queued ratings land, pending and apply_lag drain back to zero.
func TestStatsLifecycleQueueView(t *testing.T) {
	ts, mgr := newDurableServer(t, t.TempDir(), smallModel(t))
	defer ts.Close()
	defer func() {
		if err := mgr.Close(); err != nil {
			t.Errorf("close manager: %v", err)
		}
	}()

	code, body := postJSON(t, ts.URL+"/rate", rateBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("rate = %d %v", code, body)
	}
	waitDrained(t, mgr)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeBody(t, resp)
	lc, ok := stats["lifecycle"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no lifecycle section: %v", stats)
	}
	if lc["pending"] != float64(0) || lc["apply_lag"] != float64(0) {
		t.Errorf("drained queue view = %v, want pending=0 apply_lag=0", lc)
	}
	if lc["applied_seq"].(float64) < 1 {
		t.Errorf("applied_seq = %v, want >= 1", lc["applied_seq"])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	health := decodeBody(t, hresp)
	if health["ready"] != true {
		t.Errorf("durable /healthz ready = %v, want true", health["ready"])
	}
	if _, ok := health["pending"]; !ok {
		t.Errorf("durable /healthz missing pending field: %v", health)
	}
}

// TestApplyLagGauge drives the manager directly: lag is nonzero while
// ratings queue behind a slow drain and zero once applied.
func TestApplyLagGauge(t *testing.T) {
	reg := obs.NewRegistry()
	mgr, err := lifecycle.Open(
		func() (*core.Model, error) { return smallModel(t), nil },
		lifecycle.Config{DataDir: t.TempDir(), Fsync: wal.SyncNever, Registry: reg},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := mgr.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	if lag := mgr.ApplyLag(); lag != 0 {
		t.Fatalf("initial apply lag = %d, want 0", lag)
	}
	if _, _, err := mgr.Submit(core.RatingUpdate{User: 0, Item: 0, Value: 4}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, mgr)
	if lag := mgr.ApplyLag(); lag != 0 {
		t.Errorf("drained apply lag = %d, want 0", lag)
	}
	if g := reg.Gauge("lifecycle_apply_lag").Value(); g != 0 {
		t.Errorf("lifecycle_apply_lag gauge = %g, want 0", g)
	}
}
