package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cfsf/internal/core"
	"cfsf/internal/synth"
)

// TestConcurrentRateAndPredictStress hammers the read path (/predict,
// /recommend, /predict/batch, /metrics) while /rate swaps the served
// model, so `go test -race` guards the atomic-swap serving path: the
// rate handler must validate and update against one consistent model,
// and readers must never observe a torn swap.
func TestConcurrentRateAndPredictStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := synth.DefaultConfig()
	cfg.Users = 30
	cfg.Items = 40
	cfg.MinPerUser = 8
	cfg.MeanPerUser = 10
	cfg.Archetypes = 3
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 6
	mcfg.K = 3
	mcfg.Clusters = 3
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(mod, nil, Options{GrowthMargin: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		readers   = 8
		readsPerG = 30
		writes    = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readsPerG; i++ {
				var url string
				switch i % 3 {
				case 0:
					url = fmt.Sprintf("%s/predict?user=%d&item=%d", ts.URL, i%20, (g+i)%30)
				case 1:
					url = fmt.Sprintf("%s/recommend?user=%d&n=3", ts.URL, (g*7+i)%20)
				default:
					url = ts.URL + "/metrics"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s = %d", url, resp.StatusCode)
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			payload := fmt.Sprintf(`{"user":%d,"item":%d,"rating":%d}`, 30+i, i%40, 1+i%5)
			resp, err := http.Post(ts.URL+"/rate", "application/json", strings.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			var body map[string]any
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("rate %s = %d (%v)", payload, resp.StatusCode, body)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every write grew the matrix by one user (ids were sequential past
	// the original 30), so the final model proves all swaps landed.
	if got := srv.Model().Matrix().NumUsers(); got != 30+writes {
		t.Errorf("users after stress = %d, want %d", got, 30+writes)
	}

	// A torn validation/update pair would also show up as a mismatched
	// batch response; run one as a final consistency probe.
	resp, err := http.Post(ts.URL+"/predict/batch", "application/json",
		strings.NewReader(`{"pairs":[{"user":0,"item":1},{"user":35,"item":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after stress = %d", resp.StatusCode)
	}
}
