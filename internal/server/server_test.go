package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cfsf/internal/core"
	"cfsf/internal/ratings"
	"cfsf/internal/synth"
)

// newTestServer trains a small model once per test binary.
var testSrv = func() *httptest.Server {
	cfg := synth.DefaultConfig()
	cfg.Users = 80
	cfg.Items = 100
	cfg.MinPerUser = 12
	cfg.MeanPerUser = 25
	cfg.Archetypes = 6
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 20
	mcfg.K = 10
	mcfg.Clusters = 6
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		panic(err)
	}
	return httptest.NewServer(New(mod, d.ItemTitles).Handler())
}()

func get(t *testing.T, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(testSrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s content type %q", path, ct)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	code, body := get(t, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, body)
	}
}

func TestStats(t *testing.T) {
	code, body := get(t, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if body["users"].(float64) != 80 || body["items"].(float64) != 100 {
		t.Errorf("stats dims wrong: %v", body)
	}
	cfg := body["config"].(map[string]any)
	if cfg["M"].(float64) != 20 {
		t.Errorf("config M = %v, want 20", cfg["M"])
	}
}

func TestPredict(t *testing.T) {
	code, body := get(t, "/predict?user=3&item=7")
	if code != http.StatusOK {
		t.Fatalf("predict = %d %v", code, body)
	}
	pred := body["prediction"].(float64)
	if pred < 1 || pred > 5 {
		t.Errorf("prediction %g out of scale", pred)
	}
	if _, ok := body["components"].(map[string]any); !ok {
		t.Error("missing components")
	}
	if _, ok := body["title"].(string); !ok {
		t.Error("missing title for synthetic dataset")
	}
}

func TestPredictValidation(t *testing.T) {
	cases := []struct {
		path string
		code int
	}{
		{"/predict?item=7", http.StatusBadRequest},
		{"/predict?user=3", http.StatusBadRequest},
		{"/predict?user=abc&item=7", http.StatusBadRequest},
		{"/predict?user=9999&item=7", http.StatusNotFound},
		{"/predict?user=3&item=9999", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, c.path)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.path, code, c.code, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: missing error field", c.path)
		}
	}
}

func TestRecommend(t *testing.T) {
	code, body := get(t, "/recommend?user=5&n=4")
	if code != http.StatusOK {
		t.Fatalf("recommend = %d %v", code, body)
	}
	recs := body["recommendations"].([]any)
	if len(recs) != 4 {
		t.Fatalf("got %d recommendations, want 4", len(recs))
	}
	prev := 6.0
	for _, r := range recs {
		entry := r.(map[string]any)
		score := entry["score"].(float64)
		if score > prev {
			t.Error("recommendations not sorted by score")
		}
		prev = score
		if _, ok := entry["title"]; !ok {
			t.Error("recommendation missing title")
		}
	}
}

// TestQueryParamValidation is the table over the unified bounded-int
// parser's whole rejection surface, on both query handlers: missing,
// non-integer, fractional, overflowing and out-of-range values are all
// 400s with an error body, while in-bounds values that name a
// nonexistent resource stay 404s and boundary values are accepted.
func TestQueryParamValidation(t *testing.T) {
	cases := []struct {
		path string
		code int
	}{
		// /recommend: user required in [0, maxIDParam], n optional in [1, 100].
		{"/recommend", http.StatusBadRequest},                               // user missing
		{"/recommend?n=5", http.StatusBadRequest},                           // user missing, n present
		{"/recommend?user=x", http.StatusBadRequest},                        // user non-integer
		{"/recommend?user=1.5", http.StatusBadRequest},                      // user fractional
		{"/recommend?user=-1", http.StatusBadRequest},                       // user negative
		{"/recommend?user=99999999999999999999", http.StatusBadRequest},     // user overflows int
		{"/recommend?user=2147483648", http.StatusBadRequest},               // user past the id ceiling
		{"/recommend?user=5&n=0", http.StatusBadRequest},                    // n below range
		{"/recommend?user=5&n=-3", http.StatusBadRequest},                   // n negative
		{"/recommend?user=5&n=101", http.StatusBadRequest},                  // n above range
		{"/recommend?user=5&n=1000", http.StatusBadRequest},                 // n far above range
		{"/recommend?user=5&n=x", http.StatusBadRequest},                    // n non-integer
		{"/recommend?user=5&n=2.5", http.StatusBadRequest},                  // n fractional
		{"/recommend?user=5&n=99999999999999999999", http.StatusBadRequest}, // n overflows int
		{"/recommend?user=9999", http.StatusNotFound},                       // valid id, no such user
		{"/recommend?user=5&n=1", http.StatusOK},                            // n lower boundary
		{"/recommend?user=5&n=100", http.StatusOK},                          // n upper boundary
		// /predict: user and item both required in [0, maxIDParam].
		{"/predict?item=7", http.StatusBadRequest},                           // user missing
		{"/predict?user=3", http.StatusBadRequest},                           // item missing
		{"/predict?user=abc&item=7", http.StatusBadRequest},                  // user non-integer
		{"/predict?user=3&item=abc", http.StatusBadRequest},                  // item non-integer
		{"/predict?user=-1&item=7", http.StatusBadRequest},                   // user negative
		{"/predict?user=3&item=-7", http.StatusBadRequest},                   // item negative
		{"/predict?user=3.5&item=7", http.StatusBadRequest},                  // user fractional
		{"/predict?user=99999999999999999999&item=7", http.StatusBadRequest}, // user overflows int
		{"/predict?user=3&item=2147483648", http.StatusBadRequest},           // item past the id ceiling
		{"/predict?user=9999&item=7", http.StatusNotFound},                   // valid id, no such user
		{"/predict?user=3&item=9999", http.StatusNotFound},                   // valid id, no such item
	}
	for _, c := range cases {
		code, body := get(t, c.path)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.path, code, c.code, body)
		}
		if c.code != http.StatusOK {
			if _, ok := body["error"]; !ok {
				t.Errorf("%s: missing error field", c.path)
			}
		}
	}
}

// TestRecommendRendersEmptyList pins the empty-result contract at the
// HTTP boundary: a user with nothing to recommend gets
// "recommendations": [] — never null — matching core.Recommend's
// non-nil-on-valid-input contract.
func TestRecommendRendersEmptyList(t *testing.T) {
	b := ratings.NewBuilder(2, 2).SetScale(1, 5)
	b.MustAdd(0, 0, 4)
	b.MustAdd(0, 1, 3)
	b.MustAdd(1, 0, 5)
	cfg := core.DefaultConfig()
	cfg.M, cfg.K, cfg.Clusters = 2, 1, 1
	mod, err := core.Train(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(mod, nil).Handler())
	defer srv.Close()

	// User 0 rated the whole catalogue: nothing left to recommend.
	resp, err := http.Get(srv.URL + "/recommend?user=0&n=5")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated user = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"recommendations":[]`) {
		t.Errorf("empty result not rendered as []: %s", raw)
	}
	if strings.Contains(string(raw), "null") {
		t.Errorf("response contains null: %s", raw)
	}
}

// TestStatsExposeRecommendCache: both observability endpoints surface
// the recommendation-cache counters, and serving the same user twice
// moves the hit counter between scrapes.
func TestStatsExposeRecommendCache(t *testing.T) {
	readHits := func() (statsHits, metricsHits float64) {
		code, body := get(t, "/stats")
		if code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		rc, ok := body["recommend_cache"].(map[string]any)
		if !ok {
			t.Fatalf("stats missing recommend_cache: %v", body)
		}
		for _, key := range []string{"hits", "misses", "repairs", "repair_fallbacks", "carried", "invalidated"} {
			if _, ok := rc[key]; !ok {
				t.Fatalf("recommend_cache missing %q: %v", key, rc)
			}
		}
		code, body = get(t, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics = %d", code)
		}
		reg := body["registry"].(map[string]any)
		gauges := reg["gauges"].(map[string]any)
		g, ok := gauges["recommend_cache_hits"].(float64)
		if !ok {
			t.Fatalf("metrics missing recommend_cache_hits gauge: %v", gauges)
		}
		return rc["hits"].(float64), g
	}
	readHits()
	// Two reads of one user: at most one miss, at least one hit.
	get(t, "/recommend?user=11&n=5")
	get(t, "/recommend?user=11&n=5")
	statsHits, metricsHits := readHits()
	if statsHits < 1 {
		t.Errorf("stats hits = %v after a repeated read, want >= 1", statsHits)
	}
	if metricsHits < 1 {
		t.Errorf("metrics hits gauge = %v after a repeated read, want >= 1", metricsHits)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	resp, err := http.Post(testSrv.URL+"/predict?user=1&item=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		go func() {
			resp, err := http.Get(testSrv.URL + fmt.Sprintf("/predict?user=%d&item=%d", g%10, g%20))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errs <- err
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRateAppliesIncrementalUpdate(t *testing.T) {
	// Use a private server so the shared one is unaffected.
	cfg := synth.DefaultConfig()
	cfg.Users = 50
	cfg.Items = 60
	cfg.MinPerUser = 10
	cfg.MeanPerUser = 15
	cfg.Archetypes = 5
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 10
	mcfg.K = 5
	mcfg.Clusters = 5
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mod, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := srv.Model().Matrix().NumRatings()
	resp, err := http.Post(ts.URL+"/rate", "application/json",
		strings.NewReader(`{"user":50,"item":3,"rating":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /rate = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["users"].(float64) != 51 {
		t.Errorf("users = %v, want 51 (new user grew the matrix)", body["users"])
	}
	after := srv.Model().Matrix().NumRatings()
	if after != before+1 {
		t.Errorf("ratings %d -> %d, want +1", before, after)
	}
	if r, ok := srv.Model().Matrix().Rating(50, 3); !ok || r != 5 {
		t.Errorf("new rating not visible: %g,%v", r, ok)
	}
}

func TestRateValidation(t *testing.T) {
	for _, payload := range []string{
		`not json`,
		`{"user":-1,"item":3,"rating":5}`,
		`{"user":1,"item":3,"rating":9}`,
	} {
		resp, err := http.Post(testSrv.URL+"/rate", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q = %d, want 400", payload, resp.StatusCode)
		}
	}
}

// trainSmallModel trains a compact model for tests that need a private
// server (so mutations or custom Options never leak into testSrv).
func trainSmallModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 40
	cfg.Items = 50
	cfg.MinPerUser = 8
	cfg.MeanPerUser = 12
	cfg.Archetypes = 4
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 8
	mcfg.K = 4
	mcfg.Clusters = 4
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func post(t *testing.T, url, payload string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, body
}

// TestMetricsEndToEnd drives traffic through /predict and then checks
// that GET /metrics reports per-endpoint counts, status classes, and
// latency percentiles for it.
func TestMetricsEndToEnd(t *testing.T) {
	const hits = 5
	for i := 0; i < hits; i++ {
		if code, _ := get(t, fmt.Sprintf("/predict?user=%d&item=%d", i%10, i%20)); code != http.StatusOK {
			t.Fatalf("predict warmup = %d", code)
		}
	}
	get(t, "/predict?user=999999&item=1") // one 404 for the status map

	code, body := get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	endpoints, ok := body["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing endpoints section: %v", body)
	}
	ep, ok := endpoints["GET /predict"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing GET /predict endpoint: %v", endpoints)
	}
	if n := ep["requests"].(float64); n < hits+1 {
		t.Errorf("GET /predict requests = %g, want >= %d", n, hits+1)
	}
	statuses := ep["status"].(map[string]any)
	if statuses["2xx"].(float64) < hits {
		t.Errorf("2xx count = %v, want >= %d", statuses["2xx"], hits)
	}
	if statuses["4xx"].(float64) < 1 {
		t.Errorf("4xx count = %v, want >= 1", statuses["4xx"])
	}
	lat := ep["latency_ms"].(map[string]any)
	for _, q := range []string{"p50", "p95", "p99", "count", "max"} {
		if _, ok := lat[q]; !ok {
			t.Errorf("latency_ms missing %q: %v", q, lat)
		}
	}
	if lat["count"].(float64) < hits {
		t.Errorf("latency count = %v, want >= %d", lat["count"], hits)
	}
	if !(lat["p50"].(float64) <= lat["p95"].(float64) && lat["p95"].(float64) <= lat["p99"].(float64)) {
		t.Errorf("percentiles not monotonic: %v", lat)
	}
	if _, ok := ep["in_flight"]; !ok {
		t.Error("endpoint metrics missing in_flight gauge")
	}
	reg, ok := body["registry"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing registry snapshot: %v", body)
	}
	gauges := reg["gauges"].(map[string]any)
	for _, g := range []string{"model_users", "model_train_total_ms", "model_train_gis_ms", "model_incremental"} {
		if _, ok := gauges[g]; !ok {
			t.Errorf("registry missing gauge %q", g)
		}
	}
}

func TestStatsTrainPhaseTimings(t *testing.T) {
	code, body := get(t, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	trainMS, ok := body["train_ms"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing train_ms: %v", body)
	}
	for _, phase := range []string{"gis", "cluster", "smooth", "icluster", "total"} {
		if _, ok := trainMS[phase]; !ok {
			t.Errorf("train_ms missing phase %q", phase)
		}
	}
	if body["incremental"] != false {
		t.Errorf("freshly trained model reported incremental=%v", body["incremental"])
	}
}

func TestPredictBatch(t *testing.T) {
	code, body := post(t, testSrv.URL+"/predict/batch",
		`{"pairs":[{"user":1,"item":2},{"user":3,"item":7},{"user":0,"item":0}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %v", code, body)
	}
	if body["count"].(float64) != 3 {
		t.Errorf("count = %v, want 3", body["count"])
	}
	preds := body["predictions"].([]any)
	if len(preds) != 3 {
		t.Fatalf("got %d predictions, want 3", len(preds))
	}
	first := preds[0].(map[string]any)
	if first["user"].(float64) != 1 || first["item"].(float64) != 2 {
		t.Errorf("predictions not in input order: %v", first)
	}
	for _, p := range preds {
		v := p.(map[string]any)["prediction"].(float64)
		if v < 1 || v > 5 {
			t.Errorf("prediction %g out of scale", v)
		}
	}
	if _, ok := body["elapsed_ms"]; !ok {
		t.Error("batch response missing elapsed_ms")
	}
}

func TestPredictBatchValidation(t *testing.T) {
	srv := NewWithOptions(trainSmallModel(t), nil, Options{MaxBatch: 4, MaxBodyBytes: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"pairs":[` + strings.Repeat(`{"user":1,"item":1},`, 4) + `{"user":1,"item":1}]}`
	cases := []struct {
		name    string
		payload string
		code    int
	}{
		{"not json", `pairs please`, http.StatusBadRequest},
		{"empty batch", `{"pairs":[]}`, http.StatusBadRequest},
		{"missing pairs", `{}`, http.StatusBadRequest},
		{"oversized batch", big, http.StatusBadRequest},
		{"trailing garbage", `{"pairs":[{"user":1,"item":1}]} extra`, http.StatusBadRequest},
		{"second document", `{"pairs":[{"user":1,"item":1}]}{"pairs":[]}`, http.StatusBadRequest},
		{"oversize body", `{"pairs":[` + strings.Repeat(`{"user":11,"item":11},`, 30) + `{"user":1,"item":1}]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		code, body := post(t, ts.URL+"/predict/batch", c.payload)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.name, code, c.code, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: missing error field", c.name)
		}
	}
}

func TestRateBodyLimits(t *testing.T) {
	srv := NewWithOptions(trainSmallModel(t), nil, Options{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		payload string
		code    int
	}{
		{"oversize body", `{"user":1,"item":1,"rating":3,"pad":"` + strings.Repeat("x", 100) + `"}`, http.StatusRequestEntityTooLarge},
		{"trailing garbage", `{"user":1,"item":1,"rating":3}garbage`, http.StatusBadRequest},
		{"second document", `{"user":1,"item":1,"rating":3}{}`, http.StatusBadRequest},
	}
	before := srv.Model().Matrix().NumRatings()
	for _, c := range cases {
		code, body := post(t, ts.URL+"/rate", c.payload)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.name, code, c.code, body)
		}
	}
	if after := srv.Model().Matrix().NumRatings(); after != before {
		t.Errorf("rejected bodies changed the model: %d -> %d ratings", before, after)
	}
}

// TestRateGrowthMargin is the allocation-bomb regression test: an id far
// past the matrix bounds must return 400, not allocate a 2-billion-row
// matrix.
func TestRateGrowthMargin(t *testing.T) {
	srv := New(trainSmallModel(t), nil) // default margin 1, 40×50 matrix
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, c := range []struct {
		name    string
		payload string
		code    int
	}{
		{"huge user id", `{"user":2000000000,"item":3,"rating":4}`, http.StatusBadRequest},
		{"huge item id", `{"user":3,"item":2000000000,"rating":4}`, http.StatusBadRequest},
		{"user just past margin", `{"user":41,"item":3,"rating":4}`, http.StatusBadRequest},
		{"item just past margin", `{"user":3,"item":51,"rating":4}`, http.StatusBadRequest},
		{"next fresh user", `{"user":40,"item":3,"rating":4}`, http.StatusOK},
	} {
		code, body := post(t, ts.URL+"/rate", c.payload)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.name, code, c.code, body)
		}
	}
	// The accepted update grew the matrix by exactly one user.
	if got := srv.Model().Matrix().NumUsers(); got != 41 {
		t.Errorf("users = %d, want 41", got)
	}

	wide := NewWithOptions(trainSmallModel(t), nil, Options{GrowthMargin: 100})
	tw := httptest.NewServer(wide.Handler())
	defer tw.Close()
	if code, body := post(t, tw.URL+"/rate", `{"user":120,"item":3,"rating":4}`); code != http.StatusOK {
		t.Errorf("margin 100, user 120 = %d, want 200 (%v)", code, body)
	}
	if code, _ := post(t, tw.URL+"/rate", `{"user":300,"item":3,"rating":4}`); code != http.StatusBadRequest {
		t.Errorf("margin 100, user 300 = %d, want 400", code)
	}
}

func TestRateMarksModelIncremental(t *testing.T) {
	srv := New(trainSmallModel(t), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, body := post(t, ts.URL+"/rate", `{"user":1,"item":2,"rating":4}`); code != http.StatusOK {
		t.Fatalf("rate = %d %v", code, body)
	}
	st := srv.Model().Stats()
	if !st.Incremental || st.UpdatesApplied != 1 {
		t.Errorf("stats after rate: incremental=%v updates=%d, want true/1", st.Incremental, st.UpdatesApplied)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["incremental"] != true {
		t.Errorf("/stats incremental = %v, want true", body["incremental"])
	}
}

func TestDebugPprofGating(t *testing.T) {
	mod := trainSmallModel(t)
	plain := httptest.NewServer(New(mod, nil).Handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable without Debug option")
	}

	dbg := httptest.NewServer(NewWithOptions(mod, nil, Options{Debug: true}).Handler())
	defer dbg.Close()
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with Debug = %d, want 200", resp.StatusCode)
	}
}

// round3 regression: the old int-cast trick (float64(int(v*1000+0.5))/1000)
// rounded negatives toward zero minus a millesimal — -1.2345 became
// -1.234 instead of -1.235 — and overflowed for huge magnitudes.
func TestRound3Negatives(t *testing.T) {
	cases := map[float64]float64{
		1.2345:  1.235,
		-1.2345: -1.235,
		-1.2344: -1.234,
		-0.0005: -0.001,
		2.5:     2.5,
		-3.0:    -3,
		0:       0,
	}
	for in, want := range cases {
		if got := round3(in); got != want {
			t.Errorf("round3(%v) = %v, want %v", in, got, want)
		}
	}
}
