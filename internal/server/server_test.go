package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cfsf/internal/core"
	"cfsf/internal/synth"
)

// newTestServer trains a small model once per test binary.
var testSrv = func() *httptest.Server {
	cfg := synth.DefaultConfig()
	cfg.Users = 80
	cfg.Items = 100
	cfg.MinPerUser = 12
	cfg.MeanPerUser = 25
	cfg.Archetypes = 6
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 20
	mcfg.K = 10
	mcfg.Clusters = 6
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		panic(err)
	}
	return httptest.NewServer(New(mod, d.ItemTitles).Handler())
}()

func get(t *testing.T, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(testSrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s content type %q", path, ct)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	code, body := get(t, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, body)
	}
}

func TestStats(t *testing.T) {
	code, body := get(t, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if body["users"].(float64) != 80 || body["items"].(float64) != 100 {
		t.Errorf("stats dims wrong: %v", body)
	}
	cfg := body["config"].(map[string]any)
	if cfg["M"].(float64) != 20 {
		t.Errorf("config M = %v, want 20", cfg["M"])
	}
}

func TestPredict(t *testing.T) {
	code, body := get(t, "/predict?user=3&item=7")
	if code != http.StatusOK {
		t.Fatalf("predict = %d %v", code, body)
	}
	pred := body["prediction"].(float64)
	if pred < 1 || pred > 5 {
		t.Errorf("prediction %g out of scale", pred)
	}
	if _, ok := body["components"].(map[string]any); !ok {
		t.Error("missing components")
	}
	if _, ok := body["title"].(string); !ok {
		t.Error("missing title for synthetic dataset")
	}
}

func TestPredictValidation(t *testing.T) {
	cases := []struct {
		path string
		code int
	}{
		{"/predict?item=7", http.StatusBadRequest},
		{"/predict?user=3", http.StatusBadRequest},
		{"/predict?user=abc&item=7", http.StatusBadRequest},
		{"/predict?user=9999&item=7", http.StatusNotFound},
		{"/predict?user=3&item=9999", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, c.path)
		if code != c.code {
			t.Errorf("%s = %d, want %d (%v)", c.path, code, c.code, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: missing error field", c.path)
		}
	}
}

func TestRecommend(t *testing.T) {
	code, body := get(t, "/recommend?user=5&n=4")
	if code != http.StatusOK {
		t.Fatalf("recommend = %d %v", code, body)
	}
	recs := body["recommendations"].([]any)
	if len(recs) != 4 {
		t.Fatalf("got %d recommendations, want 4", len(recs))
	}
	prev := 6.0
	for _, r := range recs {
		entry := r.(map[string]any)
		score := entry["score"].(float64)
		if score > prev {
			t.Error("recommendations not sorted by score")
		}
		prev = score
		if _, ok := entry["title"]; !ok {
			t.Error("recommendation missing title")
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	for _, path := range []string{
		"/recommend",
		"/recommend?user=5&n=0",
		"/recommend?user=5&n=1000",
		"/recommend?user=5&n=x",
	} {
		code, _ := get(t, path)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, code)
		}
	}
	code, _ := get(t, "/recommend?user=9999")
	if code != http.StatusNotFound {
		t.Errorf("unknown user = %d, want 404", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	resp, err := http.Post(testSrv.URL+"/predict?user=1&item=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		go func() {
			resp, err := http.Get(testSrv.URL + fmt.Sprintf("/predict?user=%d&item=%d", g%10, g%20))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errs <- err
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRateAppliesIncrementalUpdate(t *testing.T) {
	// Use a private server so the shared one is unaffected.
	cfg := synth.DefaultConfig()
	cfg.Users = 50
	cfg.Items = 60
	cfg.MinPerUser = 10
	cfg.MeanPerUser = 15
	cfg.Archetypes = 5
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 10
	mcfg.K = 5
	mcfg.Clusters = 5
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mod, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := srv.Model().Matrix().NumRatings()
	resp, err := http.Post(ts.URL+"/rate", "application/json",
		strings.NewReader(`{"user":50,"item":3,"rating":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /rate = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["users"].(float64) != 51 {
		t.Errorf("users = %v, want 51 (new user grew the matrix)", body["users"])
	}
	after := srv.Model().Matrix().NumRatings()
	if after != before+1 {
		t.Errorf("ratings %d -> %d, want +1", before, after)
	}
	if r, ok := srv.Model().Matrix().Rating(50, 3); !ok || r != 5 {
		t.Errorf("new rating not visible: %g,%v", r, ok)
	}
}

func TestRateValidation(t *testing.T) {
	for _, payload := range []string{
		`not json`,
		`{"user":-1,"item":3,"rating":5}`,
		`{"user":1,"item":3,"rating":9}`,
	} {
		resp, err := http.Post(testSrv.URL+"/rate", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q = %d, want 400", payload, resp.StatusCode)
		}
	}
}
