package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRateBatchStandalone: an array body on /rate applies the whole
// batch in one WithUpdates pass, including progressive growth — entry i
// may introduce ids GrowthMargin+i past the bounds, because earlier
// entries in the same batch create the ids it builds on.
func TestRateBatchStandalone(t *testing.T) {
	mod := smallModel(t)
	srv := httptest.NewServer(NewWithOptions(mod, nil, Options{MaxBatch: 8}).Handler())
	defer srv.Close()
	before := mod.Matrix().NumRatings()

	code, body := postJSON(t, srv.URL+"/rate", []map[string]any{
		{"user": 2, "item": 3, "rating": 4},
		{"user": 40, "item": 5, "rating": 3}, // fresh user (margin 1+1)
		{"user": 41, "item": 7, "rating": 5}, // builds on the previous entry's growth
	})
	if code != http.StatusOK || body["status"] != "applied" {
		t.Fatalf("/rate batch = %d %v, want 200 applied", code, body)
	}
	if got := body["count"].(float64); got != 3 {
		t.Errorf("applied count = %v, want 3", got)
	}
	if got := int(body["ratings"].(float64)); got != before+3 {
		t.Errorf("ratings after batch = %d, want %d", got, before+3)
	}
	if got := int(body["users"].(float64)); got != 42 {
		t.Errorf("users after growth batch = %d, want 42", got)
	}

	// Validation failures name the offending entry and apply nothing.
	mid := mod.Matrix().NumRatings()
	code, body = postJSON(t, srv.URL+"/rate", []map[string]any{
		{"user": 1, "item": 1, "rating": 4},
		{"user": 1, "item": 2, "rating": 99},
	})
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "entry 1") {
		t.Fatalf("bad entry = %d %v, want 400 naming entry 1", code, body)
	}
	if got := mod.Matrix().NumRatings(); got != mid {
		t.Errorf("failed batch partially applied: %d ratings, want %d", got, mid)
	}

	if code, body = postJSON(t, srv.URL+"/rate", []map[string]any{}); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d %v, want 400", code, body)
	}
	big := make([]map[string]any, 9) // MaxBatch is 8
	for i := range big {
		big[i] = rateBody(i)
	}
	if code, body = postJSON(t, srv.URL+"/rate", big); code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d %v, want 400", code, body)
	}
}

// TestRateBatchQueued: in manager mode an array body becomes one WAL
// append group and one 202 response carrying every assigned sequence.
func TestRateBatchQueued(t *testing.T) {
	srv, mgr := newDurableServer(t, t.TempDir(), smallModel(t))
	before := mgr.Model().Matrix().NumRatings()

	batch := make([]map[string]any, 4)
	for i := range batch {
		batch[i] = rateBody(i)
	}
	code, body := postJSON(t, srv.URL+"/rate", batch)
	if code != http.StatusAccepted || body["status"] != "queued" {
		t.Fatalf("/rate batch = %d %v, want 202 queued", code, body)
	}
	seqs, ok := body["seqs"].([]any)
	if !ok || len(seqs) != 4 {
		t.Fatalf("queued batch seqs = %v, want 4 sequences", body["seqs"])
	}
	last := uint64(seqs[len(seqs)-1].(float64))
	for i := 1; i < len(seqs); i++ {
		if seqs[i].(float64) != seqs[i-1].(float64)+1 {
			t.Fatalf("seqs not consecutive: %v", seqs)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for mgr.AppliedSeq() < last {
		if time.Now().After(deadline) {
			t.Fatal("batch never applied")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := mgr.Model().Matrix().NumRatings(); got <= before {
		t.Errorf("ratings after batch = %d, want > %d", got, before)
	}
}

// TestStatsAndMetricsShards: both introspection endpoints expose the
// per-shard view — /stats for humans, /metrics for scrapers — in
// standalone mode too, where the routing view carries sizes only.
func TestStatsAndMetricsShards(t *testing.T) {
	for _, ep := range []string{"/stats", "/metrics"} {
		code, body := get(t, ep)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", ep, code)
		}
		shards, ok := body["shards"].([]any)
		if !ok || len(shards) != 6 { // testSrv trains with Clusters = 6
			t.Fatalf("%s shards = %v, want 6 entries", ep, body["shards"])
		}
		first := shards[0].(map[string]any)
		if _, ok := first["users"]; !ok {
			t.Errorf("%s shard entry missing users: %v", ep, first)
		}
	}
	code, body := get(t, "/stats")
	if code != http.StatusOK || body["num_shards"].(float64) != 6 {
		t.Errorf("/stats num_shards = %v, want 6", body["num_shards"])
	}
}

// TestAdminRetrainMode: the mode query parameter is validated and passed
// through to the manager.
func TestAdminRetrainMode(t *testing.T) {
	srv, _ := newDurableServer(t, t.TempDir(), smallModel(t))

	code, body := postJSON(t, srv.URL+"/admin/retrain?mode=bogus", nil)
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "bogus") {
		t.Fatalf("bogus mode = %d %v, want 400", code, body)
	}
	code, body = postJSON(t, srv.URL+"/admin/retrain?mode=shards", nil)
	if code != http.StatusAccepted || body["mode"] != "shards" {
		t.Fatalf("shards mode = %d %v, want 202", code, body)
	}
}
