package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/synth"
	"cfsf/internal/wal"
)

func smallModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 40
	cfg.Items = 50
	cfg.MinPerUser = 8
	cfg.MeanPerUser = 12
	cfg.Archetypes = 4
	d := synth.MustGenerate(cfg)
	mcfg := core.DefaultConfig()
	mcfg.M = 8
	mcfg.K = 4
	mcfg.Clusters = 4
	mod, err := core.Train(d.Matrix, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// newDurableServer wires a lifecycle manager into a test server the same
// way cmd/cfsf-server does: shared registry, model owned by the manager.
func newDurableServer(t *testing.T, dir string, mod *core.Model) (*httptest.Server, *lifecycle.Manager) {
	t.Helper()
	reg := obs.NewRegistry()
	mgr, err := lifecycle.Open(
		func() (*core.Model, error) { return mod, nil },
		lifecycle.Config{DataDir: dir, Fsync: wal.SyncAlways, Registry: reg},
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWithOptions(nil, nil, Options{Registry: reg, Manager: mgr}).Handler())
	t.Cleanup(srv.Close)
	return srv, mgr
}

func postJSON(t *testing.T, url string, payload any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(payload); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func rateBody(i int) map[string]any {
	return map[string]any{"user": i % 41, "item": i % 50, "rating": float64(i%5) + 1}
}

// TestRateQueuedThenApplied: in manager mode /rate acknowledges with 202
// "queued" (plus seq and pending depth), and the rating becomes visible
// to reads once the micro-batch lands.
func TestRateQueuedThenApplied(t *testing.T) {
	srv, mgr := newDurableServer(t, t.TempDir(), smallModel(t))
	before := mgr.Model().Matrix().NumRatings()

	code, body := postJSON(t, srv.URL+"/rate", map[string]any{"user": 40, "item": 3, "rating": 5})
	if code != http.StatusAccepted || body["status"] != "queued" {
		t.Fatalf("/rate = %d %v, want 202 queued", code, body)
	}
	seq := uint64(body["seq"].(float64))
	if seq == 0 {
		t.Fatalf("queued response missing seq: %v", body)
	}
	if _, ok := body["pending"]; !ok {
		t.Fatalf("queued response missing pending depth: %v", body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for mgr.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatal("queued rating never applied")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Read-your-write now holds: /stats serves the post-batch model.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if got := int(stats["ratings"].(float64)); got != before+1 {
		t.Errorf("ratings after apply = %d, want %d", got, before+1)
	}
	if stats["incremental"] != true {
		t.Errorf("serving model not marked incremental after queued apply: %v", stats["incremental"])
	}

	// Validation still rejects garbage before it reaches the WAL.
	if code, _ := postJSON(t, srv.URL+"/rate", map[string]any{"user": 1, "item": 1, "rating": 99}); code != http.StatusBadRequest {
		t.Errorf("out-of-scale rating = %d, want 400", code)
	}
	if code, _ := postJSON(t, srv.URL+"/rate", map[string]any{"user": 10_000, "item": 1, "rating": 3}); code != http.StatusBadRequest {
		t.Errorf("out-of-bounds user = %d, want 400", code)
	}

	// /metrics carries the wal/lifecycle instrumentation.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, name := range []string{
		"wal_last_seq", "wal_append_latency_ms", "lifecycle_applied_total",
		"lifecycle_batch_size", "lifecycle_pending", "rate_queued_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// After close the queue is gone: /rate sheds with 503.
	if code, _ := postJSON(t, srv.URL+"/rate", rateBody(1)); code != http.StatusServiceUnavailable {
		t.Errorf("/rate after close = %d, want 503", code)
	}
}

func TestAdminEndpoints(t *testing.T) {
	srv, mgr := newDurableServer(t, t.TempDir(), smallModel(t))
	defer mgr.Close()

	// A rating so the snapshot has something new to cover.
	code, body := postJSON(t, srv.URL+"/rate", rateBody(7))
	if code != http.StatusAccepted {
		t.Fatalf("/rate = %d %v", code, body)
	}
	seq := uint64(body["seq"].(float64))
	deadline := time.Now().Add(10 * time.Second)
	for mgr.AppliedSeq() < seq && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	code, body = postJSON(t, srv.URL+"/admin/snapshot", nil)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/admin/snapshot = %d %v", code, body)
	}
	if body["path"] == "" || body["covered_seq"].(float64) < float64(seq) {
		t.Errorf("snapshot response incomplete: %v", body)
	}
	// Idempotent: nothing new applied, so the second call skips.
	if code, body = postJSON(t, srv.URL+"/admin/snapshot", nil); code != http.StatusOK || body["status"] != "skipped" {
		t.Errorf("repeat snapshot = %d %v, want skipped", code, body)
	}

	code, body = postJSON(t, srv.URL+"/admin/retrain", nil)
	if code != http.StatusAccepted || body["status"] != "started" {
		t.Fatalf("/admin/retrain = %d %v", code, body)
	}
	// GET on admin endpoints is not routed.
	resp, err := http.Get(srv.URL + "/admin/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /admin/snapshot = %d, want method not allowed", resp.StatusCode)
	}
}

// TestAdminWithoutManager: a stateless server (no -data-dir) refuses the
// operational endpoints instead of pretending.
func TestAdminWithoutManager(t *testing.T) {
	for _, ep := range []string{"/admin/snapshot", "/admin/retrain"} {
		code, body := postJSON(t, testSrv.URL+ep, nil)
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s without manager = %d %v, want 503", ep, code, body)
		}
		if msg := fmt.Sprint(body["error"]); !strings.Contains(msg, "data-dir") {
			t.Errorf("%s error %q does not point at -data-dir", ep, msg)
		}
	}
}

// TestServerCrashRecovery drives the whole loop over HTTP: rate via the
// queued path, kill the manager without any shutdown, reboot from the
// data dir, and require the recovered serving model to predict exactly
// like the pre-crash one.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, mgr := newDurableServer(t, dir, smallModel(t))

	var last uint64
	for i := 0; i < 5; i++ {
		code, body := postJSON(t, srv.URL+"/rate", rateBody(i))
		if code != http.StatusAccepted {
			t.Fatalf("rate %d = %d %v", i, code, body)
		}
		last = uint64(body["seq"].(float64))
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.AppliedSeq() < last {
		if time.Now().After(deadline) {
			t.Fatal("ratings never applied")
		}
		time.Sleep(2 * time.Millisecond)
	}
	before := mgr.Model()
	mgr.Abort() // simulated SIGKILL

	reborn, err := lifecycle.Open(
		func() (*core.Model, error) {
			t.Fatal("bootstrap ran although snapshots exist")
			return nil, nil
		},
		lifecycle.Config{DataDir: dir},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	after := reborn.Model()

	m := before.Matrix()
	for u := 0; u < m.NumUsers(); u++ {
		for i := 0; i < m.NumItems(); i++ {
			if before.Predict(u, i) != after.Predict(u, i) {
				t.Fatalf("prediction (%d,%d) differs after recovery: %v vs %v",
					u, i, before.Predict(u, i), after.Predict(u, i))
			}
		}
	}
}
