package server

import (
	"net/http"
	"time"

	"cfsf/internal/obs"
)

// endpointMetrics holds the per-endpoint instruments; they are created
// once when the route is registered so the request path never touches
// the registry mutex.
type endpointMetrics struct {
	requests *obs.Counter
	classes  [6]*obs.Counter // index = status/100 (1xx..5xx; 0 unused)
	inFlight *obs.Gauge
	latency  *obs.Histogram
}

func newEndpointMetrics(reg *obs.Registry, endpoint string) *endpointMetrics {
	em := &endpointMetrics{
		requests: reg.Counter("http_requests_total:" + endpoint),
		inFlight: reg.Gauge("http_in_flight:" + endpoint),
		latency:  reg.Histogram("http_latency_ms:"+endpoint, obs.DefaultLatencyBuckets()),
	}
	for c := 1; c <= 5; c++ {
		em.classes[c] = reg.Counter("http_requests_total:" + endpoint + ":" + statusClassName(c))
	}
	return em
}

func statusClassName(c int) string {
	return string('0'+byte(c)) + "xx"
}

// statusWriter captures the status code a handler wrote (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush passes through to the underlying writer so chunked streams (the
// replication WAL tail) deliver frames as they are written, not when the
// handler returns.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler so every request records count, status
// class, in-flight gauge, and latency under the endpoint's name.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := newEndpointMetrics(s.reg, endpoint)
	s.epMu.Lock()
	s.endpoints[endpoint] = em
	s.epMu.Unlock()
	return func(w http.ResponseWriter, r *http.Request) {
		em.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := float64(time.Since(start)) / float64(time.Millisecond)
		em.inFlight.Add(-1)
		em.requests.Inc()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if c := status / 100; c >= 1 && c <= 5 {
			em.classes[c].Inc()
		}
		em.latency.Observe(elapsed)
	}
}

// endpointsView renders the per-endpoint metrics as the structured
// "endpoints" section of GET /metrics.
func (s *Server) endpointsView() map[string]any {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	out := make(map[string]any, len(s.endpoints))
	for name, em := range s.endpoints {
		statuses := map[string]int64{}
		for c := 1; c <= 5; c++ {
			if n := em.classes[c].Value(); n > 0 {
				statuses[statusClassName(c)] = n
			}
		}
		out[name] = map[string]any{
			"requests":   em.requests.Value(),
			"status":     statuses,
			"in_flight":  em.inFlight.Value(),
			"latency_ms": em.latency.Snapshot(),
		}
	}
	return out
}
