package server

import (
	"os"
	"testing"

	"cfsf/internal/leakcheck"
)

// TestMain fails the package if an HTTP test server, in-flight handler, or
// manager goroutine outlives the tests that started it.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
