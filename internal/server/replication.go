package server

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cfsf/internal/replication"
)

// --- admin auth ---

// requireAdmin gates a handler behind the shared admin token
// (Options.AdminToken). With no token configured the gate is open —
// single-operator deployments keep working — but a replicated fleet
// should set one, since /admin/wal and /admin/blob serve the full
// dataset. The comparison is constant-time.
func (s *Server) requireAdmin(h http.HandlerFunc) http.HandlerFunc {
	if s.opts.AdminToken == "" {
		return h
	}
	want := []byte("Bearer " + s.opts.AdminToken)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			s.reg.Counter("admin_auth_failures_total").Inc()
			writeError(w, http.StatusUnauthorized, errors.New("missing or invalid admin token"))
			return
		}
		h(w, r)
	}
}

// --- follower role ---

// ActivateFollower installs a replication follower as the model source
// and marks the server ready. The server becomes a read replica: writes
// and durability admin calls redirect to the leader with 307.
func (s *Server) ActivateFollower(f *replication.Follower, titles []string) {
	s.flw.Store(f)
	s.titles.Store(&titles)
	s.recordModelGauges(f.Model())
	s.ready.Store(true)
	s.reg.Gauge("server_ready").Set(1)
}

// follower returns the replication follower serving this process, or
// nil on a leader/standalone.
func (s *Server) follower() *replication.Follower { return s.flw.Load() }

// redirectToLeader answers a write (or durability admin call) on a
// follower with 307 to the same path on the leader. 307 preserves the
// method and body, so a client that follows redirects lands the exact
// request on the leader.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request, f *replication.Follower) {
	s.reg.Counter("follower_redirects_total").Inc()
	w.Header().Set("Location", f.LeaderURL()+r.URL.RequestURI())
	writeJSON(w, http.StatusTemporaryRedirect, map[string]any{
		"error":  "read-only replica: writes go to the leader",
		"leader": f.LeaderURL(),
	})
}

// --- leader endpoints ---

// replicationLeader returns the lazily built wire-protocol server for
// the lifecycle manager, or nil when this process has no manager.
func (s *Server) replicationLeader() *replication.Leader {
	if l := s.repl.Load(); l != nil {
		return l
	}
	mgr := s.manager()
	if mgr == nil {
		return nil
	}
	l := replication.NewLeader(mgr, s.reg)
	if s.repl.CompareAndSwap(nil, l) {
		return l
	}
	return s.repl.Load()
}

// CloseReplication ends any active leader-side WAL streams. Call before
// http.Server.Shutdown: the streams are long-lived chunked responses
// Shutdown would otherwise wait out to its deadline.
func (s *Server) CloseReplication() {
	if l := s.repl.Load(); l != nil {
		l.Close()
	}
}

// handleReplWAL streams the WAL tail to a follower (manager mode only).
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	l := s.replicationLeader()
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	l.ServeWAL(w, r)
}

// handleReplManifest serves the newest snapshot manifest.
func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	l := s.replicationLeader()
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	l.ServeManifest(w, r)
}

// handleReplBlob serves one snapshot blob by name.
func (s *Server) handleReplBlob(w http.ResponseWriter, r *http.Request) {
	l := s.replicationLeader()
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, errNoManager)
		return
	}
	l.ServeBlob(w, r)
}

// handleFingerprint hashes the serving model's persisted form — the
// replica-parity check. Leader and follower answer it identically; a
// comparison is meaningful when both report the same seq.
func (s *Server) handleFingerprint(w http.ResponseWriter, _ *http.Request) {
	mod := s.current()
	if mod == nil {
		writeError(w, http.StatusServiceUnavailable, errWarmingUp)
		return
	}
	fp, err := replication.Fingerprint(mod)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var seq uint64
	role := "standalone"
	if f := s.follower(); f != nil {
		seq, role = f.AppliedSeq(), "follower"
	} else if mgr := s.manager(); mgr != nil {
		seq, role = mgr.AppliedSeq(), "leader"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprint": fp,
		"seq":         seq,
		"role":        role,
	})
}

// --- read-path admission control ---

// qpsLimiter is a token bucket: capacity MaxQPS (one second of burst),
// refilled continuously. It makes a node's serving capacity explicit —
// beyond it clients get 429 + Retry-After instead of collapsing latency,
// which is also what gives "capacity per replica" a crisp definition in
// the scaling benchmark.
type qpsLimiter struct {
	mu     sync.Mutex
	rate   float64   // tokens per second
	tokens float64   //cfsf:guarded-by mu
	last   time.Time //cfsf:guarded-by mu
}

func newQPSLimiter(maxQPS int) *qpsLimiter {
	return &qpsLimiter{rate: float64(maxQPS), tokens: float64(maxQPS), last: time.Now()}
}

func (l *qpsLimiter) allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.rate {
		l.tokens = l.rate
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// limitQPS applies the node's serving-capacity cap (Options.MaxQPS) to a
// handler; zero means unlimited.
func (s *Server) limitQPS(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	throttled := s.reg.Counter("server_throttled_total")
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.allow() {
			throttled.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("over capacity (%g qps)", s.limiter.rate))
			return
		}
		h(w, r)
	}
}

// replicationStats is the /stats and /healthz "replication" section.
func (s *Server) replicationStats() map[string]any {
	if f := s.follower(); f != nil {
		return f.Stats()
	}
	return nil
}
