package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cfsf/internal/core"
	"cfsf/internal/lifecycle"
	"cfsf/internal/obs"
	"cfsf/internal/replication"
	"cfsf/internal/wal"
)

// noRedirect returns a client that surfaces 3xx responses instead of
// following them — the tests assert on the redirect itself.
func noRedirect() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func TestAdminTokenGatesAdminRoutes(t *testing.T) {
	srv := httptest.NewServer(NewWithOptions(smallModel(t), nil, Options{AdminToken: "s3cret"}).Handler())
	defer srv.Close()

	paths := []struct {
		method, path string
	}{
		{"GET", "/admin/fingerprint"},
		{"GET", replication.PathManifest},
		{"GET", replication.PathWAL + "?after=0&follow=0"},
		{"GET", replication.PathBlob + "?file=x"},
		{"POST", "/admin/snapshot"},
	}
	for _, p := range paths {
		req, _ := http.NewRequest(p.method, srv.URL+p.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s %s without token: status %d, want 401", p.method, p.path, resp.StatusCode)
		}

		req, _ = http.NewRequest(p.method, srv.URL+p.path, nil)
		req.Header.Set("Authorization", "Bearer wrong")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s %s with bad token: status %d, want 401", p.method, p.path, resp.StatusCode)
		}
	}

	// The right token reaches the handler (fingerprint answers 200; the
	// replication routes answer their no-manager 503 — not 401).
	req, _ := http.NewRequest("GET", srv.URL+"/admin/fingerprint", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint with token: status %d, want 200", resp.StatusCode)
	}

	// Read paths stay open: the token guards /admin/*, not serving.
	if code, _ := getFrom(t, srv, "/predict?user=1&item=1"); code != http.StatusOK {
		t.Fatalf("predict on tokened server: status %d, want 200", code)
	}
}

func getFrom(t *testing.T, srv *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &body)
	return resp.StatusCode, body
}

// TestFollowerRedirectsWritesAndServesReads wires a real leader (manager
// mode) and a real follower through the exported handler stack: reads
// are served locally by the follower, writes and durability admin calls
// answer 307 pointing at the leader.
func TestFollowerRedirectsWritesAndServesReads(t *testing.T) {
	reg := obs.NewRegistry()
	mgr, err := lifecycle.Open(
		func() (*core.Model, error) { return smallModel(t), nil },
		lifecycle.Config{DataDir: t.TempDir(), Fsync: wal.SyncAlways, Registry: reg},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	leader := httptest.NewServer(NewWithOptions(nil, nil, Options{Registry: reg, Manager: mgr}).Handler())
	defer leader.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := replication.Start(ctx, replication.Options{
		LeaderURL:    leader.URL,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fsrv := NewWarming(Options{})
	fsrv.ActivateFollower(f, nil)
	follower := httptest.NewServer(fsrv.Handler())
	defer follower.Close()

	// Reads answer locally.
	if code, _ := getFrom(t, follower, "/predict?user=1&item=1"); code != http.StatusOK {
		t.Fatalf("follower predict: status %d, want 200", code)
	}
	if code, body := getFrom(t, follower, "/healthz"); code != http.StatusOK || body["role"] != "follower" {
		t.Fatalf("follower healthz: status %d role %v, want 200/follower", code, body["role"])
	}

	// Writes 307 to the same path on the leader, method and body intact.
	client := noRedirect()
	payload := bytes.NewBufferString(`{"user":1,"item":2,"rating":4}`)
	resp, err := client.Post(follower.URL+"/rate", "application/json", payload)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower rate: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != leader.URL+"/rate" {
		t.Fatalf("follower rate Location = %q, want %q", loc, leader.URL+"/rate")
	}

	for _, path := range []string{"/admin/snapshot", "/admin/compact", "/admin/retrain"} {
		resp, err := client.Post(follower.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("follower %s: status %d, want 307", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, leader.URL) {
			t.Fatalf("follower %s Location = %q, want leader-prefixed", path, loc)
		}
	}

	// A client that follows the redirect lands the write on the leader.
	resp2, err := http.Post(follower.URL+"/rate", "application/json",
		bytes.NewBufferString(`{"user":1,"item":2,"rating":4}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("redirect-following rate: status %d, want 202 (queued on the leader)", resp2.StatusCode)
	}

	// /stats exposes the replication section with lag fields.
	_, stats := getFrom(t, follower, "/stats")
	repl, ok := stats["replication"].(map[string]any)
	if !ok {
		t.Fatalf("follower /stats has no replication section: %v", stats)
	}
	if repl["role"] != "follower" || repl["leader"] != leader.URL {
		t.Fatalf("replication stats = %v", repl)
	}
}

func TestMaxQPSThrottlesWith429(t *testing.T) {
	srv := httptest.NewServer(NewWithOptions(smallModel(t), nil, Options{MaxQPS: 5}).Handler())
	defer srv.Close()

	var ok, throttled int
	var sawRetryAfter bool
	for i := 0; i < 60; i++ {
		resp, err := http.Get(srv.URL + "/predict?user=1&item=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			throttled++
			if resp.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
		default:
			t.Fatalf("predict: unexpected status %d", resp.StatusCode)
		}
	}
	// Burst capacity is one second of tokens (5), plus whatever refills
	// during the loop; 60 rapid-fire requests must overrun it.
	if throttled == 0 {
		t.Fatalf("no 429s across 60 requests against MaxQPS=5 (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("every request throttled; burst capacity should admit some")
	}
	if !sawRetryAfter {
		t.Fatal("429 responses carry no Retry-After header")
	}

	// Health and stats stay exempt from admission control.
	if code, _ := getFrom(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz throttled: status %d", code)
	}
}
