// Package obs is a dependency-free metrics toolkit for the serving path:
// atomic counters, float gauges, and fixed-bucket histograms with
// quantile summaries, collected in a named Registry that snapshots to
// plain JSON-able values. It exists so cmd/cfsf-server can report
// per-endpoint request counts and latency percentiles — the paper's
// "efficient" claim is about online-phase cost, and this is how we
// measure it under real traffic.
//
// All metric types are safe for concurrent use and never allocate on the
// hot path (Observe/Inc/Add are a handful of atomic ops).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down (in-flight requests,
// last train duration, ...).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop, safe under contention).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are histogram upper bounds in milliseconds,
// spanning 50µs to 10s — wide enough for a cache-hit prediction and a
// full incremental refresh alike.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// Histogram counts observations into fixed buckets and estimates
// quantiles by linear interpolation inside the matched bucket. The unit
// is whatever the caller observes (the server records milliseconds).
type Histogram struct {
	bounds  []float64 // ascending upper bounds; one overflow bucket past the last
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds; nil or empty bounds fall back to DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarises the histogram. Concurrent Observe calls may tear
// between count and buckets by a few observations; the summary is for
// dashboards, not accounting. What IS guaranteed even under racing
// Observe calls is internal order: P50 <= P95 <= P99 <= Max. Every
// quantile interpolates over the same bucket snapshot and the same max
// reading — re-loading max per quantile would let an Observe racing
// between the P95 and P99 computations hand them different clamps — and
// the reported Max is raised to cover P99 when an observation's bucket
// increment was visible before its max update.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	buckets := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	// One max reading for the whole summary, loaded after the bucket
	// sweep so it covers as many of the counted observations as possible.
	max := math.Float64frombits(h.maxBits.Load())
	s.Max = max
	s.P50 = h.quantile(buckets, total, max, 0.50)
	s.P95 = h.quantile(buckets, total, max, 0.95)
	s.P99 = h.quantile(buckets, total, max, 0.99)
	if s.P99 > s.Max {
		s.Max = s.P99
	}
	return s
}

// quantile estimates the q-quantile from bucket counts by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The overflow bucket interpolates toward max (the caller's single
// consistent reading of the observed maximum). With buckets, total, and
// max fixed, the estimate is non-decreasing in q: the target rank grows
// with q, the interpolation is linear within a bucket, and bucket upper
// bounds ascend — which is what makes Snapshot's P50/P95/P99 monotone.
func (h *Histogram) quantile(buckets []int64, total int64, max, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := max
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		est := lo + (hi-lo)*(target-prev)/float64(c)
		// Interpolation runs to the bucket's upper bound; never report a
		// quantile above the slowest observation actually seen.
		if max > 0 && est > max {
			est = max
		}
		return est
	}
	return max
}

// Registry is a named collection of metrics with get-or-create
// semantics; lookups take a mutex, so callers on hot paths should hold
// the returned metric rather than re-resolving it per request.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   //cfsf:guarded-by mu
	gauges   map[string]*Gauge     //cfsf:guarded-by mu
	hists    map[string]*Histogram //cfsf:guarded-by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds if needed (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current value in a JSON-marshalable
// shape: {"counters": {name: int}, "gauges": {name: float},
// "histograms": {name: HistogramSnapshot}}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	return map[string]any{"counters": counters, "gauges": gauges, "histograms": hists}
}
