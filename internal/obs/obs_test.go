package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge after balanced adds = %g, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Sum-5050) > 1e-9 {
		t.Errorf("sum = %g, want 5050", s.Sum)
	}
	if s.Max != 100 {
		t.Errorf("max = %g, want 100", s.Max)
	}
	// Uniform 1..100 over decade buckets: the quantile estimate must land
	// within one bucket width of the true value.
	for _, tc := range []struct{ got, want float64 }{
		{s.P50, 50}, {s.P95, 95}, {s.P99, 99},
	} {
		if math.Abs(tc.got-tc.want) > 10 {
			t.Errorf("quantile = %g, want within 10 of %g", tc.got, tc.want)
		}
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not monotonic: %g %g %g", s.P50, s.P95, s.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(100)
	s := h.Snapshot()
	if s.Max != 100 {
		t.Errorf("max = %g, want 100", s.Max)
	}
	if s.P99 < 2 || s.P99 > 100 {
		t.Errorf("overflow p99 = %g, want in (2, 100]", s.P99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i % 97))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name returned different instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same gauge name returned different instances")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []float64{1}) {
		t.Error("same histogram name returned different instances")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Gauge("in_flight").Set(1)
	r.Histogram("latency_ms", nil).Observe(4.2)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	var back struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["requests"] != 3 {
		t.Errorf("requests = %d, want 3", back.Counters["requests"])
	}
	if back.Gauges["in_flight"] != 1 {
		t.Errorf("in_flight = %g, want 1", back.Gauges["in_flight"])
	}
	if back.Histograms["latency_ms"].Count != 1 {
		t.Errorf("latency count = %d, want 1", back.Histograms["latency_ms"].Count)
	}
}

// TestHistogramQuantileMonotoneUnderRace hammers one histogram from N
// goroutines spanning every bucket (including overflow, so the max-based
// interpolation path is exercised) while the main goroutine reads
// snapshots, and asserts the ordering invariant Snapshot promises:
// P50 <= P95 <= P99 <= Max, whatever tear the racing Observes produce.
// Run with -race to also catch unsynchronised access.
func TestHistogramQuantileMonotoneUnderRace(t *testing.T) {
	h := NewHistogram(nil)
	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker value cycle from 0.01ms to far past
			// the last bucket bound; no global PRNG (the point is bucket
			// coverage, not randomness).
			v := 0.01 * float64(w+1)
			for i := 0; ; i++ {
				// Observe before polling stop: even a worker scheduled
				// only after the main loop finished contributes at least
				// one observation, so the final snapshot is never empty.
				h.Observe(v)
				v *= 3
				if v > 50000 {
					v = 0.01 * float64(w+1)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			close(stop)
			wg.Wait()
			t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g max=%g", s.P50, s.P95, s.P99, s.Max)
		}
	}
	close(stop)
	wg.Wait()
	// Quiesced: the summary must also be exact now.
	s := h.Snapshot()
	if s.Count == 0 || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quiesced snapshot inconsistent: %+v", s)
	}
}
