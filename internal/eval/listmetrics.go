package eval

import (
	"math"
	"sort"

	"cfsf/internal/ratings"
)

// List-quality metrics beyond accuracy: catalogue coverage and novelty.
// A recommender that always serves the same blockbusters can score well
// on MAE while being useless as a discovery tool; these metrics quantify
// that axis for the diversity/top-N extension experiments.

// Lists maps each user to their recommended item ids.
type Lists map[int][]int

// CatalogCoverage returns the fraction of the catalogue that appears in
// at least one user's list.
func CatalogCoverage(lists Lists, numItems int) float64 {
	if numItems <= 0 {
		return 0
	}
	seen := map[int]bool{}
	for _, items := range lists {
		for _, i := range items {
			if i >= 0 && i < numItems {
				seen[i] = true
			}
		}
	}
	return float64(len(seen)) / float64(numItems)
}

// Novelty returns the mean self-information −log2(popularity) of the
// recommended items, where popularity is the fraction of users who rated
// the item in the training matrix. Higher = more novel (long-tail)
// recommendations. Items nobody rated are skipped (their popularity is
// undefined).
func Novelty(lists Lists, m *ratings.Matrix) float64 {
	users := float64(m.NumUsers())
	if users == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, items := range lists {
		for _, i := range items {
			if i < 0 || i >= m.NumItems() {
				continue
			}
			raters := len(m.ItemRatings(i))
			if raters == 0 {
				continue
			}
			sum += -math.Log2(float64(raters) / users)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// GiniIndex measures how unevenly recommendations concentrate on items:
// 0 = perfectly even exposure across recommended items, →1 = all
// exposure on a single item. Items never recommended are excluded (use
// CatalogCoverage for that axis).
func GiniIndex(lists Lists) float64 {
	counts := map[int]int{}
	total := 0
	for _, items := range lists {
		for _, i := range items {
			counts[i]++
			total++
		}
	}
	if len(counts) <= 1 || total == 0 {
		return 0
	}
	xs := make([]float64, 0, len(counts))
	for _, c := range counts {
		xs = append(xs, float64(c))
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var cum, weighted float64
	for k, x := range xs {
		cum += x
		weighted += float64(k+1) * x
	}
	// Gini = (2·Σ k·x_k)/(n·Σ x) − (n+1)/n.
	return (2*weighted)/(n*cum) - (n+1)/n
}

// LeaveOneOut builds the classic protocol: for every user with at least
// two ratings, their last rating (by item id, deterministic) is held out
// and everything else is observable. It complements Given-N: instead of
// sparse new users, it measures dense-profile accuracy.
func LeaveOneOut(m *ratings.Matrix) (*ratings.GivenNSplit, error) {
	b := ratings.NewBuilder(m.NumUsers(), m.NumItems())
	b.SetScale(m.MinRating(), m.MaxRating())
	split := &ratings.GivenNSplit{}
	for u := 0; u < m.NumUsers(); u++ {
		row := m.UserRatings(u)
		if len(row) < 2 {
			for _, e := range row {
				b.MustAdd(u, int(e.Index), e.Value)
			}
			continue
		}
		for _, e := range row[:len(row)-1] {
			b.MustAdd(u, int(e.Index), e.Value)
		}
		last := row[len(row)-1]
		split.Targets = append(split.Targets, ratings.Target{
			User: u, Item: int(last.Index), Actual: last.Value,
		})
		split.TestUsers = append(split.TestUsers, u)
	}
	split.Matrix = b.Build()
	return split, nil
}
