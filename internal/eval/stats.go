package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// This file adds the statistical rigour the paper's tables imply but do
// not report: paired significance tests between methods and k-fold
// cross-validation as an alternative to the Given-N protocol.

// TTestResult is a two-sided paired t-test over per-target absolute
// errors.
type TTestResult struct {
	// MeanDiff is mean(|err_a| − |err_b|); negative means method A is
	// more accurate.
	MeanDiff float64
	// T is the t statistic, DF the degrees of freedom.
	T  float64
	DF int
	// P is the two-sided p-value.
	P float64
	// Significant reports P < 0.05.
	Significant bool
}

// PairedTTest runs a two-sided paired t-test on two equal-length samples
// (e.g. per-target absolute errors of two methods). It returns an error
// for mismatched or too-short input.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("eval: paired t-test needs equal lengths, got %d and %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("eval: paired t-test needs >= 2 pairs, got %d", n)
	}
	var mean float64
	for i := range a {
		mean += a[i] - b[i]
	}
	mean /= float64(n)
	var ss float64
	for i := range a {
		d := a[i] - b[i] - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	res := TTestResult{MeanDiff: mean, DF: n - 1}
	if sd == 0 {
		// Identical differences: either exactly zero (no effect) or a
		// constant shift (infinitely significant).
		if mean == 0 {
			res.P = 1
			return res, nil
		}
		res.T = math.Inf(sign(mean))
		res.P = 0
		res.Significant = true
		return res, nil
	}
	res.T = mean / (sd / math.Sqrt(float64(n)))
	res.P = studentTwoSidedP(res.T, float64(res.DF))
	res.Significant = res.P < 0.05
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTwoSidedP computes the two-sided p-value of a t statistic with
// df degrees of freedom via the regularised incomplete beta function:
// P = I_{df/(df+t²)}(df/2, 1/2).
func studentTwoSidedP(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncompleteBeta(df/2, 0.5, x)
}

// regIncompleteBeta computes I_x(a, b) with the continued-fraction
// expansion (Numerical Recipes "betai"/"betacf").
func regIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf is the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Comparison reports a head-to-head evaluation of two methods on the
// same split with a paired significance test on absolute errors.
type Comparison struct {
	MAEA, MAEB float64
	TTest      TTestResult
}

// Compare fits both predictors on the split and tests whether their
// per-target absolute errors differ significantly.
func Compare(a, b Predictor, split *ratings.GivenNSplit, opts Options) (Comparison, error) {
	errsOf := func(p Predictor) ([]float64, float64, error) {
		if err := p.Fit(split.Matrix); err != nil {
			return nil, 0, err
		}
		out := make([]float64, len(split.Targets))
		parallel.For(len(split.Targets), opts.Workers, func(i int) {
			tg := split.Targets[i]
			out[i] = math.Abs(p.Predict(tg.User, tg.Item) - tg.Actual)
		})
		var sum float64
		for _, e := range out {
			sum += e
		}
		return out, sum / float64(len(out)), nil
	}
	errsA, maeA, err := errsOf(a)
	if err != nil {
		return Comparison{}, fmt.Errorf("eval: compare: method A: %w", err)
	}
	errsB, maeB, err := errsOf(b)
	if err != nil {
		return Comparison{}, fmt.Errorf("eval: compare: method B: %w", err)
	}
	tt, err := PairedTTest(errsA, errsB)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{MAEA: maeA, MAEB: maeB, TTest: tt}, nil
}

// Fold is one train/test partition of k-fold cross-validation over
// ratings (not users): the observable matrix omits the fold's ratings,
// which become the targets.
type Fold struct {
	Matrix  *ratings.Matrix
	Targets []ratings.Target
}

// KFold partitions the matrix's ratings into k folds at random
// (seeded). Every rating lands in exactly one fold's target set.
func KFold(m *ratings.Matrix, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if m.NumRatings() < k {
		return nil, fmt.Errorf("eval: %d ratings cannot fill %d folds", m.NumRatings(), k)
	}
	type cell struct {
		u, i int32
		r    float64
	}
	cells := make([]cell, 0, m.NumRatings())
	for u := 0; u < m.NumUsers(); u++ {
		for _, e := range m.UserRatings(u) {
			cells = append(cells, cell{int32(u), e.Index, e.Value})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })

	folds := make([]Fold, k)
	assign := make([]int, len(cells))
	for idx := range cells {
		assign[idx] = idx % k
	}
	for f := 0; f < k; f++ {
		b := ratings.NewBuilder(m.NumUsers(), m.NumItems())
		b.SetScale(m.MinRating(), m.MaxRating())
		for idx, c := range cells {
			if assign[idx] == f {
				folds[f].Targets = append(folds[f].Targets,
					ratings.Target{User: int(c.u), Item: int(c.i), Actual: c.r})
			} else {
				b.MustAdd(int(c.u), int(c.i), c.r)
			}
		}
		folds[f].Matrix = b.Build()
	}
	return folds, nil
}

// CVResult aggregates cross-validation scores.
type CVResult struct {
	FoldMAE []float64
	Mean    float64
	Std     float64
}

// CrossValidate runs k-fold CV: build() must return a fresh unfitted
// predictor per fold.
func CrossValidate(build func() Predictor, m *ratings.Matrix, k int, seed int64, opts Options) (CVResult, error) {
	folds, err := KFold(m, k, seed)
	if err != nil {
		return CVResult{}, err
	}
	var res CVResult
	for fi, fold := range folds {
		p := build()
		if err := p.Fit(fold.Matrix); err != nil {
			return CVResult{}, fmt.Errorf("eval: cv fold %d: %w", fi, err)
		}
		pred := make([]float64, len(fold.Targets))
		truth := make([]float64, len(fold.Targets))
		parallel.For(len(fold.Targets), opts.Workers, func(i int) {
			tg := fold.Targets[i]
			pred[i] = p.Predict(tg.User, tg.Item)
			truth[i] = tg.Actual
		})
		res.FoldMAE = append(res.FoldMAE, MAE(pred, truth))
	}
	for _, v := range res.FoldMAE {
		res.Mean += v
	}
	res.Mean /= float64(len(res.FoldMAE))
	var ss float64
	for _, v := range res.FoldMAE {
		ss += (v - res.Mean) * (v - res.Mean)
	}
	if len(res.FoldMAE) > 1 {
		res.Std = math.Sqrt(ss / float64(len(res.FoldMAE)-1))
	}
	return res, nil
}

// BootstrapCI estimates a confidence interval for the MAE of per-target
// absolute errors by nonparametric bootstrap (resampling targets with
// replacement). level is e.g. 0.95; resamples ~2000 is plenty. The
// estimate is deterministic for a fixed seed.
func BootstrapCI(absErrors []float64, level float64, resamples int, seed int64) (lo, hi float64, err error) {
	if len(absErrors) == 0 {
		return 0, 0, fmt.Errorf("eval: bootstrap needs at least one error")
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("eval: confidence level must be in (0,1), got %g", level)
	}
	if resamples <= 0 {
		resamples = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(absErrors)
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += absErrors[rng.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx], nil
}
