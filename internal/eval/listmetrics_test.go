package eval

import (
	"math"
	"testing"

	"cfsf/internal/ratings"
)

func TestCatalogCoverage(t *testing.T) {
	lists := Lists{
		0: {1, 2},
		1: {2, 3},
	}
	if got := CatalogCoverage(lists, 10); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("coverage = %g, want 0.3", got)
	}
	if got := CatalogCoverage(Lists{}, 10); got != 0 {
		t.Errorf("empty lists coverage = %g, want 0", got)
	}
	if got := CatalogCoverage(lists, 0); got != 0 {
		t.Errorf("zero catalogue coverage = %g, want 0", got)
	}
	// Out-of-range items are ignored.
	if got := CatalogCoverage(Lists{0: {99, -1}}, 10); got != 0 {
		t.Errorf("out-of-range items counted: %g", got)
	}
}

func TestNovelty(t *testing.T) {
	// 4 users; item 0 rated by all (popularity 1 → novelty 0), item 1
	// rated by 1 (popularity 0.25 → novelty 2 bits).
	b := ratings.NewBuilder(4, 2)
	for u := 0; u < 4; u++ {
		b.MustAdd(u, 0, 3)
	}
	b.MustAdd(0, 1, 4)
	m := b.Build()

	if got := Novelty(Lists{0: {0}}, m); math.Abs(got-0) > 1e-12 {
		t.Errorf("blockbuster novelty = %g, want 0", got)
	}
	if got := Novelty(Lists{0: {1}}, m); math.Abs(got-2) > 1e-12 {
		t.Errorf("tail novelty = %g, want 2", got)
	}
	if got := Novelty(Lists{0: {0, 1}}, m); math.Abs(got-1) > 1e-12 {
		t.Errorf("mixed novelty = %g, want 1", got)
	}
}

func TestGiniIndex(t *testing.T) {
	// Perfectly even exposure → 0.
	if got := GiniIndex(Lists{0: {1, 2}, 1: {3, 4}}); math.Abs(got) > 1e-12 {
		t.Errorf("even exposure gini = %g, want 0", got)
	}
	// Concentrated exposure must be far from 0.
	concentrated := GiniIndex(Lists{0: {7, 7, 7, 7, 7, 7, 7, 7, 7, 1}})
	if concentrated < 0.3 {
		t.Errorf("concentrated gini = %g, want >= 0.3", concentrated)
	}
	if got := GiniIndex(Lists{}); got != 0 {
		t.Errorf("empty gini = %g, want 0", got)
	}
}

func TestLeaveOneOut(t *testing.T) {
	b := ratings.NewBuilder(3, 4)
	b.MustAdd(0, 0, 3)
	b.MustAdd(0, 2, 4)
	b.MustAdd(0, 3, 5)
	b.MustAdd(1, 1, 2) // single rating: no target
	b.MustAdd(2, 0, 1)
	b.MustAdd(2, 1, 2)
	m := b.Build()

	split, err := LeaveOneOut(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(split.Targets))
	}
	// User 0's held-out rating is item 3 (last by id).
	if split.Targets[0].User != 0 || split.Targets[0].Item != 3 || split.Targets[0].Actual != 5 {
		t.Errorf("user 0 target = %+v", split.Targets[0])
	}
	// Held-out cells are absent from the observable matrix; the rest stay.
	if _, ok := split.Matrix.Rating(0, 3); ok {
		t.Error("held-out rating leaked")
	}
	if r, ok := split.Matrix.Rating(0, 2); !ok || r != 4 {
		t.Error("kept rating lost")
	}
	if r, ok := split.Matrix.Rating(1, 1); !ok || r != 2 {
		t.Error("single-rating user must keep their rating")
	}
	// The split is usable by the standard evaluator.
	res, err := Evaluate(&meanPredictor{}, split, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MAE) {
		t.Error("LOO evaluation produced NaN")
	}
}
