package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cfsf/internal/ratings"
)

func TestMAE(t *testing.T) {
	got := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if want := (1.0 + 0 + 2) / 3; math.Abs(got-want) > 1e-12 {
		t.Errorf("MAE = %g, want %g", got, want)
	}
}

func TestRMSE(t *testing.T) {
	got := RMSE([]float64{1, 3}, []float64{2, 1})
	if want := math.Sqrt((1.0 + 4) / 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %g, want %g", got, want)
	}
}

func TestMetricEdgeCases(t *testing.T) {
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(RMSE(nil, nil)) {
		t.Error("empty input must yield NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestRMSEAtLeastMAE(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) || math.IsInf(d, 0) {
			return true
		}
		p := []float64{a, b}
		q := []float64{c, d}
		return RMSE(p, q) >= MAE(p, q)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// meanPredictor predicts the global mean of whatever it was fitted on.
type meanPredictor struct{ mean float64 }

func (p *meanPredictor) Fit(m *ratings.Matrix) error {
	p.mean = m.GlobalMean()
	return nil
}
func (p *meanPredictor) Predict(u, i int) float64 { return p.mean }

// oracle knows the full matrix and answers perfectly.
type oracle struct{ full *ratings.Matrix }

func (o *oracle) Fit(*ratings.Matrix) error { return nil }
func (o *oracle) Predict(u, i int) float64 {
	r, _ := o.full.Rating(u, i)
	return r
}

func denseMatrix(p, q int) *ratings.Matrix {
	b := ratings.NewBuilder(p, q)
	for u := 0; u < p; u++ {
		for i := 0; i < q; i++ {
			b.MustAdd(u, i, float64(1+(u*3+i)%5))
		}
	}
	return b.Build()
}

func TestEvaluateOracleHasZeroError(t *testing.T) {
	full := denseMatrix(10, 8)
	split, err := ratings.MLSplit(full, 6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(&oracle{full}, split, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE != 0 || res.RMSE != 0 {
		t.Errorf("oracle MAE=%g RMSE=%g, want 0", res.MAE, res.RMSE)
	}
	if res.NumTargets != len(split.Targets) {
		t.Errorf("NumTargets = %d, want %d", res.NumTargets, len(split.Targets))
	}
}

func TestEvaluateSerialEqualsParallel(t *testing.T) {
	full := denseMatrix(12, 9)
	split, err := ratings.MLSplit(full, 8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Evaluate(&meanPredictor{}, split, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Evaluate(&meanPredictor{}, split, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.MAE != p.MAE || s.RMSE != p.RMSE {
		t.Errorf("serial (%g,%g) != parallel (%g,%g)", s.MAE, s.RMSE, p.MAE, p.RMSE)
	}
}

type failFit struct{}

func (failFit) Fit(*ratings.Matrix) error { return errFit }
func (failFit) Predict(u, i int) float64  { return 0 }

var errFit = &fitError{}

type fitError struct{}

func (*fitError) Error() string { return "fit failed" }

func TestEvaluateFitError(t *testing.T) {
	full := denseMatrix(6, 5)
	split, _ := ratings.MLSplit(full, 4, 2, 1)
	if _, err := Evaluate(failFit{}, split, Options{}); err == nil {
		t.Error("fit error must propagate")
	}
}

func TestResponseTimeCurve(t *testing.T) {
	full := denseMatrix(20, 10)
	split, err := ratings.MLSplit(full, 10, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := &meanPredictor{}
	if err := p.Fit(split.Matrix); err != nil {
		t.Fatal(err)
	}
	curve := ResponseTimeCurve(p, split, []float64{0.2, 0.6, 1.0}, 1)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	if curve[0].Targets >= curve[2].Targets {
		t.Errorf("targets must grow with fraction: %d vs %d", curve[0].Targets, curve[2].Targets)
	}
	if curve[2].Targets != len(split.Targets) {
		t.Errorf("full fraction covers %d targets, want %d", curve[2].Targets, len(split.Targets))
	}
	for _, pt := range curve {
		if pt.Elapsed < 0 || pt.Elapsed > time.Minute {
			t.Errorf("suspicious elapsed %v", pt.Elapsed)
		}
	}
}

func TestSweepAndArgmin(t *testing.T) {
	full := denseMatrix(10, 8)
	split, err := ratings.MLSplit(full, 6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Predictor whose error is |v-3|: best at v=3.
	curve, err := Sweep([]float64{1, 2, 3, 4}, split, Options{}, func(v float64) Predictor {
		return &constPredictor{v}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve len %d, want 4", len(curve))
	}
	param, mae := ArgminMAE(curve)
	if param != 3 {
		t.Errorf("argmin at %g (MAE %g), want 3", param, mae)
	}
}

type constPredictor struct{ v float64 }

func (p *constPredictor) Fit(*ratings.Matrix) error { return nil }
func (p *constPredictor) Predict(u, i int) float64  { return p.v }

func TestSweepPropagatesError(t *testing.T) {
	full := denseMatrix(6, 5)
	split, _ := ratings.MLSplit(full, 4, 2, 1)
	_, err := Sweep([]float64{1}, split, Options{}, func(float64) Predictor { return failFit{} })
	if err == nil {
		t.Error("sweep must propagate fit errors")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Method", "Given5", "Given10")
	tb.AddRow("CFSF", "0.743", "0.721")
	tb.AddRow("SUR", "0.838", "0.814")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "CFSF") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatCurve(t *testing.T) {
	s := FormatCurve([]SweepPoint{{Param: 0.8, MAE: 0.75}, {Param: 0.2, MAE: 0.9}})
	if !strings.HasPrefix(s, "0.2=0.9000") {
		t.Errorf("curve not sorted by param: %q", s)
	}
}
