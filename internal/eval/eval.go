// Package eval implements the evaluation harness of the paper's §V: the
// MAE metric (Eq. 15), the Given-N protocol runner, parameter sweeps and
// the response-time scalability measurement of Fig. 5, plus a small text
// table renderer used by cmd/cfsf-bench to print paper-shaped tables.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// Predictor is the minimal algorithm contract the harness evaluates.
// Fit trains on an observable matrix; Predict must be safe for concurrent
// use after Fit returns.
type Predictor interface {
	// Fit trains the predictor on the observable matrix.
	Fit(m *ratings.Matrix) error
	// Predict returns the estimated rating of user u for item i, already
	// clamped to the matrix's rating scale.
	Predict(u, i int) float64
}

// MAE computes Eq. 15 over parallel slices of predictions and truths.
// It panics if the lengths differ (programmer error) and returns NaN for
// empty input.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: MAE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// RMSE computes the root mean squared error over parallel slices.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: RMSE length mismatch %d vs %d", len(pred), len(truth)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// Result is one completed evaluation.
type Result struct {
	MAE         float64
	RMSE        float64
	NumTargets  int
	FitTime     time.Duration
	PredictTime time.Duration
}

// Options configures Evaluate.
type Options struct {
	// Workers parallelises prediction (<= 0 = GOMAXPROCS; 1 = serial).
	Workers int
}

// Evaluate fits p on the split's observable matrix and predicts every
// held-out target, returning accuracy and timing.
func Evaluate(p Predictor, split *ratings.GivenNSplit, opts Options) (Result, error) {
	var res Result
	t := time.Now()
	if err := p.Fit(split.Matrix); err != nil {
		return res, fmt.Errorf("eval: fit: %w", err)
	}
	res.FitTime = time.Since(t)

	pred := make([]float64, len(split.Targets))
	truth := make([]float64, len(split.Targets))
	t = time.Now()
	parallel.For(len(split.Targets), opts.Workers, func(i int) {
		tg := split.Targets[i]
		pred[i] = p.Predict(tg.User, tg.Item)
		truth[i] = tg.Actual
	})
	res.PredictTime = time.Since(t)
	res.MAE = MAE(pred, truth)
	res.RMSE = RMSE(pred, truth)
	res.NumTargets = len(split.Targets)
	return res, nil
}

// ResponsePoint is one measurement of the Fig. 5 scalability curve.
type ResponsePoint struct {
	// Fraction of the testset used (0.1 .. 1.0).
	Fraction float64
	// Targets predicted at this fraction.
	Targets int
	// Elapsed is the wall-clock online time for all predictions.
	Elapsed time.Duration
}

// ResponseTimeCurve measures online prediction time while the testset
// grows from the given fractions of its full size (paper Fig. 5). The
// predictor must already be fitted; predictions run with the given
// worker count (the paper's setup is single-threaded online, so pass 1
// for paper-shaped numbers).
func ResponseTimeCurve(p Predictor, split *ratings.GivenNSplit, fractions []float64, workers int) []ResponsePoint {
	out := make([]ResponsePoint, 0, len(fractions))
	for _, f := range fractions {
		sub := split.TruncateTargets(f)
		t := time.Now()
		parallel.For(len(sub.Targets), workers, func(i int) {
			tg := sub.Targets[i]
			_ = p.Predict(tg.User, tg.Item)
		})
		out = append(out, ResponsePoint{Fraction: f, Targets: len(sub.Targets), Elapsed: time.Since(t)})
	}
	return out
}

// SweepPoint is one (parameter value, MAE) measurement.
type SweepPoint struct {
	Param float64
	MAE   float64
}

// Sweep evaluates build(v) for every value and returns the MAE curve.
// build returns a fresh, unfitted predictor configured with the value.
func Sweep(values []float64, split *ratings.GivenNSplit, opts Options, build func(v float64) Predictor) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		res, err := Evaluate(build(v), split, opts)
		if err != nil {
			return nil, fmt.Errorf("eval: sweep at %g: %w", v, err)
		}
		out = append(out, SweepPoint{Param: v, MAE: res.MAE})
	}
	return out, nil
}

// ArgminMAE returns the parameter value with the lowest MAE in the curve.
func ArgminMAE(curve []SweepPoint) (param, mae float64) {
	best := math.Inf(1)
	for _, p := range curve {
		if p.MAE < best {
			best, param = p.MAE, p.Param
		}
	}
	return param, best
}

// Table accumulates rows and renders a fixed-width text table whose
// shape matches the paper's tables (methods × Given columns).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// FormatCurve renders a sweep curve as "param=mae" pairs sorted by param,
// for compact logging in benches and the CLI.
func FormatCurve(curve []SweepPoint) string {
	cs := append([]SweepPoint(nil), curve...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Param < cs[j].Param })
	parts := make([]string, len(cs))
	for i, p := range cs {
		parts[i] = fmt.Sprintf("%g=%.4f", p.Param, p.MAE)
	}
	return strings.Join(parts, " ")
}
