package eval

import (
	"math"
	"testing"

	"cfsf/internal/ratings"
)

// rankSplit builds a split with one test user whose held-out items have
// known ratings, so metric values can be computed by hand.
func rankSplit(t *testing.T, heldOut []float64) *ratings.GivenNSplit {
	t.Helper()
	// 2 train users + 1 test user; test user reveals 1 rating and holds
	// out len(heldOut).
	q := 1 + len(heldOut)
	b := ratings.NewBuilder(3, q)
	for i := 0; i < q; i++ {
		b.MustAdd(0, i, 3)
		b.MustAdd(1, i, 4)
	}
	b.MustAdd(2, 0, 3) // the given rating
	for i, r := range heldOut {
		b.MustAdd(2, i+1, r)
	}
	full := b.Build()
	split, err := ratings.MLSplit(full, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return split
}

// itemScorer predicts a fixed score per item.
type itemScorer struct{ score map[int]float64 }

func (s *itemScorer) Fit(*ratings.Matrix) error { return nil }
func (s *itemScorer) Predict(u, i int) float64  { return s.score[i] }

func TestEvaluateRankingPerfect(t *testing.T) {
	// Held-out: items 1..4 with ratings 5,5,1,1. A scorer that ranks the
	// two relevant items first is perfect at N=2.
	split := rankSplit(t, []float64{5, 5, 1, 1})
	p := &itemScorer{score: map[int]float64{1: 0.9, 2: 0.8, 3: 0.2, 4: 0.1}}
	res := EvaluateRanking(p, split, RankingOptions{N: 2})
	if res.Users != 1 {
		t.Fatalf("users = %d, want 1", res.Users)
	}
	if res.PrecisionAtN != 1 || res.RecallAtN != 1 || math.Abs(res.NDCGAtN-1) > 1e-12 {
		t.Errorf("perfect ranker scored P=%g R=%g N=%g, want 1,1,1",
			res.PrecisionAtN, res.RecallAtN, res.NDCGAtN)
	}
}

func TestEvaluateRankingWorst(t *testing.T) {
	split := rankSplit(t, []float64{5, 5, 1, 1})
	p := &itemScorer{score: map[int]float64{1: 0.1, 2: 0.2, 3: 0.8, 4: 0.9}}
	res := EvaluateRanking(p, split, RankingOptions{N: 2})
	if res.PrecisionAtN != 0 || res.RecallAtN != 0 || res.NDCGAtN != 0 {
		t.Errorf("worst ranker scored P=%g R=%g N=%g, want zeros",
			res.PrecisionAtN, res.RecallAtN, res.NDCGAtN)
	}
}

func TestEvaluateRankingPartial(t *testing.T) {
	// Top-2 contains one of two relevant items → P=0.5, R=0.5.
	split := rankSplit(t, []float64{5, 5, 1, 1})
	p := &itemScorer{score: map[int]float64{1: 0.9, 3: 0.8, 2: 0.2, 4: 0.1}}
	res := EvaluateRanking(p, split, RankingOptions{N: 2})
	if math.Abs(res.PrecisionAtN-0.5) > 1e-12 || math.Abs(res.RecallAtN-0.5) > 1e-12 {
		t.Errorf("P=%g R=%g, want 0.5, 0.5", res.PrecisionAtN, res.RecallAtN)
	}
	// DCG = 1/log2(2) = 1 at rank 1; IDCG = 1/log2(2) + 1/log2(3).
	wantNDCG := 1.0 / (1 + 1/math.Log2(3))
	if math.Abs(res.NDCGAtN-wantNDCG) > 1e-12 {
		t.Errorf("NDCG = %g, want %g", res.NDCGAtN, wantNDCG)
	}
}

func TestEvaluateRankingNoRelevantUsersSkipped(t *testing.T) {
	split := rankSplit(t, []float64{2, 1, 3, 2})
	p := &itemScorer{score: map[int]float64{}}
	res := EvaluateRanking(p, split, RankingOptions{N: 2})
	if res.Users != 0 {
		t.Errorf("users = %d, want 0 when nothing is relevant", res.Users)
	}
}

func TestEvaluateRankingDefaults(t *testing.T) {
	split := rankSplit(t, []float64{5, 1})
	p := &itemScorer{score: map[int]float64{1: 1, 2: 0}}
	res := EvaluateRanking(p, split, RankingOptions{})
	if res.N != 10 {
		t.Errorf("default N = %d, want 10", res.N)
	}
	// With N=10 > pool, precision = hits/pool-size.
	if math.Abs(res.PrecisionAtN-0.5) > 1e-12 {
		t.Errorf("precision %g, want 0.5 (1 relevant of 2 candidates)", res.PrecisionAtN)
	}
}

func TestEvaluateRankingParallelDeterministic(t *testing.T) {
	split := rankSplit(t, []float64{5, 5, 1, 1, 4, 2})
	p := &itemScorer{score: map[int]float64{1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1}}
	a := EvaluateRanking(p, split, RankingOptions{N: 3, Workers: 1})
	b := EvaluateRanking(p, split, RankingOptions{N: 3, Workers: 8})
	if a != b {
		t.Errorf("worker counts disagree: %+v vs %+v", a, b)
	}
}
