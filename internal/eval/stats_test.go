package eval

import (
	"math"
	"math/rand"
	"testing"

	"cfsf/internal/ratings"
)

func TestPairedTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.Significant {
		t.Errorf("identical samples: P=%g significant=%v, want P=1", res.P, res.Significant)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 3, 4, 5}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.P != 0 {
		t.Errorf("constant shift must be maximally significant, got %+v", res)
	}
	if res.MeanDiff != -1 {
		t.Errorf("mean diff %g, want -1", res.MeanDiff)
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + 0.5 + rng.NormFloat64()*0.1
		b[i] = base + rng.NormFloat64()*0.1
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.P > 1e-6 {
		t.Errorf("0.5σ-shifted samples not significant: %+v", res)
	}
	if res.MeanDiff < 0.4 || res.MeanDiff > 0.6 {
		t.Errorf("mean diff %g, want ≈0.5", res.MeanDiff)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("independent noise flagged significant at p=%g", res.P)
	}
}

func TestPairedTTestValidation(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("n < 2 must error")
	}
}

// TestStudentPKnownValues cross-checks the t CDF against table values.
func TestStudentPKnownValues(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{2.228, 10, 0.05},  // t_{0.975,10}
		{1.96, 1e6, 0.05},  // normal limit
		{2.086, 20, 0.05},  // t_{0.975,20}
		{2.845, 20, 0.010}, // t_{0.995,20}
	}
	for _, c := range cases {
		got := studentTwoSidedP(c.t, c.df)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("P(|T|>%g, df=%g) = %.4f, want %.3f", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncompleteBetaEdges(t *testing.T) {
	if regIncompleteBeta(2, 3, 0) != 0 || regIncompleteBeta(2, 3, 1) != 1 {
		t.Error("incomplete beta edges wrong")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncompleteBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := regIncompleteBeta(2.5, 4, 0.3) + regIncompleteBeta(4, 2.5, 0.7); math.Abs(got-1) > 1e-10 {
		t.Errorf("symmetry violated: %g", got)
	}
}

func TestCompare(t *testing.T) {
	full := denseMatrix(12, 10)
	split, err := ratings.MLSplit(full, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle vs global mean: the oracle must be significantly better.
	cmp, err := Compare(&oracle{full}, &meanPredictor{}, split, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MAEA != 0 {
		t.Errorf("oracle MAE %g, want 0", cmp.MAEA)
	}
	if !cmp.TTest.Significant || cmp.TTest.MeanDiff >= 0 {
		t.Errorf("oracle not significantly better: %+v", cmp.TTest)
	}
}

func TestKFoldPartition(t *testing.T) {
	full := denseMatrix(10, 8)
	folds, err := KFold(full, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("folds = %d, want 4", len(folds))
	}
	total := 0
	seen := map[[2]int]int{}
	for _, f := range folds {
		total += len(f.Targets)
		if f.Matrix.NumRatings()+len(f.Targets) != full.NumRatings() {
			t.Fatalf("fold does not partition: %d + %d != %d",
				f.Matrix.NumRatings(), len(f.Targets), full.NumRatings())
		}
		for _, tg := range f.Targets {
			seen[[2]int{tg.User, tg.Item}]++
			// Target value must match the full matrix and be absent from
			// the fold's training matrix.
			want, _ := full.Rating(tg.User, tg.Item)
			if tg.Actual != want {
				t.Fatalf("target value %g, want %g", tg.Actual, want)
			}
			if _, ok := f.Matrix.Rating(tg.User, tg.Item); ok {
				t.Fatal("target leaked into training matrix")
			}
		}
	}
	if total != full.NumRatings() {
		t.Fatalf("targets cover %d ratings, want %d", total, full.NumRatings())
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("cell %v in %d folds", k, n)
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	full := denseMatrix(4, 3)
	if _, err := KFold(full, 1, 1); err == nil {
		t.Error("k < 2 must error")
	}
	tiny := ratings.NewBuilder(2, 2)
	tiny.MustAdd(0, 0, 3)
	if _, err := KFold(tiny.Build(), 5, 1); err == nil {
		t.Error("more folds than ratings must error")
	}
}

func TestKFoldDeterministicBySeed(t *testing.T) {
	full := denseMatrix(8, 6)
	a, _ := KFold(full, 3, 42)
	b, _ := KFold(full, 3, 42)
	for f := range a {
		if len(a[f].Targets) != len(b[f].Targets) {
			t.Fatal("same seed produced different folds")
		}
		for i := range a[f].Targets {
			if a[f].Targets[i] != b[f].Targets[i] {
				t.Fatal("same seed produced different fold contents")
			}
		}
	}
}

func TestCrossValidate(t *testing.T) {
	full := denseMatrix(10, 8)
	res, err := CrossValidate(func() Predictor { return &meanPredictor{} }, full, 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldMAE) != 4 {
		t.Fatalf("fold scores = %d, want 4", len(res.FoldMAE))
	}
	if res.Mean <= 0 || math.IsNaN(res.Std) {
		t.Errorf("implausible CV summary: %+v", res)
	}
	// Oracle-like predictor: CV error must be 0... the mean predictor is
	// not an oracle, but the oracle needs the full matrix:
	oracleRes, err := CrossValidate(func() Predictor { return &oracle{full} }, full, 4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if oracleRes.Mean != 0 || oracleRes.Std != 0 {
		t.Errorf("oracle CV MAE %g ± %g, want 0", oracleRes.Mean, oracleRes.Std)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	errs := make([]float64, 2000)
	var sum float64
	for i := range errs {
		errs[i] = math.Abs(rng.NormFloat64())*0.3 + 0.7
		sum += errs[i]
	}
	mean := sum / float64(len(errs))
	lo, hi, err := BootstrapCI(errs, 0.95, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < mean && mean < hi) {
		t.Errorf("CI [%g, %g] does not bracket the mean %g", lo, hi, mean)
	}
	if hi-lo > 0.1 {
		t.Errorf("CI width %g implausibly wide for n=2000", hi-lo)
	}
	// Deterministic for the same seed.
	lo2, hi2, _ := BootstrapCI(errs, 0.95, 1000, 1)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic for fixed seed")
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	if _, _, err := BootstrapCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty input must error")
	}
	if _, _, err := BootstrapCI([]float64{1}, 1.5, 100, 1); err == nil {
		t.Error("bad level must error")
	}
}
