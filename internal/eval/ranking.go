package eval

import (
	"math"
	"sort"

	"cfsf/internal/parallel"
	"cfsf/internal/ratings"
)

// The paper evaluates rating accuracy (MAE) only; a production
// recommender also cares how well the *ranking* of unseen items matches
// user taste. This file adds the standard top-N metrics so the library's
// extension experiments (EXPERIMENTS.md "beyond the paper") can compare
// CFSF and the baselines as rankers.

// RankingResult aggregates top-N metrics over a set of test users.
type RankingResult struct {
	// PrecisionAtN is the mean fraction of recommended items that are
	// relevant (held-out rating >= the relevance threshold).
	PrecisionAtN float64
	// RecallAtN is the mean fraction of each user's relevant held-out
	// items that appear in the recommendations.
	RecallAtN float64
	// NDCGAtN is the mean normalised discounted cumulative gain with
	// binary relevance.
	NDCGAtN float64
	// Users is how many test users had at least one relevant held-out
	// item (only they enter the averages).
	Users int
	// N is the list length used.
	N int
}

// RankingOptions configures EvaluateRanking.
type RankingOptions struct {
	// N is the recommendation list length (default 10).
	N int
	// RelevanceThreshold marks a held-out rating as relevant (default 4
	// on the 1..5 scale).
	RelevanceThreshold float64
	// Workers parallelises over users (<= 0 = GOMAXPROCS).
	Workers int
}

// EvaluateRanking measures Precision@N, Recall@N and NDCG@N for a fitted
// predictor on a Given-N split. For every test user, the candidate pool
// is that user's held-out items (the standard "rated-pool" protocol:
// candidates with known ground truth); the predictor ranks them and the
// top N are scored against the relevance labels.
func EvaluateRanking(p Predictor, split *ratings.GivenNSplit, opts RankingOptions) RankingResult {
	n := opts.N
	if n <= 0 {
		n = 10
	}
	thr := opts.RelevanceThreshold
	if thr == 0 {
		thr = 4
	}

	// Group targets per user.
	perUser := map[int][]ratings.Target{}
	for _, tg := range split.Targets {
		perUser[tg.User] = append(perUser[tg.User], tg)
	}
	users := make([]int, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Ints(users)

	type acc struct {
		precision, recall, ndcg float64
		users                   int
	}
	parts := parallel.MapReduce(len(users), opts.Workers, func() acc { return acc{} }, func(a acc, k int) acc {
		u := users[k]
		targets := perUser[u]
		relevant := 0
		for _, tg := range targets {
			if tg.Actual >= thr {
				relevant++
			}
		}
		if relevant == 0 {
			return a
		}
		// Rank the user's held-out items by predicted score.
		type scored struct {
			item int
			pred float64
			rel  bool
		}
		list := make([]scored, len(targets))
		for i, tg := range targets {
			list[i] = scored{tg.Item, p.Predict(u, tg.Item), tg.Actual >= thr}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].pred != list[j].pred {
				return list[i].pred > list[j].pred
			}
			return list[i].item < list[j].item
		})
		top := n
		if top > len(list) {
			top = len(list)
		}
		hits := 0
		dcg := 0.0
		for i := 0; i < top; i++ {
			if list[i].rel {
				hits++
				dcg += 1 / math.Log2(float64(i)+2)
			}
		}
		ideal := 0.0
		idealHits := relevant
		if idealHits > top {
			idealHits = top
		}
		for i := 0; i < idealHits; i++ {
			ideal += 1 / math.Log2(float64(i)+2)
		}
		a.precision += float64(hits) / float64(top)
		a.recall += float64(hits) / float64(relevant)
		if ideal > 0 {
			a.ndcg += dcg / ideal
		}
		a.users++
		return a
	})

	var total acc
	for _, p := range parts {
		total.precision += p.precision
		total.recall += p.recall
		total.ndcg += p.ndcg
		total.users += p.users
	}
	res := RankingResult{Users: total.users, N: n}
	if total.users > 0 {
		res.PrecisionAtN = total.precision / float64(total.users)
		res.RecallAtN = total.recall / float64(total.users)
		res.NDCGAtN = total.ndcg / float64(total.users)
	}
	return res
}
