package wal

import (
	"errors"
	"testing"
	"time"
)

// drainCursor pulls frames until the cursor reports caught-up, decoding
// every frame back into records.
func drainCursor(t *testing.T, c *Cursor) []Record {
	t.Helper()
	var recs []Record
	for {
		buf, n, err := c.Next(nil, 1<<20)
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		if n == 0 {
			return recs
		}
		got := decodeAll(t, buf)
		if len(got) != n {
			t.Fatalf("chunk decoded %d records, cursor reported %d", len(got), n)
		}
		recs = append(recs, got...)
	}
}

func decodeAll(t *testing.T, buf []byte) []Record {
	t.Helper()
	var recs []Record
	for len(buf) > 0 {
		rec, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode frame at tail %d: %v", len(buf), err)
		}
		recs = append(recs, rec)
		buf = buf[n:]
	}
	return recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCursorMatchesReplayEveryAfterSeq is the boundary matrix: over a
// log with a deduped compacted base, several sealed segments, and a live
// tail, every single starting position either streams the exact record
// sequence Replay delivers or refuses with ErrRebootstrap — and which of
// the two happens is fully determined by the published floors
// (DedupedBelow, AvailableFrom). Segment seams, the base/segment
// boundary, and the log end all fall out of the exhaustive sweep.
func TestCursorMatchesReplayEveryAfterSeq(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	defer w.Close()

	covered := fillBatches(t, w, 12)
	horizon := uint64(9)
	if _, err := w.Compact(covered, horizon, false); err != nil {
		t.Fatal(err)
	}
	// Keep growing after compaction so the cursor crosses base → sealed
	// segments → active segment.
	fillBatches(t, w, 8)

	db, af, last := w.DedupedBelow(), w.AvailableFrom(), w.LastSeq()
	if db == 0 {
		t.Fatal("compaction did not record a dedupe horizon; matrix would be vacuous")
	}
	for after := uint64(0); after <= last; after++ {
		cur, err := w.NewCursor(after)
		if after+1 <= db || after+1 < af {
			if !errors.Is(err, ErrRebootstrap) {
				t.Fatalf("after=%d (db=%d af=%d): err = %v, want ErrRebootstrap", after, db, af, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("after=%d: NewCursor: %v", after, err)
		}
		got := drainCursor(t, cur)
		want := collect(t, w, after)
		if !sameRecords(got, want) {
			t.Fatalf("after=%d: cursor delivered %d records, replay %d (or contents differ)", after, len(got), len(want))
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// One past the end is not a valid position: a follower claiming a
	// future sequence has a divergent log and must re-bootstrap.
	if _, err := w.NewCursor(last + 1); !errors.Is(err, ErrRebootstrap) {
		t.Fatalf("cursor beyond end: err = %v, want ErrRebootstrap", err)
	}
}

// TestCursorFollowsMidStreamAppends exercises the tail-follow handshake:
// arm the append signal, confirm the cursor is caught up, append, and
// the armed channel plus a fresh Next deliver exactly the new records.
func TestCursorFollowsMidStreamAppends(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	defer w.Close()
	fillBatches(t, w, 3)

	cur, err := w.NewCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := drainCursor(t, cur); len(got) == 0 {
		t.Fatal("initial drain delivered nothing")
	}

	sig, lastAtArm := w.AppendSignal()
	if cur.NextSeq() != lastAtArm+1 {
		t.Fatalf("drained cursor at %d, log end %d", cur.NextSeq(), lastAtArm)
	}
	if buf, n, err := cur.Next(nil, 1<<20); err != nil || n != 0 || len(buf) != 0 {
		t.Fatalf("caught-up cursor returned n=%d err=%v", n, err)
	}

	seq, err := w.AppendRating(upd(99), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatchCommit(seq, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(2 * time.Second):
		t.Fatal("append signal never fired")
	}
	got := drainCursor(t, cur)
	if len(got) != 2 || got[0].Type != RecordRating || got[0].Seq != seq || got[1].Type != RecordBatchCommit {
		t.Fatalf("tail records = %+v, want the appended rating+commit", got)
	}
}

// TestCursorCompactionRaceRebootstraps races a live stream against a
// dedupe pass: once compaction rewrites records under a horizon at or
// past the cursor position, the very next read refuses with
// ErrRebootstrap — never a silent gap or a regrouped batch.
func TestCursorCompactionRaceRebootstraps(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	defer w.Close()
	covered := fillBatches(t, w, 10)

	cur, err := w.NewCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Read a little, then let compaction dedupe everything delivered so
	// far and more.
	buf, n, err := cur.Next(nil, 64)
	if err != nil || n == 0 {
		t.Fatalf("first chunk: n=%d err=%v", n, err)
	}
	_ = buf

	if _, err := w.Compact(covered, covered, false); err != nil {
		t.Fatal(err)
	}
	if db := w.DedupedBelow(); db < cur.NextSeq() {
		t.Fatalf("test setup: horizon %d did not pass cursor position %d", db, cur.NextSeq())
	}
	if _, _, err := cur.Next(nil, 1<<20); !errors.Is(err, ErrRebootstrap) {
		t.Fatalf("post-compaction next: err = %v, want ErrRebootstrap", err)
	}
}

// TestCursorPruneRaceRebootstraps covers the other floor: a prune that
// removes covered segments out from under an un-started position.
func TestCursorPruneRaceRebootstraps(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	defer w.Close()
	covered := fillBatches(t, w, 10)

	cur, err := w.NewCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := w.Prune(covered); err != nil {
		t.Fatal(err)
	}
	if af := w.AvailableFrom(); af <= 1 {
		t.Fatalf("test setup: prune kept the log start (available from %d)", af)
	}
	if _, _, err := cur.Next(nil, 1<<20); !errors.Is(err, ErrRebootstrap) {
		t.Fatalf("post-prune next: err = %v, want ErrRebootstrap", err)
	}
}

// TestCursorStreamsAcrossRotation starts a cursor, then appends enough
// to rotate segments several times mid-stream; the cursor must deliver
// every record exactly once across the seams.
func TestCursorStreamsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	defer w.Close()
	fillBatches(t, w, 2)

	cur, err := w.NewCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	got := drainCursor(t, cur)

	// Rotations happen while the cursor holds an open handle on the
	// then-active segment.
	fillBatches(t, w, 15)
	got = append(got, drainCursor(t, cur)...)

	want := collect(t, w, 0)
	if !sameRecords(got, want) {
		t.Fatalf("streamed %d records across rotations, replay has %d (or contents differ)", len(got), len(want))
	}
}
