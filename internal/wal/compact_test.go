package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsf/internal/core"
)

// smallSeg returns options with tiny segments so a handful of appends
// rotates several times.
func smallSeg() Options { return Options{SegmentBytes: 256} }

// fillBatches appends n singleton batches (rating + commit) and a
// checkpoint covering all of them, returning the last rating sequence.
func fillBatches(t *testing.T, w *WAL, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 1; i <= n; i++ {
		seq, err := w.AppendRating(upd(i), i%3)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
		if _, err := w.AppendBatchCommit(seq, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.AppendCheckpoint(last); err != nil {
		t.Fatal(err)
	}
	return last
}

func baseFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), basePrefix) && strings.HasSuffix(e.Name(), baseSuffix) {
			names = append(names, e.Name())
		}
	}
	return names
}

func TestCompactFoldsSegmentsAndReplayIsIdentical(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	last := fillBatches(t, w, 20)
	ckptSeq := w.LastSeq()

	before := collect(t, w, 0)
	segsBefore := w.Stats().Segments
	if segsBefore < 3 {
		t.Fatalf("want several segments, got %d", segsBefore)
	}

	// Horizon 0: nothing below it, so compaction must preserve every
	// rating and commit — replay must be byte-identical record-for-record.
	st, err := w.Compact(last, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsFolded == 0 {
		t.Fatal("no segments folded")
	}
	if st.DroppedCells != 0 || st.DroppedCommits != 0 {
		t.Fatalf("horizon 0 dropped records: %+v", st)
	}
	after := collect(t, w, 0)
	if len(after) != len(before) {
		t.Fatalf("replay length changed: %d != %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d changed: %+v != %+v", i, before[i], after[i])
		}
	}

	// The log still appends and reopens cleanly after compaction.
	if _, err := w.AppendRating(upd(99), 0); err != nil {
		t.Fatal(err)
	}
	wantLast := ckptSeq + 1
	if got := w.LastSeq(); got != wantLast {
		t.Fatalf("LastSeq after compact+append = %d, want %d", got, wantLast)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir, smallSeg())
	defer w2.Close()
	again := collect(t, w2, 0)
	if len(again) != len(before)+1 {
		t.Fatalf("reopened replay has %d records, want %d", len(again), len(before)+1)
	}
	if got := w2.Stats(); got.BaseToSeq == 0 || got.BaseRecords == 0 {
		t.Fatalf("reopened stats lost the base: %+v", got)
	}
}

func TestCompactDedupesBelowHorizon(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	// Write the same cell many times across many batches.
	var last uint64
	for i := 0; i < 12; i++ {
		seq, err := w.AppendRating(core.RatingUpdate{User: 1, Item: 2, Value: float64(i % 5)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
		if _, err := w.AppendBatchCommit(seq, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.AppendCheckpoint(last); err != nil {
		t.Fatal(err)
	}
	horizon := w.LastSeq() // everything so far is below the retained point
	// Seal the tail with distinct-cell filler so every write of the hot
	// cell is in a foldable segment (the active segment never folds).
	for i := 0; i < 20; i++ {
		if _, err := w.AppendRating(upd(i+10), 0); err != nil {
			t.Fatal(err)
		}
	}

	st, err := w.Compact(w.LastSeq(), horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedCells != 11 {
		t.Fatalf("dropped %d superseded cells, want 11", st.DroppedCells)
	}
	if st.DroppedCommits == 0 {
		t.Fatal("no below-horizon commits dropped")
	}
	recs := collect(t, w, 0)
	// Survivors below the horizon: the final write of the hot cell plus
	// the latest checkpoint; the filler above the horizon is untouched.
	var hotRatings, commits, ckpts int
	var keptValue float64
	for _, r := range recs {
		switch r.Type {
		case RecordRating:
			if r.Update.User == 1 && r.Update.Item == 2 {
				hotRatings++
				keptValue = r.Update.Value
			}
		case RecordBatchCommit:
			commits++
		case RecordCheckpoint:
			ckpts++
		}
	}
	if hotRatings != 1 || ckpts != 1 {
		t.Fatalf("survivors: %d hot ratings, %d checkpoints (want 1, 1); commits=%d", hotRatings, ckpts, commits)
	}
	if keptValue != float64(11%5) {
		t.Fatalf("kept value %g, want the last writer %g", keptValue, float64(11%5))
	}

	// Replay from the horizon must see only the filler appended above it.
	for _, r := range collect(t, w, horizon) {
		if r.Type == RecordRating && r.Update.User == 1 && r.Update.Item == 2 {
			t.Fatal("hot-cell record above the horizon")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactTimestampPresenceGuard(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	// Timed write superseded by an untimed one: both must survive a
	// below-horizon dedupe, or replay would lose timestamp presence.
	if _, err := w.AppendRating(core.RatingUpdate{User: 1, Item: 2, Value: 3, Time: 777}, 0); err != nil {
		t.Fatal(err)
	}
	seq, err := w.AppendRating(core.RatingUpdate{User: 1, Item: 2, Value: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatchCommit(seq, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCheckpoint(seq); err != nil {
		t.Fatal(err)
	}
	horizon := w.LastSeq()
	// Force a rotation so the records are in a sealed, foldable segment
	// (filler cells are distinct from the hot cell).
	for i := 0; i < 8; i++ {
		if _, err := w.AppendRating(upd(i+10), 0); err != nil {
			t.Fatal(err)
		}
	}

	st, err := w.Compact(w.LastSeq(), horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedCells != 0 {
		t.Fatalf("dropped a timed write superseded by an untimed one: %+v", st)
	}
	var vals []float64
	for _, r := range collect(t, w, 0) {
		if r.Type == RecordRating && r.Update.User == 1 && r.Update.Item == 2 {
			vals = append(vals, r.Update.Value)
		}
	}
	if len(vals) != 2 || vals[0] != 3 || vals[1] != 4 {
		t.Fatalf("cell history = %v, want [3 4]", vals)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactWithinBatchDedupeAboveHorizon(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	// One batch writing the same cell twice, above the horizon: the
	// earlier write is dead (the matrix builder keeps the later
	// duplicate), the batch commit must survive.
	if _, err := w.AppendRating(core.RatingUpdate{User: 5, Item: 6, Value: 1}, 1); err != nil {
		t.Fatal(err)
	}
	seq, err := w.AppendRating(core.RatingUpdate{User: 5, Item: 6, Value: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatchCommit(seq, 1); err != nil {
		t.Fatal(err)
	}
	// A cross-batch duplicate above the horizon must NOT be deduped.
	seq2, err := w.AppendRating(core.RatingUpdate{User: 5, Item: 6, Value: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatchCommit(seq2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCheckpoint(seq2); err != nil {
		t.Fatal(err)
	}
	ckptSeq := w.LastSeq()
	for i := 0; i < 8; i++ { // seal the segment with distinct cells
		if _, err := w.AppendRating(upd(i+10), 0); err != nil {
			t.Fatal(err)
		}
	}

	st, err := w.Compact(ckptSeq, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedCells != 1 {
		t.Fatalf("dropped %d cells, want exactly the within-batch duplicate", st.DroppedCells)
	}
	var vals []float64
	commits := 0
	for _, r := range collect(t, w, 0) {
		if r.Type == RecordRating && r.Update.User == 5 {
			vals = append(vals, r.Update.Value)
		}
		if r.Type == RecordBatchCommit {
			commits++
		}
	}
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 3 {
		t.Fatalf("cell history = %v, want [2 3]", vals)
	}
	if commits != 2 {
		t.Fatalf("commit records = %d, want 2 (batch structure preserved)", commits)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactCrashBeforeGCRecovers(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	last := fillBatches(t, w, 15)
	before := collect(t, w, 0)
	if _, err := w.Compact(last, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: re-create a folded segment (as if GC
	// never ran) plus a stale older base, then reopen.
	if err := writeSegmentHeader(filepath.Join(dir, segName(1)), 1); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, baseName(1))
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a temp-file leftover.
	if err := os.WriteFile(filepath.Join(dir, "base-00.cwal.tmp-123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, smallSeg())
	defer w2.Close()
	after := collect(t, w2, 0)
	if len(after) != len(before) {
		t.Fatalf("replay after crash-window cleanup: %d records, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("record %d differs after cleanup", i)
		}
	}
	if names := baseFiles(t, dir); len(names) != 1 {
		t.Fatalf("base files after cleanup: %v, want exactly one", names)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale base not removed")
	}
}

func TestCompactForceReFoldsBaseAlone(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	// Same cell across batches; first compact with horizon 0 keeps all.
	var last uint64
	for i := 0; i < 10; i++ {
		seq, err := w.AppendRating(core.RatingUpdate{User: 3, Item: 4, Value: float64(i)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
		if _, err := w.AppendBatchCommit(seq, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.AppendCheckpoint(last); err != nil {
		t.Fatal(err)
	}
	horizon := w.LastSeq()
	for i := 0; i < 8; i++ { // seal the tail so every hot-cell write folds
		if _, err := w.AppendRating(upd(i+10), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Compact(w.LastSeq(), 0, false); err != nil {
		t.Fatal(err)
	}
	recsBefore := len(collect(t, w, 0))

	// No new foldable segments: a plain pass is a no-op, a forced pass
	// re-folds the base under the advanced horizon.
	st, err := w.Compact(w.LastSeq(), horizon, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordsIn != 0 || st.RecordsOut != 0 {
		t.Fatalf("unforced pass did work: %+v", st)
	}
	st, err = w.Compact(w.LastSeq(), horizon, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedCells != 9 {
		t.Fatalf("forced re-fold dropped %d cells, want 9", st.DroppedCells)
	}
	if got := len(collect(t, w, 0)); got >= recsBefore {
		t.Fatalf("record count did not shrink: %d -> %d", recsBefore, got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Survives reopen.
	w2 := mustOpen(t, dir, smallSeg())
	defer w2.Close()
	if got := w2.Stats().BaseRecords; got == 0 {
		t.Fatal("base lost after reopen")
	}
}

func TestAvailableFrom(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, smallSeg())
	if got := w.AvailableFrom(); got != 1 {
		t.Fatalf("fresh log AvailableFrom = %d, want 1", got)
	}
	last := fillBatches(t, w, 15)
	if got := w.AvailableFrom(); got != 1 {
		t.Fatalf("unpruned AvailableFrom = %d, want 1", got)
	}
	// Compaction folds history into the base but keeps availability.
	if _, err := w.Compact(last, 0, false); err != nil {
		t.Fatal(err)
	}
	if got := w.AvailableFrom(); got != 1 {
		t.Fatalf("post-compact AvailableFrom = %d, want 1", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Pruning (no compaction) advances it.
	dir2 := t.TempDir()
	w2 := mustOpen(t, dir2, smallSeg())
	last2 := fillBatches(t, w2, 15)
	if _, err := w2.Prune(last2); err != nil {
		t.Fatal(err)
	}
	if got := w2.AvailableFrom(); got <= 1 {
		t.Fatalf("post-prune AvailableFrom = %d, want > 1", got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
