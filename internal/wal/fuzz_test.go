package wal

import (
	"bytes"
	"testing"

	"cfsf/internal/core"
)

// FuzzWALDecode feeds the record decoder arbitrary (and corrupted)
// bytes: it must never panic, and anything it accepts must re-encode to
// exactly the bytes it consumed — which means the CRC, length, and every
// payload field were validated, never fabricated.
func FuzzWALDecode(f *testing.F) {
	seed := func(rec Record) []byte { return appendRecord(nil, rec) }
	f.Add(seed(Record{Type: RecordRating, Seq: 1, Update: core.RatingUpdate{User: 3, Item: 7, Value: 4.5, Time: 99}}))
	f.Add(seed(Record{Type: RecordBatchCommit, Seq: 2, Covered: 1}))
	f.Add(seed(Record{Type: RecordCheckpoint, Seq: 3, Covered: 2}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A valid rating with one flipped payload byte (CRC must catch it).
	r := seed(Record{Type: RecordRating, Seq: 9, Update: core.RatingUpdate{User: 1, Item: 2, Value: 3, Time: 4}})
	r[len(r)-1] ^= 0x01
	f.Add(r)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n <= frameHeaderSize || n > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(data))
		}
		round := appendRecord(nil, rec)
		if !bytes.Equal(round, data[:n]) {
			t.Fatalf("decoded record does not re-encode to its own bytes:\n in  %x\n out %x", data[:n], round)
		}
	})
}
