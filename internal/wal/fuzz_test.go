package wal

import (
	"bytes"
	"testing"

	"cfsf/internal/core"
)

// FuzzWALDecode feeds the record decoder arbitrary (and corrupted)
// bytes: it must never panic, and anything it accepts must survive an
// encode/decode round trip unchanged — which means the CRC, length, and
// every payload field were validated, never fabricated. Current-format
// frames must additionally re-encode byte-for-byte; legacy (pre-shard)
// frames re-encode to the wider current layout, so for them only the
// decoded Record is compared.
func FuzzWALDecode(f *testing.F) {
	seed := func(rec Record) []byte { return appendRecord(nil, rec) }
	f.Add(seed(Record{Type: RecordRating, Seq: 1, Update: core.RatingUpdate{User: 3, Item: 7, Value: 4.5, Time: 99}, Shard: 4}))
	f.Add(seed(Record{Type: RecordBatchCommit, Seq: 2, Covered: 1, Shard: -1}))
	f.Add(seed(Record{Type: RecordCheckpoint, Seq: 3, Covered: 2}))
	f.Add(legacyFrame(Record{Type: RecordRating, Seq: 4, Update: core.RatingUpdate{User: 1, Item: 2, Value: 3.5, Time: 6}}))
	f.Add(legacyFrame(Record{Type: RecordBatchCommit, Seq: 5, Covered: 4}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A valid rating with one flipped payload byte (CRC must catch it).
	r := seed(Record{Type: RecordRating, Seq: 9, Update: core.RatingUpdate{User: 1, Item: 2, Value: 3, Time: 4}})
	r[len(r)-1] ^= 0x01
	f.Add(r)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n <= frameHeaderSize || n > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(data))
		}
		round := appendRecord(nil, rec)
		rec2, n2, err := decodeRecord(round)
		if err != nil || n2 != len(round) || rec2 != rec {
			t.Fatalf("re-encoded record does not round-trip: %+v -> %x -> %+v (%v)", rec, round, rec2, err)
		}
		if len(round) == n && !bytes.Equal(round, data[:n]) {
			t.Fatalf("same-size record does not re-encode to its own bytes:\n in  %x\n out %x", data[:n], round)
		}
	})
}
