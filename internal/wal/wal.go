package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cfsf/internal/core"
)

// SyncPolicy selects when appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged rating is
	// ever lost, at the cost of one fsync per /rate.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a periodic background Sync call (the
	// lifecycle manager's ticker): an OS crash can lose the last
	// interval, a process crash loses nothing.
	SyncInterval
	// SyncNever never fsyncs explicitly: durability is whatever the OS
	// page cache provides. A process crash still loses nothing (appends
	// are write(2) calls), an OS crash can lose unflushed data.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a WAL. The zero value selects the defaults noted on each
// field.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. <= 0 means 4 MiB.
	SegmentBytes int64
	// Sync is the fsync policy applied to appends (default SyncAlways).
	Sync SyncPolicy
	// Logf receives operational messages (torn-tail truncation, segment
	// pruning); nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

const (
	segPrefix     = "seg-"
	segSuffix     = ".wal"
	segHeaderSize = 16
)

var segMagic = [8]byte{'C', 'F', 'S', 'F', 'W', 'A', 'L', 1}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

// segment is one on-disk log file and the sequence it starts at.
type segment struct {
	name     string
	firstSeq uint64
}

// OpenStats reports what Open found while scanning the log.
type OpenStats struct {
	// Segments is the number of log files present after the scan.
	Segments int
	// Records is the total number of valid records across all segments.
	Records int
	// LastSeq is the sequence of the final valid record (0 for an empty
	// log).
	LastSeq uint64
	// LastCheckpoint is the highest Covered value among checkpoint
	// records (0 when none exist).
	LastCheckpoint uint64
	// TornBytes counts bytes truncated off the final segment because a
	// crash tore the last record; 0 for a clean log.
	TornBytes int64
	// Compactions counts Compact passes completed since Open.
	Compactions int
	// BaseRecords/BaseBytes/BaseFromSeq/BaseToSeq describe the compacted
	// base file, all zero when none exists. Records includes the base's
	// records.
	BaseRecords int
	BaseBytes   int64
	BaseFromSeq uint64
	BaseToSeq   uint64
}

// WAL is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialised internally.
type WAL struct {
	dir  string  //cfsf:immutable
	opts Options //cfsf:immutable

	mu       sync.Mutex
	f        *os.File  //cfsf:guarded-by mu // current segment, positioned at its end
	size     int64     //cfsf:guarded-by mu // current segment size
	lastSeq  uint64    //cfsf:guarded-by mu
	segments []segment //cfsf:guarded-by mu // ascending by firstSeq; last is the open one
	base     *baseInfo //cfsf:guarded-by mu // compacted base, nil when none
	stats    OpenStats //cfsf:guarded-by mu
	closed   bool      //cfsf:guarded-by mu
	// appendSig is closed and replaced on every append (and on close) to
	// wake tail-following cursors; nil until someone asks for it.
	appendSig chan struct{} //cfsf:guarded-by mu

	// compactMu serialises Compact passes; separate from mu so appends
	// continue while a pass reads sealed files.
	compactMu sync.Mutex
}

// Open opens (creating if needed) the log in dir, scans every segment,
// truncates a torn tail on the final one, and positions for append.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		// Unfinished atomic writes (a crash mid-compaction) are litter.
		if strings.Contains(name, ".tmp-") {
			w.opts.Logf("wal: removing unfinished temp file %s", name)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove temp file: %w", err)
			}
			continue
		}
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var first uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%016x", &first); err != nil {
			return nil, fmt.Errorf("wal: unparsable segment name %q", name)
		}
		w.segments = append(w.segments, segment{name: name, firstSeq: first})
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].firstSeq < w.segments[j].firstSeq })

	// A compacted base, when present, covers everything up to its
	// boundary. Older bases (a crash between promotion and GC) are
	// superseded by the newest one, as are segments the newest base has
	// folded but a crash left behind.
	if bases := listBaseFiles(entries); len(bases) > 0 {
		for _, name := range bases[:len(bases)-1] {
			w.opts.Logf("wal: removing superseded base %s", name)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove superseded base: %w", err)
			}
		}
		base, err := scanBase(filepath.Join(dir, bases[len(bases)-1]))
		if err != nil {
			return nil, err
		}
		w.base = base
		w.lastSeq = base.toSeq
		w.stats.Records = base.records
		w.stats.LastCheckpoint = base.lastCheckpoint
		w.stats.BaseRecords = base.records
		w.stats.BaseBytes = base.bytes
		w.stats.BaseFromSeq = base.fromSeq
		w.stats.BaseToSeq = base.toSeq
		for len(w.segments) > 1 && w.segments[1].firstSeq <= base.toSeq+1 {
			name := w.segments[0].name
			w.opts.Logf("wal: removing segment %s folded into %s", name, base.name)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove folded segment: %w", err)
			}
			w.segments = w.segments[1:]
		}
	}

	if len(w.segments) == 0 {
		if err := w.createSegment(w.lastSeq + 1); err != nil {
			return nil, err
		}
		w.stats.Segments = 1
		return w, nil
	}

	// Scan every segment in order: count records, find the last sequence
	// and latest checkpoint, and — on the final segment only — truncate a
	// torn tail. Corruption anywhere before the tail is unrecoverable
	// (replay order would be broken) and fails the open.
	for i, seg := range w.segments {
		last := i == len(w.segments)-1
		if err := w.scanSegment(seg, last); err != nil {
			return nil, err
		}
	}

	// Reopen the final segment for appending at its validated end.
	lastSeg := w.segments[len(w.segments)-1]
	f, err := os.OpenFile(filepath.Join(dir, lastSeg.name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen segment: %w", err)
	}
	if _, err := f.Seek(w.size, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: seek segment end: %w", err)
	}
	w.f = f
	w.stats.Segments = len(w.segments)
	return w, nil
}

// scanSegment validates one segment; for the final segment it records
// the append position and truncates a torn tail.
//
//cfsf:locked mu called only from Open, before the WAL is returned to any caller
func (w *WAL) scanSegment(seg segment, final bool) error {
	path := filepath.Join(w.dir, seg.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < segHeaderSize {
		if !final {
			return fmt.Errorf("wal: segment %s shorter than its header", seg.name)
		}
		// A crash can tear even the header of a freshly rotated segment;
		// rewrite it in place and treat the segment as empty.
		w.opts.Logf("wal: segment %s has a torn header (%d bytes), rewriting", seg.name, len(data))
		w.stats.TornBytes += int64(len(data))
		if err := writeSegmentHeader(path, seg.firstSeq); err != nil {
			return err
		}
		w.size = segHeaderSize
		w.stats.LastSeq = w.lastSeq
		return nil
	}
	if [8]byte(data[:8]) != segMagic {
		return fmt.Errorf("wal: segment %s has bad magic", seg.name)
	}
	if first := binary.BigEndian.Uint64(data[8:16]); first != seg.firstSeq {
		return fmt.Errorf("wal: segment %s header sequence %d does not match its name", seg.name, first)
	}

	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if !final {
				return fmt.Errorf("wal: segment %s corrupt at offset %d: %v", seg.name, off, err)
			}
			torn := int64(len(data)) - off
			w.opts.Logf("wal: dropping torn tail of %s: %d byte(s) at offset %d (%v)", seg.name, torn, off, err)
			w.stats.TornBytes += torn
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			break
		}
		if rec.Seq <= w.lastSeq {
			return fmt.Errorf("wal: segment %s: sequence %d not increasing after %d", seg.name, rec.Seq, w.lastSeq)
		}
		w.lastSeq = rec.Seq
		w.stats.Records++
		if rec.Type == RecordCheckpoint && rec.Covered > w.stats.LastCheckpoint {
			w.stats.LastCheckpoint = rec.Covered
		}
		off += int64(n)
	}
	if final {
		w.size = off
		w.stats.LastSeq = w.lastSeq
	}
	return nil
}

// writeSegmentHeader (re)creates a segment file holding only its header,
// fsynced along with the directory entry.
func writeSegmentHeader(path string, firstSeq uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close segment header: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// createSegment starts a fresh segment whose first record will carry
// firstSeq and opens it for appending.
//
//cfsf:locked mu called from Open pre-publication and from rotateLocked with the lock held
func (w *WAL) createSegment(firstSeq uint64) error {
	name := segName(firstSeq)
	path := filepath.Join(w.dir, name)
	if err := writeSegmentHeader(path, firstSeq); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	w.f = f
	w.size = segHeaderSize
	w.segments = append(w.segments, segment{name: name, firstSeq: firstSeq})
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Stats returns what Open found (segments, records, torn bytes, last
// checkpoint). Segments and the base fields reflect later rotations,
// prunes and compactions too.
func (w *WAL) Stats() OpenStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Segments = len(w.segments)
	s.LastSeq = w.lastSeq
	s.BaseRecords, s.BaseBytes, s.BaseFromSeq, s.BaseToSeq = 0, 0, 0, 0
	if w.base != nil {
		s.BaseRecords = w.base.records
		s.BaseBytes = w.base.bytes
		s.BaseFromSeq = w.base.fromSeq
		s.BaseToSeq = w.base.toSeq
	}
	return s
}

// LastSeq returns the sequence of the most recently appended record.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// AppendRating appends one rating update routed to the given model shard
// (-1 when the caller does not shard) and returns its sequence.
func (w *WAL) AppendRating(u core.RatingUpdate, shard int) (uint64, error) {
	return w.append(Record{Type: RecordRating, Update: u, Shard: shard})
}

// AppendRatings appends a batch of rating updates as one write (and, under
// SyncAlways, one fsync): the batched-ingestion path pays the durability
// cost once per request instead of once per rating. shards[i] is the model
// shard ups[i] routes to (-1 when unsharded); len(shards) must equal
// len(ups). The returned sequences are consecutive and in batch order.
func (w *WAL) AppendRatings(ups []core.RatingUpdate, shards []int) ([]uint64, error) {
	if len(ups) != len(shards) {
		return nil, fmt.Errorf("wal: %d updates but %d shard ids", len(ups), len(shards))
	}
	if len(ups) == 0 {
		return nil, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("wal: append on closed log")
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(w.lastSeq + 1); err != nil {
			return nil, err
		}
	}
	seqs := make([]uint64, len(ups))
	buf := make([]byte, 0, maxEncodedRecord*len(ups))
	for i, u := range ups {
		seqs[i] = w.lastSeq + 1 + uint64(i)
		buf = appendRecord(buf, Record{Type: RecordRating, Seq: seqs[i], Update: u, Shard: shards[i]})
	}
	if _, err := w.f.Write(buf); err != nil {
		return nil, fmt.Errorf("wal: append batch: %w", err)
	}
	w.size += int64(len(buf))
	w.lastSeq = seqs[len(seqs)-1]
	if w.opts.Sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: fsync: %w", err)
		}
	}
	w.notifyAppendLocked()
	return seqs, nil
}

// AppendBatchCommit records that every rating with sequence <= covered
// is applied, closing the current replay batch. shard is the model shard
// the batch was applied on (-1 for a monolithic or multi-shard apply).
func (w *WAL) AppendBatchCommit(covered uint64, shard int) (uint64, error) {
	return w.append(Record{Type: RecordBatchCommit, Covered: covered, Shard: shard})
}

// AppendCheckpoint records that a durable snapshot covers every rating
// with sequence <= covered.
func (w *WAL) AppendCheckpoint(covered uint64) (uint64, error) {
	return w.append(Record{Type: RecordCheckpoint, Covered: covered})
}

func (w *WAL) append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	rec.Seq = w.lastSeq + 1

	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(rec.Seq); err != nil {
			return 0, err
		}
	}

	var buf [maxEncodedRecord]byte
	frame := appendRecord(buf[:0], rec)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(frame))
	w.lastSeq = rec.Seq
	if w.opts.Sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	}
	w.notifyAppendLocked()
	return rec.Seq, nil
}

// rotateLocked closes the current segment (fsynced regardless of policy,
// so a sealed segment is always durable) and starts the next one.
//
//cfsf:locked mu append holds the lock across the rotation
func (w *WAL) rotateLocked(firstSeq uint64) error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync sealed segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close sealed segment: %w", err)
	}
	return w.createSegment(firstSeq)
}

// Sync flushes the current segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.f.Sync()
}

// Prune removes segments every record of which has sequence <= covered
// (established because the next segment starts at or below covered+1).
// The active segment is never removed. It returns how many files were
// deleted.
func (w *WAL) Prune(covered uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segments) > 1 && w.segments[1].firstSeq <= covered+1 {
		name := w.segments[0].name
		if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
			return removed, fmt.Errorf("wal: prune %s: %w", name, err)
		}
		w.opts.Logf("wal: pruned segment %s (covered through %d)", name, covered)
		w.segments = w.segments[1:]
		removed++
	}
	return removed, nil
}

// Close syncs and closes the log. A closed log rejects appends; Replay
// still works (it opens its own handles).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.notifyAppendLocked()
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return w.f.Close()
}

// CloseAbrupt closes the underlying file without a final sync — a
// crash-simulation hook for recovery tests. Data already written by
// appends survives (they were write(2) calls); only OS-cache flushing is
// skipped, exactly as a SIGKILL would.
func (w *WAL) CloseAbrupt() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.notifyAppendLocked()
	return w.f.Close()
}

// Replay streams every record with sequence > afterSeq, in order, to fn:
// the compacted base first (when one exists), then the segments. It reads
// its own file handles, so it is safe while the log is open for append;
// records appended after Replay starts may or may not be seen. A decode
// error stops the replay — call it after Open, which has already
// truncated any torn tail.
func (w *WAL) Replay(afterSeq uint64, fn func(Record) error) error {
	w.mu.Lock()
	segs := make([]segment, len(w.segments))
	copy(segs, w.segments)
	base := w.base
	w.mu.Unlock()

	if base != nil && base.toSeq > afterSeq {
		recs, err := readBaseRecords(filepath.Join(w.dir, base.name), nil)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		for _, rec := range recs {
			if rec.Seq <= afterSeq {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}

	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(w.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: replay read %s: %w", seg.name, err)
		}
		if len(data) < segHeaderSize {
			return fmt.Errorf("wal: replay: segment %s shorter than its header", seg.name)
		}
		off := segHeaderSize
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				return fmt.Errorf("wal: replay: segment %s at offset %d: %v", seg.name, off, err)
			}
			off += n
			if rec.Seq <= afterSeq {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
