package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cfsf/internal/atomicfile"
)

// Log compaction rewrites checkpoint-covered sealed segments (plus the
// previous compacted base) into one compacted base file, then deletes the
// folded sources. The base preserves every record's original sequence
// number and the batch-commit grouping above the caller's horizon, so
// replaying "base + remaining segments" from any retained durable point
// is bit-for-bit identical to replaying the original segments.
//
// The horizon is the oldest retained durable point (manifest or legacy
// snapshot) sequence. Replay from a durable point only ever reads records
// after that point, which splits the base into two zones:
//
//   - seq <= horizon: these records are never batch-replayed again (every
//     retained recovery start is at or above the horizon); they are kept
//     only so matrix rows can be rebuilt (shard-blob patching, and the
//     last-resort bootstrap path). Superseded (user,item) cells are
//     dropped across batches — last writer wins — and batch-commit
//     records are dropped entirely.
//   - seq > horizon: replay from a retained durable point can start here,
//     so batch structure is sacred. Ratings are deduped only within one
//     committed batch (the model folds a batch atomically, and the
//     matrix builder keeps the last duplicate, so dropping an earlier
//     same-cell rating of the same batch cannot change the result);
//     commit records and the trailing uncommitted queue are untouched.
//
// A dropped rating must not flip timestamp presence: an update with a
// timestamp is only dropped when the surviving same-cell record also
// carries one (or the dropped one carried none).
//
// The base file layout is a 32-byte header — magic, first sequence,
// last sequence, and the highest horizon ever applied (so later readers
// know below which sequence batch structure is gone) — followed by
// ordinary record frames. Promotion is
// crash-safe: the new base is written to a temp file, fsynced, renamed,
// and the directory fsynced before any source file is deleted; Open
// cleans up whichever side of that window a crash exposes.

const (
	basePrefix     = "base-"
	baseSuffix     = ".cwal"
	baseHeaderSize = 32
)

var baseMagic = [8]byte{'C', 'F', 'S', 'F', 'W', 'A', 'B', 1}

func baseName(toSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", basePrefix, toSeq, baseSuffix)
}

// baseInfo describes the live compacted base file.
type baseInfo struct {
	name    string
	fromSeq uint64 // sequence the base's coverage starts at
	toSeq   uint64 // last sequence the base covers (boundary to the next segment)
	// horizon is the highest horizon any compaction pass applied: records
	// at or below it have lost superseded cells and commit records, so
	// batch-exact replay below it is impossible (cell-level last-writer
	// state is preserved).
	horizon uint64
	records int
	bytes   int64
	// lastCheckpoint is the highest checkpoint Covered value among the
	// base's records (0 when none).
	lastCheckpoint uint64
}

// CompactStats reports one compaction pass.
type CompactStats struct {
	// SegmentsFolded is how many sealed segments were rewritten into the
	// base (the previous base, when present, is folded too but not
	// counted here).
	SegmentsFolded int `json:"segments_folded"`
	// RecordsIn / RecordsOut count records read from the sources and
	// written to the new base.
	RecordsIn  int `json:"records_in"`
	RecordsOut int `json:"records_out"`
	// DroppedCells counts superseded (user,item) ratings removed;
	// DroppedCommits and DroppedCheckpoints count bookkeeping records
	// below the horizon that no retained replay can observe.
	DroppedCells       int `json:"dropped_cells"`
	DroppedCommits     int `json:"dropped_commits"`
	DroppedCheckpoints int `json:"dropped_checkpoints"`
	// BaseRecords/BaseBytes/BaseFromSeq/BaseToSeq describe the promoted
	// base file.
	BaseRecords int    `json:"base_records"`
	BaseBytes   int64  `json:"base_bytes"`
	BaseFromSeq uint64 `json:"base_from_seq"`
	BaseToSeq   uint64 `json:"base_to_seq"`
}

// AvailableFrom returns the lowest sequence from which the log can serve
// a contiguous record stream: the base's start when the first remaining
// segment continues it directly, otherwise the first segment's start.
// Callers patching state forward from sequence S need AvailableFrom() <=
// S+1, or records in (S, tail] may be missing.
func (w *WAL) AvailableFrom() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.base != nil {
		if len(w.segments) == 0 || w.segments[0].firstSeq <= w.base.toSeq+1 {
			return w.base.fromSeq
		}
	}
	if len(w.segments) > 0 {
		return w.segments[0].firstSeq
	}
	return 1
}

// DedupedBelow returns the highest horizon any compaction pass has
// applied: records at or below it may have lost superseded cells and
// commit records, so batch-exact replay of that range is impossible.
// Zero when no compacted base exists.
func (w *WAL) DedupedBelow() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.base != nil {
		return w.base.horizon
	}
	return 0
}

// Compact folds every checkpoint-covered sealed segment (every segment
// whose successor starts at or below covered+1) plus the previous base
// into a new compacted base, promotes it atomically, and deletes the
// folded sources. horizon is the oldest retained durable point sequence;
// records at or below it lose superseded cells and commit records,
// records above it keep their batch structure (see the package comment).
//
// With no foldable segments the call is a no-op unless force is set, in
// which case the existing base alone is rewritten under the (possibly
// advanced) horizon. The returned stats are zero when nothing was done.
func (w *WAL) Compact(covered, horizon uint64, force bool) (CompactStats, error) {
	w.compactMu.Lock()
	defer w.compactMu.Unlock()

	w.mu.Lock()
	oldBase := w.base
	var fold []segment
	for i := 0; i+1 < len(w.segments) && w.segments[i+1].firstSeq <= covered+1; i++ {
		fold = append(fold, w.segments[i])
	}
	w.mu.Unlock()

	if len(fold) == 0 && (oldBase == nil || !force) {
		return CompactStats{}, nil
	}

	// The horizon only ever advances: records once deduped under an older
	// horizon stay deduped, so the recorded value is the max over passes.
	if oldBase != nil && oldBase.horizon > horizon {
		horizon = oldBase.horizon
	}

	// Coverage boundary of the new base: just below the first segment we
	// are not folding.
	var toSeq uint64
	if len(fold) > 0 {
		w.mu.Lock()
		toSeq = w.segments[len(fold)].firstSeq - 1
		w.mu.Unlock()
	} else {
		toSeq = oldBase.toSeq
	}
	fromSeq := toSeq + 1 // lowered below to the first source's start

	// Read every source record in order: previous base first, then the
	// folded segments.
	var recs []Record
	if oldBase != nil {
		if oldBase.fromSeq < fromSeq {
			fromSeq = oldBase.fromSeq
		}
		var err error
		recs, err = readBaseRecords(filepath.Join(w.dir, oldBase.name), recs)
		if err != nil {
			return CompactStats{}, fmt.Errorf("wal: compact: %w", err)
		}
	}
	for _, seg := range fold {
		if seg.firstSeq < fromSeq {
			fromSeq = seg.firstSeq
		}
		var err error
		recs, err = readSegmentRecords(filepath.Join(w.dir, seg.name), recs)
		if err != nil {
			return CompactStats{}, fmt.Errorf("wal: compact: %w", err)
		}
	}

	stats := CompactStats{SegmentsFolded: len(fold), RecordsIn: len(recs)}
	keep := compactRecords(recs, horizon, &stats)

	// Write and promote the new base.
	name := baseName(toSeq)
	path := filepath.Join(w.dir, name)
	var baseBytes int64
	err := atomicfile.WriteToAndSync(path, 0o644, func(f *os.File) error {
		var hdr [baseHeaderSize]byte
		copy(hdr[:8], baseMagic[:])
		binary.BigEndian.PutUint64(hdr[8:], fromSeq)
		binary.BigEndian.PutUint64(hdr[16:], toSeq)
		binary.BigEndian.PutUint64(hdr[24:], horizon)
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		buf := make([]byte, 0, 1<<16)
		for _, i := range keep {
			buf = appendRecord(buf, recs[i])
			if len(buf) >= 1<<16-maxEncodedRecord {
				if _, err := f.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
		baseBytes = baseHeaderSize
		return nil
	})
	if err != nil {
		return CompactStats{}, fmt.Errorf("wal: compact promote: %w", err)
	}
	if fi, err := os.Stat(path); err == nil {
		baseBytes = fi.Size()
	}

	stats.RecordsOut = len(keep)
	stats.BaseRecords = len(keep)
	stats.BaseBytes = baseBytes
	stats.BaseFromSeq = fromSeq
	stats.BaseToSeq = toSeq

	// Swap in the new base and garbage-collect the folded sources. The
	// new base is durable, so a failed deletion only leaves files Open
	// knows how to clean up on the next boot.
	w.mu.Lock()
	w.base = &baseInfo{name: name, fromSeq: fromSeq, toSeq: toSeq, horizon: horizon, records: len(keep), bytes: baseBytes}
	w.segments = w.segments[len(fold):]
	w.stats.Compactions++
	w.mu.Unlock()

	if oldBase != nil && oldBase.name != name {
		if err := os.Remove(filepath.Join(w.dir, oldBase.name)); err != nil {
			w.opts.Logf("wal: compact: remove superseded base %s: %v", oldBase.name, err)
		}
	}
	for _, seg := range fold {
		if err := os.Remove(filepath.Join(w.dir, seg.name)); err != nil {
			w.opts.Logf("wal: compact: remove folded segment %s: %v", seg.name, err)
		}
	}
	if err := atomicfile.SyncDir(w.dir); err != nil {
		w.opts.Logf("wal: compact: %v", err)
	}
	w.opts.Logf("wal: compacted %d segment(s) into %s: %d -> %d record(s), horizon %d",
		len(fold), name, stats.RecordsIn, stats.RecordsOut, horizon)
	return stats, nil
}

// compactRecords selects which source records survive, returning their
// indexes in order. See the package comment for the two-zone rules.
func compactRecords(recs []Record, horizon uint64, stats *CompactStats) []int {
	drop := make([]bool, len(recs))

	type cell struct{ user, item int }

	// Zone A (seq <= horizon): last writer per cell wins, commits drop.
	lastWriter := map[cell]int{}
	// Checkpoints: keep everything above the horizon; below it keep only
	// the newest, and only when no newer one exists above.
	lastCkpt := -1
	anyCkptAboveHorizon := false

	// Zone B (seq > horizon): simulate replay grouping to dedupe within
	// committed batches only. queued holds indexes of not-yet-committed
	// ratings above the horizon.
	var queued []int
	commitBatch := func(covered uint64, shard int) {
		var batch []int
		kept := queued[:0]
		for _, i := range queued {
			if recs[i].Seq <= covered && (shard < 0 || recs[i].Shard == shard) {
				batch = append(batch, i)
			} else {
				kept = append(kept, i)
			}
		}
		queued = kept
		// Within the batch, the model folds all updates at once and the
		// matrix keeps the last duplicate per cell, so earlier duplicates
		// are dead — unless dropping one would lose timestamp presence.
		last := map[cell]int{}
		for _, i := range batch {
			last[cell{recs[i].Update.User, recs[i].Update.Item}] = i
		}
		for _, i := range batch {
			k := cell{recs[i].Update.User, recs[i].Update.Item}
			li := last[k]
			if li != i && (recs[i].Update.Time == 0 || recs[li].Update.Time != 0) {
				drop[i] = true
				stats.DroppedCells++
			}
		}
	}

	for i, rec := range recs {
		switch rec.Type {
		case RecordRating:
			if rec.Seq <= horizon {
				k := cell{rec.Update.User, rec.Update.Item}
				if prev, ok := lastWriter[k]; ok {
					// Last writer wins below the horizon, with the same
					// timestamp-presence guard as in-batch dedupe.
					if recs[prev].Update.Time == 0 || rec.Update.Time != 0 {
						drop[prev] = true
						stats.DroppedCells++
						lastWriter[k] = i
					}
					// Otherwise keep both; the newer record still wins at
					// rebuild (the builder keeps the later duplicate).
					if recs[prev].Update.Time != 0 && rec.Update.Time == 0 {
						lastWriter[k] = i
					}
				} else {
					lastWriter[k] = i
				}
			} else {
				queued = append(queued, i)
			}
		case RecordBatchCommit:
			if rec.Seq <= horizon {
				// No retained replay starts below the horizon, so this
				// commit can never regroup anything again.
				drop[i] = true
				stats.DroppedCommits++
			} else {
				commitBatch(rec.Covered, rec.Shard)
			}
		case RecordCheckpoint:
			if rec.Seq > horizon {
				anyCkptAboveHorizon = true
			} else {
				if lastCkpt >= 0 {
					drop[lastCkpt] = true
					stats.DroppedCheckpoints++
				}
				lastCkpt = i
			}
		}
	}
	if lastCkpt >= 0 && anyCkptAboveHorizon {
		drop[lastCkpt] = true
		stats.DroppedCheckpoints++
	}

	keep := make([]int, 0, len(recs))
	for i := range recs {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return keep
}

// readBaseRecords appends every record of a base file to dst, validating
// header and checksums.
func readBaseRecords(path string, dst []Record) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return dst, err
	}
	from, to, _, err := parseBaseHeader(filepath.Base(path), data)
	if err != nil {
		return dst, err
	}
	_ = from
	off := baseHeaderSize
	var last uint64
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return dst, fmt.Errorf("base %s corrupt at offset %d: %v", filepath.Base(path), off, err)
		}
		if rec.Seq <= last || rec.Seq > to {
			return dst, fmt.Errorf("base %s: sequence %d out of order or beyond %d", filepath.Base(path), rec.Seq, to)
		}
		last = rec.Seq
		dst = append(dst, rec)
		off += n
	}
	return dst, nil
}

// readSegmentRecords appends every record of a sealed segment to dst.
func readSegmentRecords(path string, dst []Record) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return dst, err
	}
	if len(data) < segHeaderSize || [8]byte(data[:8]) != segMagic {
		return dst, fmt.Errorf("segment %s has a bad header", filepath.Base(path))
	}
	off := segHeaderSize
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return dst, fmt.Errorf("segment %s corrupt at offset %d: %v", filepath.Base(path), off, err)
		}
		dst = append(dst, rec)
		off += n
	}
	return dst, nil
}

func parseBaseHeader(name string, data []byte) (from, to, horizon uint64, err error) {
	if len(data) < baseHeaderSize {
		return 0, 0, 0, fmt.Errorf("base %s shorter than its header", name)
	}
	if [8]byte(data[:8]) != baseMagic {
		return 0, 0, 0, fmt.Errorf("base %s has bad magic", name)
	}
	from = binary.BigEndian.Uint64(data[8:16])
	to = binary.BigEndian.Uint64(data[16:24])
	horizon = binary.BigEndian.Uint64(data[24:32])
	var named uint64
	if _, serr := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, basePrefix), baseSuffix), "%016x", &named); serr != nil || named != to {
		return 0, 0, 0, fmt.Errorf("base %s header coverage %d does not match its name", name, to)
	}
	if from > to+1 {
		return 0, 0, 0, fmt.Errorf("base %s coverage [%d,%d] inverted", name, from, to)
	}
	return from, to, horizon, nil
}

// scanBase validates the base file at Open time: header, checksums,
// strictly increasing sequences. It returns the populated info.
func scanBase(path string) (*baseInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read base: %w", err)
	}
	name := filepath.Base(path)
	from, to, horizon, err := parseBaseHeader(name, data)
	if err != nil {
		return nil, fmt.Errorf("wal: %v", err)
	}
	info := &baseInfo{name: name, fromSeq: from, toSeq: to, horizon: horizon, bytes: int64(len(data))}
	off := baseHeaderSize
	var last uint64
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			// A base is written atomically; a torn one means disk-level
			// corruption, which recovery must surface, not skip.
			return nil, fmt.Errorf("wal: base %s corrupt at offset %d: %v", name, off, err)
		}
		if rec.Seq <= last || rec.Seq > to {
			return nil, fmt.Errorf("wal: base %s: sequence %d out of order or beyond %d", name, rec.Seq, to)
		}
		last = rec.Seq
		info.records++
		if rec.Type == RecordCheckpoint && rec.Covered > info.lastCheckpoint {
			info.lastCheckpoint = rec.Covered
		}
		off += n
	}
	return info, nil
}

// listBaseFiles returns the base files in dir sorted ascending by their
// coverage boundary.
func listBaseFiles(entries []os.DirEntry) []string {
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, basePrefix) || !strings.HasSuffix(name, baseSuffix) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
