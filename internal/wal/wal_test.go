package wal

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfsf/internal/core"
)

func mustOpen(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func upd(i int) core.RatingUpdate {
	return core.RatingUpdate{User: i, Item: i * 2, Value: float64(i%5) + 0.5, Time: int64(1000 + i)}
}

func collect(t *testing.T, w *WAL, afterSeq uint64) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(afterSeq, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		seq, err := w.AppendRating(upd(i), i)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if _, err := w.AppendBatchCommit(3, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCheckpoint(3); err != nil {
		t.Fatal(err)
	}

	recs := collect(t, w, 0)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i := 0; i < 3; i++ {
		r := recs[i]
		if r.Type != RecordRating || r.Seq != uint64(i+1) || r.Update != upd(i+1) || r.Shard != i+1 {
			t.Errorf("record %d = %+v, want rating %+v at seq %d shard %d", i, r, upd(i+1), i+1, i+1)
		}
	}
	if recs[3].Type != RecordBatchCommit || recs[3].Covered != 3 || recs[3].Shard != 7 {
		t.Errorf("commit record = %+v", recs[3])
	}
	if recs[4].Type != RecordCheckpoint || recs[4].Covered != 3 {
		t.Errorf("checkpoint record = %+v", recs[4])
	}

	if got := collect(t, w, 3); len(got) != 2 {
		t.Errorf("replay after seq 3 yielded %d records, want 2", len(got))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	for i := 1; i <= 4; i++ {
		if _, err := w.AppendRating(upd(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	st := w2.Stats()
	if st.Records != 4 || st.LastSeq != 4 || st.TornBytes != 0 {
		t.Fatalf("reopen stats = %+v", st)
	}
	seq, err := w2.AppendRating(upd(5), -1)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("continued seq = %d, want 5", seq)
	}
	if recs := collect(t, w2, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records after reopen, want 5", len(recs))
	}
	w2.Close()
}

// TestTornTailEveryOffset is the crash-recovery matrix: N records, then
// the file truncated at every byte offset inside the final record; Open
// must drop exactly the torn record and replay the other N−1, and the
// log must accept appends again afterwards.
func TestTornTailEveryOffset(t *testing.T) {
	const n = 5
	master := t.TempDir()
	w := mustOpen(t, master, Options{})
	for i := 1; i <= n; i++ {
		if _, err := w.AppendRating(upd(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recBytes := (len(data) - segHeaderSize) / n
	lastStart := len(data) - recBytes

	for cut := lastStart + 1; cut < len(data); cut++ {
		dir := t.TempDir()
		torn := make([]byte, cut)
		copy(torn, data[:cut])
		if err := os.WriteFile(filepath.Join(dir, segName(1)), torn, 0o644); err != nil {
			t.Fatal(err)
		}

		var logged []string
		w, err := Open(dir, Options{Logf: func(f string, a ...any) {
			logged = append(logged, f)
		}})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		st := w.Stats()
		if st.Records != n-1 || st.LastSeq != n-1 {
			t.Fatalf("cut at %d: records=%d lastSeq=%d, want %d/%d", cut, st.Records, st.LastSeq, n-1, n-1)
		}
		if want := int64(cut - lastStart); st.TornBytes != want {
			t.Errorf("cut at %d: torn bytes = %d, want %d", cut, st.TornBytes, want)
		}
		if len(logged) == 0 {
			t.Errorf("cut at %d: torn tail not logged", cut)
		}
		recs := collect(t, w, 0)
		if len(recs) != n-1 {
			t.Fatalf("cut at %d: replayed %d, want %d", cut, len(recs), n-1)
		}
		for i, r := range recs {
			if r.Update != upd(i+1) {
				t.Fatalf("cut at %d: record %d = %+v", cut, i, r)
			}
		}
		// The log keeps working: the next append takes the seq of the
		// record that was torn away.
		seq, err := w.AppendRating(upd(99), -1)
		if err != nil {
			t.Fatal(err)
		}
		if seq != n {
			t.Errorf("cut at %d: append seq = %d, want %d", cut, seq, n)
		}
		w.Close()
	}
}

// TestTornSegmentHeader covers a crash during segment creation itself:
// the file exists but its 16-byte header is incomplete.
func TestTornSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("CFSF"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := mustOpen(t, dir, Options{})
	st := w.Stats()
	if st.Records != 0 || st.TornBytes != 4 {
		t.Fatalf("stats after torn header = %+v", st)
	}
	if seq, err := w.AppendRating(upd(1), -1); err != nil || seq != 1 {
		t.Fatalf("append after header rewrite: seq=%d err=%v", seq, err)
	}
	w.Close()
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Each rating frame is ~49 bytes; a 100-byte segment cap forces a
	// rotation roughly every other record.
	w := mustOpen(t, dir, Options{SegmentBytes: 100})
	const n = 10
	for i := 1; i <= n; i++ {
		if _, err := w.AppendRating(upd(i), i); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have produced several", st.Segments)
	}
	if recs := collect(t, w, 0); len(recs) != n {
		t.Fatalf("replayed %d, want %d", len(recs), n)
	}

	removed, err := w.Prune(uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	if removed != st.Segments-1 {
		t.Errorf("pruned %d segments, want %d (all but active)", removed, st.Segments-1)
	}
	if got := w.Stats().Segments; got != 1 {
		t.Errorf("segments after prune = %d, want 1", got)
	}
	// Pruning below the covered point keeps replay working for the tail.
	if _, err := w.AppendRating(upd(n+1), -1); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, w, 0)
	if len(recs) == 0 || recs[len(recs)-1].Seq != uint64(n+1) {
		t.Fatalf("replay after prune = %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
	w.Close()

	// Reopen across the prune gap: segments now start past seq 1.
	w2 := mustOpen(t, dir, Options{SegmentBytes: 100})
	if w2.LastSeq() != uint64(n+1) {
		t.Errorf("reopened lastSeq = %d, want %d", w2.LastSeq(), n+1)
	}
	w2.Close()
}

// TestCorruptionBeforeTailFailsOpen: a flipped byte in a sealed segment
// is unrecoverable corruption, not a torn tail, and must fail loudly.
func TestCorruptionBeforeTailFailsOpen(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SegmentBytes: 100})
	for i := 1; i <= 6; i++ {
		if _, err := w.AppendRating(upd(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	w.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+frameHeaderSize+3] ^= 0xFF // corrupt first record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 100}); err == nil {
		t.Fatal("open succeeded on a corrupt sealed segment")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %v does not mention corruption", err)
	}
}

func TestAppendRatingsBatch(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	ups := []core.RatingUpdate{upd(1), upd(2), upd(3), upd(4)}
	shards := []int{2, 0, 2, 5}
	seqs, err := w.AppendRatings(ups, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seqs = %v, want consecutive from 1", seqs)
		}
	}
	if _, err := w.AppendBatchCommit(4, -1); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, w, 0)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i := 0; i < 4; i++ {
		r := recs[i]
		if r.Type != RecordRating || r.Update != ups[i] || r.Shard != shards[i] {
			t.Errorf("record %d = %+v, want %+v shard %d", i, r, ups[i], shards[i])
		}
	}

	if _, err := w.AppendRatings(ups, shards[:2]); err == nil {
		t.Error("length-mismatched batch accepted")
	}
	if seqs, err := w.AppendRatings(nil, nil); err != nil || seqs != nil {
		t.Errorf("empty batch = %v, %v", seqs, err)
	}
	// The batch is one frame group; a following single append continues
	// the sequence.
	if seq, err := w.AppendRating(upd(9), 1); err != nil || seq != 6 {
		t.Errorf("append after batch: seq=%d err=%v", seq, err)
	}
	w.Close()

	w2 := mustOpen(t, dir, Options{})
	if w2.LastSeq() != 6 {
		t.Errorf("reopened lastSeq = %d, want 6", w2.LastSeq())
	}
	w2.Close()
}

// legacyFrame encodes a record in the pre-shard layout: 32-byte rating
// payloads and 8-byte commit payloads, exactly what logs written before
// the sharding refactor contain.
func legacyFrame(rec Record) []byte {
	var payload []byte
	switch rec.Type {
	case RecordRating:
		var p [ratingPayloadV1]byte
		binary.BigEndian.PutUint64(p[0:], uint64(int64(rec.Update.User)))
		binary.BigEndian.PutUint64(p[8:], uint64(int64(rec.Update.Item)))
		binary.BigEndian.PutUint64(p[16:], math.Float64bits(rec.Update.Value))
		binary.BigEndian.PutUint64(p[24:], uint64(rec.Update.Time))
		payload = p[:]
	case RecordBatchCommit, RecordCheckpoint:
		var p [coveredPayloadV1]byte
		binary.BigEndian.PutUint64(p[0:], rec.Covered)
		payload = p[:]
	}
	body := append([]byte{byte(rec.Type)}, binary.BigEndian.AppendUint64(nil, rec.Seq)...)
	body = append(body, payload...)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	return append(frame, body...)
}

// TestLegacyLogReplays: a log written before shard ids existed must open
// and replay cleanly, with every record reporting Shard = -1.
func TestLegacyLogReplays(t *testing.T) {
	dir := t.TempDir()
	var data []byte
	data = append(data, segMagic[:]...)
	data = binary.BigEndian.AppendUint64(data, 1)
	data = append(data, legacyFrame(Record{Type: RecordRating, Seq: 1, Update: upd(1)})...)
	data = append(data, legacyFrame(Record{Type: RecordRating, Seq: 2, Update: upd(2)})...)
	data = append(data, legacyFrame(Record{Type: RecordBatchCommit, Seq: 3, Covered: 2})...)
	data = append(data, legacyFrame(Record{Type: RecordCheckpoint, Seq: 4, Covered: 2})...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	w := mustOpen(t, dir, Options{})
	st := w.Stats()
	if st.Records != 4 || st.LastSeq != 4 || st.TornBytes != 0 || st.LastCheckpoint != 2 {
		t.Fatalf("legacy open stats = %+v", st)
	}
	recs := collect(t, w, 0)
	if len(recs) != 4 {
		t.Fatalf("replayed %d legacy records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Shard != -1 {
			t.Errorf("legacy record %d decoded shard %d, want -1", i, r.Shard)
		}
	}
	if recs[0].Update != upd(1) || recs[1].Update != upd(2) || recs[2].Covered != 2 {
		t.Errorf("legacy payloads mangled: %+v", recs[:3])
	}
	// New-format appends continue the legacy log in place.
	if seq, err := w.AppendRating(upd(3), 4); err != nil || seq != 5 {
		t.Fatalf("append after legacy log: seq=%d err=%v", seq, err)
	}
	recs = collect(t, w, 4)
	if len(recs) != 1 || recs[0].Shard != 4 {
		t.Fatalf("mixed-format tail = %+v", recs)
	}
	w.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "Interval": SyncInterval, "NEVER": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
